#!/usr/bin/env python3
"""Validates a dme-obs JSONL trace (and optionally a run manifest).

Usage: scripts/validate_trace.py trace.jsonl [manifest.json]
       scripts/validate_trace.py --snapshot snapshot.json

Checks every line of the trace against event schema v1 (see
crates/dme-obs/src/sink.rs): the common envelope plus the per-type
payload, monotonically non-decreasing timestamps, and — when a manifest
is given — manifest schema v1, v2 or v3 (crates/dme-obs/src/manifest.rs).
Schema v2 additionally carries a top-level `qor` object of finite
numeric metrics and per-histogram p50/p95/p99 percentile fields.
Schema v3 adds a `profile` object: the span tree with per-path self
times and allocation attribution, checked here for its structural
invariants (self <= total per node, children totals fitting inside the
parent, non-negative allocation tallies).
With `--snapshot`, validates a live telemetry snapshot instead
(schema v1, crates/dme-obs/src/snapshot.rs): envelope, per-thread
span-stack views, stage rows, counter deltas/rates, stream tallies and
the stalled-stage watchdog entries. Used by the CI live-telemetry job.

Exits non-zero on the first violation; used by the CI trace-schema job.
"""

import json
import math
import sys

TRACE_SCHEMA_VERSION = 1
MANIFEST_SCHEMA_VERSIONS = (1, 2, 3)
SNAPSHOT_SCHEMA_VERSION = 1
SNAPSHOT_STATUSES = {"running", "final", "panicked"}
LOG_LEVELS = {"error", "warn", "info", "debug", "report"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(lineno, ev):
    where = f"line {lineno}"
    if not isinstance(ev, dict):
        fail(f"{where}: event is not an object")
    for key in ("type", "v", "ts_us"):
        if key not in ev:
            fail(f"{where}: missing envelope field {key!r}")
    if ev["v"] != TRACE_SCHEMA_VERSION:
        fail(f"{where}: schema version {ev['v']} != {TRACE_SCHEMA_VERSION}")
    if not isinstance(ev["ts_us"], (int, float)) or ev["ts_us"] < 0:
        fail(f"{where}: bad ts_us {ev['ts_us']!r}")
    kind = ev["type"]
    if kind == "span":
        if not isinstance(ev.get("path"), str) or not ev["path"]:
            fail(f"{where}: span missing path")
        if not isinstance(ev.get("dur_ns"), (int, float)) or ev["dur_ns"] < 0:
            fail(f"{where}: span bad dur_ns {ev.get('dur_ns')!r}")
    elif kind == "record":
        if not isinstance(ev.get("kind"), str) or not ev["kind"]:
            fail(f"{where}: record missing kind")
        fields = ev.get("fields")
        if not isinstance(fields, dict):
            fail(f"{where}: record missing fields object")
        for k, v in fields.items():
            # Non-finite values serialize as null by design.
            if v is not None and not isinstance(v, (int, float)):
                fail(f"{where}: record field {k!r} is not numeric: {v!r}")
    elif kind == "log":
        if ev.get("level") not in LOG_LEVELS:
            fail(f"{where}: log bad level {ev.get('level')!r}")
        if not isinstance(ev.get("msg"), str):
            fail(f"{where}: log missing msg")
    else:
        fail(f"{where}: unknown event type {kind!r}")


def check_trace(path):
    count = 0
    last_ts = -1
    by_type = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"line {lineno}: not valid JSON: {e}")
            check_event(lineno, ev)
            if ev["ts_us"] < last_ts:
                fail(f"line {lineno}: ts_us went backwards")
            last_ts = ev["ts_us"]
            by_type[ev["type"]] = by_type.get(ev["type"], 0) + 1
            count += 1
    if count == 0:
        fail(f"{path}: no events")
    print(f"validate_trace: {path}: {count} events OK {by_type}")


def check_manifest(path):
    with open(path, encoding="utf-8") as f:
        m = json.load(f)
    version = m.get("schema_version")
    if version not in MANIFEST_SCHEMA_VERSIONS:
        fail(f"{path}: manifest schema_version {version!r}")
    keys = ["meta", "spans", "counters", "histograms", "records"]
    if version >= 2:
        keys.append("qor")
    for key in keys:
        if not isinstance(m.get(key), dict):
            fail(f"{path}: manifest missing object {key!r}")
    for span, st in m["spans"].items():
        for k in ("count", "total_ns", "max_ns"):
            if not isinstance(st.get(k), (int, float)) or st[k] < 0:
                fail(f"{path}: span {span!r} bad {k!r}")
    for name, v in m["counters"].items():
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"{path}: counter {name!r} bad value {v!r}")
    for kind, series in m["records"].items():
        if not isinstance(series.get("rows"), list):
            fail(f"{path}: record series {kind!r} missing rows")
    check_solver_consistency(path, m)
    check_dosepl_consistency(path, m)
    check_sta_consistency(path, m)
    if version >= 3:
        check_profile(path, m)
    if version >= 2:
        for name, v in m["qor"].items():
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                fail(f"{path}: qor metric {name!r} not finite: {v!r}")
        for name, h in m["histograms"].items():
            for k in ("p50", "p95", "p99"):
                if not isinstance(h.get(k), (int, float)) or h[k] < 0:
                    fail(f"{path}: histogram {name!r} bad {k!r}")
            if not h["p50"] <= h["p95"] <= h["p99"] <= h.get("max", float("inf")):
                fail(f"{path}: histogram {name!r} percentile ordering")
    qor_note = f", {len(m['qor'])} qor metrics" if version >= 2 else ""
    print(
        f"validate_trace: {path}: manifest OK "
        f"({len(m['spans'])} spans, {len(m['counters'])} counters, "
        f"{sum(len(s['rows']) for s in m['records'].values())} record rows"
        f"{qor_note})"
    )


def check_profile(path, m):
    """Structural invariants of the schema-v3 profile section.

    The profile tree parents each span path under its nearest recorded
    ancestor (longest proper '/'-prefix present in the node map), the
    same rule the Rust builder uses. Per node: self <= total, every
    tally non-negative; per parent: the direct children's totals fit
    inside the parent's total (children are sequential within one open
    parent span, so their durations are disjoint).
    """
    profile = m.get("profile")
    if not isinstance(profile, dict):
        fail(f"{path}: schema v3 manifest missing profile object")
    if not isinstance(profile.get("alloc_tracking"), bool):
        fail(f"{path}: profile.alloc_tracking is not a bool")
    nodes = profile.get("nodes")
    if not isinstance(nodes, dict):
        fail(f"{path}: profile.nodes is not an object")

    fields = (
        "calls", "total_ns", "self_ns", "max_ns", "p50_ns", "p95_ns",
        "alloc_bytes", "alloc_count", "self_alloc_bytes", "self_alloc_count",
    )
    for node_path, n in nodes.items():
        for k in fields:
            if not isinstance(n.get(k), (int, float)) or n[k] < 0:
                fail(f"{path}: profile node {node_path!r} bad {k!r}: {n.get(k)!r}")
        if n["self_ns"] > n["total_ns"]:
            fail(f"{path}: profile node {node_path!r} self_ns > total_ns")
        if n["self_alloc_bytes"] > n["alloc_bytes"]:
            fail(f"{path}: profile node {node_path!r} self_alloc_bytes > alloc_bytes")
        if n["self_alloc_count"] > n["alloc_count"]:
            fail(f"{path}: profile node {node_path!r} self_alloc_count > alloc_count")

    def parent_of(node_path):
        prefix = node_path
        while "/" in prefix:
            prefix = prefix.rsplit("/", 1)[0]
            if prefix in nodes:
                return prefix
        return None

    children_total = {}
    for node_path in nodes:
        parent = parent_of(node_path)
        if parent is not None:
            children_total[parent] = (
                children_total.get(parent, 0.0) + nodes[node_path]["total_ns"]
            )
    for parent, total in children_total.items():
        # 1e-6 relative slack: totals are integer ns, but the sum of
        # many children may round against a parent measured once.
        if total > nodes[parent]["total_ns"] * (1 + 1e-6) + 1:
            fail(
                f"{path}: profile children of {parent!r} total {total} ns > "
                f"parent total {nodes[parent]['total_ns']} ns"
            )


def check_solver_consistency(path, m):
    """Cross-field invariants for the QP solver/backend telemetry.

    All conditional: older manifests (or CG-only runs) simply lack the
    counters and skip the corresponding checks.
    """
    counters = m.get("counters", {})

    def c(name):
        return counters.get(name)

    # Every observed IPM solve resolves to exactly one backend.
    backends = [c(k) for k in ("qp/backend_direct", "qp/backend_cg")]
    if any(v is not None for v in backends):
        total = sum(v or 0 for v in backends)
        solves = c("qp/solves")
        admm = c("qp/backend_admm") or 0
        if solves is not None and total + admm > solves:
            fail(
                f"{path}: backend counters ({total} ipm + {admm} admm) "
                f"exceed qp/solves ({solves})"
            )

    # Factorization telemetry: refactor time accompanies any factor count,
    # and symbolic reuse cannot outnumber the factorizations it amortizes.
    factors = c("qp/factorizations")
    if factors:
        if c("qp/refactor_ns") is None:
            fail(f"{path}: qp/factorizations without qp/refactor_ns")
        reuse = c("qp/symbolic_reuse") or 0
        if reuse > factors:
            fail(
                f"{path}: qp/symbolic_reuse ({reuse}) > "
                f"qp/factorizations ({factors})"
            )

    # Warm starts only happen on repeat probes of the same program.
    hits = c("dmopt/warm_start_hits")
    probes = c("dmopt/qp_probes")
    if hits is not None and probes is not None and hits >= max(probes, 1):
        fail(
            f"{path}: dmopt/warm_start_hits ({hits}) not < "
            f"dmopt/qp_probes ({probes})"
        )

    # Every observed IPM solve reports its iteration strategy exactly
    # once, so the strategy tallies match the per-solve backend tallies.
    strategies = [c(k) for k in ("qp/strategy_mehrotra", "qp/strategy_basic")]
    if any(v is not None for v in strategies):
        strategy_total = sum(v or 0 for v in strategies)
        backend_total = (c("qp/backend_direct") or 0) + (c("qp/backend_cg") or 0)
        if backend_total and strategy_total != backend_total:
            fail(
                f"{path}: strategy counters ({strategy_total}) != "
                f"observed IPM solves ({backend_total})"
            )

    # Per-iteration rows carry the full predictor/corrector tuple: the
    # affine probe's mu_aff rides along with mu (equal when the basic
    # strategy ran no predictor pass), sigma is a centering fraction and
    # alpha a step length, both in [0, 1].
    iter_rows = m.get("records", {}).get("ipm_iter", {}).get("rows", [])
    for i, row in enumerate(iter_rows):
        for field in (
            "iter", "mu", "mu_aff", "rp_inf", "rd_inf",
            "sigma", "alpha", "cg_pred", "cg_corr",
        ):
            if not isinstance(row.get(field), (int, float)):
                fail(f"{path}: ipm_iter row {i} missing {field!r}")
        for frac in ("sigma", "alpha"):
            if not 0.0 <= row[frac] <= 1.0:
                fail(f"{path}: ipm_iter row {i} {frac!r} outside [0,1]: {row[frac]!r}")

    # Standalone `dmeopt qp` solves record one summary row per solve.
    qp_rows = m.get("records", {}).get("qp_solve", {}).get("rows", [])
    for i, row in enumerate(qp_rows):
        for field in (
            "n", "m", "iterations", "objective", "pri_res", "dua_res", "solved",
        ):
            if not isinstance(row.get(field), (int, float)):
                fail(f"{path}: qp_solve row {i} missing {field!r}")
        if row["solved"] not in (0, 1, 0.0, 1.0):
            fail(f"{path}: qp_solve row {i} non-boolean 'solved': {row['solved']!r}")

    # Per-probe rows carry the full tuple with sane flag values.
    rows = m.get("records", {}).get("qcp_probe", {}).get("rows", [])
    for i, row in enumerate(rows):
        for field in ("probe", "tau_ns", "feasible", "iterations", "warm"):
            if not isinstance(row.get(field), (int, float)):
                fail(f"{path}: qcp_probe row {i} missing {field!r}")
        for flag in ("feasible", "warm"):
            if row[flag] not in (0, 1, 0.0, 1.0):
                fail(f"{path}: qcp_probe row {i} non-boolean {flag!r}: {row[flag]!r}")
    if rows and rows[0].get("warm") not in (0, 0.0):
        fail(f"{path}: first qcp_probe row claims a warm start")


def check_dosepl_consistency(path, m):
    """Cross-field invariants for the dosePl swap-loop telemetry.

    All conditional: traces without a dosePl run lack the counters and
    skip the checks. The identities are additive, so they hold even when
    several dosePl runs contributed to one manifest.
    """
    counters = m.get("counters", {})

    def c(name):
        return counters.get(name)

    attempted = c("dosepl/swaps_attempted")
    if attempted is None:
        return
    # Every attempted candidate is dispositioned by exactly one filter.
    filters = [
        "dosepl/rejected_bbox",
        "dosepl/rejected_hpwl",
        "dosepl/rejected_leakage",
        "dosepl/rejected_timing",
        "dosepl/accepted_provisional",
    ]
    dispositioned = sum(c(k) or 0 for k in filters)
    if dispositioned != attempted:
        fail(
            f"{path}: dosepl filter tallies ({dispositioned}) != "
            f"dosepl/swaps_attempted ({attempted})"
        )
    # Only candidates surviving the heuristic filters reach the timer.
    evals = c("dosepl/swap_evals")
    timed = (c("dosepl/rejected_timing") or 0) + (c("dosepl/accepted_provisional") or 0)
    if evals is not None and timed != evals:
        fail(
            f"{path}: timed candidates ({timed}) != dosepl/swap_evals ({evals})"
        )
    # Every provisional swap is either accepted at round signoff or
    # rolled back, never both.
    provisional = c("dosepl/accepted_provisional") or 0
    accepted = c("dosepl/swaps_accepted")
    rolled = c("dosepl/rolled_back") or 0
    if accepted is not None and accepted + rolled != provisional:
        fail(
            f"{path}: dosepl/swaps_accepted ({accepted}) + rolled_back "
            f"({rolled}) != accepted_provisional ({provisional})"
        )
    # Incremental top-K enumeration: every heap pop is either selected
    # or discarded as stale/duplicate, never both.
    popped = c("dosepl/enumerate_endpoints_popped")
    if popped is not None:
        selected = c("dosepl/enumerate_endpoints_selected") or 0
        stale = c("dosepl/enumerate_stale_discards") or 0
        if selected + stale != popped:
            fail(
                f"{path}: dosepl/enumerate_endpoints_selected ({selected}) + "
                f"enumerate_stale_discards ({stale}) != "
                f"enumerate_endpoints_popped ({popped})"
            )
    # A single dosePl run enumerates each round exactly one way; the
    # identity is additive, so mixed-mode manifests (several runs) keep
    # skipped + walks == rounds.
    skipped = c("dosepl/enumerate_full_analyze_skipped")
    walks = c("dosepl/enumerate_full_walks")
    rounds = c("dosepl/rounds")
    if rounds is not None and (skipped is not None or walks is not None):
        if (skipped or 0) + (walks or 0) != rounds:
            fail(
                f"{path}: dosepl/enumerate_full_analyze_skipped ({skipped}) + "
                f"enumerate_full_walks ({walks}) != dosepl/rounds ({rounds})"
            )
    # Incremental enumeration never pays a round-start full analyze.
    if (skipped or 0) > 0 and popped is None:
        fail(
            f"{path}: dosepl/enumerate_full_analyze_skipped without "
            f"top-K selection counters"
        )
    # The O(Δ) engine's work-avoided counters are written as one family.
    delta_family = [
        "dosepl/assignment_evals_avoided",
        "dosepl/grid_cell_evals_avoided",
        "dosepl/undo_coord_writes",
        "dosepl/undo_evals_avoided",
    ]
    present = [k for k in delta_family if c(k) is not None]
    if present and len(present) != len(delta_family):
        missing = sorted(set(delta_family) - set(present))
        fail(f"{path}: partial dosepl delta-engine counter family: missing {missing}")


def check_sta_consistency(path, m):
    """Cross-field invariants for the incremental-STA retime arbiter.

    All conditional: traces without an IncrementalSta run lack the
    counters and skip the checks.
    """
    counters = m.get("counters", {})

    def c(name):
        return counters.get(name)

    # Every retime enters through exactly one API: the pull diff
    # (`retime`) or the push dirty-set (`retime_touched`).
    calls = c("sta/retime_calls")
    pull = c("sta/retime_pull_calls")
    push = c("sta/retime_push_calls")
    if calls is not None:
        if (pull or 0) + (push or 0) != calls:
            fail(
                f"{path}: sta/retime_pull_calls ({pull}) + "
                f"sta/retime_push_calls ({push}) != sta/retime_calls ({calls})"
            )
    elif pull is not None or push is not None:
        fail(f"{path}: sta retime path counters without sta/retime_calls")
    # Journal undo telemetry is written as a pair: every undo_to call
    # bumps replays and adds its (possibly zero) entry count.
    replays = c("sta/retime_undo_replays")
    entries = c("sta/retime_undo_entries")
    if (replays is None) != (entries is None):
        fail(
            f"{path}: partial sta undo counter pair "
            f"(replays={replays!r}, entries={entries!r})"
        )


def _num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_snapshot(path):
    """Schema v1 of the live telemetry snapshot (dme-obs snapshot.rs)."""
    with open(path, encoding="utf-8") as f:
        snap = json.load(f)
    if snap.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
        fail(f"{path}: snapshot schema_version {snap.get('schema_version')!r}")
    if not _num(snap.get("seq")) or snap["seq"] < 1:
        fail(f"{path}: bad seq {snap.get('seq')!r}")
    if not _num(snap.get("ts_us")) or snap["ts_us"] < 0:
        fail(f"{path}: bad ts_us {snap.get('ts_us')!r}")
    if snap.get("status") not in SNAPSHOT_STATUSES:
        fail(f"{path}: bad status {snap.get('status')!r}")

    threads = snap.get("threads")
    if not isinstance(threads, list):
        fail(f"{path}: threads is not a list")
    for i, t in enumerate(threads):
        if not isinstance(t.get("label"), str) or not t["label"]:
            fail(f"{path}: thread {i} missing label")
        for k in ("alloc_bytes", "alloc_count"):
            if not _num(t.get(k)) or t[k] < 0:
                fail(f"{path}: thread {i} bad {k!r}")
        if not isinstance(t.get("stack"), list):
            fail(f"{path}: thread {i} stack is not a list")
        for j, frame in enumerate(t["stack"]):
            if not isinstance(frame.get("path"), str) or not frame["path"]:
                fail(f"{path}: thread {i} frame {j} missing path")
            if not _num(frame.get("open_us")) or frame["open_us"] < 0:
                fail(f"{path}: thread {i} frame {j} bad open_us")

    stages = snap.get("stages")
    if not isinstance(stages, list):
        fail(f"{path}: stages is not a list")
    for i, s in enumerate(stages):
        if not isinstance(s.get("path"), str) or not s["path"]:
            fail(f"{path}: stage {i} missing path")
        for k in ("calls", "total_ns", "self_ns", "p95_ns", "alloc_bytes"):
            if not _num(s.get(k)) or s[k] < 0:
                fail(f"{path}: stage {s['path']!r} bad {k!r}: {s.get(k)!r}")
        if s["self_ns"] > s["total_ns"]:
            fail(f"{path}: stage {s['path']!r} self_ns > total_ns")

    for key in ("counters", "counter_rates", "recent_ns"):
        obj = snap.get(key)
        if not isinstance(obj, dict):
            fail(f"{path}: {key} is not an object")
    for name, v in snap["counters"].items():
        if not _num(v) or v < 0:
            fail(f"{path}: counter {name!r} bad value {v!r}")
    for name, v in snap["counter_rates"].items():
        if not _num(v) or v < 0 or not math.isfinite(v):
            fail(f"{path}: counter rate {name!r} bad value {v!r}")
    for name, window in snap["recent_ns"].items():
        if not isinstance(window, list) or not all(_num(x) and x >= 0 for x in window):
            fail(f"{path}: recent_ns {name!r} bad window")

    for key in ("alloc", "stream"):
        obj = snap.get(key)
        if not isinstance(obj, dict):
            fail(f"{path}: {key} is not an object")
    for k in ("bytes", "count"):
        if not _num(snap["alloc"].get(k)) or snap["alloc"][k] < 0:
            fail(f"{path}: alloc bad {k!r}")
    for k in ("events", "dropped"):
        if not _num(snap["stream"].get(k)) or snap["stream"][k] < 0:
            fail(f"{path}: stream bad {k!r}")

    stalled = snap.get("stalled")
    if not isinstance(stalled, list):
        fail(f"{path}: stalled is not a list")
    for i, s in enumerate(stalled):
        for k in ("thread", "path"):
            if not isinstance(s.get(k), str) or not s[k]:
                fail(f"{path}: stalled {i} missing {k!r}")
        for k in ("open_ms", "baseline_p95_ms", "mult"):
            if not _num(s.get(k)) or s[k] < 0:
                fail(f"{path}: stalled {i} bad {k!r}")

    # Optional solver/placer progress sections mirror observer records.
    dosepl = snap.get("dosepl")
    if dosepl is not None:
        for k in ("round", "swaps", "accepted"):
            if not _num(dosepl.get(k)) or dosepl[k] < 0:
                fail(f"{path}: dosepl bad {k!r}")
    ipm = snap.get("ipm")
    if ipm is not None and not _num(ipm.get("iter")):
        fail(f"{path}: ipm missing iter")

    print(
        f"validate_trace: {path}: snapshot OK "
        f"(seq {snap['seq']}, status {snap['status']}, "
        f"{len(threads)} thread(s), {len(stages)} stage row(s), "
        f"{len(snap['counters'])} counters, {len(stalled)} stalled)"
    )


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--snapshot":
        check_snapshot(sys.argv[2])
        return
    if len(sys.argv) < 2 or len(sys.argv) > 3 or sys.argv[1].startswith("-"):
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    check_trace(sys.argv[1])
    if len(sys.argv) == 3:
        check_manifest(sys.argv[2])


if __name__ == "__main__":
    main()
