#!/usr/bin/env bash
# Runs the serial-vs-parallel kernel benchmarks (`perf/` group in
# crates/bench/benches/kernels.rs) and distills them into BENCH_perf.json
# so successive PRs have a perf trajectory. Each run is also appended as
# one line to results/bench_history.jsonl (stamped with a timestamp),
# which `dmeopt qor report --bench-history` plots as the speedup
# trajectory on the dashboard.
#
# Usage: scripts/bench_perf.sh [output.json]
#   DME_NUM_THREADS=N   pool width for the parallel variants (default: nproc)
#   CRITERION_SAMPLE_SIZE=N  timed samples per bench (default: 20)
#   DME_BENCH_HISTORY=path   history file (default: results/bench_history.jsonl;
#                            empty string disables the append)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_perf.json}"
history="${DME_BENCH_HISTORY-results/bench_history.jsonl}"
threads="${DME_NUM_THREADS:-$(nproc)}"
git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
git_dirty="false"
if ! git diff --quiet HEAD 2>/dev/null; then git_dirty="true"; fi
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

echo "== bench_perf: threads=$threads (nproc=$(nproc)) ==" >&2
DME_NUM_THREADS="$threads" cargo bench --offline -p dme-bench --bench kernels -- perf/ \
    2>&1 | tee "$log" >&2

NPROC="$(nproc)" THREADS="$threads" OUT="$out" HISTORY="$history" \
    GIT_SHA="$git_sha" GIT_DIRTY="$git_dirty" \
    python3 - "$log" <<'PY'
import json, os, sys, time

benches, work, info = {}, {}, {}
for line in open(sys.argv[1]):
    tok = line.split()
    if not tok:
        continue
    if tok[0] == "BENCHLINE":
        kv = dict(t.split("=", 1) for t in tok[2:])
        benches[tok[1]] = {
            "mean_ns": float(kv["mean_ns"]),
            "median_ns": float(kv["median_ns"]),
            "samples": int(kv["samples"]),
        }
    elif tok[0] == "WORKLINE":
        work[tok[1]] = {k: int(v) for k, v in (t.split("=", 1) for t in tok[2:])}
    elif tok[0] == "INFOLINE":
        info.update(dict(t.split("=", 1) for t in tok[1:]))

def speedup(stem):
    s = benches.get(f"perf/{stem}_serial")
    p = benches.get(f"perf/{stem}_parallel")
    if s and p and p["mean_ns"] > 0:
        return round(s["mean_ns"] / p["mean_ns"], 3)
    return None

def median_ratio(slow, fast):
    """How many times faster `fast` is than `slow`, by median."""
    s = benches.get(f"perf/{slow}")
    f = benches.get(f"perf/{fast}")
    if s and f and f["median_ns"] > 0:
        return round(s["median_ns"] / f["median_ns"], 3)
    return None

nproc = int(os.environ["NPROC"])
threads = int(info.get("dme_par_threads", os.environ["THREADS"]))
result = {
    "schema_version": 3,
    "meta": {
        "git_sha": os.environ["GIT_SHA"],
        "git_dirty": os.environ["GIT_DIRTY"] == "true",
        "dme_num_threads": int(os.environ["THREADS"]),
        "features": {
            "dme_par_parallel": info.get("dme_par_parallel", "unknown") == "true",
        },
    },
    "threads": threads,
    "nproc": nproc,
    "benches": benches,
    "speedups_parallel_over_serial": {
        stem: speedup(stem)
        for stem in ("spmv_mul", "spmv_tmul", "cg_ipm_solve", "sta_pass")
    },
    # With a width-1 pool every parallel variant runs the inline-serial
    # path, so these ratios measure dispatch noise, not parallelism. The
    # QoR sentinel treats them as informational when this flag is set.
    "parallel_speedups_informational": threads <= 1 or nproc <= 1,
    "speedups_direct_over_cg": {
        # Fresh direct solve (symbolic + numeric) vs the serial CG baseline.
        "ipm_solve": median_ratio("cg_ipm_solve_serial", "ipm_direct_solve"),
        # Steady-state: cached symbolic factorization, numeric refactors only.
        "ipm_refactor_solve": median_ratio(
            "cg_ipm_solve_serial", "ipm_direct_refactor_solve"
        ),
        # End-to-end MinTiming bisection: cold CG probes vs warm-started
        # probes on the default (Auto) backend.
        "qcp_mintiming": median_ratio("qcp_mintiming_cold", "qcp_mintiming_warm"),
    },
}

se = work.get("swap_eval")
inc = benches.get("perf/swap_eval_incremental")
full = benches.get("perf/swap_eval_full_sta")
if se:
    result["swap_eval"] = dict(se)
    if se["gates_per_retime"] > 0:
        result["swap_eval"]["work_reduction_x"] = round(
            se["gates_per_full_sta"] / se["gates_per_retime"], 2
        )
    if inc and full and inc["mean_ns"] > 0:
        result["swap_eval"]["wall_speedup_x"] = round(
            full["mean_ns"] / inc["mean_ns"], 2
        )

dp = work.get("dosepl_run")
if dp:
    result["dosepl_run"] = dict(dp)
    if dp["incremental_gate_evals"] > 0:
        result["dosepl_run"]["work_reduction_x"] = round(
            dp["full_equivalent_gate_evals"] / dp["incremental_gate_evals"], 2
        )

# O(Δ) swap-loop engine vs the from-scratch reference (both engines are
# bitwise-identical in results). Two views, mirroring swap_eval above:
#   work_reduction_x  — per-candidate state-evaluation work (assignment
#                       refresh + undo restore), counter-derived from a
#                       real run. Hardware-independent; this is the
#                       headline candidate-evaluation throughput ratio.
#   wall_speedup_x    — end-to-end dosePl wall ratio. Both engines share
#                       the incremental-STA arbiter and ECO row repack,
#                       which dominate wall time, so this is near 1 and
#                       informational (see end_to_end_informational).
fastb = benches.get("perf/dosepl_run_fast")
refb = benches.get("perf/dosepl_run_reference")
if fastb and refb and fastb["median_ns"] > 0:
    entry = {"wall_speedup_x": round(refb["median_ns"] / fastb["median_ns"], 2)}
    entry["end_to_end_informational"] = True
    cand = work.get("dosepl_candidates")
    if cand:
        entry.update(cand)
        if cand.get("swaps_attempted", 0) > 0:
            entry["candidates_per_s_fast"] = round(
                cand["swaps_attempted"] / (fastb["median_ns"] * 1e-9), 1
            )
            entry["candidates_per_s_reference"] = round(
                cand["swaps_attempted"] / (refb["median_ns"] * 1e-9), 1
            )
    delta = work.get("dosepl_delta")
    if delta:
        entry["work_avoided"] = dict(delta)
        n = (cand or {}).get("num_instances", 0)
        evals = (cand or {}).get("swap_evals", 0)
        # Reference state maintenance per timed candidate: one O(n)
        # assignment rebuild plus one O(n) coordinate restore. Delta:
        # only the touched cells (journal writes / band refreshes).
        ref_work = 2 * n * evals
        delta_work = (
            n * evals
            - delta.get("assignment_evals_avoided", 0)
            + delta.get("undo_coord_writes", 0)
        )
        if n > 0 and evals > 0 and delta_work > 0:
            entry["state_evals_reference"] = ref_work
            entry["state_evals_delta"] = delta_work
            entry["work_reduction_x"] = round(ref_work / delta_work, 2)
    result["dosepl_candidate_throughput"] = entry
structure_pairs = {
    "grid_query": ("grid_query_scan", "grid_query_rect"),
    "hpwl_delta": ("hpwl_delta_scratch", "hpwl_delta_cached"),
    "swap_undo": ("swap_undo_clone", "swap_undo_journal"),
    "assignment": ("assignment_full", "assignment_incremental"),
}
structures = {
    name: median_ratio(slow, fast) for name, (slow, fast) in structure_pairs.items()
}
if any(v is not None for v in structures.values()):
    result["dosepl_structure_speedups"] = structures

with open(os.environ["OUT"], "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {os.environ['OUT']}", file=sys.stderr)

history = os.environ.get("HISTORY", "")
if history:
    record = dict(result, ts_s=round(time.time(), 3))
    os.makedirs(os.path.dirname(history) or ".", exist_ok=True)
    with open(history, "a") as f:
        json.dump(record, f, sort_keys=True)
        f.write("\n")
    print(f"appended run to {history}", file=sys.stderr)
PY
