#!/usr/bin/env bash
# Runs the serial-vs-parallel kernel benchmarks (`perf/` group in
# crates/bench/benches/kernels.rs) and distills them into BENCH_perf.json
# so successive PRs have a perf trajectory. Each run is also appended as
# one line to results/bench_history.jsonl (stamped with a timestamp),
# which `dmeopt qor report --bench-history` plots as the speedup
# trajectory on the dashboard.
#
# Usage: scripts/bench_perf.sh [output.json]
#   DME_NUM_THREADS=N   pool width for the parallel variants (default: nproc)
#   CRITERION_SAMPLE_SIZE=N  timed samples per bench (default: 20)
#   DME_BENCH_HISTORY=path   history file (default: results/bench_history.jsonl;
#                            empty string disables the append)
#   DME_BENCH_SWEEP=0   skip the 12k/100k/1M scaling sweep (default: run it)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_perf.json}"
history="${DME_BENCH_HISTORY-results/bench_history.jsonl}"
threads="${DME_NUM_THREADS:-$(nproc)}"
git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
git_sha_full="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
git_dirty="false"
if ! git diff --quiet HEAD 2>/dev/null; then git_dirty="true"; fi
if [ "$git_dirty" = "true" ]; then
    cat >&2 <<EOF
!!============================================================!!
!! bench_perf: WORKING TREE IS DIRTY.                         !!
!! The numbers below do NOT measure commit $git_sha — they
!! measure uncommitted local state. The manifest is stamped
!! git_dirty=true and the QoR sentinel will not trust it as a
!! trajectory point. Commit (or stash) before a record run.
!!============================================================!!
EOF
fi
log="$(mktemp)"
sweep_log="$(mktemp)"
trap 'rm -f "$log" "$sweep_log"' EXIT

echo "== bench_perf: threads=$threads (nproc=$(nproc)) ==" >&2
DME_NUM_THREADS="$threads" cargo bench --offline -p dme-bench --bench kernels -- perf/ \
    2>&1 | tee "$log" >&2

# Scaling sweep: the same bounded dosePl round (delta engine) at 12k,
# 100k and 1M cells of the wide/shallow scaling profile. The SMOKELINE
# rows land in the manifest's `scaling_sweep` section; flat per-eval
# gate counts across sizes are the O(cone) arbiter's acceptance proof.
if [ "${DME_BENCH_SWEEP:-1}" != "0" ]; then
    echo "== bench_perf: scaling sweep 12k -> 100k -> 1M ==" >&2
    cargo build --release --offline -p dmeopt --example scale_smoke >&2
    for cells in 12000 100000 1000000; do
        DME_SMOKE_CELLS="$cells" DME_SMOKE_SEED=7 DME_SMOKE_TOPK=50 \
            DME_SMOKE_ROUNDS=1 DME_SMOKE_SWAPS=4 DME_SMOKE_ENGINE=delta \
            ./target/release/examples/scale_smoke 2>&1 | tee -a "$sweep_log" >&2
    done
fi

NPROC="$(nproc)" THREADS="$threads" OUT="$out" HISTORY="$history" \
    GIT_SHA="$git_sha" GIT_SHA_FULL="$git_sha_full" GIT_DIRTY="$git_dirty" \
    python3 - "$log" "$sweep_log" <<'PY'
import json, os, sys, time

benches, work, info = {}, {}, {}
for line in open(sys.argv[1]):
    tok = line.split()
    if not tok:
        continue
    if tok[0] == "BENCHLINE":
        kv = dict(t.split("=", 1) for t in tok[2:])
        benches[tok[1]] = {
            "mean_ns": float(kv["mean_ns"]),
            "median_ns": float(kv["median_ns"]),
            "samples": int(kv["samples"]),
        }
    elif tok[0] == "WORKLINE":
        work[tok[1]] = {k: int(v) for k, v in (t.split("=", 1) for t in tok[2:])}
    elif tok[0] == "INFOLINE":
        info.update(dict(t.split("=", 1) for t in tok[1:]))

def speedup(stem):
    s = benches.get(f"perf/{stem}_serial")
    p = benches.get(f"perf/{stem}_parallel")
    if s and p and p["mean_ns"] > 0:
        return round(s["mean_ns"] / p["mean_ns"], 3)
    return None

def median_ratio(slow, fast):
    """How many times faster `fast` is than `slow`, by median."""
    s = benches.get(f"perf/{slow}")
    f = benches.get(f"perf/{fast}")
    if s and f and f["median_ns"] > 0:
        return round(s["median_ns"] / f["median_ns"], 3)
    return None

nproc = int(os.environ["NPROC"])
threads = int(info.get("dme_par_threads", os.environ["THREADS"]))
result = {
    "schema_version": 3,
    "meta": {
        "git_sha": os.environ["GIT_SHA"],
        # Full SHA of the commit actually benched (unknown when the
        # tree is dirty: the checkout no longer equals any commit).
        "git_sha_full": os.environ["GIT_SHA_FULL"],
        "git_dirty": os.environ["GIT_DIRTY"] == "true",
        "dme_num_threads": int(os.environ["THREADS"]),
        "features": {
            "dme_par_parallel": info.get("dme_par_parallel", "unknown") == "true",
        },
    },
    "threads": threads,
    "nproc": nproc,
    "benches": benches,
    "speedups_parallel_over_serial": {
        stem: speedup(stem)
        for stem in ("spmv_mul", "spmv_tmul", "cg_ipm_solve", "sta_pass")
    },
    # With a width-1 pool every parallel variant runs the inline-serial
    # path, so these ratios measure dispatch noise, not parallelism. The
    # QoR sentinel treats them as informational when this flag is set.
    "parallel_speedups_informational": threads <= 1 or nproc <= 1,
    "speedups_direct_over_cg": {
        # Fresh direct solve (symbolic + numeric) vs the serial CG baseline.
        "ipm_solve": median_ratio("cg_ipm_solve_serial", "ipm_direct_solve"),
        # Steady-state: cached symbolic factorization, numeric refactors only.
        "ipm_refactor_solve": median_ratio(
            "cg_ipm_solve_serial", "ipm_direct_refactor_solve"
        ),
        # End-to-end MinTiming bisection: cold CG probes vs warm-started
        # probes on the default (Auto) backend.
        "qcp_mintiming": median_ratio("qcp_mintiming_cold", "qcp_mintiming_warm"),
    },
}

se = work.get("swap_eval")
inc = benches.get("perf/swap_eval_incremental")
full = benches.get("perf/swap_eval_full_sta")
if se:
    result["swap_eval"] = dict(se)
    if se["gates_per_retime"] > 0:
        result["swap_eval"]["work_reduction_x"] = round(
            se["gates_per_full_sta"] / se["gates_per_retime"], 2
        )
    if inc and full and inc["mean_ns"] > 0:
        result["swap_eval"]["wall_speedup_x"] = round(
            full["mean_ns"] / inc["mean_ns"], 2
        )

# Mehrotra predictor-corrector vs basic path-following iteration counts
# (deterministic on the direct backend — a hardware-independent perf
# measure). The PR 9 acceptance bar is a >= 30% median reduction on both
# program families; `below_bar` flags a miss for the QoR sentinel.
ii = work.get("ipm_iterations")
if ii:
    entry = dict(ii)
    for fam in ("dosemap", "qps"):
        basic = ii.get(f"{fam}_basic_median", 0)
        if basic > 0:
            entry[f"{fam}_median_reduction_pct"] = round(
                100.0 * (1.0 - ii[f"{fam}_mehrotra_median"] / basic), 1
            )
    entry["below_bar"] = any(
        entry.get(f"{fam}_median_reduction_pct", 0.0) < 30.0
        for fam in ("dosemap", "qps")
    )
    result["ipm_iterations"] = entry

dp = work.get("dosepl_run")
if dp:
    result["dosepl_run"] = dict(dp)
    if dp["incremental_gate_evals"] > 0:
        result["dosepl_run"]["work_reduction_x"] = round(
            dp["full_equivalent_gate_evals"] / dp["incremental_gate_evals"], 2
        )

# O(Δ) swap-loop engine vs the from-scratch reference (both engines are
# bitwise-identical in results). Two views, mirroring swap_eval above:
#   work_reduction_x  — per-candidate state-evaluation work (assignment
#                       refresh + undo restore), counter-derived from a
#                       real run. Hardware-independent; this is the
#                       headline candidate-evaluation throughput ratio.
#   wall_speedup_x    — end-to-end dosePl wall ratio. Since the push
#                       retime arbiter landed, the engines no longer
#                       share their dominant cost (the delta engine
#                       seeds retimes from journals and replays undos;
#                       the reference pays an O(n) pull diff per eval
#                       and re-times every rejection back), so this is
#                       a real headline number, not informational.
fastb = benches.get("perf/dosepl_run_fast")
refb = benches.get("perf/dosepl_run_reference")
if fastb and refb and fastb["median_ns"] > 0:
    entry = {"wall_speedup_x": round(refb["median_ns"] / fastb["median_ns"], 2)}
    entry["end_to_end_informational"] = False
    cand = work.get("dosepl_candidates")
    if cand:
        entry.update(cand)
        if cand.get("swaps_attempted", 0) > 0:
            entry["candidates_per_s_fast"] = round(
                cand["swaps_attempted"] / (fastb["median_ns"] * 1e-9), 1
            )
            entry["candidates_per_s_reference"] = round(
                cand["swaps_attempted"] / (refb["median_ns"] * 1e-9), 1
            )
    delta = work.get("dosepl_delta")
    if delta:
        entry["work_avoided"] = dict(delta)
        n = (cand or {}).get("num_instances", 0)
        evals = (cand or {}).get("swap_evals", 0)
        # Reference state maintenance per timed candidate: one O(n)
        # assignment rebuild plus one O(n) coordinate restore. Delta:
        # only the touched cells (journal writes / band refreshes).
        ref_work = 2 * n * evals
        delta_work = (
            n * evals
            - delta.get("assignment_evals_avoided", 0)
            + delta.get("undo_coord_writes", 0)
        )
        if n > 0 and evals > 0 and delta_work > 0:
            entry["state_evals_reference"] = ref_work
            entry["state_evals_delta"] = delta_work
            entry["work_reduction_x"] = round(ref_work / delta_work, 2)
    result["dosepl_candidate_throughput"] = entry
# Self-profiler overhead: the same bounded dosePl run with spans and
# allocation attribution armed vs disarmed. The acceptance budget is
# < 5% wall overhead at 12k cells (over_budget flags a breach, it does
# not gate the bench itself — the QoR sentinel reads it). Single-run
# wall-clock differences on this box swing ±8% from one-sided
# scheduling noise — far above the budget — so the headline ratio is
# the deterministic decomposition: spans recorded per armed run times
# the microbenched per-span-pair cost, over the disarmed floor. The
# measured wall ratios (best-of-N and median-of-N over alternating
# back-to-back arms) ride along as cross-checks.
po = work.get("profiling_overhead")
prof = benches.get("perf/dosepl_run_fast_profiled")
# Gate on the streamed pair (profiler + live event stream armed, the
# `dmeopt watch` configuration) when it was benched — it strictly
# dominates the armed-only cost — else fall back to the armed pair.
sp_streamed = benches.get("perf/span_pair_streamed")
sp = sp_streamed or benches.get("perf/span_pair_armed")
if po and po.get("off_med_ns", 0) > 0:
    entry = {
        "median_ns_off": po["off_med_ns"],
        "median_ns_on": po["on_med_ns"],
        "min_ns_off": po.get("off_min_ns", 0),
        "min_ns_on": po.get("on_min_ns", 0),
        "budget_ratio": 1.05,
    }
    if po.get("off_min_ns", 0) > 0:
        entry["wall_ratio_min"] = round(po["on_min_ns"] / po["off_min_ns"], 4)
    entry["wall_ratio_median"] = round(po["on_med_ns"] / po["off_med_ns"], 4)
    if sp and po.get("spans_per_run", 0) > 0 and po.get("off_min_ns", 0) > 0:
        ratio = 1.0 + po["spans_per_run"] * sp["median_ns"] / po["off_min_ns"]
        entry["method"] = "span_cost_streamed" if sp_streamed else "span_cost"
        entry["span_pair_ns"] = sp["median_ns"]
        entry["spans_per_run"] = po["spans_per_run"]
    elif po.get("ratio_ppm", 0) > 0:
        ratio = po["ratio_ppm"] / 1e6
        entry["method"] = "wall_min"
    else:
        ratio = po["on_med_ns"] / po["off_med_ns"]
        entry["method"] = "wall_median"
    entry["overhead_ratio"] = round(ratio, 4)
    entry["over_budget"] = ratio > 1.05
    result["profiling_overhead"] = entry
elif fastb and prof and fastb["median_ns"] > 0:
    ratio = prof["median_ns"] / fastb["median_ns"]
    result["profiling_overhead"] = {
        "median_ns_off": fastb["median_ns"],
        "median_ns_on": prof["median_ns"],
        "overhead_ratio": round(ratio, 4),
        "budget_ratio": 1.05,
        "over_budget": ratio > 1.05,
        "method": "criterion_pair",
    }

# Push-based retime arbiter flatness across design sizes: O(cone) means
# the single-perturbation retime cost barely moves from 12k to 100k.
rc12 = benches.get("perf/retime_cone_12k")
rc100 = benches.get("perf/retime_cone_100k")
if rc12 and rc100 and rc12["median_ns"] > 0:
    result["retime_cone_scaling"] = {
        "median_ns_12k": rc12["median_ns"],
        "median_ns_100k": rc100["median_ns"],
        "ratio_100k_over_12k": round(rc100["median_ns"] / rc12["median_ns"], 3),
    }

# Incremental round-start path enumeration flatness: top-K heap pops +
# K backtraces are O(K log E), so the cost stays within ~2x from 12k to
# 100k endpoints (pure log-factor growth, no O(n) analyze or sort).
en12 = benches.get("perf/enumerate_12k")
en100 = benches.get("perf/enumerate_100k")
if en12 and en100 and en12["median_ns"] > 0:
    result["enumeration_scaling"] = {
        "median_ns_12k": en12["median_ns"],
        "median_ns_100k": en100["median_ns"],
        "ratio_100k_over_12k": round(en100["median_ns"] / en12["median_ns"], 3),
    }

# Scaling sweep rows (scale_smoke SMOKELINE at 12k/100k/1M cells).
sweep = []
if len(sys.argv) > 2 and os.path.exists(sys.argv[2]):
    for line in open(sys.argv[2]):
        tok = line.split()
        if not tok or tok[0] != "SMOKELINE":
            continue
        row = {}
        for t in tok[1:]:
            k, v = t.split("=", 1)
            try:
                row[k] = int(v)
            except ValueError:
                try:
                    row[k] = float(v)
                except ValueError:
                    row[k] = v
        if row.get("swap_evals"):
            row["gate_evals_per_swap_eval"] = round(
                row.get("gate_evals", 0) / row["swap_evals"], 1
            )
        sweep.append(row)
if sweep:
    result["scaling_sweep"] = {
        "knobs": {"top_k": 50, "rounds": 1, "swaps_per_round": 4, "seed": 7},
        "rows": sweep,
    }

structure_pairs = {
    "grid_query": ("grid_query_scan", "grid_query_rect"),
    "hpwl_delta": ("hpwl_delta_scratch", "hpwl_delta_cached"),
    "swap_undo": ("swap_undo_clone", "swap_undo_journal"),
    "assignment": ("assignment_full", "assignment_incremental"),
}
structures = {
    name: median_ratio(slow, fast) for name, (slow, fast) in structure_pairs.items()
}
if any(v is not None for v in structures.values()):
    result["dosepl_structure_speedups"] = structures

with open(os.environ["OUT"], "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {os.environ['OUT']}", file=sys.stderr)

history = os.environ.get("HISTORY", "")
if history:
    record = dict(result, ts_s=round(time.time(), 3))
    os.makedirs(os.path.dirname(history) or ".", exist_ok=True)
    with open(history, "a") as f:
        json.dump(record, f, sort_keys=True)
        f.write("\n")
    print(f"appended run to {history}", file=sys.stderr)
PY
