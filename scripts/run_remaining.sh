#!/usr/bin/env bash
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
S="${1:-0.3}"
for bin in table4 table5 table6 table8 fig10 aclv_baseline ablation_prune wafer_extension; do
  echo "=== $bin (scale $S)"
  cargo run --release -p dme-bench --bin "$bin" -- --scale "$S" > "results/${bin}_s${S}.txt" 2>&1 || echo "FAILED: $bin"
done
echo REMAINING_DONE
# Full-scale adaptive-margin Table IV for the two AES designs (the JPEGs
# run pruned at scale 0.3 above; full-scale JPEG rows take hours).
for d in aes65 aes90; do
  echo "=== table4 full-scale $d"
  cargo run --release -p dme-bench --bin table4 -- --design "$d" > "results/table4_full_${d}.txt" 2>&1 || echo "FAILED table4 $d"
done
echo FULLSCALE_DONE
