#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
# Usage: scripts/run_experiments.sh [scale]   (scale in (0,1], default 1)
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-1.0}"
mkdir -p results

run() {
  local bin="$1" out="$2"
  echo "=== $bin (scale $SCALE) -> results/$out"
  cargo run --release -p dme-bench --bin "$bin" -- --scale "$SCALE" | tee "results/$out"
}

run table1 table1.txt
run table2_3 table2_3.txt
run table7 table7.txt
run fig3to6 fig3to6.csv
run table4 table4.txt
run table5 table5.txt
run table6 table6.txt
run table8 table8.txt
run fig10 fig10.csv
run aclv_baseline aclv_baseline.txt
run ablation_prune ablation_prune.txt
echo "all experiments written to results/"
