#!/usr/bin/env python3
"""Renders results/bench_history.jsonl into a self-contained HTML trend page.

Usage: scripts/bench_trend.py [history.jsonl] [-o out.html]

Defaults: results/bench_history.jsonl -> results/bench_trend.html.

One inline-SVG line chart per tracked series, oldest run on the left:

- every kernel micro-bench (`benches.*.median_ns`), grouped by stem;
- the parallel-over-serial and direct-over-CG speedup families;
- the profiling-overhead gate ratio with its budget line;
- dosePl structure/throughput speedups.

Entirely hand-rolled stdlib + inline SVG — no external scripts, fonts
or fetches — so the page renders from a CI artifact store or `file://`,
matching the `dmeopt qor report` dashboard that links to it.
"""

import html
import json
import sys

CHART_W, CHART_H, PAD = 560, 120, 34
BUDGET_COLOR = "#b91c1c"
LINE_COLOR = "#2563eb"


def fmt_si(v):
    """Engineering formatting for mixed-magnitude series (ns, ratios)."""
    a = abs(v)
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if a >= scale:
            return f"{v / scale:.3g}{suffix}"
    return f"{v:.3g}"


def chart(series, runs, hline=None):
    """An inline SVG line chart of (x=run index, y=value) points.

    `series` is a list of (index, value) pairs — gaps (runs missing the
    metric) are simply skipped. `hline` draws a labelled horizontal
    reference (the budget line for gate metrics).
    """
    if len(series) < 2:
        v = series[0][1] if series else None
        note = f"single point: {fmt_si(v)}" if v is not None else "no data"
        return f'<p class="muted">{note}</p>'
    ys = [v for _, v in series]
    lo, hi = min(ys), max(ys)
    if hline is not None:
        lo, hi = min(lo, hline), max(hi, hline)
    span = (hi - lo) or 1.0
    lo -= 0.05 * span
    hi += 0.05 * span
    span = hi - lo
    n = max(i for i, _ in series)

    def x(i):
        return PAD + (CHART_W - 2 * PAD) * (i / n if n else 0.5)

    def y(v):
        return CHART_H - PAD / 2 - (CHART_H - PAD) * (v - lo) / span

    pts = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in series)
    parts = [
        f'<svg width="{CHART_W}" height="{CHART_H}" '
        f'viewBox="0 0 {CHART_W} {CHART_H}" class="chart">',
        f'<text x="2" y="12" class="axis">{html.escape(fmt_si(max(ys)))}</text>',
        f'<text x="2" y="{CHART_H - 4}" class="axis">'
        f"{html.escape(fmt_si(min(ys)))}</text>",
    ]
    if hline is not None:
        parts.append(
            f'<line x1="{PAD}" y1="{y(hline):.1f}" x2="{CHART_W - PAD}" '
            f'y2="{y(hline):.1f}" stroke="{BUDGET_COLOR}" '
            'stroke-dasharray="4 3"/>'
            f'<text x="{CHART_W - PAD + 2}" y="{y(hline) + 4:.1f}" '
            f'class="axis" fill="{BUDGET_COLOR}">{hline:g}</text>'
        )
    parts.append(
        f'<polyline fill="none" stroke="{LINE_COLOR}" stroke-width="1.5" '
        f'points="{pts}"/>'
    )
    # Mark the newest point and label the x extent with git SHAs.
    xi, vi = series[-1]
    parts.append(f'<circle cx="{x(xi):.1f}" cy="{y(vi):.1f}" r="3" fill="{LINE_COLOR}"/>')
    first_sha = runs[series[0][0]].get("meta", {}).get("git_sha", "?")
    last_sha = runs[xi].get("meta", {}).get("git_sha", "?")
    parts.append(
        f'<text x="{PAD}" y="{CHART_H - 4}" class="axis">'
        f"{html.escape(str(first_sha))}</text>"
        f'<text x="{CHART_W - PAD}" y="{CHART_H - 4}" class="axis" '
        f'text-anchor="end">{html.escape(str(last_sha))}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def collect(runs, getter):
    """(index, value) pairs for runs where `getter` yields a number."""
    out = []
    for i, run in enumerate(runs):
        v = getter(run)
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            out.append((i, float(v)))
    return out


def section(out, title, body):
    out.append(f"<section><h2>{html.escape(title)}</h2>{body}</section>")


def metric_block(title, series, runs, unit="", hline=None):
    if not series:
        return ""
    latest = series[-1][1]
    head = (
        f"<h3>{html.escape(title)} "
        f'<span class="latest">latest {html.escape(fmt_si(latest))}{unit} '
        f"({len(series)} runs)</span></h3>"
    )
    return head + chart(series, runs, hline=hline)


STYLE = (
    "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:46em;"
    "color:#111}h1{font-size:1.4em}h2{font-size:1.1em;border-bottom:1px solid "
    "#ddd;padding-bottom:.2em;margin-top:1.6em}h3{font-size:.95em;margin:"
    "1em 0 .1em}.latest{color:#6b7280;font-weight:400;font-size:.85em}"
    ".muted{color:#6b7280}.chart{background:#f8fafc}"
    ".axis{font-size:9px;fill:#6b7280}"
)


def render(runs):
    out = [
        '<!doctype html><html><head><meta charset="utf-8">'
        f"<title>DME bench trends</title><style>{STYLE}</style></head><body>",
        f"<h1>DME bench trends</h1><p>{len(runs)} run(s), oldest → newest; "
        "dots mark the latest sample. Source: results/bench_history.jsonl "
        "(scripts/bench_perf.sh appends one line per run).</p>",
    ]

    gate = collect(
        runs, lambda r: r.get("profiling_overhead", {}).get("overhead_ratio")
    )
    if gate:
        budget = runs[-1].get("profiling_overhead", {}).get("budget_ratio")
        body = metric_block(
            "profiling_overhead (armed/off wall ratio)",
            gate,
            runs,
            hline=budget if isinstance(budget, (int, float)) else None,
        )
        section(out, "Gates", body)

    for family, title in (
        ("speedups_parallel_over_serial", "Parallel over serial"),
        ("speedups_direct_over_cg", "Direct solver over CG"),
        ("dosepl_structure_speedups", "dosePl structure speedups"),
    ):
        names = sorted({k for r in runs for k in r.get(family, {})})
        body = "".join(
            metric_block(
                name,
                collect(runs, lambda r, n=name: r.get(family, {}).get(n)),
                runs,
                unit="×",
            )
            for name in names
        )
        if body:
            section(out, title, body)

    thr = collect(
        runs,
        lambda r: r.get("dosepl_candidate_throughput", {}).get(
            "candidates_per_s_fast"
        ),
    )
    if thr:
        section(
            out,
            "dosePl throughput",
            metric_block("candidates_per_s_fast", thr, runs, unit="/s"),
        )

    names = sorted({k for r in runs for k in r.get("benches", {})})
    body = "".join(
        metric_block(
            name,
            collect(
                runs, lambda r, n=name: r.get("benches", {}).get(n, {}).get("median_ns")
            ),
            runs,
            unit=" ns",
        )
        for name in names
    )
    if body:
        section(out, "Kernel medians (ns, lower is better)", body)

    out.append("</body></html>")
    return "".join(out)


def main():
    argv = sys.argv[1:]
    out_path = "results/bench_trend.html"
    if "-o" in argv:
        i = argv.index("-o")
        try:
            out_path = argv[i + 1]
        except IndexError:
            print(__doc__.strip(), file=sys.stderr)
            sys.exit(2)
        del argv[i : i + 2]
    history = argv[0] if argv else "results/bench_history.jsonl"
    if len(argv) > 1:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)

    runs = []
    with open(history, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                runs.append(json.loads(line))
            except json.JSONDecodeError as e:
                print(
                    f"bench_trend: {history}:{lineno}: skipping bad line: {e}",
                    file=sys.stderr,
                )
    if not runs:
        print(f"bench_trend: {history}: no runs", file=sys.stderr)
        sys.exit(1)

    page = render(runs)
    with open(out_path, "w", encoding="utf-8") as f:
        f.write(page)
    print(f"bench_trend: wrote {out_path} ({len(runs)} runs)")


if __name__ == "__main__":
    main()
