//! The full co-optimization flow of the paper's Fig. 7: nominal analysis
//! → DMopt (QCP for timing) → golden signoff → dosePl cell swapping with
//! ECO legalization — plus the manufacturing-side wrap-up: projecting the
//! optimized grid dose map onto the physical scanner actuators
//! (Unicom-XL slit polynomial + Dosicom Legendre scan recipe).
//!
//! Run with `cargo run --release --example dose_placement_flow`.

use dme_device::Technology;
use dme_dosemap::legendre::actuator_fit;
use dme_liberty::Library;
use dme_netlist::{gen, profiles};
use dmeopt::flow::{run, FlowConfig};
use dmeopt::{DmoptConfig, DoseplConfig, Objective, OptContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let ctx = OptContext::new(&lib, &design, &placement);

    let cfg = FlowConfig {
        dmopt: DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 5.0,
            ..DmoptConfig::default()
        },
        dosepl: Some(DoseplConfig {
            top_k: 1000,
            rounds: 10,
            swaps_per_round: 4,
            ..DoseplConfig::default()
        }),
    };
    let result = run(&ctx, &cfg)?;

    println!("stage                MCT (ns)   leakage (µW)");
    println!(
        "nominal              {:>8.4}   {:>10.1}",
        result.nominal.mct_ns, result.nominal.leakage_uw
    );
    println!(
        "after DMopt (QCP)    {:>8.4}   {:>10.1}",
        result.dmopt.golden_after.mct_ns, result.dmopt.golden_after.leakage_uw
    );
    if let Some(dp) = &result.dosepl {
        println!(
            "after dosePl         {:>8.4}   {:>10.1}   ({} swaps accepted / {} attempted)",
            dp.golden_after.mct_ns,
            dp.golden_after.leakage_uw,
            dp.swaps_accepted,
            dp.swaps_attempted
        );
    }
    let (mct_imp, leak_imp) = result.final_summary().improvement_over(&result.nominal);
    println!("total improvement    {mct_imp:>7.2}%   {leak_imp:>9.2}%");

    // Manufacturing hand-off: how realizable is this dose map on the
    // actual scanner knobs?
    let fit = actuator_fit(&result.dmopt.poly_map, 6, 8)?;
    println!(
        "\nactuator projection: slit poly order {}, scan Legendre order {}",
        fit.slit.coeffs.len() - 1,
        fit.scan.coeffs.len() - 1
    );
    println!(
        "separable-recipe residual: rms {:.3}% / max {:.3}% of dose",
        fit.rms_residual_pct, fit.max_residual_pct
    );
    println!("(a residual ≫ 0 quantifies how much of the design-aware map");
    println!("needs the finer-grained CDC-style knobs the paper mentions)");
    Ok(())
}
