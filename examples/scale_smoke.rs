//! Scaling smoke run: generates a seeded synthetic design at a requested
//! size (`profiles::scaling`), runs a bounded dosePl pass with the chosen
//! swap engine, and prints a machine-parseable `SMOKELINE` plus per-phase
//! span timings. Used by the CI scaling-smoke leg and for profiling the
//! swap loop at 12k/100k/1M cells.
//!
//! Environment knobs (all optional):
//!   DME_SMOKE_CELLS   design size in cells          (default 12000)
//!   DME_SMOKE_SEED    generator seed                (default 7)
//!   DME_SMOKE_TOPK    paths per round               (default 300)
//!   DME_SMOKE_ROUNDS  dosePl rounds                 (default 2)
//!   DME_SMOKE_SWAPS   accepted swaps per round      (default 8)
//!   DME_SMOKE_ENGINE  delta | reference | auto      (default delta)

use dme_dosemap::{DoseGrid, DoseMap};
use dme_liberty::Library;
use dme_netlist::{gen, profiles};
use dmeopt::{dosepl, DoseplConfig, OptContext, SwapEngine};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic pseudorandom dose map in [−4%, +4%] — same construction
/// as the `perf/dosepl_run_*` benches, so smoke runs exercise the same
/// dose-update path without a QP solve.
fn synthetic_map(die_w_um: f64, die_h_um: f64, granularity_um: f64, seed: u64) -> DoseMap {
    let grid = DoseGrid::with_granularity(die_w_um, die_h_um, granularity_um);
    let vals: Vec<f64> = (0..grid.num_cells())
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            ((h >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
        })
        .collect();
    DoseMap::from_values(grid, vals)
}

fn main() {
    let cells = env_usize("DME_SMOKE_CELLS", 12_000);
    let seed = env_usize("DME_SMOKE_SEED", 7) as u64;
    let engine = match std::env::var("DME_SMOKE_ENGINE").as_deref() {
        Ok("reference") => SwapEngine::Reference,
        Ok("auto") => SwapEngine::Auto,
        _ => SwapEngine::Delta,
    };
    let cfg = DoseplConfig {
        top_k: env_usize("DME_SMOKE_TOPK", 300),
        rounds: env_usize("DME_SMOKE_ROUNDS", 2),
        swaps_per_round: env_usize("DME_SMOKE_SWAPS", 8),
        engine,
        ..DoseplConfig::default()
    };

    let lib = Library::standard(dme_device::Technology::n65());
    let profile = profiles::scaling(cells, seed);
    let t = Instant::now();
    let design = gen::generate(&profile, &lib);
    let gen_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let placement = dme_placement::place(&design, &lib);
    let place_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let ctx = OptContext::new(&lib, &design, &placement);
    let ctx_ms = t.elapsed().as_secs_f64() * 1e3;
    let map = synthetic_map(placement.die_w_um, placement.die_h_um, 2.0, 42);

    dme_obs::set_enabled(true);
    let t = Instant::now();
    let r = dosepl(&ctx, &map, None, -2.0, &cfg);
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;

    println!(
        "SMOKELINE cells={} nets={} engine={engine:?} wall_ms={wall_ms:.1} gen_ms={gen_ms:.1} \
         place_ms={place_ms:.1} ctx_ms={ctx_ms:.1} swaps_attempted={} swap_evals={} \
         swaps_accepted={} rounds={} gate_evals={} mct_before_ns={:.4} mct_after_ns={:.4}",
        design.netlist.num_instances(),
        design.netlist.num_nets(),
        r.swaps_attempted,
        r.swap_evals,
        r.swaps_accepted,
        r.rounds_run,
        r.incremental_gate_evals,
        r.golden_before.mct_ns,
        r.golden_after.mct_ns,
    );
    if std::env::var("DME_SMOKE_SUMMARY").is_ok() {
        println!("{}", dme_obs::summary_table());
    }
}
