//! Leakage recovery: the paper's first use case. A chip meets timing but
//! burns too much leakage; a design-aware dose map lowers the dose (grows
//! gate length) everywhere it can afford to, recovering leakage at zero
//! timing cost — something a *uniform* dose change can never do
//! (Tables II/III of the paper).
//!
//! Run with `cargo run --release --example leakage_recovery`.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles};
use dme_sta::{analyze, GeometryAssignment};
use dmeopt::{optimize, DmoptConfig, OptContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let ctx = OptContext::new(&lib, &design, &placement);
    let n = design.netlist.num_instances();
    let nominal = ctx.nominal_summary();
    println!(
        "nominal: MCT {:.4} ns, leakage {:.1} µW",
        nominal.mct_ns, nominal.leakage_uw
    );

    // The naive knob: uniform dose reduction. Leakage falls, timing dies.
    println!("\nuniform dose sweep (the Table II trade-off):");
    println!(
        "{:>8} {:>10} {:>10} {:>9} {:>9}",
        "dose(%)", "MCT(ns)", "leak(µW)", "ΔMCT(%)", "Δleak(%)"
    );
    for step in [-5.0f64, -2.5, 0.0, 2.5, 5.0] {
        let doses = GeometryAssignment::uniform(n, -2.0 * step, 0.0);
        let r = analyze(&lib, &design.netlist, &placement, &doses);
        println!(
            "{:>8.1} {:>10.4} {:>10.1} {:>9.2} {:>9.2}",
            step,
            r.mct_ns,
            r.total_leakage_uw,
            100.0 * (nominal.mct_ns - r.mct_ns) / nominal.mct_ns,
            100.0 * (nominal.leakage_uw - r.total_leakage_uw) / nominal.leakage_uw,
        );
    }

    // The design-aware knob: DMopt QP at several grid granularities.
    println!("\ndesign-aware dose maps (QP: min leakage s.t. timing):");
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>9} {:>9}",
        "grid(µm)", "#grids", "MCT(ns)", "leak(µW)", "ΔMCT(%)", "Δleak(%)"
    );
    for g in [5.0f64, 10.0, 30.0] {
        let cfg = DmoptConfig {
            grid_g_um: g,
            ..DmoptConfig::default()
        };
        let r = optimize(&ctx, &cfg)?;
        let (mct_imp, leak_imp) = r.golden_after.improvement_over(&nominal);
        println!(
            "{:>10.0} {:>8} {:>10.4} {:>10.1} {:>9.2} {:>9.2}",
            g,
            r.poly_map.grid.num_cells(),
            r.golden_after.mct_ns,
            r.golden_after.leakage_uw,
            mct_imp,
            leak_imp,
        );
    }
    println!("\nfiner grids recover more leakage at unchanged timing — the");
    println!("granularity trend of Table IV.");
    Ok(())
}
