//! Timing speed-up: the paper's second use case. Minimize the clock
//! period subject to a leakage budget — the QCP of Section III, solved by
//! bisection over the leakage-minimizing QP. Sweeping the budget ξ traces
//! the full timing/leakage Pareto frontier a design-aware dose map offers.
//!
//! Run with `cargo run --release --example timing_speedup`.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles};
use dmeopt::{optimize, DmoptConfig, Objective, OptContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    let ctx = OptContext::new(&lib, &design, &placement);
    let nominal = ctx.nominal_summary();
    println!(
        "nominal: MCT {:.4} ns, leakage {:.1} µW ({} cells)",
        nominal.mct_ns,
        nominal.leakage_uw,
        design.netlist.num_instances()
    );

    println!("\nQCP sweep over the leakage budget ξ (5×5 µm grids):");
    println!(
        "{:>9} {:>10} {:>9} {:>10} {:>9} {:>7}",
        "ξ(µW)", "MCT(ns)", "ΔMCT(%)", "leak(µW)", "Δleak(%)", "probes"
    );
    for xi_frac in [0.0f64, 0.05, 0.15, 0.30] {
        let xi = xi_frac * nominal.leakage_uw;
        let cfg = DmoptConfig {
            objective: Objective::MinTiming { xi_uw: xi },
            ..DmoptConfig::default()
        };
        let r = optimize(&ctx, &cfg)?;
        let (mct_imp, leak_imp) = r.golden_after.improvement_over(&nominal);
        println!(
            "{:>9.1} {:>10.4} {:>9.2} {:>10.1} {:>9.2} {:>7}",
            xi, r.golden_after.mct_ns, mct_imp, r.golden_after.leakage_uw, leak_imp, r.probes,
        );
    }
    println!("\na larger leakage budget buys more speed — but even ξ = 0");
    println!("(no leakage increase at all) improves MCT, which no uniform");
    println!("dose change can do. This is the paper's headline result.");
    Ok(())
}
