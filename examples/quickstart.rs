//! Quickstart: generate a design, place it, and run the paper's QP
//! (minimize leakage under a timing constraint) on a 5×5 µm dose grid.
//!
//! Run with `cargo run --release --example quickstart`.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles};
use dmeopt::{optimize, DmoptConfig, OptContext};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Substrate: a 65 nm standard-cell library (36 combinational + 9
    //    sequential masters, characterized analytically).
    let lib = Library::standard(Technology::n65());

    // 2. A synthetic ~2000-cell design with AES-like slack structure.
    let design = gen::generate(&profiles::small(), &lib);
    let placement = dme_placement::place(&design, &lib);
    println!(
        "design {}: {} cells, {} nets, die {:.0}×{:.0} µm",
        design.profile.name,
        design.netlist.num_instances(),
        design.netlist.num_nets(),
        placement.die_w_um,
        placement.die_h_um,
    );

    // 3. Context: library fitting (Ap/Bp, α/β/γ) + nominal golden STA.
    let ctx = OptContext::new(&lib, &design, &placement);
    let nominal = ctx.nominal_summary();
    println!(
        "nominal: MCT = {:.4} ns, leakage = {:.1} µW",
        nominal.mct_ns, nominal.leakage_uw
    );

    // 4. DMopt with paper defaults: poly layer, 5×5 µm grids, ±5% dose,
    //    smoothness δ = 2 — minimize leakage without hurting timing.
    let result = optimize(&ctx, &DmoptConfig::default())?;
    let (mct_imp, leak_imp) = result.golden_after.improvement_over(&result.golden_before);
    println!(
        "after DMopt (QP): MCT = {:.4} ns ({:+.2}%), leakage = {:.1} µW ({:+.2}%)",
        result.golden_after.mct_ns, mct_imp, result.golden_after.leakage_uw, leak_imp,
    );
    println!(
        "solved {} vars / {} constraints in {} solver iterations ({:.2?})",
        result.num_vars, result.num_constraints, result.iterations, result.runtime,
    );
    println!(
        "dose map: {}×{} grids, range [{:.1}%, {:.1}%]",
        result.poly_map.grid.cols(),
        result.poly_map.grid.rows(),
        result
            .poly_map
            .dose_pct
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min),
        result
            .poly_map
            .dose_pct
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max),
    );
    Ok(())
}
