//! Deterministic dense-vector kernels shared by the QP solvers.
//!
//! Every reduction here is computed over the fixed [`VEC_GRAIN`]-sized
//! chunk decomposition of the input with the per-chunk partial sums
//! combined in chunk order. The serial and parallel paths therefore
//! produce **bitwise identical** results for any thread count — the only
//! thing parallelism changes is which thread evaluates which chunk.
//! Element-wise kernels (axpy, scale, …) are trivially deterministic.
//!
//! All kernels fall back to a plain serial loop below
//! [`VEC_PAR_CUTOFF`] elements, where fork-join overhead would dominate.

use crate::{
    par_chunks_mut, par_fill, par_reduce_sum, would_parallelize, VEC_GRAIN, VEC_PAR_CUTOFF,
};

fn chunk_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product `aᵀb` with a fixed chunked reduction order.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    par_reduce_sum(a.len(), VEC_GRAIN, |r| chunk_dot(&a[r.clone()], &b[r]))
}

/// Squared Euclidean norm `‖v‖²` with a fixed chunked reduction order.
pub fn norm_sq(v: &[f64]) -> f64 {
    par_reduce_sum(v.len(), VEC_GRAIN, |r| chunk_dot(&v[r.clone()], &v[r]))
}

/// Euclidean norm `‖v‖`.
pub fn norm2(v: &[f64]) -> f64 {
    norm_sq(v).sqrt()
}

/// Infinity norm `max |vᵢ|` (order-independent, so parallel-safe by
/// construction).
pub fn inf_norm(v: &[f64]) -> f64 {
    if !would_parallelize(v.len(), VEC_PAR_CUTOFF) {
        return v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    }
    let chunks = v.len().div_ceil(VEC_GRAIN);
    let mut partials = vec![0.0f64; chunks];
    par_fill(&mut partials, 1, |t| {
        let start = t * VEC_GRAIN;
        let end = (start + VEC_GRAIN).min(v.len());
        v[start..end].iter().fold(0.0f64, |m, x| m.max(x.abs()))
    });
    partials.iter().fold(0.0f64, |m, x| m.max(*x))
}

/// `y ← y + alpha·x`, element-wise.
///
/// # Panics
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if !would_parallelize(y.len(), VEC_PAR_CUTOFF) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
        return;
    }
    par_chunks_mut(y, VEC_GRAIN, |start, chunk| {
        for (k, yi) in chunk.iter_mut().enumerate() {
            *yi += alpha * x[start + k];
        }
    });
}

/// `x ← x + alpha·p; r ← r + beta·q` — the fused CG update (one parallel
/// region instead of two).
///
/// # Panics
/// Panics if any length differs from `x.len()`.
pub fn cg_update(x: &mut [f64], alpha: f64, p: &[f64], r: &mut [f64], beta: f64, q: &[f64]) {
    let n = x.len();
    assert!(
        p.len() == n && r.len() == n && q.len() == n,
        "cg_update: length mismatch"
    );
    if !would_parallelize(n, VEC_PAR_CUTOFF) {
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] += beta * q[i];
        }
        return;
    }
    // Two disjoint mutable buffers: update each in its own pass (still a
    // single fork for x; r follows). Keeping the passes separate avoids
    // aliasing gymnastics and the second pass reuses warm workers.
    par_chunks_mut(x, VEC_GRAIN, |start, chunk| {
        for (k, xi) in chunk.iter_mut().enumerate() {
            *xi += alpha * p[start + k];
        }
    });
    par_chunks_mut(r, VEC_GRAIN, |start, chunk| {
        for (k, ri) in chunk.iter_mut().enumerate() {
            *ri += beta * q[start + k];
        }
    });
}

/// `p ← r + beta·p`, the CG direction update.
///
/// # Panics
/// Panics if the lengths differ.
pub fn xpby(r: &[f64], beta: f64, p: &mut [f64]) {
    assert_eq!(r.len(), p.len(), "xpby: length mismatch");
    if !would_parallelize(p.len(), VEC_PAR_CUTOFF) {
        for (pi, ri) in p.iter_mut().zip(r) {
            *pi = ri + beta * *pi;
        }
        return;
    }
    par_chunks_mut(p, VEC_GRAIN, |start, chunk| {
        for (k, pi) in chunk.iter_mut().enumerate() {
            *pi = r[start + k] + beta * *pi;
        }
    });
}

/// `v ← d ⊙ v` (element-wise scaling in place).
///
/// # Panics
/// Panics if the lengths differ.
pub fn mul_assign(d: &[f64], v: &mut [f64]) {
    assert_eq!(d.len(), v.len(), "mul_assign: length mismatch");
    if !would_parallelize(v.len(), VEC_PAR_CUTOFF) {
        for (vi, di) in v.iter_mut().zip(d) {
            *vi *= di;
        }
        return;
    }
    par_chunks_mut(v, VEC_GRAIN, |start, chunk| {
        for (k, vi) in chunk.iter_mut().enumerate() {
            *vi *= d[start + k];
        }
    });
}

/// `z ← d ⊙ r` (element-wise product; Jacobi preconditioner apply).
///
/// # Panics
/// Panics if any length differs from `z.len()`.
pub fn hadamard(d: &[f64], r: &[f64], z: &mut [f64]) {
    let n = z.len();
    assert!(d.len() == n && r.len() == n, "hadamard: length mismatch");
    if !would_parallelize(n, VEC_PAR_CUTOFF) {
        for i in 0..n {
            z[i] = d[i] * r[i];
        }
        return;
    }
    par_chunks_mut(z, VEC_GRAIN, |start, chunk| {
        for (k, zi) in chunk.iter_mut().enumerate() {
            *zi = d[start + k] * r[start + k];
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_force_serial;

    fn vec_of(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot_matches_serial_bitwise() {
        let n = 3 * VEC_PAR_CUTOFF + 17;
        let a = vec_of(n, |i| (i as f64 * 0.123).sin());
        let b = vec_of(n, |i| (i as f64 * 0.456).cos());
        let par = dot(&a, &b);
        set_force_serial(true);
        let ser = dot(&a, &b);
        set_force_serial(false);
        assert_eq!(par.to_bits(), ser.to_bits());
    }

    #[test]
    fn norms_agree_with_reference() {
        let v = vec_of(1000, |i| i as f64 - 500.0);
        let reference: f64 = v.iter().map(|x| x * x).sum();
        assert!((norm_sq(&v) - reference).abs() <= 1e-6 * reference);
        assert_eq!(inf_norm(&v), 500.0);
        assert_eq!(inf_norm(&[]), 0.0);
    }

    #[test]
    fn axpy_and_xpby_elementwise() {
        let n = VEC_PAR_CUTOFF + 3;
        let x = vec_of(n, |i| i as f64);
        let mut y = vec_of(n, |_| 1.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y[10], 21.0);
        let mut p = vec_of(n, |_| 3.0);
        xpby(&y, 0.5, &mut p);
        assert_eq!(p[10], 21.0 + 1.5);
    }

    #[test]
    fn hadamard_and_cg_update() {
        let n = 100;
        let d = vec_of(n, |i| (i % 7) as f64);
        let r = vec_of(n, |_| 2.0);
        let mut z = vec![0.0; n];
        hadamard(&d, &r, &mut z);
        assert_eq!(z[8], 2.0);
        let mut x = vec![0.0; n];
        let mut rr = vec![1.0; n];
        cg_update(&mut x, 1.0, &d, &mut rr, -1.0, &r);
        assert_eq!(x[8], 1.0);
        assert_eq!(rr[8], -1.0);
    }
}
