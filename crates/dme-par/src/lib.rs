//! Minimal fork-join data-parallel runtime for the dose-map hot paths.
//!
//! The build environment has no access to crates.io, so `rayon` cannot be
//! fetched; this crate is a small, dependency-free work-alike covering
//! what the solvers and the STA engine need:
//!
//! - a **persistent thread pool** (workers park on a condvar between
//!   jobs, so per-call overhead is a few microseconds, not a thread
//!   spawn) sized by `RAYON_NUM_THREADS` / `DME_NUM_THREADS` or the
//!   machine's available parallelism;
//! - index-space fork-join primitives: [`par_fill`], [`par_chunks_mut`],
//!   [`par_reduce_sum`];
//! - **deterministic vector kernels** ([`vecops`]): reductions are always
//!   computed over a fixed chunk decomposition and the per-chunk partials
//!   summed in chunk order, so results are *bitwise identical* between
//!   the serial and parallel paths and independent of the thread count;
//! - a global force-serial switch ([`set_force_serial`], or the
//!   `DME_FORCE_SERIAL=1` environment variable) for A/B benchmarking and
//!   equivalence tests.
//!
//! Nested parallel calls (a task spawning parallel work) degrade to
//! inline serial execution rather than deadlocking.

#![deny(missing_docs)]

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod vecops;

/// Work-chunk size used by the deterministic vector kernels. Fixed (not
/// thread-count-derived) so the reduction tree never changes shape.
pub const VEC_GRAIN: usize = 4096;

/// Minimum element count before the vector kernels go parallel; below
/// this the fork-join overhead dominates.
pub const VEC_PAR_CUTOFF: usize = 16 * 1024;

static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Set while this thread executes a pool task; nested parallel calls
    /// run inline instead of re-entering the pool.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Globally forces all primitives onto their serial path (used by the
/// equivalence proptests and the serial legs of the benchmarks).
pub fn set_force_serial(force: bool) {
    FORCE_SERIAL.store(force, Ordering::Relaxed);
}

/// Whether the serial path is currently forced.
pub fn force_serial() -> bool {
    FORCE_SERIAL.load(Ordering::Relaxed)
}

/// The configured pool width (worker threads + the calling thread). At
/// least 1; does not reflect [`force_serial`].
pub fn num_threads() -> usize {
    pool().workers + 1
}

/// Whether this build was compiled with the `parallel` feature (run
/// manifests report this so results can be attributed to a build mode).
pub fn parallel_enabled() -> bool {
    cfg!(feature = "parallel")
}

/// The parallelism a fork-join primitive would *actually* get right now:
/// 1 when the pool is width 1, the serial switch is on, or the caller is
/// already inside a pool task (nested calls run inline); the pool width
/// otherwise. Dispatch layers should consult this — not [`num_threads`] —
/// when deciding whether a parallel code path is worth its setup cost: on
/// a 1-thread pool [`run_tasks`] degrades to an inline serial loop, so a
/// "parallel" algorithm variant pays its partitioning overhead for
/// nothing.
pub fn effective_parallelism() -> usize {
    if force_serial() || IN_POOL_TASK.with(|f| f.get()) {
        1
    } else {
        num_threads()
    }
}

/// Whether a parallel primitive over `len` elements would actually fan
/// out right now.
pub fn would_parallelize(len: usize, cutoff: usize) -> bool {
    len >= cutoff && num_threads() > 1 && !force_serial() && !IN_POOL_TASK.with(|f| f.get())
}

fn configured_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    for var in ["DME_NUM_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Counters shared between the submitter and the workers for one job.
struct JobCounters {
    next: AtomicUsize,
    finished: AtomicUsize,
    total: usize,
    panicked: AtomicBool,
}

/// A type-erased pointer to the job closure, valid only while the
/// submitting call is blocked in [`Pool::run`].
#[derive(Clone, Copy)]
struct JobFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the closure is Sync and the pointer is only dereferenced while
// the submitter keeps the referent alive (it blocks until all tasks
// finish before returning).
unsafe impl Send for JobFn {}

struct JobSlot {
    generation: u64,
    job: Option<(JobFn, Arc<JobCounters>)>,
}

struct PoolShared {
    slot: Mutex<JobSlot>,
    work_cv: Condvar,
    done_cv: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    /// Number of worker threads (the submitter participates too).
    workers: usize,
    /// Serializes submitters so only one job is in flight at a time.
    submit_lock: Mutex<()>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        if std::env::var("DME_FORCE_SERIAL").is_ok_and(|v| v == "1") {
            set_force_serial(true);
        }
        let threads = configured_threads();
        let workers = threads.saturating_sub(1);
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot {
                generation: 0,
                job: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("dme-par-{w}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        Pool {
            shared,
            workers,
            submit_lock: Mutex::new(()),
        }
    })
}

fn worker_loop(shared: &PoolShared) {
    let mut last_seen = 0u64;
    loop {
        let (f, counters) = {
            let mut slot = shared.slot.lock().expect("pool slot poisoned");
            loop {
                if slot.generation != last_seen {
                    if let Some(job) = &slot.job {
                        last_seen = slot.generation;
                        break (job.0, Arc::clone(&job.1));
                    }
                    // Generation advanced but the job was already cleared.
                    last_seen = slot.generation;
                }
                slot = shared.work_cv.wait(slot).expect("pool slot poisoned");
            }
        };
        IN_POOL_TASK.with(|flag| flag.set(true));
        run_job_tasks(&f, &counters, shared);
        IN_POOL_TASK.with(|flag| flag.set(false));
    }
}

fn run_job_tasks(f: &JobFn, counters: &JobCounters, shared: &PoolShared) {
    loop {
        let i = counters.next.fetch_add(1, Ordering::Relaxed);
        if i >= counters.total {
            break;
        }
        // SAFETY: see `JobFn` — the closure outlives every claimed task.
        let closure = unsafe { &*f.0 };
        if catch_unwind(AssertUnwindSafe(|| closure(i))).is_err() {
            counters.panicked.store(true, Ordering::Relaxed);
        }
        if counters.finished.fetch_add(1, Ordering::AcqRel) + 1 == counters.total {
            let _guard = shared.slot.lock().expect("pool slot poisoned");
            shared.done_cv.notify_all();
        }
    }
}

/// Runs `f(0), f(1), …, f(num_tasks - 1)` across the pool and the calling
/// thread, returning when every task has completed. Falls back to an
/// inline serial loop when the pool is width 1, the serial switch is on,
/// or the call is nested inside another pool task.
///
/// # Panics
///
/// Panics if any task panicked (after all tasks have finished).
pub fn run_tasks(num_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if num_tasks == 0 {
        return;
    }
    let p = pool();
    if num_tasks == 1 || p.workers == 0 || force_serial() || IN_POOL_TASK.with(|g| g.get()) {
        for i in 0..num_tasks {
            f(i);
        }
        return;
    }
    let _submit = p.submit_lock.lock().expect("submit lock poisoned");
    let counters = Arc::new(JobCounters {
        next: AtomicUsize::new(0),
        finished: AtomicUsize::new(0),
        total: num_tasks,
        panicked: AtomicBool::new(false),
    });
    // SAFETY: erases the borrow lifetime; the pointer is only used while
    // this call keeps `f` alive (we block until all tasks finish).
    let job = JobFn(unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
    });
    {
        let mut slot = p.shared.slot.lock().expect("pool slot poisoned");
        slot.generation += 1;
        slot.job = Some((job, Arc::clone(&counters)));
        p.shared.work_cv.notify_all();
    }
    // The submitter works too (and is usually the one draining the queue
    // on small jobs). It is inside a pool task for the duration: nested
    // parallel calls from its tasks must run inline, both for the no-
    // deadlock contract (the submit lock is held) and so dispatch layers
    // see `effective_parallelism() == 1` from within a task.
    IN_POOL_TASK.with(|flag| flag.set(true));
    run_job_tasks(&job, &counters, &p.shared);
    IN_POOL_TASK.with(|flag| flag.set(false));
    // Wait for tasks claimed by workers.
    {
        let mut slot = p.shared.slot.lock().expect("pool slot poisoned");
        while counters.finished.load(Ordering::Acquire) < counters.total {
            slot = p.shared.done_cv.wait(slot).expect("pool slot poisoned");
        }
        slot.job = None;
    }
    assert!(
        !counters.panicked.load(Ordering::Relaxed),
        "a parallel task panicked"
    );
}

/// Pointer wrapper that lets tasks write disjoint regions of one buffer.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor through `&self` so closures capture the whole (Sync)
    /// wrapper rather than the raw-pointer field (edition-2021 closures
    /// capture individual fields otherwise).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Number of `grain`-sized chunks covering `len` elements.
fn chunk_count(len: usize, grain: usize) -> usize {
    len.div_ceil(grain.max(1))
}

/// Fills `out[i] = f(i)` for every index, parallelizing over
/// `grain`-sized index blocks.
pub fn par_fill<R: Send>(out: &mut [R], grain: usize, f: impl Fn(usize) -> R + Sync) {
    let len = out.len();
    let grain = grain.max(1);
    let tasks = chunk_count(len, grain);
    let base = SendPtr(out.as_mut_ptr());
    run_tasks(tasks, &move |t| {
        let start = t * grain;
        let end = (start + grain).min(len);
        for i in start..end {
            // SAFETY: tasks cover disjoint index ranges of `out`, which
            // outlives the call (run_tasks blocks until completion).
            unsafe { base.get().add(i).write(f(i)) };
        }
    });
}

/// Calls `f(chunk_start, chunk)` over consecutive `grain`-sized chunks of
/// `data`, in parallel.
pub fn par_chunks_mut<T: Send>(data: &mut [T], grain: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    let len = data.len();
    let grain = grain.max(1);
    let tasks = chunk_count(len, grain);
    let base = SendPtr(data.as_mut_ptr());
    run_tasks(tasks, &move |t| {
        let start = t * grain;
        let end = (start + grain).min(len);
        // SAFETY: chunks are disjoint and `data` outlives the call.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(start, chunk);
    });
}

/// Sums `f(start..end)` over the fixed `grain` decomposition of `0..len`.
///
/// The decomposition — and therefore the floating-point reduction order —
/// depends only on `len` and `grain`, never on the thread count, so the
/// serial and parallel paths produce bitwise-identical sums.
pub fn par_reduce_sum(
    len: usize,
    grain: usize,
    f: impl Fn(std::ops::Range<usize>) -> f64 + Sync,
) -> f64 {
    let grain = grain.max(1);
    let tasks = chunk_count(len, grain);
    if tasks <= 1 {
        return if len == 0 { 0.0 } else { f(0..len) };
    }
    let mut partials = vec![0.0f64; tasks];
    {
        let base = SendPtr(partials.as_mut_ptr());
        run_tasks(tasks, &move |t| {
            let start = t * grain;
            let end = (start + grain).min(len);
            // SAFETY: one disjoint slot per task; `partials` outlives the call.
            unsafe { base.get().add(t).write(f(start..end)) };
        });
    }
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_fill_matches_serial() {
        let n = 100_000;
        let mut par = vec![0u64; n];
        par_fill(&mut par, 1024, |i| {
            (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
        });
        for (i, v) in par.iter().enumerate() {
            assert_eq!(*v, (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        }
    }

    #[test]
    fn par_chunks_mut_covers_every_element() {
        let n = 70_001;
        let mut data = vec![0usize; n];
        par_chunks_mut(&mut data, 997, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn reduce_sum_is_thread_count_independent() {
        let n = 250_000;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let par = par_reduce_sum(n, VEC_GRAIN, |r| xs[r].iter().sum());
        set_force_serial(true);
        let ser = par_reduce_sum(n, VEC_GRAIN, |r| xs[r].iter().sum());
        set_force_serial(false);
        assert_eq!(
            par.to_bits(),
            ser.to_bits(),
            "reduction order must be fixed"
        );
    }

    #[test]
    fn nested_calls_run_inline() {
        let n = 10_000;
        let mut out = vec![0.0f64; n];
        par_chunks_mut(&mut out, 100, |start, chunk| {
            // A nested reduction inside a task must not deadlock.
            let s = par_reduce_sum(10, 2, |r| r.start as f64 + r.len() as f64);
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = s + (start + k) as f64;
            }
        });
        assert!(out.iter().zip(0..).all(|(v, i)| *v >= i as f64));
    }

    #[test]
    fn one_thread_dispatch_is_inline_serial() {
        // With the serial switch on, a "parallel" run must execute every
        // task inline on the calling thread in index order — exactly the
        // dispatch a width-1 pool gets. This pins the contract that
        // 1-thread parallel == serial (no cross-thread handoff, no
        // reordering), which the STA engine's Auto mode relies on.
        set_force_serial(true);
        assert_eq!(effective_parallelism(), 1);
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        run_tasks(64, &|i| {
            assert_eq!(std::thread::current().id(), caller, "task {i} migrated");
            order.lock().unwrap().push(i);
        });
        set_force_serial(false);
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..64).collect::<Vec<_>>(), "inline order");
    }

    #[test]
    fn effective_parallelism_reflects_context() {
        assert_eq!(effective_parallelism(), num_threads());
        set_force_serial(true);
        assert_eq!(effective_parallelism(), 1);
        set_force_serial(false);
        // Inside a pool task, nested primitives run inline.
        let mut seen = vec![0usize; 4];
        par_chunks_mut(&mut seen, 1, |_, chunk| {
            chunk[0] = effective_parallelism();
        });
        if num_threads() > 1 {
            assert!(seen.iter().all(|&p| p == 1), "nested: {seen:?}");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: [f64; 0] = [];
        par_fill(&mut empty, 8, |_| 0.0);
        par_chunks_mut(&mut empty, 8, |_, _| {});
        assert_eq!(par_reduce_sum(0, 8, |_| 1.0), 0.0);
    }
}
