//! Extension experiment: across-wafer delay variation (the paper's
//! conclusion names this as ongoing work).
//!
//! Every exposure field on the wafer prints with a systematic CD error
//! (radial bowl + tilt + residual), so the same design yields a different
//! MCT per field. Three manufacturing policies are compared by golden
//! STA on every field:
//!
//! 1. **uncorrected** — the raw fingerprint;
//! 2. **AWLV-corrected** — classic per-field Dosicom dose offsets that
//!    flatten the CD distribution (the pre-paper DoseMapper use);
//! 3. **AWLV-corrected + design-aware intrafield map** — the offsets
//!    plus this paper's QCP dose map inside each field.
//!
//! Shape: correction collapses the across-wafer MCT spread; the
//! design-aware map then shifts the whole distribution faster without a
//! leakage excursion.

use dme_bench::{scale_arg, Testbench};
use dme_dosemap::wafer::WaferModel;
use dme_dosemap::{metrics, DoseSensitivity};
use dme_netlist::profiles;
use dme_sta::{analyze, GeometryAssignment};
use dmeopt::dosepl::assignment_for_placement;
use dmeopt::{optimize, DmoptConfig, Objective, OptContext};

fn mct_stats(mcts: &[f64]) -> (f64, f64, f64, f64) {
    let n = mcts.len() as f64;
    let mean = mcts.iter().sum::<f64>() / n;
    let var = mcts.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / n;
    let min = mcts.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = mcts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (min, mean, max, var.sqrt())
}

fn main() {
    let _obs = dme_bench::obs_session("wafer_extension");
    let scale = scale_arg(0.25);
    dme_obs::report!("Across-wafer extension on AES-65 (scale = {scale})");
    let tb = Testbench::prepare_scaled(&profiles::aes65(), scale);
    let n = tb.design.netlist.num_instances();
    let sens = DoseSensitivity::default();

    let wafer = WaferModel::default();
    let fields = wafer.fields();
    let raw: Vec<f64> = fields.iter().map(|f| f.cd_err_nm).collect();
    let offsets = wafer.field_offsets(&fields, sens, -5.0, 5.0);
    let corrected = wafer.corrected_errors(&fields, &offsets, sens);
    dme_obs::report!(
        "{} exposure fields; AWLV 3σ: {:.3} nm uncorrected → {:.4} nm corrected",
        fields.len(),
        metrics::cd_uniformity(&raw).three_sigma_nm,
        metrics::cd_uniformity(&corrected).three_sigma_nm
    );

    // Design-aware intrafield map from the paper's QCP.
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let dm = optimize(
        &ctx,
        &DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 5.0,
            ..DmoptConfig::default()
        },
    )
    .expect("DMopt");
    let intrafield = assignment_for_placement(&ctx, &tb.placement, &dm.poly_map, None, sens.0);

    let per_field = |field_err_nm: f64, with_map: bool| -> (f64, f64) {
        let mut doses = if with_map {
            intrafield.clone()
        } else {
            GeometryAssignment::nominal(n)
        };
        for dl in doses.dl_nm.iter_mut() {
            *dl += field_err_nm; // a field CD error is a uniform ΔL
        }
        let r = analyze(&tb.lib, &tb.design.netlist, &tb.placement, &doses);
        (r.mct_ns, r.total_leakage_uw)
    };

    dme_obs::report!(
        "\n{:<34} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "policy",
        "MCT min",
        "mean",
        "max",
        "3σ",
        "leak(µW)"
    );
    for (name, errs, with_map) in [
        ("uncorrected", &raw, false),
        ("AWLV-corrected", &corrected, false),
        ("AWLV-corrected + design-aware", &corrected, true),
    ] {
        let results: Vec<(f64, f64)> = errs.iter().map(|&e| per_field(e, with_map)).collect();
        let mcts: Vec<f64> = results.iter().map(|r| r.0).collect();
        let leak = results.iter().map(|r| r.1).sum::<f64>() / results.len() as f64;
        let (min, mean, max, sigma) = mct_stats(&mcts);
        dme_obs::report!(
            "{name:<34} {min:>9.4} {mean:>9.4} {max:>9.4} {:>9.4} {leak:>11.1}",
            3.0 * sigma
        );
    }
    dme_obs::report!("\nthe wafer sellable-die story: correction collapses the MCT spread;");
    dme_obs::report!("the design-aware intrafield map then moves the whole wafer faster.");
}
