//! Figures 3–6: SPICE-style device sweeps on a minimum-size inverter.
//!
//! - Fig. 3: TPLH/TPHL vs gate length (≈ linear);
//! - Fig. 4: TPLH/TPHL vs gate-width delta (≈ linear, decreasing);
//! - Fig. 5: average leakage vs gate length (exponential);
//! - Fig. 6: average leakage vs gate-width delta (linear).
//!
//! Output is CSV per figure, for both technology nodes.

use dme_device::{sweep, Technology};

fn main() {
    let _obs = dme_bench::obs_session("fig3to6");
    for tech in [Technology::n65(), Technology::n90()] {
        dme_obs::report!("# Fig 3 ({}): delay vs gate length", tech.name);
        dme_obs::report!("L_nm,TPLH_ns,TPHL_ns");
        for p in sweep::delay_vs_gate_length(&tech) {
            dme_obs::report!("{:.1},{:.6},{:.6}", p.x_nm, p.tplh_ns, p.tphl_ns);
        }
        dme_obs::report!("# Fig 4 ({}): delay vs gate-width delta", tech.name);
        dme_obs::report!("dW_nm,TPLH_ns,TPHL_ns");
        for p in sweep::delay_vs_gate_width(&tech) {
            dme_obs::report!("{:.1},{:.6},{:.6}", p.x_nm, p.tplh_ns, p.tphl_ns);
        }
        dme_obs::report!("# Fig 5 ({}): leakage vs gate length", tech.name);
        dme_obs::report!("L_nm,leakage_nW");
        for p in sweep::leakage_vs_gate_length(&tech) {
            dme_obs::report!("{:.1},{:.4}", p.x_nm, p.leakage_nw);
        }
        dme_obs::report!("# Fig 6 ({}): leakage vs gate-width delta", tech.name);
        dme_obs::report!("dW_nm,leakage_nW");
        for p in sweep::leakage_vs_gate_width(&tech) {
            dme_obs::report!("{:.1},{:.4}", p.x_nm, p.leakage_nw);
        }
    }
}
