//! Ablation: timing-constraint pruning (our speed extension, see
//! DESIGN.md §5).
//!
//! Pruning drops arrival variables/rows for instances whose slack can
//! never be consumed by any admissible dose. It is *sound* (golden timing
//! cannot regress) but *conservative* (edges through pruned producers use
//! worst-case arrival bounds), so it may leave some leakage recovery on
//! the table. This binary measures both sides: problem size / runtime vs
//! result quality, per grid size.

use dme_bench::{imp_pct, scale_arg, Testbench};
use dme_netlist::profiles;
use dmeopt::{optimize, DmoptConfig, OptContext};

fn main() {
    let _obs = dme_bench::obs_session("ablation_prune");
    let scale = scale_arg(1.0);
    dme_obs::report!("Pruning ablation on AES-65, QP objective (scale = {scale})");
    let tb = Testbench::prepare_scaled(&profiles::aes65(), scale);
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let nominal = ctx.nominal_summary();
    dme_obs::report!(
        "{:>9} {:>6} {:>8} {:>10} {:>10} {:>8} {:>9}",
        "grid(µm)",
        "prune",
        "#vars",
        "#rows",
        "Δleak(%)",
        "ΔMCT(%)",
        "time(s)"
    );
    for g in [5.0, 10.0, 30.0] {
        for prune in [false, true] {
            let cfg = DmoptConfig {
                grid_g_um: g,
                prune,
                ..DmoptConfig::default()
            };
            match optimize(&ctx, &cfg) {
                Ok(r) => dme_obs::report!(
                    "{:>9.0} {:>6} {:>8} {:>10} {:>10.2} {:>8.2} {:>9.1}",
                    g,
                    prune,
                    r.num_vars,
                    r.num_constraints,
                    imp_pct(nominal.leakage_uw, r.golden_after.leakage_uw),
                    imp_pct(nominal.mct_ns, r.golden_after.mct_ns),
                    r.runtime.as_secs_f64(),
                ),
                Err(e) => dme_obs::report!("{g:>9.0} {prune:>6}  FAILED: {e}"),
            }
        }
    }
}
