//! Table IV: dose-map optimization on the poly layer (gate-length
//! modulation) with smoothness δ = 2 and dose range ±5%.
//!
//! For each of the four testcases and three grid granularities
//! (5×5 / 10×10 / 30×30 µm² at 65 nm, 5×5 / 10×10 / 50×50 µm² at 90 nm),
//! runs both formulations:
//!
//! - QP  — minimize leakage under the nominal timing constraint;
//! - QCP — minimize the clock period under ΔLeakage ≤ 0 (bisection).
//!
//! Shape to reproduce: QP yields double-digit leakage savings at ~flat
//! MCT; QCP yields MCT gains at ~flat leakage; finer grids are better;
//! the 90 nm designs (fewer cells per grid, thinner critical tail)
//! improve more than the 65 nm ones.

use dme_bench::{imp_pct, scale_arg, Testbench};
use dme_netlist::{profiles, DesignProfile};
use dmeopt::{optimize, DmoptConfig, Objective, OptContext};

fn run_case(profile: &DesignProfile, grids_um: &[f64], scale: f64, prune_flag: bool) {
    let tb = Testbench::prepare_scaled(profile, scale);
    // Large designs default to the (sound, conservative) constraint
    // pruning so a full Table IV finishes in minutes instead of hours;
    // `--prune` forces it everywhere, `ablation_prune` quantifies it.
    let prune = prune_flag || tb.design.netlist.num_instances() > 30_000;
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let nominal = ctx.nominal_summary();
    dme_obs::report!(
        "\n{}: nominal MCT {:.4} ns, leakage {:.1} µW ({} cells, prune = {})",
        profile.name,
        nominal.mct_ns,
        nominal.leakage_uw,
        tb.design.netlist.num_instances(),
        prune
    );
    dme_obs::report!(
        "{:>9} {:>5} {:>10} {:>8} {:>12} {:>8} {:>9}",
        "grid(µm)",
        "form",
        "MCT(ns)",
        "imp(%)",
        "Leakage(µW)",
        "imp(%)",
        "time(s)"
    );
    for &g in grids_um {
        for (name, objective) in [
            ("QP", Objective::MinLeakage { tau_ns: None }),
            ("QCP", Objective::MinTiming { xi_uw: 0.0 }),
        ] {
            let cfg = DmoptConfig {
                grid_g_um: g,
                objective,
                prune,
                ..DmoptConfig::default()
            };
            match optimize(&ctx, &cfg) {
                Ok(r) => dme_obs::report!(
                    "{:>9.0} {:>5} {:>10.4} {:>8.2} {:>12.1} {:>8.2} {:>9.1}",
                    g,
                    name,
                    r.golden_after.mct_ns,
                    imp_pct(nominal.mct_ns, r.golden_after.mct_ns),
                    r.golden_after.leakage_uw,
                    imp_pct(nominal.leakage_uw, r.golden_after.leakage_uw),
                    r.runtime.as_secs_f64(),
                ),
                Err(e) => dme_obs::report!("{g:>9.0} {name:>5}  FAILED: {e}"),
            }
        }
    }
}

fn main() {
    let _obs = dme_bench::obs_session("table4");
    let scale = scale_arg(1.0);
    let prune = std::env::args().any(|a| a == "--prune");
    // `--design <name>` restricts the run (aes65|jpeg65|aes90|jpeg90).
    let mut only: Option<String> = None;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--design" {
            only = args.next();
        }
    }
    dme_obs::report!(
        "Table IV: DMopt on poly layer, δ = 2, ±5% (scale = {scale}, prune = {prune})"
    );
    let cases = [
        (profiles::aes65(), [5.0, 10.0, 30.0], "aes65"),
        (profiles::jpeg65(), [5.0, 10.0, 30.0], "jpeg65"),
        (profiles::aes90(), [5.0, 10.0, 50.0], "aes90"),
        (profiles::jpeg90(), [5.0, 10.0, 50.0], "jpeg90"),
    ];
    for (profile, grids, key) in cases {
        if only.as_deref().is_none_or(|o| o == key) {
            run_case(&profile, &grids, scale, prune);
        }
    }
}
