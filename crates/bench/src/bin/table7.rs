//! Table VII: percentage of critical timing paths within 95–100%,
//! 90–100% and 80–100% of the MCT, per testcase.
//!
//! Shape to reproduce: the 65 nm designs carry a dense near-critical
//! "hill" (AES-65 ≈ 16% of paths within 95% of MCT) while the 90 nm
//! designs have a thin critical tail (≈ 1% and below) — the structural
//! reason dose maps buy more timing at 90 nm (Table IV) and explain the
//! optimization-quality gap the paper discusses.

use dme_bench::{scale_arg, Testbench};
use dme_netlist::profiles;
use dme_sta::{analyze, report, worst_path_per_endpoint, GeometryAssignment};

fn main() {
    let _obs = dme_bench::obs_session("table7");
    let scale = scale_arg(1.0);
    dme_obs::report!(
        "Table VII: endpoint-path criticality (one worst path per endpoint, scale = {scale})"
    );
    dme_obs::report!(
        "{:<10} {:>14} {:>14} {:>14}",
        "Design",
        "95-100% MCT(%)",
        "90-100% MCT(%)",
        "80-100% MCT(%)"
    );
    for profile in profiles::paper_testcases() {
        let tb = Testbench::prepare_scaled(&profile, scale);
        let n = tb.design.netlist.num_instances();
        let r = analyze(
            &tb.lib,
            &tb.design.netlist,
            &tb.placement,
            &GeometryAssignment::nominal(n),
        );
        let setup: Vec<f64> = tb
            .design
            .netlist
            .instances
            .iter()
            .map(|i| tb.lib.cell(i.cell_idx).setup_ns(tb.lib.tech()))
            .collect();
        let paths = worst_path_per_endpoint(&tb.design.netlist, &r, &setup);
        let pct = report::criticality_percentages(&paths, r.mct_ns, &[0.95, 0.90, 0.80]);
        dme_obs::report!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2}",
            profile.name,
            pct[0],
            pct[1],
            pct[2]
        );
    }
}
