//! Table V: QCP (minimize timing under leakage bound) on both poly and
//! active layers — gate length *and* width modulation — for the 65 nm
//! designs at three grid granularities.
//!
//! Shape to reproduce: the "Both" columns improve MCT slightly more than
//! "Lgate" alone (the ±10 nm width range is small against 200–650 nm
//! device widths, so the extra knob is a second-order effect).

use dme_bench::{imp_pct, scale_arg, Testbench};
use dme_netlist::{profiles, DesignProfile};
use dmeopt::{optimize, DmoptConfig, Layers, Objective, OptContext};

fn run_case(profile: &DesignProfile, scale: f64) {
    let tb = Testbench::prepare_scaled(profile, scale);
    let prune = tb.design.netlist.num_instances() > 30_000;
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let nominal = ctx.nominal_summary();
    dme_obs::report!(
        "\n{}: nominal MCT {:.4} ns, leakage {:.1} µW",
        profile.name,
        nominal.mct_ns,
        nominal.leakage_uw
    );
    dme_obs::report!(
        "{:>9} {:>7} {:>10} {:>8} {:>12} {:>8} {:>9}",
        "grid(µm)",
        "layers",
        "MCT(ns)",
        "imp(%)",
        "Leakage(µW)",
        "imp(%)",
        "time(s)"
    );
    for g in [5.0, 10.0, 30.0] {
        for (name, layers) in [("Lgate", Layers::PolyOnly), ("Both", Layers::PolyAndActive)] {
            let cfg = DmoptConfig {
                grid_g_um: g,
                prune,
                layers,
                objective: Objective::MinTiming { xi_uw: 0.0 },
                ..DmoptConfig::default()
            };
            match optimize(&ctx, &cfg) {
                Ok(r) => dme_obs::report!(
                    "{:>9.0} {:>7} {:>10.4} {:>8.2} {:>12.1} {:>8.2} {:>9.1}",
                    g,
                    name,
                    r.golden_after.mct_ns,
                    imp_pct(nominal.mct_ns, r.golden_after.mct_ns),
                    r.golden_after.leakage_uw,
                    imp_pct(nominal.leakage_uw, r.golden_after.leakage_uw),
                    r.runtime.as_secs_f64(),
                ),
                Err(e) => dme_obs::report!("{g:>9.0} {name:>7}  FAILED: {e}"),
            }
        }
    }
}

fn main() {
    let _obs = dme_bench::obs_session("table5");
    let scale = scale_arg(1.0);
    dme_obs::report!("Table V: QCP on poly+active layers, 65 nm designs (scale = {scale})");
    run_case(&profiles::aes65(), scale);
    run_case(&profiles::jpeg65(), scale);
}
