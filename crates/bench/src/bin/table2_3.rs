//! Tables II and III: uniform poly-layer dose sweep on AES-65 and
//! AES-90.
//!
//! Sweeps the dose change from −5% to +5% in 0.5% steps (21 points, the
//! paper's characterized-library set), printing MCT and total leakage
//! with the "imp. (%)" rows. The shape to reproduce: monotone trade-off,
//! +5% dose ≈ 12% faster at ~2.5× leakage (65 nm) / ~1.9× (90 nm) — a
//! uniform dose can never improve both axes.

use dme_bench::{imp_pct, scale_arg, Testbench};
use dme_netlist::profiles;
use dme_sta::{analyze, GeometryAssignment};

fn sweep(tb: &Testbench, title: &str) {
    let n = tb.design.netlist.num_instances();
    let nominal = analyze(
        &tb.lib,
        &tb.design.netlist,
        &tb.placement,
        &GeometryAssignment::nominal(n),
    );
    dme_obs::report!("\n{title} ({} cells)", n);
    dme_obs::report!(
        "{:>9} {:>10} {:>10} {:>12} {:>10}",
        "dose(%)",
        "MCT(ns)",
        "imp(%)",
        "Leakage(uW)",
        "imp(%)"
    );
    for step in -10..=10 {
        let dose_pct = step as f64 * 0.5;
        let dl_nm = -2.0 * dose_pct; // Ds = −2 nm/%
        let r = analyze(
            &tb.lib,
            &tb.design.netlist,
            &tb.placement,
            &GeometryAssignment::uniform(n, dl_nm, 0.0),
        );
        dme_obs::report!(
            "{:>9.1} {:>10.4} {:>10.2} {:>12.1} {:>10.2}",
            dose_pct,
            r.mct_ns,
            imp_pct(nominal.mct_ns, r.mct_ns),
            r.total_leakage_uw,
            imp_pct(nominal.total_leakage_uw, r.total_leakage_uw),
        );
    }
}

fn main() {
    let _obs = dme_bench::obs_session("table2_3");
    let scale = scale_arg(1.0);
    dme_obs::report!("Tables II/III: uniform dose sweep (scale = {scale})");
    let aes65 = Testbench::prepare_scaled(&profiles::aes65(), scale);
    sweep(&aes65, "Table II: AES-65, poly-layer dose sweep");
    let aes90 = Testbench::prepare_scaled(&profiles::aes90(), scale);
    sweep(&aes90, "Table III: AES-90, poly-layer dose sweep");
}
