//! Table I: characteristics of the four testcases.
//!
//! Prints the paper's columns (chip size, cell instances, nets) for the
//! synthetic AES-65 / JPEG-65 / AES-90 / JPEG-90 designs, plus structural
//! extras (sequential count, max level, average fanout) that document the
//! generator. `--scale f` shrinks every design proportionally.

use dme_bench::{scale_arg, Testbench};
use dme_netlist::{profiles, stats};

fn main() {
    let _obs = dme_bench::obs_session("table1");
    let scale = scale_arg(1.0);
    dme_obs::report!("Table I: testcase characteristics (scale = {scale})");
    dme_obs::report!(
        "{:<10} {:>12} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "Design",
        "Size (mm^2)",
        "#Cells",
        "#Nets",
        "#FFs",
        "Levels",
        "AvgFanout"
    );
    for profile in profiles::paper_testcases() {
        let tb = Testbench::prepare_scaled(&profile, scale);
        let s = stats::compute(&tb.design.netlist);
        dme_obs::report!(
            "{:<10} {:>12.3} {:>10} {:>10} {:>8} {:>8} {:>10.2}",
            profile.name,
            tb.design.profile.die_area_mm2,
            s.num_instances,
            s.num_nets,
            s.num_sequential,
            s.max_level,
            s.avg_fanout,
        );
    }
}
