//! Manufacturing-side baseline (Section II of the paper): the classic,
//! design-blind DoseMapper use — flatten systematic across-chip
//! linewidth variation (ACLV) — plus the actuator realizability of both
//! the classic correction and a design-aware map.
//!
//! This documents the starting point of the paper's flow (Fig. 7 takes
//! "original dose maps calculated to minimize ACLV" as input) and
//! quantifies how much of a design-aware map the physical slit/scan
//! actuators can realize.

use dme_bench::{scale_arg, Testbench};
use dme_dosemap::legendre::actuator_fit;
use dme_dosemap::{metrics, DoseGrid, DoseSensitivity};
use dme_netlist::profiles;
use dmeopt::{optimize, DmoptConfig, Objective, OptContext};

fn main() {
    let _obs = dme_bench::obs_session("aclv_baseline");
    let scale = scale_arg(1.0);
    let tb = Testbench::prepare_scaled(&profiles::aes65(), scale);
    let grid = DoseGrid::with_granularity(tb.placement.die_w_um, tb.placement.die_h_um, 5.0);
    let sens = DoseSensitivity::default();

    // 1. Classic ACLV correction of a synthetic systematic CD error.
    let cd_err = metrics::synthetic_systematic_cd_error(&grid, 3.0);
    let before = metrics::cd_uniformity(&cd_err);
    let correction = metrics::aclv_correction(grid, &cd_err, sens, -5.0, 5.0);
    let after = metrics::cd_uniformity(&metrics::corrected_cd_err(&cd_err, &correction, sens));
    dme_obs::report!("classic (design-blind) DoseMapper — ACLV correction:");
    dme_obs::report!(
        "  CD 3σ before: {:.3} nm, after: {:.4} nm",
        before.three_sigma_nm,
        after.three_sigma_nm
    );
    let fit = actuator_fit(&correction, 6, 8).expect("actuator fit");
    dme_obs::report!(
        "  actuator realizability: rms residual {:.4}% / max {:.4}% of dose",
        fit.rms_residual_pct,
        fit.max_residual_pct
    );

    // 2. Design-aware map (QCP) realizability on the same actuators.
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let cfg = DmoptConfig {
        objective: Objective::MinTiming { xi_uw: 0.0 },
        grid_g_um: 5.0,
        ..DmoptConfig::default()
    };
    match optimize(&ctx, &cfg) {
        Ok(r) => {
            let fit = actuator_fit(&r.poly_map, 6, 8).expect("actuator fit");
            dme_obs::report!("\ndesign-aware map (QCP) on the same slit/scan actuators:");
            dme_obs::report!(
                "  dose range [{:.1}%, {:.1}%], rms residual {:.3}% / max {:.3}%",
                r.poly_map
                    .dose_pct
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min),
                r.poly_map
                    .dose_pct
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max),
                fit.rms_residual_pct,
                fit.max_residual_pct
            );
            dme_obs::report!("  (the residual quantifies the benefit of finer-grained");
            dme_obs::report!("   CD-control hardware — the Zeiss/Pixer CDC the paper cites)");
        }
        Err(e) => dme_obs::report!("design-aware map failed: {e}"),
    }
}
