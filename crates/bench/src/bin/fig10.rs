//! Fig. 10: slack profiles of AES-65 — Orig, after DMopt (QCP), after
//! dosePl, and the "Bias" headroom bound (+5% dose forced on every gate
//! of the top-K critical paths, ignoring equipment smoothness).
//!
//! Prints a slack histogram per stage (CSV) over the top-K paths, with
//! every stage's slack measured against the ORIGINAL MCT so the curves
//! are comparable. Shape to reproduce: the worst-slack edge moves right
//! after DMopt, a bit further after dosePl, and the Bias curve bounds
//! them; the near-critical "hill" cannot be fully flattened.

use dme_bench::{scale_arg, Testbench};
use dme_netlist::profiles;
use dme_sta::{analyze, report, worst_path_per_endpoint, GeometryAssignment, TimingPath};
use dmeopt::flow::{run, FlowConfig};
use dmeopt::{DmoptConfig, DoseplConfig, Objective, OptContext};

const TOP_K: usize = 10_000;
const BINS: usize = 25;

fn paths_against_orig_mct(
    tb: &Testbench,
    placement: &dme_placement::Placement,
    doses: &GeometryAssignment,
    setup: &[f64],
    orig_mct: f64,
) -> Vec<TimingPath> {
    let r = analyze(&tb.lib, &tb.design.netlist, placement, doses);
    let mut paths = worst_path_per_endpoint(&tb.design.netlist, &r, setup);
    paths.truncate(TOP_K);
    for p in &mut paths {
        p.slack_ns = orig_mct - p.delay_ns;
    }
    paths
}

fn main() {
    let _obs = dme_bench::obs_session("fig10");
    let scale = scale_arg(1.0);
    dme_obs::report!("# Fig 10: slack profiles of AES-65 (top {TOP_K} paths, scale = {scale})");
    let tb = Testbench::prepare_scaled(&profiles::aes65(), scale);
    let nl = &tb.design.netlist;
    let n = nl.num_instances();
    let setup: Vec<f64> = nl
        .instances
        .iter()
        .map(|i| tb.lib.cell(i.cell_idx).setup_ns(tb.lib.tech()))
        .collect();

    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let orig_mct = ctx.nominal.mct_ns;

    // Stage 1: original design.
    let orig = paths_against_orig_mct(
        &tb,
        &tb.placement,
        &GeometryAssignment::nominal(n),
        &setup,
        orig_mct,
    );

    // Stage 2+3: DMopt (QCP) then dosePl.
    let cfg = FlowConfig {
        dmopt: DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 5.0,
            ..DmoptConfig::default()
        },
        dosepl: Some(DoseplConfig {
            top_k: TOP_K,
            rounds: 10,
            swaps_per_round: 4,
            ..DoseplConfig::default()
        }),
    };
    let flow = run(&ctx, &cfg).expect("flow");
    let dmopt =
        paths_against_orig_mct(&tb, &tb.placement, &flow.dmopt.assignment, &setup, orig_mct);
    let dp = flow.dosepl.as_ref().expect("dosePl ran");
    let dosepl = paths_against_orig_mct(&tb, &dp.placement, &dp.assignment, &setup, orig_mct);

    // Stage 4: Bias — +5% dose on all gates of the top-K critical paths.
    let mut bias_doses = GeometryAssignment::nominal(n);
    for p in &orig {
        for &c in &p.instances {
            bias_doses.dl_nm[c.0 as usize] = -10.0;
        }
    }
    let bias = paths_against_orig_mct(&tb, &tb.placement, &bias_doses, &setup, orig_mct);

    // Common histogram over all stages.
    let max_slack = [&orig, &dmopt, &dosepl, &bias]
        .iter()
        .flat_map(|ps| ps.iter().map(|p| p.slack_ns))
        .fold(0.0f64, f64::max);
    dme_obs::report!("# original MCT = {orig_mct:.4} ns; slack bins span [0, {max_slack:.4}] ns");
    dme_obs::report!("bin_lo_ns,bin_hi_ns,orig,dmopt,dosepl,bias");
    // Shared bins across stages: slacks are measured against the original
    // MCT, so the original design pins the zero-slack edge and improved
    // stages shift mass to the right (negative numerical noise lands in
    // bin 0). A synthetic max-slack path per stage aligns the bin spans.
    let profs: Vec<Vec<report::SlackBin>> = [&orig, &dmopt, &dosepl, &bias]
        .iter()
        .map(|ps| {
            let mut padded: Vec<TimingPath> = (*ps).clone();
            padded.push(TimingPath {
                instances: Vec::new(),
                delay_ns: orig_mct - max_slack,
                slack_ns: max_slack,
            });
            let mut prof = report::slack_profile(&padded, BINS);
            // Remove the synthetic path from the last bin.
            if let Some(last) = prof.last_mut() {
                last.count -= 1;
            }
            prof
        })
        .collect();
    #[allow(clippy::needless_range_loop)]
    for b in 0..BINS {
        dme_obs::report!(
            "{:.4},{:.4},{},{},{},{}",
            profs[0][b].lo_ns,
            profs[0][b].hi_ns,
            profs[0][b].count,
            profs[1][b].count,
            profs[2][b].count,
            profs[3][b].count
        );
    }
    dme_obs::report!(
        "# worst path delay: orig {:.4}, dmopt {:.4}, dosepl {:.4}, bias {:.4} ns",
        orig.iter().map(|p| p.delay_ns).fold(0.0f64, f64::max),
        dmopt.iter().map(|p| p.delay_ns).fold(0.0f64, f64::max),
        dosepl.iter().map(|p| p.delay_ns).fold(0.0f64, f64::max),
        bias.iter().map(|p| p.delay_ns).fold(0.0f64, f64::max),
    );
}
