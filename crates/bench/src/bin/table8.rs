//! Table VIII: QCP dose-map optimization followed by the dosePl
//! incremental-placement process (AES-65 and JPEG-65, 5×5 µm² grids,
//! δ = 2, ±5%).
//!
//! Shape to reproduce: DMopt improves MCT under the leakage bound, then
//! cell swapping recovers a further increment at ~unchanged leakage.

use dme_bench::{imp_pct, scale_arg, Testbench};
use dme_netlist::{profiles, DesignProfile};
use dmeopt::flow::{run, FlowConfig};
use dmeopt::{DmoptConfig, DoseplConfig, Objective, OptContext};

fn run_case(profile: &DesignProfile, scale: f64) {
    let tb = Testbench::prepare_scaled(profile, scale);
    let prune = tb.design.netlist.num_instances() > 30_000;
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let cfg = FlowConfig {
        dmopt: DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 5.0,
            prune,
            ..DmoptConfig::default()
        },
        dosepl: Some(DoseplConfig {
            top_k: 10_000,
            rounds: 10,
            swaps_per_round: 4,
            ..DoseplConfig::default()
        }),
    };
    match run(&ctx, &cfg) {
        Ok(r) => {
            let nom = r.nominal;
            let dm = r.dmopt.golden_after;
            let dp = r.dosepl.as_ref().expect("dosePl enabled");
            dme_obs::report!(
                "\n{} ({} cells)",
                profile.name,
                tb.design.netlist.num_instances()
            );
            dme_obs::report!(
                "{:<14} {:>10} {:>8} {:>12} {:>8}",
                "stage",
                "MCT(ns)",
                "imp(%)",
                "Leakage(µW)",
                "imp(%)"
            );
            dme_obs::report!(
                "{:<14} {:>10.4} {:>8} {:>12.1} {:>8}",
                "Nom Lgate",
                nom.mct_ns,
                "-",
                nom.leakage_uw,
                "-"
            );
            dme_obs::report!(
                "{:<14} {:>10.4} {:>8.2} {:>12.1} {:>8.2}",
                "QCP",
                dm.mct_ns,
                imp_pct(nom.mct_ns, dm.mct_ns),
                dm.leakage_uw,
                imp_pct(nom.leakage_uw, dm.leakage_uw)
            );
            dme_obs::report!(
                "{:<14} {:>10.4} {:>8.2} {:>12.1} {:>8.2}   ({} swaps accepted / {} attempted, {} rounds)",
                "dosePl",
                dp.golden_after.mct_ns,
                imp_pct(nom.mct_ns, dp.golden_after.mct_ns),
                dp.golden_after.leakage_uw,
                imp_pct(nom.leakage_uw, dp.golden_after.leakage_uw),
                dp.swaps_accepted,
                dp.swaps_attempted,
                dp.rounds_run,
            );
        }
        Err(e) => dme_obs::report!("{}: FAILED: {e}", profile.name),
    }
}

fn main() {
    let _obs = dme_bench::obs_session("table8");
    let scale = scale_arg(1.0);
    dme_obs::report!("Table VIII: QCP followed by dosePl, 5×5 µm² grids (scale = {scale})");
    run_case(&profiles::aes65(), scale);
    run_case(&profiles::jpeg65(), scale);
}
