//! Benchmark harness shared helpers.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). The helpers here prepare testbenches
//! (library + generated design + placement) and provide the common
//! `--scale` option: the paper's testcases range up to ~100 k cells, and
//! a scale factor in `(0, 1]` shrinks them proportionally for faster
//! runs. Results are printed in the papers' row/column layout; the shape
//! of the numbers (who wins, by roughly what factor) is the reproduction
//! target, not absolute values.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles::TechNode, Design, DesignProfile};
use dme_placement::Placement;

/// A prepared testbench: library, generated design and its placement.
pub struct Testbench {
    /// Standard-cell library for the design's node.
    pub lib: Library,
    /// The generated design.
    pub design: Design,
    /// Legalized placement.
    pub placement: Placement,
}

impl Testbench {
    /// Generates and places a design for a profile.
    pub fn prepare(profile: &DesignProfile) -> Testbench {
        let tech = match profile.node {
            TechNode::N65 => Technology::n65(),
            TechNode::N90 => Technology::n90(),
        };
        let lib = Library::standard(tech);
        let design = gen::generate(profile, &lib);
        let placement = dme_placement::place(&design, &lib);
        Testbench {
            lib,
            design,
            placement,
        }
    }

    /// Prepares a profile scaled by `scale` (1.0 = the paper's size).
    pub fn prepare_scaled(profile: &DesignProfile, scale: f64) -> Testbench {
        if (scale - 1.0).abs() < 1e-12 {
            Self::prepare(profile)
        } else {
            Self::prepare(&profile.scaled(scale))
        }
    }
}

/// Parses the scale factor from `--scale <f>` on the command line or the
/// `DME_SCALE` environment variable; defaults to `default` when absent.
///
/// # Panics
///
/// Panics with a usage message if the value does not parse or is outside
/// `(0, 1]`.
pub fn scale_arg(default: f64) -> f64 {
    let mut args = std::env::args();
    let mut scale = None;
    while let Some(a) = args.next() {
        if a == "--scale" {
            let v = args.next().unwrap_or_else(|| usage());
            scale = Some(v.parse::<f64>().unwrap_or_else(|_| usage()));
        }
    }
    let scale = scale
        .or_else(|| std::env::var("DME_SCALE").ok().and_then(|v| v.parse().ok()))
        .unwrap_or(default);
    if !(scale > 0.0 && scale <= 1.0) {
        usage();
    }
    scale
}

fn usage() -> ! {
    eprintln!(
        "usage: <bin> [--scale f] [--trace] [--trace-json path] [--report path] [--verbose]\n\
         with f in (0, 1]; default from DME_SCALE or built-in"
    );
    std::process::exit(2);
}

/// Percentage improvement relative to a base (positive = improved), the
/// papers' "imp. (%)" convention.
pub fn imp_pct(base: f64, new: f64) -> f64 {
    100.0 * (base - new) / base
}

/// RAII guard for one observed benchmark run; created by [`obs_session`].
/// On drop it writes the run manifest (when `--report <path>` was
/// given), appends a normalized QoR record to the history file (when
/// `--qor-history <path>` was given), and prints the end-of-run summary
/// table to stderr.
pub struct ObsSession {
    report: Option<String>,
    qor_history: Option<String>,
    /// Live snapshot publisher (when `DME_SNAPSHOT_MS` is set); stopped
    /// before the manifest write so the `final` snapshot precedes it.
    publisher: Option<dme_obs::publisher::Publisher>,
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if let Some(mut publisher) = self.publisher.take() {
            publisher.stop();
        }
        if !dme_obs::enabled() {
            return;
        }
        dme_obs::set_meta_str("status", "ok");
        if let Some(path) = &self.report {
            match dme_obs::write_report(path) {
                Ok(()) => dme_obs::info!("wrote run manifest {path}"),
                Err(e) => dme_obs::error!("writing run manifest {path}: {e}"),
            }
        }
        if let Some(path) = &self.qor_history {
            match dme_qor::normalize_manifest(&dme_obs::manifest_json()) {
                Ok(mut rec) => {
                    rec.ts_s = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_secs_f64())
                        .unwrap_or(0.0);
                    match dme_qor::append_history(std::path::Path::new(path), &rec) {
                        Ok(()) => dme_obs::info!("appended QoR record to {path}"),
                        Err(e) => dme_obs::error!("appending QoR record to {path}: {e}"),
                    }
                }
                Err(e) => dme_obs::error!("normalizing manifest for {path}: {e}"),
            }
        }
        eprint!("{}", dme_obs::summary_table());
        dme_obs::close_trace();
    }
}

/// Applies the observability options shared by every bench binary —
/// `--trace` (collect telemetry), `--trace-json <path>` (stream JSONL
/// events), `--report <path>` (write a run manifest; implies `--trace`),
/// `--qor-history <path>` (append a normalized QoR record on exit;
/// implies `--trace`), `--verbose` (raise the stderr log threshold to
/// `info`) — and stamps run metadata (binary name, git SHA from
/// `DME_GIT_SHA`, thread count, feature flags). Tracing can equivalently
/// be enabled via `DME_TRACE`/`DME_TRACE_JSON`.
///
/// Table/figure output itself always goes to stdout; keep the returned
/// guard alive to the end of `main` so the manifest covers the full run.
pub fn obs_session(bin: &str) -> ObsSession {
    let mut args = std::env::args();
    let mut report = None;
    let mut qor_history = None;
    let mut trace = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => trace = true,
            "--trace-json" => {
                if let Some(path) = args.next() {
                    if let Err(e) = dme_obs::set_trace_path(&path) {
                        dme_obs::error!("opening trace {path}: {e}");
                    }
                }
            }
            "--report" => report = args.next(),
            "--qor-history" => qor_history = args.next(),
            "--verbose" => dme_obs::set_max_level(dme_obs::Level::Info),
            _ => {}
        }
    }
    if trace || report.is_some() || qor_history.is_some() {
        dme_obs::set_enabled(true);
    }
    if dme_obs::enabled() {
        dme_obs::set_meta_str("bin", bin);
        if let Ok(sha) = std::env::var("DME_GIT_SHA") {
            if !sha.trim().is_empty() {
                dme_obs::set_meta_str("git_sha", sha.trim());
            }
        }
        dme_obs::set_meta_num("threads", dme_par::num_threads() as f64);
        dme_obs::set_meta_bool("feature_parallel", dme_par::parallel_enabled());
        dme_obs::set_meta_num(
            "manifest_schema_version",
            f64::from(dme_obs::MANIFEST_SCHEMA_VERSION),
        );
        if let Some(path) = &report {
            dme_obs::set_report_path(path);
        }
        // A bench bin that panics mid-table still leaves a flushed
        // trace and a `status: "panicked"` manifest stub.
        dme_obs::install_panic_hook();
    }
    // `DME_SNAPSHOT_MS` starts the live snapshot publisher for bench
    // runs too (long sweeps benefit most from `dmeopt watch`).
    let publisher = dme_obs::publisher::start_from_env();
    if publisher.is_some() {
        dme_obs::install_panic_hook();
    }
    ObsSession {
        report,
        qor_history,
        publisher,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_netlist::profiles;

    #[test]
    fn prepare_produces_legal_placement() {
        let tb = Testbench::prepare(&profiles::tiny());
        tb.placement
            .check_legal(&tb.design.netlist, &tb.lib)
            .expect("legal");
    }

    #[test]
    fn scaled_prepare_shrinks() {
        let tb = Testbench::prepare_scaled(&profiles::small(), 0.2);
        assert!(tb.design.netlist.num_instances() < 500);
    }

    #[test]
    fn improvement_sign_convention() {
        assert!(imp_pct(2.0, 1.8) > 0.0);
        assert!(imp_pct(100.0, 110.0) < 0.0);
    }
}
