//! Benchmark harness shared helpers.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). The helpers here prepare testbenches
//! (library + generated design + placement) and provide the common
//! `--scale` option: the paper's testcases range up to ~100 k cells, and
//! a scale factor in `(0, 1]` shrinks them proportionally for faster
//! runs. Results are printed in the papers' row/column layout; the shape
//! of the numbers (who wins, by roughly what factor) is the reproduction
//! target, not absolute values.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles::TechNode, Design, DesignProfile};
use dme_placement::Placement;

/// A prepared testbench: library, generated design and its placement.
pub struct Testbench {
    /// Standard-cell library for the design's node.
    pub lib: Library,
    /// The generated design.
    pub design: Design,
    /// Legalized placement.
    pub placement: Placement,
}

impl Testbench {
    /// Generates and places a design for a profile.
    pub fn prepare(profile: &DesignProfile) -> Testbench {
        let tech = match profile.node {
            TechNode::N65 => Technology::n65(),
            TechNode::N90 => Technology::n90(),
        };
        let lib = Library::standard(tech);
        let design = gen::generate(profile, &lib);
        let placement = dme_placement::place(&design, &lib);
        Testbench {
            lib,
            design,
            placement,
        }
    }

    /// Prepares a profile scaled by `scale` (1.0 = the paper's size).
    pub fn prepare_scaled(profile: &DesignProfile, scale: f64) -> Testbench {
        if (scale - 1.0).abs() < 1e-12 {
            Self::prepare(profile)
        } else {
            Self::prepare(&profile.scaled(scale))
        }
    }
}

/// Parses the scale factor from `--scale <f>` on the command line or the
/// `DME_SCALE` environment variable; defaults to `default` when absent.
///
/// # Panics
///
/// Panics with a usage message if the value does not parse or is outside
/// `(0, 1]`.
pub fn scale_arg(default: f64) -> f64 {
    let mut args = std::env::args();
    let mut scale = None;
    while let Some(a) = args.next() {
        if a == "--scale" {
            let v = args.next().unwrap_or_else(|| usage());
            scale = Some(v.parse::<f64>().unwrap_or_else(|_| usage()));
        }
    }
    let scale = scale
        .or_else(|| std::env::var("DME_SCALE").ok().and_then(|v| v.parse().ok()))
        .unwrap_or(default);
    if !(scale > 0.0 && scale <= 1.0) {
        usage();
    }
    scale
}

fn usage() -> ! {
    eprintln!("usage: <bin> [--scale f]   with f in (0, 1]; default from DME_SCALE or built-in");
    std::process::exit(2);
}

/// Percentage improvement relative to a base (positive = improved), the
/// papers' "imp. (%)" convention.
pub fn imp_pct(base: f64, new: f64) -> f64 {
    100.0 * (base - new) / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_netlist::profiles;

    #[test]
    fn prepare_produces_legal_placement() {
        let tb = Testbench::prepare(&profiles::tiny());
        tb.placement
            .check_legal(&tb.design.netlist, &tb.lib)
            .expect("legal");
    }

    #[test]
    fn scaled_prepare_shrinks() {
        let tb = Testbench::prepare_scaled(&profiles::small(), 0.2);
        assert!(tb.design.netlist.num_instances() < 500);
    }

    #[test]
    fn improvement_sign_convention() {
        assert!(imp_pct(2.0, 1.8) > 0.0);
        assert!(imp_pct(100.0, 110.0) < 0.0);
    }
}
