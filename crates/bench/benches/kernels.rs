//! Criterion micro-benchmarks of the computational kernels behind the
//! paper's tables: library characterization/fitting, placement, golden
//! STA, path enumeration, QP formulation and the interior-point solve.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dme_bench::Testbench;
use dme_device::Technology;
use dme_dosemap::{DoseGrid, DoseSensitivity};
use dme_liberty::{fit, Library};
use dme_netlist::{gen, profiles};
use dme_qp::{IpmSettings, IpmSolver};
use dme_sta::{analyze, top_k_paths, GeometryAssignment};
use dmeopt::{optimize, DmoptConfig, FormulationParams, Formulation, Layers, OptContext};

fn bench_characterization(c: &mut Criterion) {
    let lib = Library::standard(Technology::n65());
    c.bench_function("fit_library_65nm_45_masters", |b| {
        b.iter(|| fit::fit_library(&lib));
    });
}

fn bench_placement(c: &mut Criterion) {
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    c.bench_function("place_2k_cells", |b| {
        b.iter(|| dme_placement::place(&design, &lib));
    });
}

fn bench_sta(c: &mut Criterion) {
    let tb = Testbench::prepare(&profiles::small());
    let n = tb.design.netlist.num_instances();
    let doses = GeometryAssignment::nominal(n);
    c.bench_function("golden_sta_2k_cells", |b| {
        b.iter(|| analyze(&tb.lib, &tb.design.netlist, &tb.placement, &doses));
    });
}

fn bench_paths(c: &mut Criterion) {
    let tb = Testbench::prepare(&profiles::small());
    let n = tb.design.netlist.num_instances();
    let r = analyze(&tb.lib, &tb.design.netlist, &tb.placement, &GeometryAssignment::nominal(n));
    let setup: Vec<f64> = tb
        .design
        .netlist
        .instances
        .iter()
        .map(|i| tb.lib.cell(i.cell_idx).setup_ns(tb.lib.tech()))
        .collect();
    c.bench_function("top_1000_paths_2k_cells", |b| {
        b.iter(|| top_k_paths(&tb.design.netlist, &r, &setup, 1000));
    });
}

fn bench_formulate_and_solve(c: &mut Criterion) {
    let tb = Testbench::prepare(&profiles::tiny());
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let grid = DoseGrid::with_granularity(tb.placement.die_w_um, tb.placement.die_h_um, 5.0);
    let params = FormulationParams {
        layers: Layers::PolyOnly,
        lo_pct: -5.0,
        hi_pct: 5.0,
        delta_pct: 2.0,
        sensitivity: DoseSensitivity::default(),
        tau_ns: ctx.nominal.mct_ns,
        prune: false,
        tau_ref_ns: ctx.nominal.mct_ns,
        elastic_weight: None,
        hold_margin_ns: None,
    };
    c.bench_function("formulate_tiny_qp", |b| {
        b.iter(|| Formulation::build(&ctx, &grid, &params));
    });
    let form = Formulation::build(&ctx, &grid, &params);
    c.bench_function("ipm_solve_tiny_qp", |b| {
        b.iter_batched(
            || form.qp.clone(),
            |qp| IpmSolver::new(IpmSettings::default()).solve(&qp).expect("solve"),
            BatchSize::SmallInput,
        );
    });
}

fn bench_dmopt_end_to_end(c: &mut Criterion) {
    let tb = Testbench::prepare(&profiles::tiny());
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let mut group = c.benchmark_group("dmopt");
    group.sample_size(10);
    group.bench_function("qp_tiny_end_to_end", |b| {
        b.iter(|| optimize(&ctx, &DmoptConfig::default()).expect("optimize"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_characterization,
    bench_placement,
    bench_sta,
    bench_paths,
    bench_formulate_and_solve,
    bench_dmopt_end_to_end
);
criterion_main!(benches);
