//! Criterion micro-benchmarks of the computational kernels behind the
//! paper's tables: library characterization/fitting, placement, golden
//! STA, path enumeration, QP formulation and the interior-point solve.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dme_bench::Testbench;
use dme_device::Technology;
use dme_dosemap::{DoseGrid, DoseMap, DoseSensitivity};
use dme_liberty::{fit, Library};
use dme_netlist::{gen, profiles, InstId};
use dme_placement::{NetBoxCache, NetPins, PlacementDelta};
use dme_qp::{CsrMatrix, IpmSettings, IpmSolver, IpmStrategy, NewtonBackend};
use dme_sta::{
    analyze, analyze_with_mode, top_k_paths, worst_paths_top_k, AssignmentDelta,
    GeometryAssignment, IncrementalSta, StaMode,
};
use dmeopt::{
    dosepl, optimize, DmoptConfig, DoseplConfig, Formulation, FormulationParams, Layers,
    OptContext, SwapEngine,
};

/// Deterministic pseudorandom dose map in [−4%, +4%] on the given die —
/// the dosePl engine benches only read the map, so no QP solve is needed.
fn synthetic_map(die_w_um: f64, die_h_um: f64, granularity_um: f64, seed: u64) -> DoseMap {
    let grid = DoseGrid::with_granularity(die_w_um, die_h_um, granularity_um);
    let vals: Vec<f64> = (0..grid.num_cells())
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            ((h >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
        })
        .collect();
    DoseMap::from_values(grid, vals)
}

fn bench_characterization(c: &mut Criterion) {
    let lib = Library::standard(Technology::n65());
    c.bench_function("fit_library_65nm_45_masters", |b| {
        b.iter(|| fit::fit_library(&lib));
    });
}

fn bench_placement(c: &mut Criterion) {
    let lib = Library::standard(Technology::n65());
    let design = gen::generate(&profiles::small(), &lib);
    c.bench_function("place_2k_cells", |b| {
        b.iter(|| dme_placement::place(&design, &lib));
    });
}

fn bench_sta(c: &mut Criterion) {
    let tb = Testbench::prepare(&profiles::small());
    let n = tb.design.netlist.num_instances();
    let doses = GeometryAssignment::nominal(n);
    c.bench_function("golden_sta_2k_cells", |b| {
        b.iter(|| analyze(&tb.lib, &tb.design.netlist, &tb.placement, &doses));
    });
}

fn bench_paths(c: &mut Criterion) {
    let tb = Testbench::prepare(&profiles::small());
    let n = tb.design.netlist.num_instances();
    let r = analyze(
        &tb.lib,
        &tb.design.netlist,
        &tb.placement,
        &GeometryAssignment::nominal(n),
    );
    let setup: Vec<f64> = tb
        .design
        .netlist
        .instances
        .iter()
        .map(|i| tb.lib.cell(i.cell_idx).setup_ns(tb.lib.tech()))
        .collect();
    c.bench_function("top_1000_paths_2k_cells", |b| {
        b.iter(|| top_k_paths(&tb.design.netlist, &r, &setup, 1000));
    });
}

fn bench_formulate_and_solve(c: &mut Criterion) {
    let tb = Testbench::prepare(&profiles::tiny());
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let grid = DoseGrid::with_granularity(tb.placement.die_w_um, tb.placement.die_h_um, 5.0);
    let params = FormulationParams {
        layers: Layers::PolyOnly,
        lo_pct: -5.0,
        hi_pct: 5.0,
        delta_pct: 2.0,
        sensitivity: DoseSensitivity::default(),
        tau_ns: ctx.nominal.mct_ns,
        prune: false,
        tau_ref_ns: ctx.nominal.mct_ns,
        elastic_weight: None,
        hold_margin_ns: None,
    };
    c.bench_function("formulate_tiny_qp", |b| {
        b.iter(|| Formulation::build(&ctx, &grid, &params));
    });
    let form = Formulation::build(&ctx, &grid, &params);
    c.bench_function("ipm_solve_tiny_qp", |b| {
        b.iter_batched(
            || form.qp.clone(),
            |qp| {
                IpmSolver::new(IpmSettings::default())
                    .solve(&qp)
                    .expect("solve")
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_dmopt_end_to_end(c: &mut Criterion) {
    let tb = Testbench::prepare(&profiles::tiny());
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let mut group = c.benchmark_group("dmopt");
    group.sample_size(10);
    group.bench_function("qp_tiny_end_to_end", |b| {
        b.iter(|| optimize(&ctx, &DmoptConfig::default()).expect("optimize"));
    });
    group.finish();
}

/// Banded CSR large enough to cross the SpMV parallel cutoff, with
/// deterministic pseudorandom values.
fn banded_csr(rows: usize, cols: usize, band: usize) -> CsrMatrix {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    let mut entries = Vec::new();
    for r in 0..rows {
        for k in 0..band {
            entries.push((r, (r + k * 7) % cols, next()));
        }
    }
    CsrMatrix::from_triplets(rows, cols, &entries)
}

/// Serial-vs-parallel kernel benchmarks parsed by `scripts/bench_perf.sh`
/// into `BENCH_perf.json`. Run with `cargo bench -p dme-bench -- perf/`.
/// Steady-state cost of one span enter/exit pair under the profiler
/// arming states the flow can run in. No testbench setup, and
/// deliberately outside [`bench_perf`]'s filter gate so
/// `cargo bench -- span_pair` answers in seconds.
fn bench_span_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf");
    group.sample_size(20);
    // An outer span stays open so per-exit work is the thread-local
    // fold, not a registry flush — multiplied by `spans_per_run` (from
    // bench_perf's WORKLINE) this bounds the span share of the armed
    // overhead deterministically.
    group.bench_function("span_pair_armed", |b| {
        dme_obs::set_enabled(true);
        let outer = dme_obs::span("span_bench_outer");
        b.iter(|| dme_obs::span("span_bench_leaf"));
        drop(outer);
        dme_obs::set_enabled(false);
        dme_obs::reset();
    });
    // The same pair with the live event stream armed on top (ring push
    // + racy stack-view update per exit). This is the per-span cost a
    // `dmeopt watch` run pays, and what the `profiling_overhead` gate
    // uses when the snapshot publisher is on.
    group.bench_function("span_pair_streamed", |b| {
        dme_obs::set_enabled(true);
        dme_obs::set_stream_armed(true);
        let outer = dme_obs::span("span_bench_outer");
        b.iter(|| dme_obs::span("span_bench_leaf"));
        drop(outer);
        dme_obs::set_stream_armed(false);
        dme_obs::set_enabled(false);
        dme_obs::reset();
    });
    group.finish();
}

fn bench_perf(c: &mut Criterion) {
    // The setup below (testbench, QP formulation, a dosePl run) is
    // expensive; skip it entirely when a bench filter excludes the
    // `perf/` group.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-') && a != "bench");
    if let Some(f) = &filter {
        if !"perf/".contains(f.as_str()) && !f.contains("perf") {
            return;
        }
    }
    println!(
        "INFOLINE dme_par_threads={} dme_par_parallel={}",
        dme_par::num_threads(),
        dme_par::parallel_enabled()
    );
    let mut group = c.benchmark_group("perf");
    group.sample_size(20);

    // --- SpMV, forward and transpose (~200k nnz) ---
    let m = banded_csr(4096, 4096, 48);
    let x: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; 4096];
    dme_par::set_force_serial(true);
    group.bench_function("spmv_mul_serial", |b| b.iter(|| m.mul_vec_into(&x, &mut y)));
    group.bench_function("spmv_tmul_serial", |b| {
        b.iter(|| m.mul_transpose_vec_into(&x, &mut y))
    });
    dme_par::set_force_serial(false);
    group.bench_function("spmv_mul_parallel", |b| {
        b.iter(|| m.mul_vec_into(&x, &mut y))
    });
    group.bench_function("spmv_tmul_parallel", |b| {
        b.iter(|| m.mul_transpose_vec_into(&x, &mut y))
    });

    // --- IPM/CG solve on a DMopt-scale QP ---
    let tb = Testbench::prepare(&profiles::small());
    let ctx = OptContext::new(&tb.lib, &tb.design, &tb.placement);
    let grid = DoseGrid::with_granularity(tb.placement.die_w_um, tb.placement.die_h_um, 5.0);
    let params = FormulationParams {
        layers: Layers::PolyOnly,
        lo_pct: -5.0,
        hi_pct: 5.0,
        delta_pct: 2.0,
        sensitivity: DoseSensitivity::default(),
        tau_ns: ctx.nominal.mct_ns,
        prune: false,
        tau_ref_ns: ctx.nominal.mct_ns,
        elastic_weight: None,
        hold_margin_ns: None,
    };
    let form = Formulation::build(&ctx, &grid, &params);
    // Pin the backend explicitly: under the `Auto` default these two
    // benches would silently run the direct factorization and stop
    // measuring the CG path.
    let cg_group = |name: &str, group: &mut criterion::BenchmarkGroup<'_>| {
        group.bench_function(name, |b| {
            b.iter_batched(
                || form.qp.clone(),
                |qp| {
                    IpmSolver::new(IpmSettings {
                        backend: NewtonBackend::Cg,
                        ..IpmSettings::default()
                    })
                    .solve(&qp)
                    .expect("solve")
                },
                BatchSize::SmallInput,
            );
        });
    };
    dme_par::set_force_serial(true);
    cg_group("cg_ipm_solve_serial", &mut group);
    dme_par::set_force_serial(false);
    cg_group("cg_ipm_solve_parallel", &mut group);

    // --- sparse direct (LDLᵀ) Newton backend on the same QP ---
    // `ipm_direct_solve` pays the full cost each iteration: fresh solver,
    // symbolic analysis + ordering included. `ipm_direct_refactor_solve`
    // reuses one solver across iterations, so only numeric refactors run —
    // the steady state inside QCP bisection, where `set_tau` preserves the
    // sparsity pattern.
    let direct_settings = IpmSettings {
        backend: NewtonBackend::Direct,
        ..IpmSettings::default()
    };
    dme_par::set_force_serial(true);
    group.bench_function("ipm_direct_solve", |b| {
        b.iter_batched(
            || form.qp.clone(),
            |qp| {
                IpmSolver::new(direct_settings.clone())
                    .solve(&qp)
                    .expect("solve")
            },
            BatchSize::SmallInput,
        );
    });
    let direct_solver = IpmSolver::new(direct_settings.clone());
    group.bench_function("ipm_direct_refactor_solve", |b| {
        b.iter(|| direct_solver.solve(&form.qp).expect("solve"));
    });
    dme_par::set_force_serial(false);

    // --- full STA forward pass ---
    let n = tb.design.netlist.num_instances();
    let doses = GeometryAssignment::nominal(n);
    group.bench_function("sta_pass_serial", |b| {
        b.iter(|| {
            analyze_with_mode(
                &tb.lib,
                &tb.design.netlist,
                &tb.placement,
                &doses,
                StaMode::Serial,
            )
        });
    });
    group.bench_function("sta_pass_parallel", |b| {
        b.iter(|| {
            analyze_with_mode(
                &tb.lib,
                &tb.design.netlist,
                &tb.placement,
                &doses,
                StaMode::Parallel,
            )
        });
    });

    // --- dosePl swap evaluation: incremental cone re-time vs full STA ---
    // Each iteration toggles one cell's dose, so every call re-times a
    // genuinely dirty state.
    let mut inc = IncrementalSta::new(&tb.lib, &tb.design.netlist, &tb.placement, &doses);
    let mut toggled = doses.clone();
    let mut flip = false;
    let base = inc.stats();
    group.bench_function("swap_eval_incremental", |b| {
        b.iter(|| {
            flip = !flip;
            toggled.dl_nm[n / 2] = if flip { -4.0 } else { 0.0 };
            inc.retime(&tb.placement, &toggled)
        });
    });
    let stats = inc.stats();
    let calls = (stats.retime_calls - base.retime_calls).max(1);
    println!(
        "WORKLINE swap_eval gates_per_retime={} gates_per_full_sta={} calls={}",
        (stats.gates_retimed - base.gates_retimed) / calls,
        n,
        calls
    );
    let mut flip2 = false;
    group.bench_function("swap_eval_full_sta", |b| {
        b.iter(|| {
            flip2 = !flip2;
            toggled.dl_nm[n / 2] = if flip2 { -4.0 } else { 0.0 };
            analyze(&tb.lib, &tb.design.netlist, &tb.placement, &toggled)
        });
    });

    // --- O(Δ) swap-scratch structures vs their from-scratch baselines,
    // one microbench pair per structure ---
    //
    // These run on a 12k-cell wide/shallow (datapath-like) design: per-swap
    // re-timing cones stay small, so — as at the paper's production design
    // sizes — the candidate loop is dominated by exactly the O(n)/O(G)
    // state maintenance the O(Δ) structures replace, not by the shared
    // incremental STA.
    let wide = profiles::scaling(12_000, 7);
    let wtb = Testbench::prepare(&wide);
    let wctx = OptContext::new(&wtb.lib, &wtb.design, &wtb.placement);
    let wn = wtb.design.netlist.num_instances();

    // Rectangular grid range query vs the full-grid scan it replaces.
    let qgrid = DoseGrid::with_granularity(wtb.placement.die_w_um, wtb.placement.die_h_um, 2.0);
    let (qx, qy) = (0.5 * wtb.placement.die_w_um, 0.5 * wtb.placement.die_h_um);
    let rect = (qx - 6.0, qx + 6.0, qy - 6.0, qy + 6.0);
    group.bench_function("grid_query_scan", |b| {
        b.iter(|| {
            (0..qgrid.num_cells())
                .filter(|&g| {
                    let (cx, cy) = qgrid.cell_center_um(g);
                    cx >= rect.0 && cx <= rect.1 && cy >= rect.2 && cy <= rect.3
                })
                .collect::<Vec<usize>>()
        });
    });
    group.bench_function("grid_query_rect", |b| {
        b.iter(|| qgrid.cells_in_rect(rect.0, rect.1, rect.2, rect.3));
    });

    // γ₃ HPWL what-if query: cached net-box extremes vs pin re-walk. The
    // probe is the cell with the most pins across its nets — high-fanout
    // cells are exactly where the scratch re-walk hurts (the cache answers
    // from O(nets-on-cell) extremes regardless of net size).
    let pins = NetPins::build(&wtb.design.netlist, &wtb.placement);
    let mut nbcache = NetBoxCache::build(&wtb.lib, &wtb.design.netlist, &wtb.placement);
    let probe = (0..wn)
        .max_by_key(|&i| {
            pins.nets_of(InstId(i as u32))
                .iter()
                .map(|&net| pins.pin_count(net))
                .sum::<usize>()
        })
        .map(|i| InstId(i as u32))
        .expect("non-empty design");
    let target = (0.25 * wtb.placement.die_w_um, 0.25 * wtb.placement.die_h_um);
    group.bench_function("hpwl_delta_scratch", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &net in pins.nets_of(probe) {
                acc += pins
                    .scratch_bbox(
                        &wtb.lib,
                        &wtb.design.netlist,
                        &wtb.placement,
                        net,
                        Some((probe, target)),
                    )
                    .map_or(0.0, |bb| bb.half_perimeter());
            }
            acc
        });
    });
    group.bench_function("hpwl_delta_cached", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..nbcache.pins().nets_of(probe).len() {
                let net = nbcache.pins().nets_of(probe)[k];
                let mult = nbcache.pins().mult_of(probe)[k];
                acc += nbcache
                    .bbox_with_moved(
                        &wtb.lib,
                        &wtb.design.netlist,
                        &wtb.placement,
                        net,
                        probe,
                        mult,
                        target,
                    )
                    .map_or(0.0, |bb| bb.half_perimeter());
            }
            acc
        });
    });

    // Candidate undo: full coordinate-vector snapshot vs journal replay.
    // Both engines pay the identical swap + ECO row repack to *apply* a
    // candidate, so the mutation here is just the O(1) cell swap — the
    // pair isolates the capture/restore machinery the structure replaces
    // (O(n) clone + write-back vs O(Δ) journal).
    let mut up = wtb.placement.clone();
    let (ua, ub) = (InstId(10), InstId((wn - 10) as u32));
    group.bench_function("swap_undo_clone", |b| {
        b.iter(|| {
            let pre = (up.x_um.clone(), up.y_um.clone());
            up.swap_cells(ua, ub);
            up.x_um = pre.0;
            up.y_um = pre.1;
        });
    });
    let mut journal = PlacementDelta::new();
    group.bench_function("swap_undo_journal", |b| {
        b.iter(|| {
            let mark = journal.mark();
            up.swap_cells_tracked(ua, ub, &mut journal);
            journal.undo_to(&mut up, mark);
        });
    });

    // Geometry assignment: full per-instance rebuild vs journaled updates
    // of a typical touched set.
    let amap = synthetic_map(wtb.placement.die_w_um, wtb.placement.die_h_um, 2.0, 7);
    group.bench_function("assignment_full", |b| {
        b.iter(|| {
            dmeopt::dosepl::assignment_for_placement(&wctx, &wtb.placement, &amap, None, -2.0)
        });
    });
    let mut inc_assign =
        dmeopt::dosepl::assignment_for_placement(&wctx, &wtb.placement, &amap, None, -2.0);
    let mut adelta = AssignmentDelta::new();
    group.bench_function("assignment_incremental", |b| {
        b.iter(|| {
            let mark = adelta.mark();
            for i in 0..4usize {
                let t = (wn / 2 + i) % wn;
                let (x, y) = wtb
                    .placement
                    .center(&wtb.lib, &wtb.design.netlist, InstId(t as u32));
                let dw = inc_assign.dw_nm[t];
                adelta.set(&mut inc_assign, t, -2.0 * amap.dose_at_um(x, y) + 0.001, dw);
            }
            adelta.undo_to(&mut inc_assign, mark);
        });
    });

    // --- dosePl candidate loop end to end: O(Δ) engine vs reference ---
    // Same 12k-cell design; synthetic fine-grained map so candidate
    // enumeration and per-eval state maintenance dominate, as on
    // production grids.
    let dmap = synthetic_map(wtb.placement.die_w_um, wtb.placement.die_h_um, 2.0, 42);
    let dp_cfg = |engine| DoseplConfig {
        top_k: 300,
        rounds: 2,
        swaps_per_round: 8,
        engine,
        ..DoseplConfig::default()
    };
    // Each end-to-end run is seconds of wall time; a handful of samples
    // is enough for the ratio the sentinel tracks.
    group.sample_size(3);
    group.bench_function("dosepl_run_fast", |b| {
        let cfg = dp_cfg(SwapEngine::Delta);
        b.iter(|| dosepl(&wctx, &dmap, None, -2.0, &cfg));
    });
    // Same run with the self-profiler armed — the pair quantifies the
    // span + allocation-attribution overhead (`profiling_overhead` in
    // BENCH_perf.json; the acceptance budget is < 5% wall).
    group.bench_function("dosepl_run_fast_profiled", |b| {
        let cfg = dp_cfg(SwapEngine::Delta);
        dme_obs::set_enabled(true);
        b.iter(|| dosepl(&wctx, &dmap, None, -2.0, &cfg));
        dme_obs::set_enabled(false);
        dme_obs::reset();
    });
    group.bench_function("dosepl_run_reference", |b| {
        let cfg = dp_cfg(SwapEngine::Reference);
        b.iter(|| dosepl(&wctx, &dmap, None, -2.0, &cfg));
    });
    group.sample_size(20);
    // Measured wall ratios for the armed/disarmed pair. Single runs on
    // a shared 1-core box carry one-sided scheduling noise of up to
    // ~10% — above the 5% budget — so `bench_perf.sh` gates on the
    // deterministic span-cost decomposition (`spans_per_run` emitted
    // here times the `span_pair_armed` cost from `bench_span_cost`,
    // or `span_pair_streamed` when the live stream is on) and records
    // these
    // back-to-back alternating-arm wall ratios (best-of-N and median)
    // as cross-checks.
    {
        let cfg = dp_cfg(SwapEngine::Delta);
        let run = |armed: bool| {
            dme_obs::set_enabled(armed);
            let t = std::time::Instant::now();
            std::hint::black_box(dosepl(&wctx, &dmap, None, -2.0, &cfg));
            dme_obs::set_enabled(false);
            t.elapsed().as_nanos() as u64
        };
        const REPS: usize = 6;
        let mut off_ns = Vec::new();
        let mut on_ns = Vec::new();
        for rep in 0..REPS {
            // Alternate which arm goes first so neither systematically
            // inherits the other's cache/allocator state.
            if rep % 2 == 0 {
                off_ns.push(run(false));
                on_ns.push(run(true));
            } else {
                on_ns.push(run(true));
                off_ns.push(run(false));
            }
        }
        // dosePl is deterministic, so every armed rep records the same
        // span tree: total calls across the registry divided by the
        // armed rep count is the per-run span-pair population.
        let spans_per_run = dme_obs::profile_snapshot()
            .iter()
            .map(|n| n.stats.count)
            .sum::<u64>()
            / REPS as u64;
        dme_obs::reset();
        off_ns.sort_unstable();
        on_ns.sort_unstable();
        let ratio_ppm = (1e6 * on_ns[0] as f64 / off_ns[0] as f64) as u64;
        let med_ratio_ppm = (1e6 * on_ns[REPS / 2] as f64 / off_ns[REPS / 2] as f64) as u64;
        println!(
            "WORKLINE profiling_overhead off_med_ns={} on_med_ns={} ratio_ppm={} \
             off_min_ns={} on_min_ns={} med_ratio_ppm={} spans_per_run={}",
            off_ns[REPS / 2],
            on_ns[REPS / 2],
            ratio_ppm,
            off_ns[0],
            on_ns[0],
            med_ratio_ppm,
            spans_per_run
        );
    }
    let dp_fast = dosepl(&wctx, &dmap, None, -2.0, &dp_cfg(SwapEngine::Delta));
    println!(
        "WORKLINE dosepl_candidates swaps_attempted={} swap_evals={} swaps_accepted={} \
         rounds={} num_instances={}",
        dp_fast.swaps_attempted, dp_fast.swap_evals, dp_fast.swaps_accepted, dp_fast.rounds_run, wn
    );
    let ds = dp_fast.delta_stats;
    println!(
        "WORKLINE dosepl_delta assignment_evals_avoided={} grid_cell_evals_avoided={} \
         hpwl_fast_nets={} hpwl_rescans={} undo_coord_writes={} undo_evals_avoided={}",
        ds.assignment_evals_avoided,
        ds.grid_cell_evals_avoided,
        ds.hpwl_fast_nets,
        ds.hpwl_rescans,
        ds.undo_coord_writes,
        ds.undo_evals_avoided
    );

    // --- push-based retime arbiter: O(cone) scaling proof ---
    // The same single-cell dose perturbation, re-timed through the push
    // API on the 12k and 100k instances of the *same* wide/shallow
    // scaling profile. The level count is fixed, so the fanout cone has
    // the same expected size at both scales; a push retime that stays
    // flat (within 2×) across an 8× design-size step is O(cone), one
    // that grows ~8× still hides an O(n) term.
    for (tag, cells) in [("12k", 12_000usize), ("100k", 100_000usize)] {
        let stb = if cells == 12_000 {
            None // reuse `wtb` below; identical profile and seed
        } else {
            Some(Testbench::prepare(&profiles::scaling(cells, 7)))
        };
        let tb = stb.as_ref().unwrap_or(&wtb);
        let sn = tb.design.netlist.num_instances();
        let sdoses = GeometryAssignment::nominal(sn);
        let mut sinc = IncrementalSta::new(&tb.lib, &tb.design.netlist, &tb.placement, &sdoses);
        let mut stog = sdoses.clone();
        let probe = sn / 2;
        let mut flip = false;
        group.bench_function(format!("retime_cone_{tag}").as_str(), |b| {
            b.iter(|| {
                flip = !flip;
                stog.dl_nm[probe] = if flip { -4.0 } else { 0.0 };
                sinc.retime_touched(&tb.placement, &stog, &[InstId(probe as u32)])
            });
        });
        // Round-start critical-path enumeration at the dosePl default K:
        // heap-driven top-K selection plus K backtraces, no full analyze
        // and no full endpoint sort. O(K log E + K·depth) means the cost
        // barely moves from 12k to 100k endpoints (the log factor).
        group.bench_function(format!("enumerate_{tag}").as_str(), |b| {
            b.iter(|| worst_paths_top_k(&mut sinc, 300));
        });
    }

    // --- end-to-end MinTiming bisection: cold CG probes vs the new
    // default (warm-started probes, cached symbolic factorization) ---
    let qcp_tb = Testbench::prepare(&profiles::tiny());
    let qcp_ctx = OptContext::new(&qcp_tb.lib, &qcp_tb.design, &qcp_tb.placement);
    let qcp_cfg = |warm: bool, backend: NewtonBackend| DmoptConfig {
        objective: dmeopt::Objective::MinTiming { xi_uw: 0.0 },
        grid_g_um: 5.0,
        warm_start: warm,
        solver: dmeopt::SolverKind::Ipm(IpmSettings {
            backend,
            ..IpmSettings::default()
        }),
        ..DmoptConfig::default()
    };
    group.bench_function("qcp_mintiming_cold", |b| {
        let cfg = qcp_cfg(false, NewtonBackend::Cg);
        b.iter(|| optimize(&qcp_ctx, &cfg).expect("cold qcp"));
    });
    group.bench_function("qcp_mintiming_warm", |b| {
        let cfg = qcp_cfg(true, NewtonBackend::Auto);
        b.iter(|| optimize(&qcp_ctx, &cfg).expect("warm qcp"));
    });
    group.finish();

    // dosePl end-to-end work counters on a real run (not timed; the
    // counters are the hardware-independent measure).
    let tiny = Testbench::prepare(&profiles::tiny());
    let tiny_ctx = OptContext::new(&tiny.lib, &tiny.design, &tiny.placement);
    let dm = optimize(
        &tiny_ctx,
        &DmoptConfig {
            grid_g_um: 5.0,
            ..DmoptConfig::default()
        },
    )
    .expect("dmopt");
    let cfg = DoseplConfig {
        top_k: 100,
        rounds: 4,
        swaps_per_round: 2,
        ..DoseplConfig::default()
    };
    let dp = dosepl(&tiny_ctx, &dm.poly_map, None, -2.0, &cfg);
    println!(
        "WORKLINE dosepl_run swap_evals={} incremental_gate_evals={} full_equivalent_gate_evals={}",
        dp.swap_evals, dp.incremental_gate_evals, dp.full_equivalent_gate_evals
    );

    // --- IPM iteration counts: Mehrotra predictor-corrector vs basic
    // path-following (not timed; iteration counts are deterministic on
    // the direct backend, so this is a hardware-independent measure).
    // Two program families: dose-map QPs at five achievable τ bounds —
    // the fixed-τ MinLeakage program the flow solves after bisection;
    // bounds below the nominal MCT are primal-infeasible without the
    // elastic probe relaxation and test stall exits, not convergence —
    // and the bundled Maros–Mészáros-style QPS suite under `tests/qps/`.
    let grid = DoseGrid::with_granularity(tiny.placement.die_w_um, tiny.placement.die_h_um, 5.0);
    let mct = tiny_ctx.nominal.mct_ns;
    let mut dosemap = Vec::new();
    let mut qps = Vec::new();
    let iters = |qp: &dme_qp::QuadProgram, strategy: IpmStrategy| {
        let st = IpmSettings {
            strategy,
            backend: NewtonBackend::Direct,
            ..IpmSettings::default()
        };
        let sol = IpmSolver::new(st).solve(qp).expect("bench QP solves");
        assert_eq!(sol.status, dme_qp::SolveStatus::Solved, "{strategy:?}");
        sol.iterations
    };
    for frac in [1.0, 1.025, 1.05, 1.075, 1.10] {
        let params = FormulationParams {
            layers: Layers::PolyOnly,
            lo_pct: -5.0,
            hi_pct: 5.0,
            delta_pct: 2.0,
            sensitivity: DoseSensitivity::default(),
            tau_ns: frac * mct,
            prune: false,
            tau_ref_ns: mct,
            elastic_weight: None,
            hold_margin_ns: None,
        };
        let form = Formulation::build(&tiny_ctx, &grid, &params);
        dosemap.push((
            iters(&form.qp, IpmStrategy::Mehrotra),
            iters(&form.qp, IpmStrategy::Basic),
        ));
    }
    let qps_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/qps");
    let mut qps_paths: Vec<_> = std::fs::read_dir(qps_dir)
        .expect("tests/qps exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "qps"))
        .collect();
    qps_paths.sort();
    for path in &qps_paths {
        let pb = dme_qp::mps::load_qps(path).expect("fixture parses");
        qps.push((
            iters(&pb.qp, IpmStrategy::Mehrotra),
            iters(&pb.qp, IpmStrategy::Basic),
        ));
    }
    // Upper median keeps the WORKLINE integral (the consumer parses ints).
    let median = |mut v: Vec<usize>| -> usize {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let split = |pairs: &[(usize, usize)]| {
        (
            median(pairs.iter().map(|p| p.0).collect()),
            median(pairs.iter().map(|p| p.1).collect()),
            pairs.iter().map(|p| p.0).sum::<usize>(),
            pairs.iter().map(|p| p.1).sum::<usize>(),
        )
    };
    let (dm_meh, dm_basic, dm_meh_total, dm_basic_total) = split(&dosemap);
    let (qps_meh, qps_basic, qps_meh_total, qps_basic_total) = split(&qps);
    println!(
        "WORKLINE ipm_iterations dosemap_solves={} dosemap_mehrotra_median={dm_meh} \
         dosemap_basic_median={dm_basic} dosemap_mehrotra_total={dm_meh_total} \
         dosemap_basic_total={dm_basic_total} qps_solves={} qps_mehrotra_median={qps_meh} \
         qps_basic_median={qps_basic} qps_mehrotra_total={qps_meh_total} \
         qps_basic_total={qps_basic_total}",
        dosemap.len(),
        qps.len()
    );
}

criterion_group!(
    benches,
    bench_characterization,
    bench_placement,
    bench_sta,
    bench_paths,
    bench_formulate_and_solve,
    bench_dmopt_end_to_end,
    bench_span_cost,
    bench_perf
);
criterion_main!(benches);
