//! Deterministic synthetic design generation.
//!
//! The generator builds layered random logic: combinational cells are
//! assigned to levels `1..=L`, each cell's inputs are drawn either from
//! the immediately previous level (with probability `chain_bias` — this
//! is what creates full-depth, near-critical paths) or from any earlier
//! producer. Flip-flop outputs and primary inputs feed level 1; flip-flop
//! D-pins and primary outputs absorb the deepest outputs. Drive strengths
//! are upgraded after connectivity is known, based on fanout.

use crate::graph::{InstId, Instance, Net, NetId, Netlist};
use crate::profiles::DesignProfile;
use dme_liberty::{CellFunction, Library};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated design: the netlist plus the profile that produced it.
#[derive(Debug, Clone)]
pub struct Design {
    /// The synthesized netlist.
    pub netlist: Netlist,
    /// Generation parameters (carries die area for placement).
    pub profile: DesignProfile,
}

/// Relative frequencies of combinational functions in generated logic,
/// loosely matching the master mix of synthesized datapath + control.
const FUNCTION_MIX: &[(CellFunction, f64)] = &[
    (CellFunction::Inv, 0.17),
    (CellFunction::Buf, 0.02),
    (CellFunction::Nand(2), 0.16),
    (CellFunction::Nor(2), 0.11),
    (CellFunction::Nand(3), 0.07),
    (CellFunction::Nor(3), 0.05),
    (CellFunction::Nand(4), 0.03),
    (CellFunction::Nor(4), 0.02),
    (CellFunction::And(2), 0.06),
    (CellFunction::Or(2), 0.05),
    (CellFunction::Aoi21, 0.06),
    (CellFunction::Oai21, 0.06),
    (CellFunction::Aoi22, 0.03),
    (CellFunction::Oai22, 0.03),
    (CellFunction::Xor2, 0.04),
    (CellFunction::Xnor2, 0.03),
    (CellFunction::Mux2, 0.04),
];

fn sample_function(rng: &mut StdRng) -> CellFunction {
    let total: f64 = FUNCTION_MIX.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for &(f, w) in FUNCTION_MIX {
        if x < w {
            return f;
        }
        x -= w;
    }
    CellFunction::Inv
}

fn master_name(f: CellFunction, x: u32) -> String {
    // Reconstruct the library naming convention via a probe master name.
    let prefix = match f {
        CellFunction::Inv => "INV".to_string(),
        CellFunction::Buf => "BUF".to_string(),
        CellFunction::Nand(k) => format!("NAND{k}"),
        CellFunction::Nor(k) => format!("NOR{k}"),
        CellFunction::And(k) => format!("AND{k}"),
        CellFunction::Or(k) => format!("OR{k}"),
        CellFunction::Aoi21 => "AOI21".to_string(),
        CellFunction::Oai21 => "OAI21".to_string(),
        CellFunction::Aoi22 => "AOI22".to_string(),
        CellFunction::Oai22 => "OAI22".to_string(),
        CellFunction::Xor2 => "XOR2".to_string(),
        CellFunction::Xnor2 => "XNOR2".to_string(),
        CellFunction::Mux2 => "MUX2".to_string(),
        CellFunction::Dff => "DFF".to_string(),
        CellFunction::Dffr => "DFFR".to_string(),
        CellFunction::Dffs => "DFFS".to_string(),
        CellFunction::Dffrs => "DFFRS".to_string(),
        CellFunction::Latch => "LATCH".to_string(),
        CellFunction::Sdff => "SDFF".to_string(),
    };
    format!("{prefix}X{x}")
}

/// Generates a design from a profile against a library.
///
/// The function is deterministic for a given `(profile, library)` pair.
///
/// # Panics
///
/// Panics if the library is missing an X1 master of the function mix or
/// the `DFFX1` master (the [`Library::standard`] libraries always have
/// them), or if the profile has fewer than two levels.
pub fn generate(profile: &DesignProfile, lib: &Library) -> Design {
    assert!(profile.levels >= 2, "need at least 2 logic levels");
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let n_total = profile.target_cells;
    let n_seq = ((n_total as f64 * profile.seq_fraction) as usize).max(1);
    let n_comb = n_total - n_seq;
    let levels = profile.levels;

    let mut nl = Netlist::default();

    // Each producer carries a latent "lane" coordinate in [0, 1] — the
    // bit-slice structure of real datapaths. Consumers draw their inputs
    // from producers with nearby lanes, which gives the netlist genuine
    // 2-D locality (level × lane) for the placer to recover.
    let mut level_outputs: Vec<Vec<(f64, NetId)>> = vec![Vec::new(); levels + 1];

    // --- primary inputs ---
    for i in 0..profile.num_primary_inputs {
        let id = NetId(nl.nets.len() as u32);
        nl.nets.push(Net {
            name: format!("pi{i}"),
            ..Net::default()
        });
        nl.primary_inputs.push(id);
        let lane = (i as f64 + 0.5) / profile.num_primary_inputs.max(1) as f64;
        level_outputs[0].push((lane, id));
    }

    // --- flip-flops (outputs feed level 0; D inputs connected later) ---
    let dff_idx = lib.index_of("DFFX1").expect("DFFX1 in library");
    let mut ff_ids = Vec::with_capacity(n_seq);
    let mut ff_lanes = Vec::with_capacity(n_seq);
    for i in 0..n_seq {
        let out = NetId(nl.nets.len() as u32);
        nl.nets.push(Net {
            name: format!("ffq{i}"),
            ..Net::default()
        });
        let id = InstId(nl.instances.len() as u32);
        nl.instances.push(Instance {
            name: format!("ff{i}"),
            cell_idx: dff_idx,
            inputs: vec![NetId(u32::MAX)], // patched once logic exists
            output: out,
            is_sequential: true,
        });
        nl.nets[out.0 as usize].driver = Some(id);
        let lane = (i as f64 + 0.5) / n_seq as f64;
        level_outputs[0].push((lane, out));
        ff_ids.push(id);
        ff_lanes.push(lane);
    }
    level_outputs[0].sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite lanes"));

    // --- distribute combinational cells across levels ---
    // weight(ℓ) ∝ exp(−taper·(ℓ−1)/L); uniform when taper = 0.
    let weights: Vec<f64> = (1..=levels)
        .map(|l| (-profile.level_taper * (l - 1) as f64 / levels as f64).exp())
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut per_level: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * n_comb as f64).floor() as usize)
        .collect();
    // Guarantee at least one cell per level, then fix the total.
    for c in per_level.iter_mut() {
        if *c == 0 {
            *c = 1;
        }
    }
    let mut assigned: usize = per_level.iter().sum();
    let mut l = 0usize;
    while assigned < n_comb {
        per_level[l % levels] += 1;
        assigned += 1;
        l += 1;
    }
    while assigned > n_comb {
        let idx = per_level
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        per_level[idx] -= 1;
        assigned -= 1;
    }

    // --- create combinational cells level by level ---
    // `pick_near` selects a producer with a lane close to the target lane
    // (triangular jitter), implementing the bit-slice locality.
    fn pick_near(pool: &[(f64, NetId)], lane: f64, sigma: f64, rng: &mut StdRng) -> NetId {
        let n = pool.len();
        let jitter = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * sigma;
        let idx = ((lane + jitter) * n as f64)
            .floor()
            .clamp(0.0, n as f64 - 1.0) as usize;
        pool[idx].1
    }
    // Designs like AES are built from S structurally identical slices
    // (byte columns); stamping the same random draws into S lane bands
    // reproduces the resulting path-delay degeneracy (the near-critical
    // "hill" of Table VII). `slices = 1` is plain random logic.
    let slices = profile.slices.max(1);
    for (lvl_m1, &count) in per_level.iter().enumerate() {
        let level = lvl_m1 + 1;
        let stamped = count / slices;
        let remainder = count - stamped * slices;
        // Shared draws for the stamped positions of this level.
        #[derive(Clone)]
        struct Draw {
            f: CellFunction,
            lane_frac: f64,
            pin_src: Vec<(bool, f64, f64)>, // (chain?, level_frac, jitter)
        }
        let mut draws = Vec::with_capacity(stamped);
        for _ in 0..stamped {
            let f = sample_function(&mut rng);
            let pin_src = (0..f.num_inputs())
                .map(|_| {
                    (
                        rng.gen::<f64>() < profile.chain_bias,
                        rng.gen::<f64>(),
                        rng.gen::<f64>() + rng.gen::<f64>() - 1.0,
                    )
                })
                .collect();
            draws.push(Draw {
                f,
                lane_frac: rng.gen(),
                pin_src,
            });
        }
        let emit = |f: CellFunction,
                    lane: f64,
                    pin_src: &[(bool, f64, f64)],
                    nl: &mut Netlist,
                    level_outputs: &mut Vec<Vec<(f64, NetId)>>| {
            let cell_idx = lib
                .index_of(&master_name(f, 1))
                .unwrap_or_else(|| panic!("{} in library", master_name(f, 1)));
            let mut inputs = Vec::with_capacity(pin_src.len());
            for &(chain, lvl_frac, jitter) in pin_src {
                let src_level = if chain || level == 1 {
                    level - 1
                } else {
                    (lvl_frac * (level - 1) as f64) as usize
                };
                let mut sl = src_level;
                while level_outputs[sl].is_empty() {
                    sl -= 1;
                }
                let pool = &level_outputs[sl];
                let idx = ((lane + jitter * 0.08) * pool.len() as f64)
                    .floor()
                    .clamp(0.0, pool.len() as f64 - 1.0) as usize;
                // Fanout capping (what buffer-tree synthesis achieves in a
                // real flow): probe outward for a less-loaded producer so
                // no net ends up with a drive-killing pin count.
                const FANOUT_CAP: usize = 8;
                let mut best = pool[idx].1;
                for probe in 0..20usize {
                    let off = probe.div_ceil(2);
                    let cand = if probe % 2 == 0 {
                        idx + off
                    } else {
                        idx.wrapping_sub(off)
                    };
                    if nl.nets[best.0 as usize].sinks.len() < FANOUT_CAP {
                        break;
                    }
                    if let Some(&(_, c)) = cand.checked_sub(0).and_then(|ci| pool.get(ci)) {
                        if nl.nets[c.0 as usize].sinks.len() < nl.nets[best.0 as usize].sinks.len()
                        {
                            best = c;
                        }
                    }
                }
                inputs.push(best);
            }
            let out = NetId(nl.nets.len() as u32);
            nl.nets.push(Net {
                name: format!("n{}", out.0),
                ..Net::default()
            });
            let id = InstId(nl.instances.len() as u32);
            for (pin, &net) in inputs.iter().enumerate() {
                nl.nets[net.0 as usize].sinks.push((id, pin));
            }
            nl.instances.push(Instance {
                name: format!("u{}", id.0),
                cell_idx,
                inputs,
                output: out,
                is_sequential: false,
            });
            nl.nets[out.0 as usize].driver = Some(id);
            level_outputs[level].push((lane, out));
        };
        for s in 0..slices {
            for d in &draws {
                // Mirror the draw into slice s's lane band.
                let lane = (s as f64 + d.lane_frac) / slices as f64;
                emit(d.f, lane, &d.pin_src, &mut nl, &mut level_outputs);
            }
        }
        for _ in 0..remainder {
            let f = sample_function(&mut rng);
            let pin_src: Vec<(bool, f64, f64)> = (0..f.num_inputs())
                .map(|_| {
                    (
                        rng.gen::<f64>() < profile.chain_bias,
                        rng.gen::<f64>(),
                        rng.gen::<f64>() + rng.gen::<f64>() - 1.0,
                    )
                })
                .collect();
            let lane: f64 = rng.gen();
            emit(f, lane, &pin_src, &mut nl, &mut level_outputs);
        }
        level_outputs[level].sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite lanes"));
    }

    // --- connect flip-flop D inputs to deep logic ---
    // Deep levels make register-to-register paths the critical ones; the
    // profile controls how deep the taps reach (Table VII shaping).
    let deep_start = ((levels as f64 * profile.ff_tap_deep_frac) as usize).min(levels - 1);
    let mut deep_pool: Vec<(f64, NetId)> = level_outputs[deep_start..]
        .iter()
        .flatten()
        .copied()
        .collect();
    let mut any_pool: Vec<(f64, NetId)> = level_outputs[1..].iter().flatten().copied().collect();
    deep_pool.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite lanes"));
    any_pool.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite lanes"));
    for (k, &ff) in ff_ids.iter().enumerate() {
        let pool = if deep_pool.is_empty() {
            &any_pool
        } else {
            &deep_pool
        };
        let net = pick_near(pool, ff_lanes[k], 0.1, &mut rng);
        let inst = &mut nl.instances[ff.0 as usize];
        inst.inputs[0] = net;
        nl.nets[net.0 as usize].sinks.push((ff, 0));
    }

    // --- primary outputs: every net without sinks becomes a PO ---
    for i in 0..nl.nets.len() {
        if nl.nets[i].sinks.is_empty() && nl.nets[i].driver.is_some() {
            nl.nets[i].is_primary_output = true;
            nl.primary_outputs.push(NetId(i as u32));
        }
    }

    // --- fanout-based drive upgrades ---
    upgrade_drives(&mut nl, lib);

    Design {
        netlist: nl,
        profile: profile.clone(),
    }
}

/// Upgrades cell drive strengths based on fanout: nets with heavy fanout
/// get stronger drivers (INV/BUF up to X8, everything else up to X2).
fn upgrade_drives(nl: &mut Netlist, lib: &Library) {
    for i in 0..nl.instances.len() {
        let inst = &nl.instances[i];
        if inst.is_sequential {
            continue;
        }
        let fanout = nl.nets[inst.output.0 as usize].sinks.len();
        let master = lib.cell(inst.cell_idx);
        let f = master.function();
        let want_x = match f {
            CellFunction::Inv | CellFunction::Buf => {
                if fanout > 10 {
                    8
                } else if fanout > 6 {
                    4
                } else if fanout > 3 {
                    2
                } else {
                    1
                }
            }
            _ => {
                if fanout > 3 {
                    2
                } else {
                    1
                }
            }
        };
        if want_x > 1 {
            if let Some(idx) = lib.index_of(&master_name(f, want_x)) {
                nl.instances[i].cell_idx = idx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use dme_device::Technology;

    fn lib65() -> Library {
        Library::standard(Technology::n65())
    }

    #[test]
    fn tiny_design_is_valid() {
        let lib = lib65();
        let d = generate(&profiles::tiny(), &lib);
        d.netlist.validate(&lib).expect("valid netlist");
        assert_eq!(d.netlist.num_instances(), profiles::tiny().target_cells);
        assert_eq!(
            d.netlist.num_nets(),
            profiles::tiny().target_cells + profiles::tiny().num_primary_inputs
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let lib = lib65();
        let a = generate(&profiles::tiny(), &lib);
        let b = generate(&profiles::tiny(), &lib);
        assert_eq!(a.netlist.instances.len(), b.netlist.instances.len());
        for (x, y) in a.netlist.instances.iter().zip(&b.netlist.instances) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let lib = lib65();
        let mut p2 = profiles::tiny();
        p2.seed = 8;
        let a = generate(&profiles::tiny(), &lib);
        let b = generate(&p2, &lib);
        let same = a
            .netlist
            .instances
            .iter()
            .zip(&b.netlist.instances)
            .all(|(x, y)| x.inputs == y.inputs);
        assert!(!same, "seeds must alter connectivity");
    }

    #[test]
    fn small_design_has_expected_shape() {
        let lib = lib65();
        let d = generate(&profiles::small(), &lib);
        d.netlist.validate(&lib).expect("valid");
        let n_seq = d
            .netlist
            .instances
            .iter()
            .filter(|i| i.is_sequential)
            .count();
        let frac = n_seq as f64 / d.netlist.num_instances() as f64;
        assert!((frac - 0.12).abs() < 0.01, "seq fraction = {frac}");
        // Topological order exists and covers everything.
        let order = d.netlist.topo_order().expect("acyclic");
        assert_eq!(order.len(), d.netlist.num_instances());
    }

    #[test]
    fn drive_upgrades_follow_fanout() {
        let lib = lib65();
        let d = generate(&profiles::small(), &lib);
        for inst in &d.netlist.instances {
            let fanout = d.netlist.net(inst.output).sinks.len();
            let drive = lib.cell(inst.cell_idx).drive();
            if fanout > 10 && !inst.is_sequential {
                assert!(
                    drive >= 2.0,
                    "{}: fanout {fanout} at drive {drive}",
                    inst.name
                );
            }
        }
    }

    #[test]
    fn primary_outputs_cover_all_dangling_nets() {
        let lib = lib65();
        let d = generate(&profiles::tiny(), &lib);
        for (i, net) in d.netlist.nets.iter().enumerate() {
            if net.driver.is_some() && net.sinks.is_empty() {
                assert!(
                    net.is_primary_output,
                    "net {i} dangles without being a primary output"
                );
            }
        }
        assert!(!d.netlist.primary_outputs.is_empty());
    }
}
