//! Structural Verilog emission and parsing.
//!
//! Generated designs can be written as a flat gate-level Verilog module
//! (one instance per line, positional pin order `Y, A, B, …` matching
//! the master's input count) and read back against a library. The pair
//! covers the structural subset this workspace produces — no behavioral
//! constructs, one module per file — which is what placement/timing
//! tools exchange.

use crate::graph::{InstId, Instance, Net, NetId, Netlist};
use dme_liberty::Library;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from [`parse_netlist`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseVerilogError {
    /// The text has no `module` header.
    MissingModule,
    /// A statement could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// An instance references a master missing from the library.
    UnknownMaster {
        /// 1-based line number.
        line: usize,
        /// The master name.
        master: String,
    },
    /// An instance has the wrong number of connections for its master.
    PinCount {
        /// 1-based line number.
        line: usize,
        /// Instance name.
        instance: String,
    },
    /// A net is driven by two outputs or an output drives a declared input.
    MultipleDrivers {
        /// Net name.
        net: String,
    },
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVerilogError::MissingModule => write!(f, "no module header found"),
            ParseVerilogError::Syntax { line, message } => {
                write!(f, "verilog syntax error at line {line}: {message}")
            }
            ParseVerilogError::UnknownMaster { line, master } => {
                write!(f, "unknown cell master {master:?} at line {line}")
            }
            ParseVerilogError::PinCount { line, instance } => {
                write!(
                    f,
                    "wrong connection count on instance {instance:?} at line {line}"
                )
            }
            ParseVerilogError::MultipleDrivers { net } => {
                write!(f, "net {net:?} has multiple drivers")
            }
        }
    }
}

impl Error for ParseVerilogError {}

/// Emits a netlist as a flat structural Verilog module.
///
/// Primary inputs and outputs become module ports; every instance is
/// written positionally as `MASTER name (out, in0, in1, …);`. Sequential
/// masters additionally receive a trailing `clk` connection.
pub fn write_netlist(nl: &Netlist, lib: &Library, module: &str) -> String {
    let mut out = String::new();
    let net_name = |id: NetId| format!("n{}", id.0);
    let mut ports: Vec<String> = Vec::new();
    for &pi in &nl.primary_inputs {
        ports.push(net_name(pi));
    }
    for &po in &nl.primary_outputs {
        ports.push(format!("{}_po", net_name(po)));
    }
    let has_seq = nl.instances.iter().any(|i| i.is_sequential);
    if has_seq {
        ports.push("clk".into());
    }
    let _ = writeln!(out, "module {module} ({});", ports.join(", "));
    for &pi in &nl.primary_inputs {
        let _ = writeln!(out, "  input {};", net_name(pi));
    }
    if has_seq {
        let _ = writeln!(out, "  input clk;");
    }
    for &po in &nl.primary_outputs {
        let _ = writeln!(out, "  output {}_po;", net_name(po));
    }
    for (i, net) in nl.nets.iter().enumerate() {
        let id = NetId(i as u32);
        if net.driver.is_some() && !nl.primary_inputs.contains(&id) {
            let _ = writeln!(out, "  wire {};", net_name(id));
        }
    }
    for &po in &nl.primary_outputs {
        let _ = writeln!(out, "  assign {}_po = {};", net_name(po), net_name(po));
    }
    for inst in &nl.instances {
        let master = lib.cell(inst.cell_idx);
        let mut conns: Vec<String> = vec![net_name(inst.output)];
        conns.extend(inst.inputs.iter().map(|&n| net_name(n)));
        if inst.is_sequential {
            conns.push("clk".into());
        }
        let _ = writeln!(
            out,
            "  {} {} ({});",
            master.name(),
            inst.name,
            conns.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Parses a flat structural Verilog module written by [`write_netlist`]
/// (or equivalent: positional connections, output first).
///
/// # Errors
///
/// Returns a [`ParseVerilogError`] describing the first problem found.
pub fn parse_netlist(text: &str, lib: &Library) -> Result<Netlist, ParseVerilogError> {
    // Join statements (a statement ends with ';'), tracking line numbers.
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if pending.is_empty() {
            pending_line = i + 1;
        }
        pending.push(' ');
        pending.push_str(line);
        while let Some(pos) = pending.find(';') {
            let stmt: String = pending[..pos].trim().to_string();
            pending = pending[pos + 1..].to_string();
            if !stmt.is_empty() {
                statements.push((pending_line, stmt));
            }
        }
        if pending.trim() == "endmodule" {
            statements.push((i + 1, "endmodule".into()));
            pending.clear();
        }
    }

    let mut nl = Netlist::default();
    let mut net_ids: HashMap<String, NetId> = HashMap::new();
    let mut intern = |nl: &mut Netlist, name: &str| -> NetId {
        if let Some(&id) = net_ids.get(name) {
            return id;
        }
        let id = NetId(nl.nets.len() as u32);
        nl.nets.push(Net {
            name: name.to_string(),
            ..Net::default()
        });
        net_ids.insert(name.to_string(), id);
        id
    };
    let mut saw_module = false;
    let mut outputs: Vec<String> = Vec::new();
    let mut assigns: Vec<(String, String)> = Vec::new();

    for (line, stmt) in &statements {
        let line = *line;
        let stmt = stmt.trim();
        if stmt.starts_with("module") {
            saw_module = true;
            continue;
        }
        if stmt == "endmodule" {
            break;
        }
        if !saw_module {
            return Err(ParseVerilogError::MissingModule);
        }
        if let Some(rest) = stmt.strip_prefix("input ") {
            for name in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if name == "clk" {
                    continue;
                }
                let id = intern(&mut nl, name);
                if !nl.primary_inputs.contains(&id) {
                    nl.primary_inputs.push(id);
                }
            }
        } else if let Some(rest) = stmt.strip_prefix("output ") {
            outputs.extend(rest.split(',').map(|s| s.trim().to_string()));
        } else if let Some(rest) = stmt.strip_prefix("wire ") {
            for name in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                intern(&mut nl, name);
            }
        } else if let Some(rest) = stmt.strip_prefix("assign ") {
            let mut parts = rest.splitn(2, '=');
            let (lhs, rhs) = (
                parts.next().unwrap_or("").trim().to_string(),
                parts.next().unwrap_or("").trim().to_string(),
            );
            if rhs.is_empty() {
                return Err(ParseVerilogError::Syntax {
                    line,
                    message: "assign without right-hand side".into(),
                });
            }
            assigns.push((lhs, rhs));
        } else {
            // `MASTER name (a, b, c)`
            let open = stmt.find('(').ok_or_else(|| ParseVerilogError::Syntax {
                line,
                message: format!("unrecognized statement {stmt:?}"),
            })?;
            let close = stmt.rfind(')').ok_or_else(|| ParseVerilogError::Syntax {
                line,
                message: "missing ')'".into(),
            })?;
            let head: Vec<&str> = stmt[..open].split_whitespace().collect();
            let [master_name, inst_name] = head[..] else {
                return Err(ParseVerilogError::Syntax {
                    line,
                    message: format!("expected `MASTER name (...)` in {stmt:?}"),
                });
            };
            let cell_idx =
                lib.index_of(master_name)
                    .ok_or_else(|| ParseVerilogError::UnknownMaster {
                        line,
                        master: master_name.to_string(),
                    })?;
            let master = lib.cell(cell_idx);
            let mut conns: Vec<&str> = stmt[open + 1..close].split(',').map(str::trim).collect();
            if master.is_sequential() {
                // Drop the trailing clock connection.
                if conns.last() == Some(&"clk") {
                    conns.pop();
                }
            }
            if conns.len() != master.num_inputs() + 1 {
                return Err(ParseVerilogError::PinCount {
                    line,
                    instance: inst_name.to_string(),
                });
            }
            let out_net = intern(&mut nl, conns[0]);
            let inputs: Vec<NetId> = conns[1..].iter().map(|c| intern(&mut nl, c)).collect();
            let id = InstId(nl.instances.len() as u32);
            if nl.nets[out_net.0 as usize].driver.is_some() {
                return Err(ParseVerilogError::MultipleDrivers {
                    net: conns[0].to_string(),
                });
            }
            nl.nets[out_net.0 as usize].driver = Some(id);
            for (pin, &net) in inputs.iter().enumerate() {
                nl.nets[net.0 as usize].sinks.push((id, pin));
            }
            nl.instances.push(Instance {
                name: inst_name.to_string(),
                cell_idx,
                inputs,
                output: out_net,
                is_sequential: master.is_sequential(),
            });
        }
    }
    if !saw_module {
        return Err(ParseVerilogError::MissingModule);
    }
    // Resolve `assign po = net` pairs into primary-output flags.
    for (lhs, rhs) in assigns {
        if outputs.contains(&lhs) {
            if let Some(&id) = net_ids.get(rhs.as_str()) {
                nl.nets[id.0 as usize].is_primary_output = true;
                nl.primary_outputs.push(id);
            }
        }
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, profiles};
    use dme_device::Technology;

    fn lib() -> Library {
        Library::standard(Technology::n65())
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let lib = lib();
        let d = gen::generate(&profiles::tiny(), &lib);
        let text = write_netlist(&d.netlist, &lib, "tiny");
        let back = parse_netlist(&text, &lib).expect("parse");
        assert_eq!(back.num_instances(), d.netlist.num_instances());
        assert_eq!(back.primary_inputs.len(), d.netlist.primary_inputs.len());
        assert_eq!(back.primary_outputs.len(), d.netlist.primary_outputs.len());
        back.validate(&lib).expect("valid");
        // Instance-by-instance: same master, same connectivity pattern
        // (net ids may be renumbered; compare through net names).
        for (a, b) in d.netlist.instances.iter().zip(&back.instances) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.cell_idx, b.cell_idx);
            assert_eq!(a.inputs.len(), b.inputs.len());
        }
        // Topology equivalence: same paper indexing multiset of levels.
        assert_eq!(
            crate::stats::levels(&d.netlist),
            crate::stats::levels(&back)
        );
    }

    #[test]
    fn emitted_text_is_plausible_verilog() {
        let lib = lib();
        let d = gen::generate(&profiles::tiny(), &lib);
        let text = write_netlist(&d.netlist, &lib, "tiny");
        assert!(text.starts_with("module tiny ("));
        assert!(text.trim_end().ends_with("endmodule"));
        assert!(text.contains("input clk;"));
        assert!(text.contains("DFFX1 ff0 ("));
    }

    #[test]
    fn unknown_master_is_reported() {
        let lib = lib();
        let text = "module m (a);\n input a;\n FOOX9 u0 (w, a);\nendmodule\n";
        assert!(matches!(
            parse_netlist(text, &lib),
            Err(ParseVerilogError::UnknownMaster { .. })
        ));
    }

    #[test]
    fn pin_count_is_checked() {
        let lib = lib();
        let text = "module m (a);\n input a;\n NAND2X1 u0 (w, a);\nendmodule\n";
        assert!(matches!(
            parse_netlist(text, &lib),
            Err(ParseVerilogError::PinCount { .. })
        ));
    }

    #[test]
    fn multiple_drivers_are_rejected() {
        let lib = lib();
        let text = "module m (a);\n input a;\n INVX1 u0 (w, a);\n INVX1 u1 (w, a);\nendmodule\n";
        assert!(matches!(
            parse_netlist(text, &lib),
            Err(ParseVerilogError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn missing_module_is_reported() {
        let lib = lib();
        assert!(matches!(
            parse_netlist("INVX1 u0 (w, a);", &lib),
            Err(ParseVerilogError::MissingModule)
        ));
    }

    #[test]
    fn multiline_statements_parse() {
        let lib = lib();
        let text = "module m (a);\n input a;\n wire w;\n INVX1 u0 (\n   w,\n   a\n );\nendmodule\n";
        let nl = parse_netlist(text, &lib).expect("parse");
        assert_eq!(nl.num_instances(), 1);
    }
}
