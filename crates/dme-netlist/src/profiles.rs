//! Design profiles matching the paper's testcases (Table I).
//!
//! Each profile describes a synthetic design: size (cells, primary
//! inputs, die area) taken directly from Table I, and *shape* parameters
//! tuned so the generated logic reproduces the slack-criticality
//! distribution of Table VII — the AES designs have a broad "hill" of
//! near-critical paths, the JPEG designs a thin critical tail.

/// Technology node selector for a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechNode {
    /// 65 nm node.
    N65,
    /// 90 nm node.
    N90,
}

/// Parameters controlling synthetic design generation.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignProfile {
    /// Design name, e.g. `"AES-65"`.
    pub name: String,
    /// Technology node.
    pub node: TechNode,
    /// Total cell-instance target (combinational + sequential).
    pub target_cells: usize,
    /// Number of primary inputs (Table I: `#Nets − #Cells`).
    pub num_primary_inputs: usize,
    /// Fraction of instances that are flip-flops.
    pub seq_fraction: f64,
    /// Number of combinational logic levels.
    pub levels: usize,
    /// Probability that a cell input comes from the immediately previous
    /// level (high values create many full-depth, near-critical paths).
    pub chain_bias: f64,
    /// Exponential taper of cells across levels: 0 = uniform (all levels
    /// equally populated, AES-like), larger = front-loaded (few deep
    /// cells, JPEG-like thin critical tail).
    pub level_taper: f64,
    /// Number of structurally identical slices the logic is stamped from
    /// (AES-like designs repeat a byte-slice ~16×, which makes many path
    /// delays degenerate); 1 = fully random logic.
    pub slices: usize,
    /// Fraction of the level range whose outputs feed flip-flop D pins:
    /// e.g. 0.9 taps only the deepest 10% of levels (many near-critical
    /// register-to-register paths), 0.5 taps the deepest half (spread
    /// path-depth distribution).
    pub ff_tap_deep_frac: f64,
    /// Die area in mm² (Table I).
    pub die_area_mm2: f64,
    /// Placement utilization assumed when sizing rows.
    pub utilization: f64,
    /// Generator seed (all generation is deterministic).
    pub seed: u64,
}

impl DesignProfile {
    /// Returns a proportionally scaled-down profile (cells, inputs and
    /// area shrink together). Useful for fast tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> DesignProfile {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        DesignProfile {
            name: format!("{}@{factor:.2}", self.name),
            target_cells: ((self.target_cells as f64 * factor) as usize).max(40),
            num_primary_inputs: ((self.num_primary_inputs as f64 * factor) as usize).max(4),
            die_area_mm2: self.die_area_mm2 * factor,
            ..self.clone()
        }
    }
}

/// AES-65: 16 187 cells, 16 450 nets, 0.058 mm² (Table I). Table VII puts
/// 16.5% of its paths within 95–100% of MCT — a dense near-critical hill.
pub fn aes65() -> DesignProfile {
    DesignProfile {
        name: "AES-65".into(),
        node: TechNode::N65,
        target_cells: 16_187,
        num_primary_inputs: 263,
        seq_fraction: 0.12,
        levels: 34,
        chain_bias: 0.93,
        level_taper: 0.0,
        slices: 16,
        ff_tap_deep_frac: 0.93,
        die_area_mm2: 0.058,
        utilization: 0.7,
        seed: 0xAE565,
    }
}

/// JPEG-65: 68 286 cells, 68 311 nets, 0.268 mm²; 4.8% of paths within
/// 95–100% of MCT.
pub fn jpeg65() -> DesignProfile {
    DesignProfile {
        name: "JPEG-65".into(),
        node: TechNode::N65,
        target_cells: 68_286,
        num_primary_inputs: 25,
        seq_fraction: 0.10,
        levels: 46,
        chain_bias: 0.72,
        level_taper: 1.2,
        slices: 4,
        ff_tap_deep_frac: 0.85,
        die_area_mm2: 0.268,
        utilization: 0.7,
        seed: 0x19E665,
    }
}

/// AES-90: 21 944 cells, 22 581 nets, 0.25 mm²; only 0.91% of paths
/// within 95–100% of MCT (a thin critical tail).
pub fn aes90() -> DesignProfile {
    DesignProfile {
        name: "AES-90".into(),
        node: TechNode::N90,
        target_cells: 21_944,
        num_primary_inputs: 637,
        seq_fraction: 0.12,
        levels: 30,
        chain_bias: 0.60,
        level_taper: 2.2,
        slices: 4,
        ff_tap_deep_frac: 0.6,
        die_area_mm2: 0.25,
        utilization: 0.7,
        seed: 0xAE590,
    }
}

/// JPEG-90: 98 555 cells, 105 955 nets, 1.09 mm²; 0.12% of paths within
/// 95–100% of MCT.
pub fn jpeg90() -> DesignProfile {
    DesignProfile {
        name: "JPEG-90".into(),
        node: TechNode::N90,
        target_cells: 98_555,
        num_primary_inputs: 7_400,
        seq_fraction: 0.10,
        levels: 42,
        chain_bias: 0.52,
        level_taper: 3.0,
        slices: 1,
        ff_tap_deep_frac: 0.5,
        die_area_mm2: 1.09,
        utilization: 0.7,
        seed: 0x19E690,
    }
}

/// All four paper testcases in Table I order.
pub fn paper_testcases() -> Vec<DesignProfile> {
    vec![aes65(), jpeg65(), aes90(), jpeg90()]
}

/// Parameterized wide/shallow (datapath-like) scaling profile: the level
/// count is fixed, so a local perturbation's fanout cone has the same
/// expected size at every design size — the shape that isolates O(cone)
/// from O(n) costs when sweeping 12k → 100k → 1M cells. At 12 000 cells
/// and seed 7 this is exactly the 12k design the `perf/dosepl_run_*`
/// benches use.
///
/// # Panics
///
/// Panics if `target_cells` is zero.
pub fn scaling(target_cells: usize, seed: u64) -> DesignProfile {
    assert!(target_cells > 0, "scaling profile needs at least one cell");
    DesignProfile {
        name: format!("SCALE-{target_cells}"),
        node: TechNode::N65,
        target_cells,
        num_primary_inputs: (target_cells * 64 / 12_000).max(16),
        seq_fraction: 0.12,
        levels: 6,
        chain_bias: 0.3,
        level_taper: 0.0,
        slices: 1,
        ff_tap_deep_frac: 0.8,
        die_area_mm2: target_cells as f64 * 5.0e-6,
        utilization: 0.7,
        seed,
    }
}

/// A tiny design for unit tests (fast, but structurally complete).
pub fn tiny() -> DesignProfile {
    DesignProfile {
        name: "TINY".into(),
        node: TechNode::N65,
        target_cells: 120,
        num_primary_inputs: 8,
        seq_fraction: 0.15,
        levels: 8,
        chain_bias: 0.8,
        level_taper: 0.0,
        slices: 1,
        ff_tap_deep_frac: 0.75,
        die_area_mm2: 0.0006,
        utilization: 0.7,
        seed: 7,
    }
}

/// A small-but-realistic design (~2 000 cells) for examples and
/// integration tests.
pub fn small() -> DesignProfile {
    DesignProfile {
        name: "SMALL".into(),
        node: TechNode::N65,
        target_cells: 2_000,
        num_primary_inputs: 48,
        seq_fraction: 0.12,
        levels: 20,
        chain_bias: 0.85,
        level_taper: 0.0,
        slices: 4,
        ff_tap_deep_frac: 0.8,
        die_area_mm2: 0.0075,
        utilization: 0.7,
        seed: 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_are_preserved() {
        assert_eq!(aes65().target_cells, 16_187);
        assert_eq!(jpeg65().target_cells, 68_286);
        assert_eq!(aes90().target_cells, 21_944);
        assert_eq!(jpeg90().target_cells, 98_555);
        // Net counts are cells + primary inputs.
        assert_eq!(aes65().target_cells + aes65().num_primary_inputs, 16_450);
        assert_eq!(jpeg65().target_cells + jpeg65().num_primary_inputs, 68_311);
        assert_eq!(aes90().target_cells + aes90().num_primary_inputs, 22_581);
        assert_eq!(jpeg90().target_cells + jpeg90().num_primary_inputs, 105_955);
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let p = aes65().scaled(0.1);
        assert!(p.target_cells >= 1_600 && p.target_cells <= 1_620);
        assert!((p.die_area_mm2 - 0.0058).abs() < 1e-9);
        assert_eq!(p.levels, aes65().levels);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaling_rejects_bad_factor() {
        let _ = aes65().scaled(0.0);
    }
}
