//! Netlist data structures: instances, nets and the timing DAG.

use dme_liberty::Library;
use std::error::Error;
use std::fmt;

/// Identifier of a cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u32);

/// Identifier of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One placed-and-routed standard-cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// Index of the cell master in the [`Library`].
    pub cell_idx: usize,
    /// Input nets, one per data pin.
    pub inputs: Vec<NetId>,
    /// The single output net.
    pub output: NetId,
    /// Whether this instance is sequential (cached from the master).
    pub is_sequential: bool,
}

/// One net: a driver and its fanout pins.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// The driving instance, or `None` for a primary input.
    pub driver: Option<InstId>,
    /// Fanout: `(instance, input-pin index)` pairs.
    pub sinks: Vec<(InstId, usize)>,
    /// Whether the net also feeds a primary output pad.
    pub is_primary_output: bool,
}

/// A gate-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// All instances; `InstId` indexes into this.
    pub instances: Vec<Instance>,
    /// All nets; `NetId` indexes into this.
    pub nets: Vec<Net>,
    /// Primary input nets.
    pub primary_inputs: Vec<NetId>,
    /// Primary output nets.
    pub primary_outputs: Vec<NetId>,
    /// Cached topological level decomposition (see
    /// [`Netlist::topo_levels`]). Cell-master or placement changes keep it
    /// valid; connectivity edits after the first `topo_levels` call must
    /// go through [`Netlist::invalidate_levels`].
    levels: std::sync::OnceLock<Option<TopoLevels>>,
}

/// Level decomposition of the combinational timing graph: level 0 holds
/// the startpoints (sequential cells and zero-fanin combinational gates),
/// and every gate sits one level above its deepest combinational fanin.
/// Gates within a level have no timing dependencies on each other, so a
/// forward STA pass may evaluate each level's gates in parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoLevels {
    /// `level[k]` lists the instances at depth `k`, ascending by id.
    pub levels: Vec<Vec<InstId>>,
    /// Depth of each instance (indexed by `InstId`).
    pub depth: Vec<u32>,
}

impl TopoLevels {
    /// Total number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Flattened level-major instance order — a valid topological order.
    pub fn flatten(&self) -> Vec<InstId> {
        self.levels.iter().flatten().copied().collect()
    }
}

/// Netlist consistency violations found by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// An instance references a cell index outside the library.
    BadCellIndex(InstId),
    /// Pin count differs from the master's input count.
    PinCountMismatch(InstId),
    /// A net's recorded driver/sink does not match the instance pins.
    InconsistentNet(NetId),
    /// A net has no driver and is not a primary input.
    UndrivenNet(NetId),
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadCellIndex(i) => write!(f, "instance {i} has a bad cell index"),
            ValidateError::PinCountMismatch(i) => write!(f, "instance {i} pin count mismatch"),
            ValidateError::InconsistentNet(n) => write!(f, "net {n} is inconsistent"),
            ValidateError::UndrivenNet(n) => write!(f, "net {n} has no driver"),
            ValidateError::CombinationalCycle => write!(f, "combinational cycle detected"),
        }
    }
}

impl Error for ValidateError {}

impl Netlist {
    /// Number of cell instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Instance by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn instance(&self, id: InstId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    /// Net by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// Iterator over all instance ids.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.instances.len() as u32).map(InstId)
    }

    /// Combinational fanin instances of `id`: drivers of its input nets
    /// that are combinational. Sequential drivers and primary inputs are
    /// timing startpoints and excluded.
    pub fn comb_fanin(&self, id: InstId) -> Vec<InstId> {
        let mut fanin = Vec::new();
        for &net in &self.instance(id).inputs {
            if let Some(drv) = self.net(net).driver {
                if !self.instance(drv).is_sequential {
                    fanin.push(drv);
                }
            }
        }
        fanin
    }

    /// Topological order of the *combinational timing graph*: every
    /// combinational instance appears after all its combinational fanins.
    /// Sequential instances appear first (they are startpoints: their
    /// clk→Q arc does not depend on their D input within a cycle).
    ///
    /// Returns `None` if the combinational part contains a cycle.
    pub fn topo_order(&self) -> Option<Vec<InstId>> {
        let n = self.instances.len();
        let mut indegree = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        // Sequential cells are seeded strictly before zero-fanin
        // combinational gates: a gate fed only by flip-flops has zero
        // combinational indegree yet reads the flops' launch arrivals, so
        // a consumer walking this order must see the flops first.
        let mut queue: Vec<InstId> = Vec::new();
        let mut comb_seeds: Vec<InstId> = Vec::new();
        for id in self.inst_ids() {
            if self.instance(id).is_sequential {
                queue.push(id);
                continue;
            }
            let deg = self.comb_fanin(id).len() as u32;
            indegree[id.0 as usize] = deg;
            if deg == 0 {
                comb_seeds.push(id);
            }
        }
        // Process in id order (within each seed class) for determinism.
        queue.sort_unstable();
        comb_seeds.sort_unstable();
        queue.extend(comb_seeds);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            if self.instance(id).is_sequential {
                // Arcs out of sequential cells are startpoints: they were
                // never counted in any sink's combinational indegree.
                continue;
            }
            // Successors: combinational sinks of the output net.
            for &(sink, _) in &self.net(self.instance(id).output).sinks {
                if self.instance(sink).is_sequential {
                    continue;
                }
                let d = &mut indegree[sink.0 as usize];
                debug_assert!(*d > 0, "indegree underflow at {sink}");
                *d -= 1;
                if *d == 0 {
                    queue.push(sink);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Topological level sets of the combinational timing graph, computed
    /// once and cached. Returns `None` if the combinational part contains
    /// a cycle.
    ///
    /// The cache stays valid across cell-master swaps and placement moves
    /// (neither changes connectivity); after editing `instances`/`nets`
    /// connectivity, call [`Netlist::invalidate_levels`] first.
    pub fn topo_levels(&self) -> Option<&TopoLevels> {
        self.levels.get_or_init(|| self.compute_levels()).as_ref()
    }

    /// Drops the cached level decomposition (required after connectivity
    /// edits so [`Netlist::topo_levels`] recomputes).
    pub fn invalidate_levels(&mut self) {
        self.levels = std::sync::OnceLock::new();
    }

    fn compute_levels(&self) -> Option<TopoLevels> {
        let n = self.instances.len();
        let mut indegree = vec![0u32; n];
        let mut depth = vec![0u32; n];
        // Sequential cells are seeded strictly before zero-fanin
        // combinational gates: a gate fed only by flip-flops has zero
        // *combinational* indegree but still reads the flops' launch
        // arrivals, so it must land on a strictly higher level.
        let mut queue: Vec<InstId> = Vec::new();
        let mut comb_seeds: Vec<InstId> = Vec::new();
        for id in self.inst_ids() {
            if self.instance(id).is_sequential {
                queue.push(id);
                continue;
            }
            let deg = self.comb_fanin(id).len() as u32;
            indegree[id.0 as usize] = deg;
            if deg == 0 {
                comb_seeds.push(id);
            }
        }
        queue.sort_unstable();
        comb_seeds.sort_unstable();
        queue.extend(comb_seeds);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            let seq = self.instance(id).is_sequential;
            let d = depth[id.0 as usize];
            for &(sink, _) in &self.net(self.instance(id).output).sinks {
                if self.instance(sink).is_sequential {
                    // The sink's D input is an endpoint; no intra-cycle arc.
                    continue;
                }
                let s = sink.0 as usize;
                depth[s] = depth[s].max(d + 1);
                if !seq {
                    debug_assert!(indegree[s] > 0, "indegree underflow at {sink}");
                    indegree[s] -= 1;
                    if indegree[s] == 0 {
                        queue.push(sink);
                    }
                }
            }
        }
        if queue.len() != n {
            return None;
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0) as usize;
        let mut levels: Vec<Vec<InstId>> = vec![Vec::new(); max_depth + 1];
        // Iterating in id order keeps each level sorted by id.
        for id in self.inst_ids() {
            levels[depth[id.0 as usize] as usize].push(id);
        }
        Some(TopoLevels { levels, depth })
    }

    /// The paper's node indexing: reverse topological order with the
    /// fictitious sink as node 0 and the fictitious source as node `n+1`.
    /// Returns `index[i] = paper node number of instance i`.
    pub fn paper_indexing(&self) -> Option<Vec<usize>> {
        let order = self.topo_order()?;
        let n = order.len();
        let mut index = vec![0usize; n];
        // Reverse topological: last instance in topo order gets 1, the
        // first gets n (sink = 0, source = n + 1).
        for (pos, id) in order.iter().enumerate() {
            index[id.0 as usize] = n - pos;
        }
        Some(index)
    }

    /// Validates structural consistency against a library.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self, lib: &Library) -> Result<(), ValidateError> {
        for id in self.inst_ids() {
            let inst = self.instance(id);
            if inst.cell_idx >= lib.cells().len() {
                return Err(ValidateError::BadCellIndex(id));
            }
            let master = lib.cell(inst.cell_idx);
            if master.num_inputs() != inst.inputs.len() {
                return Err(ValidateError::PinCountMismatch(id));
            }
            if master.is_sequential() != inst.is_sequential {
                return Err(ValidateError::BadCellIndex(id));
            }
            // Output net must list this instance as driver.
            if self.net(inst.output).driver != Some(id) {
                return Err(ValidateError::InconsistentNet(inst.output));
            }
            // Every input net must list this pin as a sink.
            for (pin, &net) in inst.inputs.iter().enumerate() {
                if !self.net(net).sinks.contains(&(id, pin)) {
                    return Err(ValidateError::InconsistentNet(net));
                }
            }
        }
        for (i, net) in self.nets.iter().enumerate() {
            let nid = NetId(i as u32);
            if net.driver.is_none() && !self.primary_inputs.contains(&nid) {
                return Err(ValidateError::UndrivenNet(nid));
            }
            for &(sink, pin) in &net.sinks {
                if self.instance(sink).inputs.get(pin) != Some(&nid) {
                    return Err(ValidateError::InconsistentNet(nid));
                }
            }
        }
        if self.topo_order().is_none() {
            return Err(ValidateError::CombinationalCycle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;

    /// Builds inv chain: PI -> INV0 -> INV1 -> PO with a DFF tapping INV0.
    fn small(lib: &Library) -> Netlist {
        let inv = lib.index_of("INVX1").unwrap();
        let dff = lib.index_of("DFFX1").unwrap();
        let mut nl = Netlist::default();
        for i in 0..4 {
            nl.nets.push(Net {
                name: format!("n{i}"),
                ..Net::default()
            });
        }
        nl.primary_inputs.push(NetId(0));
        nl.instances.push(Instance {
            name: "u0".into(),
            cell_idx: inv,
            inputs: vec![NetId(0)],
            output: NetId(1),
            is_sequential: false,
        });
        nl.instances.push(Instance {
            name: "u1".into(),
            cell_idx: inv,
            inputs: vec![NetId(1)],
            output: NetId(2),
            is_sequential: false,
        });
        nl.instances.push(Instance {
            name: "ff0".into(),
            cell_idx: dff,
            inputs: vec![NetId(1)],
            output: NetId(3),
            is_sequential: true,
        });
        nl.nets[0].sinks.push((InstId(0), 0));
        nl.nets[1].driver = Some(InstId(0));
        nl.nets[1].sinks.push((InstId(1), 0));
        nl.nets[1].sinks.push((InstId(2), 0));
        nl.nets[2].driver = Some(InstId(1));
        nl.nets[2].is_primary_output = true;
        nl.nets[3].driver = Some(InstId(2));
        nl.primary_outputs.push(NetId(2));
        nl
    }

    #[test]
    fn valid_netlist_passes_validation() {
        let lib = Library::standard(Technology::n65());
        let nl = small(&lib);
        assert_eq!(nl.validate(&lib), Ok(()));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let lib = Library::standard(Technology::n65());
        let nl = small(&lib);
        let order = nl.topo_order().unwrap();
        let pos = |id: u32| {
            order
                .iter()
                .position(|&x| x == InstId(id))
                .expect("present")
        };
        assert!(pos(0) < pos(1), "u0 before u1");
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn paper_indexing_reverses_topo_order() {
        let lib = Library::standard(Technology::n65());
        let nl = small(&lib);
        let idx = nl.paper_indexing().unwrap();
        // u1 is downstream of u0, so u1's paper index is smaller (closer
        // to the sink, which is node 0).
        assert!(idx[1] < idx[0]);
        // All indices in 1..=n.
        for &v in &idx {
            assert!(v >= 1 && v <= nl.num_instances());
        }
    }

    #[test]
    fn topo_levels_match_dependencies() {
        let lib = Library::standard(Technology::n65());
        let nl = small(&lib);
        let lv = nl.topo_levels().expect("acyclic").clone();
        // u0 (level from PI) strictly below u1; the DFF sits at level 0.
        assert!(lv.depth[0] < lv.depth[1]);
        assert_eq!(lv.depth[2], 0);
        // Every combinational gate sits strictly above its combinational
        // fanins (a flop's D pin is an endpoint, not an intra-cycle arc).
        for id in nl.inst_ids() {
            if nl.instance(id).is_sequential {
                continue;
            }
            for f in nl.comb_fanin(id) {
                assert!(lv.depth[f.0 as usize] < lv.depth[id.0 as usize]);
            }
        }
        // The flattened level order is a permutation of all instances.
        let flat = lv.flatten();
        assert_eq!(flat.len(), nl.num_instances());
        // Cached: a second call returns the same decomposition.
        assert_eq!(nl.topo_levels().unwrap(), &lv);
    }

    #[test]
    fn gate_fed_only_by_flop_sits_above_it() {
        let lib = Library::standard(Technology::n65());
        let mut nl = small(&lib);
        // Rewire u1 to read from the DFF output: u1 has no combinational
        // fanin but still depends on the flop's launch arrival.
        nl.instances[1].inputs[0] = NetId(3);
        nl.nets[1].sinks.retain(|&(i, _)| i != InstId(1));
        nl.nets[3].sinks.push((InstId(1), 0));
        let lv = nl.topo_levels().expect("acyclic");
        assert!(lv.depth[1] > lv.depth[2], "u1 must be above the DFF");
        // And the flat topological order sees the flop first.
        let order = nl.topo_order().unwrap();
        let pos = |id: u32| order.iter().position(|&x| x == InstId(id)).unwrap();
        assert!(pos(2) < pos(1));
    }

    #[test]
    fn invalidate_levels_recomputes() {
        let lib = Library::standard(Technology::n65());
        let mut nl = small(&lib);
        let before = nl.topo_levels().expect("acyclic").clone();
        // Cut the u0 -> u1 arc; u1 now hangs off the PI directly.
        nl.instances[1].inputs[0] = NetId(0);
        nl.nets[1].sinks.retain(|&(i, _)| i != InstId(1));
        nl.nets[0].sinks.push((InstId(1), 0));
        nl.invalidate_levels();
        let after = nl.topo_levels().expect("acyclic");
        assert!(after.depth[1] < before.depth[1]);
    }

    #[test]
    fn cycle_is_detected() {
        let lib = Library::standard(Technology::n65());
        let mut nl = small(&lib);
        // Feed u1's output back into u0 (replace the PI connection).
        nl.instances[0].inputs[0] = NetId(2);
        nl.nets[0].sinks.clear();
        nl.nets[2].sinks.push((InstId(0), 0));
        assert_eq!(nl.validate(&lib), Err(ValidateError::CombinationalCycle));
    }

    #[test]
    fn dangling_driverless_net_is_reported() {
        let lib = Library::standard(Technology::n65());
        let mut nl = small(&lib);
        nl.primary_inputs.clear(); // net 0 now has no driver and no PI status
        assert_eq!(nl.validate(&lib), Err(ValidateError::UndrivenNet(NetId(0))));
    }

    #[test]
    fn comb_fanin_excludes_sequential_drivers() {
        let lib = Library::standard(Technology::n65());
        let mut nl = small(&lib);
        // Make u1 read from the DFF output instead of INV0.
        nl.instances[1].inputs[0] = NetId(3);
        nl.nets[1].sinks.retain(|&(i, _)| i != InstId(1));
        nl.nets[3].sinks.push((InstId(1), 0));
        assert!(nl.validate(&lib).is_ok());
        assert!(nl.comb_fanin(InstId(1)).is_empty());
    }
}
