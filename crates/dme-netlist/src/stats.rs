//! Netlist statistics (Table I reporting).

use crate::graph::Netlist;

/// Summary statistics of a netlist, matching the columns of the paper's
/// Table I plus structural extras.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Total cell instances.
    pub num_instances: usize,
    /// Combinational instances.
    pub num_combinational: usize,
    /// Sequential instances.
    pub num_sequential: usize,
    /// Total nets.
    pub num_nets: usize,
    /// Primary inputs.
    pub num_primary_inputs: usize,
    /// Primary outputs.
    pub num_primary_outputs: usize,
    /// Maximum net fanout.
    pub max_fanout: usize,
    /// Average net fanout (sinks per driven net).
    pub avg_fanout: f64,
    /// Longest combinational level depth.
    pub max_level: usize,
}

/// Computes [`NetlistStats`] for a netlist.
pub fn compute(nl: &Netlist) -> NetlistStats {
    let num_sequential = nl.instances.iter().filter(|i| i.is_sequential).count();
    let driven: Vec<usize> = nl
        .nets
        .iter()
        .filter(|n| n.driver.is_some() || !n.sinks.is_empty())
        .map(|n| n.sinks.len())
        .collect();
    let max_fanout = driven.iter().copied().max().unwrap_or(0);
    let avg_fanout = if driven.is_empty() {
        0.0
    } else {
        driven.iter().sum::<usize>() as f64 / driven.len() as f64
    };
    NetlistStats {
        num_instances: nl.num_instances(),
        num_combinational: nl.num_instances() - num_sequential,
        num_sequential,
        num_nets: nl.num_nets(),
        num_primary_inputs: nl.primary_inputs.len(),
        num_primary_outputs: nl.primary_outputs.len(),
        max_fanout,
        avg_fanout,
        max_level: levels(nl),
    }
}

/// Longest combinational depth (in gates) from any startpoint.
pub fn levels(nl: &Netlist) -> usize {
    let Some(order) = nl.topo_order() else {
        return 0;
    };
    let mut level = vec![0usize; nl.num_instances()];
    let mut max = 0;
    for id in order {
        if nl.instance(id).is_sequential {
            continue;
        }
        let lvl = nl
            .comb_fanin(id)
            .iter()
            .map(|f| level[f.0 as usize] + 1)
            .max()
            .unwrap_or(1);
        level[id.0 as usize] = lvl;
        max = max.max(lvl);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, profiles};
    use dme_device::Technology;
    use dme_liberty::Library;

    #[test]
    fn stats_agree_with_profile() {
        let lib = Library::standard(Technology::n65());
        let p = profiles::tiny();
        let d = gen::generate(&p, &lib);
        let s = compute(&d.netlist);
        assert_eq!(s.num_instances, p.target_cells);
        assert_eq!(s.num_primary_inputs, p.num_primary_inputs);
        assert_eq!(s.num_nets, p.target_cells + p.num_primary_inputs);
        assert!(s.max_level <= p.levels);
        assert!(
            s.max_level >= p.levels / 2,
            "depth collapsed: {}",
            s.max_level
        );
        assert!(
            s.avg_fanout > 1.0 && s.avg_fanout < 6.0,
            "fanout = {}",
            s.avg_fanout
        );
    }
}
