//! Gate-level netlists and synthetic design generation.
//!
//! This crate replaces the industrial (Artisan TSMC) AES and JPEG
//! testcases of the paper with deterministic synthetic equivalents. A
//! [`Netlist`] is a DAG of standard-cell [`Instance`]s connected by
//! [`Net`]s, with sequential cells acting as timing startpoints (their Q
//! output) and endpoints (their D input), exactly the "unrolled" view the
//! paper analyzes. The [`generate`](gen::generate) function builds layered
//! random logic whose size matches Table I of the paper and whose
//! path-depth distribution is shaped to reproduce the slack-criticality
//! histograms of Table VII (AES designs have a "hill" of near-critical
//! paths; JPEG designs a thin critical tail).
//!
//! # Example
//!
//! ```
//! use dme_netlist::{gen, profiles};
//! use dme_liberty::Library;
//! use dme_device::Technology;
//!
//! let lib = Library::standard(Technology::n65());
//! let design = gen::generate(&profiles::tiny(), &lib);
//! assert!(design.netlist.validate(&lib).is_ok());
//! ```

#![deny(missing_docs)]

pub mod gen;
mod graph;
pub mod profiles;
pub mod stats;
pub mod verilog;

pub use gen::Design;
pub use graph::{InstId, Instance, Net, NetId, Netlist, TopoLevels, ValidateError};
pub use profiles::DesignProfile;
