//! Property-based tests for generated netlists.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles::TechNode, DesignProfile};
use proptest::prelude::*;

fn random_profile() -> impl Strategy<Value = DesignProfile> {
    (
        60usize..400,
        2usize..32,
        0.05f64..0.25,
        3usize..16,
        0.3f64..0.95,
        0.0f64..3.0,
        1usize..6,
        0.3f64..0.95,
        any::<u64>(),
    )
        .prop_map(
            |(cells, pis, seq, levels, bias, taper, slices, tap, seed)| DesignProfile {
                name: "PROP".into(),
                node: TechNode::N65,
                target_cells: cells,
                num_primary_inputs: pis,
                seq_fraction: seq,
                levels,
                chain_bias: bias,
                level_taper: taper,
                slices,
                ff_tap_deep_frac: tap,
                die_area_mm2: cells as f64 * 4.0e-6, // generous density
                utilization: 0.7,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any profile in the supported envelope produces a structurally
    /// valid, acyclic netlist with the exact requested size.
    #[test]
    fn generated_netlists_are_valid(profile in random_profile()) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        prop_assert_eq!(d.netlist.num_instances(), profile.target_cells);
        prop_assert_eq!(
            d.netlist.num_nets(),
            profile.target_cells + profile.num_primary_inputs
        );
        d.netlist.validate(&lib).expect("valid netlist");
        let order = d.netlist.topo_order().expect("acyclic");
        prop_assert_eq!(order.len(), d.netlist.num_instances());
        // Topological property: every combinational fanin precedes its user.
        let mut pos = vec![0usize; order.len()];
        for (p, id) in order.iter().enumerate() {
            pos[id.0 as usize] = p;
        }
        for id in d.netlist.inst_ids() {
            if d.netlist.instance(id).is_sequential {
                continue; // FF D-pins are endpoints, not topo dependencies
            }
            for f in d.netlist.comb_fanin(id) {
                prop_assert!(pos[f.0 as usize] < pos[id.0 as usize]);
            }
        }
    }

    /// Generation is a pure function of the profile.
    #[test]
    fn generation_deterministic(profile in random_profile()) {
        let lib = Library::standard(Technology::n65());
        let a = gen::generate(&profile, &lib);
        let b = gen::generate(&profile, &lib);
        prop_assert_eq!(a.netlist.instances, b.netlist.instances);
        prop_assert_eq!(a.netlist.nets.len(), b.netlist.nets.len());
    }

    /// The paper indexing is a permutation of 1..=n with the reverse
    /// topological property (consumers get smaller numbers).
    #[test]
    fn paper_indexing_is_reverse_topological(profile in random_profile()) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let idx = d.netlist.paper_indexing().expect("acyclic");
        let mut seen = vec![false; idx.len() + 1];
        for &v in &idx {
            prop_assert!(v >= 1 && v <= idx.len());
            prop_assert!(!seen[v], "duplicate paper index {v}");
            seen[v] = true;
        }
        for id in d.netlist.inst_ids() {
            if d.netlist.instance(id).is_sequential {
                continue;
            }
            for f in d.netlist.comb_fanin(id) {
                prop_assert!(
                    idx[id.0 as usize] < idx[f.0 as usize],
                    "consumer must be numbered closer to the sink"
                );
            }
        }
    }
}
