//! Property-based tests for dose grids, maps and actuator fits.

use dme_dosemap::legendre::{actuator_fit, legendre, ScanRecipe};
use dme_dosemap::{DoseGrid, DoseMap, DoseSensitivity};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every point of the field maps to a grid cell whose rectangle
    /// contains it.
    #[test]
    fn cell_of_contains_point(
        w in 10.0f64..500.0,
        h in 10.0f64..500.0,
        g in 2.0f64..60.0,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let grid = DoseGrid::with_granularity(w, h, g);
        let (x, y) = (fx * w * 0.999, fy * h * 0.999);
        let idx = grid.cell_of(x, y);
        let (cx, cy) = grid.cell_center_um(idx);
        prop_assert!((cx - x).abs() <= 0.5 * grid.pitch_x_um() + 1e-9);
        prop_assert!((cy - y).abs() <= 0.5 * grid.pitch_y_um() + 1e-9);
        // Pitches never exceed the granularity.
        prop_assert!(grid.pitch_x_um() <= g + 1e-12);
        prop_assert!(grid.pitch_y_um() <= g + 1e-12);
    }

    /// Snapping to a step keeps every dose within half a step of the
    /// original and inside any box that is itself step-aligned.
    #[test]
    fn snap_is_bounded(
        doses in proptest::collection::vec(-5.0f64..5.0, 4..40),
        steps in 1usize..10,
    ) {
        let step = 0.1 * steps as f64;
        let n = doses.len();
        let side = (n as f64).sqrt().ceil() as usize;
        let grid = DoseGrid::with_granularity(side as f64 * 5.0, side as f64 * 5.0, 5.0);
        let mut padded = doses.clone();
        padded.resize(grid.num_cells(), 0.0);
        let mut map = DoseMap::from_values(grid, padded.clone());
        map.snap_to_step(step);
        for (orig, snapped) in padded.iter().zip(&map.dose_pct) {
            prop_assert!((orig - snapped).abs() <= 0.5 * step + 1e-12);
            let k = snapped / step;
            prop_assert!((k - k.round()).abs() < 1e-9, "not on step: {snapped}");
        }
    }

    /// The smoothness checker agrees with the max neighbor step.
    #[test]
    fn check_matches_max_step(
        doses in proptest::collection::vec(-5.0f64..5.0, 9..36),
    ) {
        let n = doses.len();
        let side = (n as f64).sqrt().floor() as usize;
        let grid = DoseGrid::with_granularity(side as f64 * 5.0, side as f64 * 5.0, 5.0);
        let mut padded = doses.clone();
        padded.resize(grid.num_cells(), 0.0);
        let map = DoseMap::from_values(grid, padded);
        let max_step = map.max_neighbor_step();
        prop_assert!(map.check(-5.0, 5.0, max_step + 1e-9).is_ok());
        // The checker carries a 1e-6 numerical tolerance, so only a bound
        // clearly below the max step must be rejected.
        if max_step > 1e-4 {
            prop_assert!(map.check(-5.0, 5.0, max_step - 1e-5).is_err());
        }
    }

    /// Legendre recurrence: |Pn(y)| ≤ 1 on [−1, 1] and Pn(±1) = (±1)^n.
    #[test]
    fn legendre_bounds(n in 0usize..9, y in -1.0f64..1.0) {
        prop_assert!(legendre(n, y).abs() <= 1.0 + 1e-12);
        prop_assert!((legendre(n, 1.0) - 1.0).abs() < 1e-12);
        let expect = if n % 2 == 0 { 1.0 } else { -1.0 };
        prop_assert!((legendre(n, -1.0) - expect).abs() < 1e-12);
    }

    /// A scan recipe fitted to its own samples reproduces them.
    #[test]
    fn scan_fit_roundtrip(coeffs in proptest::collection::vec(-2.0f64..2.0, 1..6)) {
        let truth = ScanRecipe { coeffs: coeffs.clone() };
        let samples: Vec<(f64, f64)> = (0..32)
            .map(|i| {
                let y = -1.0 + 2.0 * i as f64 / 31.0;
                (y, truth.dose_at(y))
            })
            .collect();
        let fit = ScanRecipe::fit(&samples, coeffs.len() - 1).expect("fit");
        for &(y, d) in &samples {
            prop_assert!((fit.dose_at(y) - d).abs() < 1e-8);
        }
    }

    /// Separable (slit + scan) maps are realized with ~zero residual; the
    /// fit never *increases* the residual beyond the map's own variation.
    #[test]
    fn actuator_fit_residual_bounded(
        a0 in -2.0f64..2.0,
        a2 in -1.0f64..1.0,
        l2 in -1.0f64..1.0,
        rows in 4usize..12,
        cols in 4usize..12,
    ) {
        let grid = DoseGrid::with_granularity(cols as f64 * 5.0, rows as f64 * 5.0, 5.0);
        let mut vals = vec![0.0; grid.num_cells()];
        for (idx, v) in vals.iter_mut().enumerate() {
            let (c, r) = grid.coords(idx);
            let x = if grid.cols() > 1 { 2.0 * c as f64 / (grid.cols() - 1) as f64 - 1.0 } else { 0.0 };
            let y = if grid.rows() > 1 { 2.0 * r as f64 / (grid.rows() - 1) as f64 - 1.0 } else { 0.0 };
            *v = a0 + a2 * x * x + l2 * legendre(2, y);
        }
        let map = DoseMap::from_values(grid, vals);
        let fit = actuator_fit(&map, 2, 2).expect("fit");
        prop_assert!(fit.rms_residual_pct < 1e-6, "rms = {}", fit.rms_residual_pct);
    }

    /// The banded rectangular range query returns exactly the cells a
    /// full-grid scan of the center-containment predicate returns, in
    /// the same (ascending-index) order.
    #[test]
    fn cells_in_rect_matches_scan(
        w in 10.0f64..300.0,
        h in 10.0f64..300.0,
        g in 2.0f64..40.0,
        fx0 in -0.2f64..1.2,
        fx1 in -0.2f64..1.2,
        fy0 in -0.2f64..1.2,
        fy1 in -0.2f64..1.2,
    ) {
        let grid = DoseGrid::with_granularity(w, h, g);
        let (x_min, x_max) = (fx0.min(fx1) * w, fx0.max(fx1) * w);
        let (y_min, y_max) = (fy0.min(fy1) * h, fy0.max(fy1) * h);
        let scan: Vec<usize> = (0..grid.num_cells())
            .filter(|&idx| {
                let (cx, cy) = grid.cell_center_um(idx);
                cx >= x_min && cx <= x_max && cy >= y_min && cy <= y_max
            })
            .collect();
        let fast = grid.cells_in_rect(x_min, x_max, y_min, y_max);
        prop_assert_eq!(&fast, &scan);
        // The conservative band never misses a matching cell.
        prop_assert!(grid.rect_band_cells(x_min, x_max, y_min, y_max) >= scan.len());
    }

    /// Dose sensitivity round-trips.
    #[test]
    fn sensitivity_roundtrip(d in -5.0f64..5.0) {
        let s = DoseSensitivity::default();
        let back = s.dose_pct_for(s.cd_delta_nm(d));
        prop_assert!((back - d).abs() < 1e-12);
    }
}
