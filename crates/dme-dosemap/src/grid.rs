//! Exposure-field grids and per-grid dose maps.

use std::error::Error;
use std::fmt;

/// The M×N rectangular partition of the exposure field.
///
/// Grid pitches are chosen as the largest values ≤ the user granularity
/// `G` that tile the field exactly — the paper's "width and height ≤ G"
/// rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoseGrid {
    cols: usize,
    rows: usize,
    pitch_x_um: f64,
    pitch_y_um: f64,
    width_um: f64,
    height_um: f64,
}

impl DoseGrid {
    /// Partitions a `width × height` µm field with granularity `g_um`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the granularity is not positive.
    pub fn with_granularity(width_um: f64, height_um: f64, g_um: f64) -> Self {
        assert!(
            width_um > 0.0 && height_um > 0.0 && g_um > 0.0,
            "dimensions must be positive"
        );
        let cols = (width_um / g_um).ceil() as usize;
        let rows = (height_um / g_um).ceil() as usize;
        Self {
            cols,
            rows,
            pitch_x_um: width_um / cols as f64,
            pitch_y_um: height_um / rows as f64,
            width_um,
            height_um,
        }
    }

    /// Number of grid columns (M).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of grid rows (N).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of rectangular grid cells.
    pub fn num_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// Field width, µm.
    pub fn width_um(&self) -> f64 {
        self.width_um
    }

    /// Field height, µm.
    pub fn height_um(&self) -> f64 {
        self.height_um
    }

    /// Grid-cell pitch in x, µm.
    pub fn pitch_x_um(&self) -> f64 {
        self.pitch_x_um
    }

    /// Grid-cell pitch in y, µm.
    pub fn pitch_y_um(&self) -> f64 {
        self.pitch_y_um
    }

    /// Linear index of grid cell `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn index(&self, col: usize, row: usize) -> usize {
        assert!(
            col < self.cols && row < self.rows,
            "grid index out of range"
        );
        row * self.cols + col
    }

    /// `(col, row)` of a linear index.
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx % self.cols, idx / self.cols)
    }

    /// Grid cell containing a point (clamped to the field).
    pub fn cell_of(&self, x_um: f64, y_um: f64) -> usize {
        let c = ((x_um / self.pitch_x_um).floor().max(0.0) as usize).min(self.cols - 1);
        let r = ((y_um / self.pitch_y_um).floor().max(0.0) as usize).min(self.rows - 1);
        self.index(c, r)
    }

    /// Center of a grid cell, µm.
    pub fn cell_center_um(&self, idx: usize) -> (f64, f64) {
        let (c, r) = self.coords(idx);
        (
            (c as f64 + 0.5) * self.pitch_x_um,
            (r as f64 + 0.5) * self.pitch_y_um,
        )
    }

    /// Indices of every grid cell whose *center* lies inside the
    /// inclusive rectangle `[x_min, x_max] × [y_min, y_max]`, ascending —
    /// the same cells (in the same order) as filtering `0..num_cells()`
    /// by center containment, but visiting only the O(area) band of
    /// candidate rows/columns instead of the whole grid. Returns an empty
    /// vector for degenerate or fully outside rectangles.
    pub fn cells_in_rect(&self, x_min: f64, x_max: f64, y_min: f64, y_max: f64) -> Vec<usize> {
        let Some((c_lo, c_hi, r_lo, r_hi)) = self.rect_band(x_min, x_max, y_min, y_max) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for r in r_lo..=r_hi {
            let cy = (r as f64 + 0.5) * self.pitch_y_um;
            if cy < y_min || cy > y_max {
                continue;
            }
            for c in c_lo..=c_hi {
                let cx = (c as f64 + 0.5) * self.pitch_x_um;
                if cx >= x_min && cx <= x_max {
                    out.push(r * self.cols + c);
                }
            }
        }
        out
    }

    /// Number of cells [`DoseGrid::cells_in_rect`] examines for a given
    /// rectangle (the conservative band size) — used by the dosePl
    /// work-avoided telemetry to compare against a full-grid scan.
    pub fn rect_band_cells(&self, x_min: f64, x_max: f64, y_min: f64, y_max: f64) -> usize {
        self.rect_band(x_min, x_max, y_min, y_max)
            .map_or(0, |(c_lo, c_hi, r_lo, r_hi)| {
                (c_hi - c_lo + 1) * (r_hi - r_lo + 1)
            })
    }

    /// Conservative `(c_lo, c_hi, r_lo, r_hi)` band of cells whose center
    /// could lie in the rectangle (±1 cell for floating-point slack);
    /// `None` for degenerate rectangles. Callers apply the exact
    /// center-containment predicate per candidate, so results stay
    /// identical to a full-grid scan.
    fn rect_band(
        &self,
        x_min: f64,
        x_max: f64,
        y_min: f64,
        y_max: f64,
    ) -> Option<(usize, usize, usize, usize)> {
        if !(x_min <= x_max && y_min <= y_max) {
            return None;
        }
        let band = |lo: f64, hi: f64, pitch: f64, count: usize| {
            let a = ((lo / pitch - 0.5).floor() as i64 - 1).max(0) as usize;
            let b = ((hi / pitch - 0.5).ceil() as i64 + 1).clamp(0, count as i64 - 1) as usize;
            (a.min(count - 1), b)
        };
        let (c_lo, c_hi) = band(x_min, x_max, self.pitch_x_um, self.cols);
        let (r_lo, r_hi) = band(y_min, y_max, self.pitch_y_um, self.rows);
        Some((c_lo, c_hi, r_lo, r_hi))
    }

    /// All smoothness-constrained neighbor pairs: horizontal, vertical
    /// and diagonal (the three families of Eq. 4 in the paper).
    pub fn neighbor_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let a = self.index(c, r);
                if c + 1 < self.cols {
                    pairs.push((a, self.index(c + 1, r)));
                }
                if r + 1 < self.rows {
                    pairs.push((a, self.index(c, r + 1)));
                }
                if c + 1 < self.cols && r + 1 < self.rows {
                    pairs.push((a, self.index(c + 1, r + 1)));
                }
            }
        }
        pairs
    }
}

/// Constraint violations reported by [`DoseMap::check`].
#[derive(Debug, Clone, PartialEq)]
pub enum DoseMapError {
    /// A grid dose exceeds the correction range.
    OutOfRange {
        /// Offending grid cell index.
        cell: usize,
        /// Its dose, %.
        dose_pct: f64,
    },
    /// Two neighboring grids differ by more than the smoothness bound.
    SmoothnessViolation {
        /// First grid cell.
        a: usize,
        /// Second grid cell.
        b: usize,
        /// The difference, %.
        diff_pct: f64,
    },
}

impl fmt::Display for DoseMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoseMapError::OutOfRange { cell, dose_pct } => {
                write!(
                    f,
                    "dose {dose_pct}% at grid {cell} is outside the correction range"
                )
            }
            DoseMapError::SmoothnessViolation { a, b, diff_pct } => {
                write!(
                    f,
                    "dose step {diff_pct}% between grids {a} and {b} breaks smoothness"
                )
            }
        }
    }
}

impl Error for DoseMapError {}

/// A per-grid dose-delta map (percent deviations from nominal energy).
#[derive(Debug, Clone, PartialEq)]
pub struct DoseMap {
    /// The grid geometry.
    pub grid: DoseGrid,
    /// Dose delta per grid cell, %.
    pub dose_pct: Vec<f64>,
}

impl DoseMap {
    /// A map with the same dose everywhere.
    pub fn uniform(grid: DoseGrid, dose_pct: f64) -> Self {
        Self {
            dose_pct: vec![dose_pct; grid.num_cells()],
            grid,
        }
    }

    /// A map from explicit per-cell values.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the grid.
    pub fn from_values(grid: DoseGrid, dose_pct: Vec<f64>) -> Self {
        assert_eq!(dose_pct.len(), grid.num_cells(), "value count mismatch");
        Self { grid, dose_pct }
    }

    /// Dose at the grid cell containing a point, %.
    pub fn dose_at_um(&self, x_um: f64, y_um: f64) -> f64 {
        self.dose_pct[self.grid.cell_of(x_um, y_um)]
    }

    /// Largest absolute difference across any neighbor pair, %.
    pub fn max_neighbor_step(&self) -> f64 {
        self.grid
            .neighbor_pairs()
            .iter()
            .map(|&(a, b)| (self.dose_pct[a] - self.dose_pct[b]).abs())
            .fold(0.0, f64::max)
    }

    /// Checks the equipment constraints: box range `[lo, hi]` (Eq. 3) and
    /// smoothness bound `delta` between all neighbor pairs (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns the first violation found (with a small numerical
    /// tolerance).
    pub fn check(&self, lo_pct: f64, hi_pct: f64, delta_pct: f64) -> Result<(), DoseMapError> {
        const TOL: f64 = 1e-6;
        for (cell, &d) in self.dose_pct.iter().enumerate() {
            if d < lo_pct - TOL || d > hi_pct + TOL {
                return Err(DoseMapError::OutOfRange { cell, dose_pct: d });
            }
        }
        for (a, b) in self.grid.neighbor_pairs() {
            let diff = (self.dose_pct[a] - self.dose_pct[b]).abs();
            if diff > delta_pct + TOL {
                return Err(DoseMapError::SmoothnessViolation {
                    a,
                    b,
                    diff_pct: diff,
                });
            }
        }
        Ok(())
    }

    /// Snaps every dose to the nearest multiple of `step_pct` — the
    /// paper's rounding onto the 0.5%-step characterized library
    /// variants. Snapping preserves the box range when the bounds are
    /// themselves multiples of the step, and cannot increase any neighbor
    /// difference by more than one step.
    pub fn snap_to_step(&mut self, step_pct: f64) {
        for d in &mut self.dose_pct {
            *d = (*d / step_pct).round() * step_pct;
        }
    }

    /// Mean dose over the field, %.
    pub fn mean(&self) -> f64 {
        if self.dose_pct.is_empty() {
            return 0.0;
        }
        self.dose_pct.iter().sum::<f64>() / self.dose_pct.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_controls_grid_count() {
        // The paper's AES-65 die (~241 µm square) at 5 µm grids.
        let g = DoseGrid::with_granularity(240.8, 240.8, 5.0);
        assert_eq!(g.cols(), 49);
        assert_eq!(g.rows(), 49);
        // Pitch never exceeds G.
        assert!(g.pitch_x_um() <= 5.0 + 1e-12);
        let coarse = DoseGrid::with_granularity(240.8, 240.8, 30.0);
        assert!(coarse.num_cells() < g.num_cells());
    }

    #[test]
    fn index_round_trips() {
        let g = DoseGrid::with_granularity(100.0, 50.0, 10.0);
        for idx in 0..g.num_cells() {
            let (c, r) = g.coords(idx);
            assert_eq!(g.index(c, r), idx);
        }
    }

    #[test]
    fn cell_of_maps_points_to_cells() {
        let g = DoseGrid::with_granularity(100.0, 100.0, 10.0);
        assert_eq!(g.cell_of(0.0, 0.0), 0);
        assert_eq!(g.cell_of(99.9, 99.9), g.num_cells() - 1);
        // Out-of-field points clamp.
        assert_eq!(g.cell_of(-5.0, 1000.0), g.index(0, 9));
        let (cx, cy) = g.cell_center_um(g.cell_of(55.0, 25.0));
        assert!((cx - 55.0).abs() <= 5.0 && (cy - 25.0).abs() <= 5.0);
    }

    #[test]
    fn neighbor_pairs_count_matches_formula() {
        // Eq. (4): (M−1)(N−1) diagonal + M(N−1) vertical + (M−1)N horizontal.
        let g = DoseGrid::with_granularity(40.0, 30.0, 10.0); // 4 × 3
        let (m, n) = (g.cols(), g.rows());
        let expect = (m - 1) * (n - 1) + m * (n - 1) + (m - 1) * n;
        assert_eq!(g.neighbor_pairs().len(), expect);
    }

    #[test]
    fn check_catches_range_and_smoothness() {
        let g = DoseGrid::with_granularity(30.0, 10.0, 10.0); // 3 × 1
        let mut m = DoseMap::from_values(g, vec![0.0, 6.0, 0.0]);
        assert!(matches!(
            m.check(-5.0, 5.0, 2.0),
            Err(DoseMapError::OutOfRange { cell: 1, .. })
        ));
        m.dose_pct[1] = 3.0;
        assert!(matches!(
            m.check(-5.0, 5.0, 2.0),
            Err(DoseMapError::SmoothnessViolation { .. })
        ));
        m.dose_pct[1] = 1.5;
        assert!(m.check(-5.0, 5.0, 2.0).is_ok());
    }

    #[test]
    fn snapping_quantizes_to_steps() {
        let g = DoseGrid::with_granularity(20.0, 10.0, 10.0);
        let mut m = DoseMap::from_values(g, vec![1.26, -3.74]);
        m.snap_to_step(0.5);
        assert_eq!(m.dose_pct, vec![1.5, -3.5]);
    }

    #[test]
    fn uniform_map_has_zero_step() {
        let g = DoseGrid::with_granularity(100.0, 100.0, 5.0);
        let m = DoseMap::uniform(g, 4.0);
        assert_eq!(m.max_neighbor_step(), 0.0);
        assert_eq!(m.mean(), 4.0);
        assert_eq!(m.dose_at_um(50.0, 50.0), 4.0);
    }
}
