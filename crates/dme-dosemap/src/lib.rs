//! Exposure-dose maps and scanner actuator models.
//!
//! This crate models the manufacturing-side substrate of the paper: the
//! ASML DoseMapper concept. It provides:
//!
//! - [`DoseSensitivity`]: the dose↔CD conversion (the paper uses the
//!   typical −2 nm per % dose);
//! - [`DoseGrid`] / [`DoseMap`]: the M×N rectangular partition of the
//!   exposure field with granularity `G`, per-grid dose deltas, box and
//!   smoothness constraint checking (Eqs. 3–4 of the paper, diagonal
//!   neighbors included) and snapping to characterized 0.5% dose steps;
//! - [`legendre`]: Legendre polynomials and the Dosicom scan-direction
//!   recipe `D_set(y) = Σ Lₙ Pₙ(y)` (up to 8 coefficients), plus the
//!   Unicom-XL slit-direction polynomial profile (up to 6th order), and a
//!   separable actuator fit quantifying how well a grid dose map can be
//!   realized by the physical scanner knobs;
//! - [`metrics`]: ACLV-style CD-uniformity metrics and the classic
//!   (design-blind) DoseMapper correction that minimizes them.
//!
//! # Example
//!
//! ```
//! use dme_dosemap::{DoseGrid, DoseMap};
//!
//! let grid = DoseGrid::with_granularity(100.0, 100.0, 5.0);
//! assert_eq!(grid.cols(), 20);
//! let map = DoseMap::uniform(grid, 1.5);
//! map.check(-5.0, 5.0, 2.0).expect("uniform maps satisfy all bounds");
//! ```

#![deny(missing_docs)]

mod grid;
pub mod io;
pub mod legendre;
pub mod metrics;
pub mod wafer;

pub use grid::{DoseGrid, DoseMap, DoseMapError};

/// Dose-to-CD sensitivity in nm per percent dose change. Increasing dose
/// *decreases* CD, so the value is negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoseSensitivity(pub f64);

impl Default for DoseSensitivity {
    fn default() -> Self {
        // The typical value the paper adopts from production data.
        DoseSensitivity(-2.0)
    }
}

impl DoseSensitivity {
    /// CD (gate length/width) change in nm for a dose change in percent.
    pub fn cd_delta_nm(&self, dose_pct: f64) -> f64 {
        self.0 * dose_pct
    }

    /// Dose change in percent needed for a CD change in nm.
    pub fn dose_pct_for(&self, cd_delta_nm: f64) -> f64 {
        cd_delta_nm / self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_is_negative_and_invertible() {
        let s = DoseSensitivity::default();
        assert!(s.0 < 0.0);
        // +5% dose → −10 nm CD (the paper's endpoints).
        assert_eq!(s.cd_delta_nm(5.0), -10.0);
        let d = s.dose_pct_for(-10.0);
        assert!((d - 5.0).abs() < 1e-12);
    }
}
