//! Dose-map text export/import.
//!
//! Dose maps travel as a small self-describing CSV: a header line with
//! the grid geometry followed by one row of comma-separated doses per
//! grid row (row 0 = bottom). This is the hand-off format between the
//! optimizer and a dose-recipe generation step (and is trivially
//! plottable as a heatmap).

use crate::grid::{DoseGrid, DoseMap};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from [`parse_dose_map`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseDoseMapError {
    /// The geometry header is missing or malformed.
    BadHeader(String),
    /// A dose value failed to parse.
    Number {
        /// 1-based data-row number.
        row: usize,
        /// The offending token.
        token: String,
    },
    /// The value grid does not match the header geometry.
    Shape {
        /// Rows found.
        rows: usize,
        /// Columns found in the first mismatching row.
        cols: usize,
    },
}

impl fmt::Display for ParseDoseMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDoseMapError::BadHeader(h) => write!(f, "bad dose-map header {h:?}"),
            ParseDoseMapError::Number { row, token } => {
                write!(f, "invalid dose {token:?} in data row {row}")
            }
            ParseDoseMapError::Shape { rows, cols } => {
                write!(f, "dose grid shape mismatch at row {rows} ({cols} columns)")
            }
        }
    }
}

impl Error for ParseDoseMapError {}

/// Serializes a dose map (doses in %, one grid row per line).
pub fn write_dose_map(map: &DoseMap) -> String {
    let g = &map.grid;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# dosemap cols={} rows={} width_um={:.4} height_um={:.4}",
        g.cols(),
        g.rows(),
        g.width_um(),
        g.height_um()
    );
    for r in 0..g.rows() {
        let mut row = String::new();
        for c in 0..g.cols() {
            if c > 0 {
                row.push(',');
            }
            let _ = write!(row, "{:.4}", map.dose_pct[g.index(c, r)]);
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Parses the output of [`write_dose_map`].
///
/// # Errors
///
/// Returns a [`ParseDoseMapError`] on header, numeric or shape problems.
pub fn parse_dose_map(text: &str) -> Result<DoseMap, ParseDoseMapError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| ParseDoseMapError::BadHeader("<empty>".into()))?;
    let mut cols = None;
    let mut rows = None;
    let mut width = None;
    let mut height = None;
    for tok in header.split_whitespace() {
        let mut kv = tok.splitn(2, '=');
        match (kv.next(), kv.next()) {
            (Some("cols"), Some(v)) => cols = v.parse::<usize>().ok(),
            (Some("rows"), Some(v)) => rows = v.parse::<usize>().ok(),
            (Some("width_um"), Some(v)) => width = v.parse::<f64>().ok(),
            (Some("height_um"), Some(v)) => height = v.parse::<f64>().ok(),
            _ => {}
        }
    }
    let (Some(cols), Some(rows), Some(width), Some(height)) = (cols, rows, width, height) else {
        return Err(ParseDoseMapError::BadHeader(header.to_string()));
    };
    // with_granularity ceils width/g; passing exactly width/cols can land
    // on 49.000000000000007 and ceil to cols+1, so widen by one ulp-scale
    // epsilon. A remaining mismatch means the header is inconsistent.
    let g = (width / cols as f64).max(1e-9) * (1.0 + 1e-12);
    let grid = DoseGrid::with_granularity(width, height, g);
    if grid.cols() != cols || grid.rows() != rows {
        return Err(ParseDoseMapError::BadHeader(header.to_string()));
    }
    let mut dose = vec![0.0f64; cols * rows];
    let mut nrows = 0usize;
    for (ri, line) in lines.enumerate() {
        if ri >= rows {
            return Err(ParseDoseMapError::Shape {
                rows: ri + 1,
                cols: 0,
            });
        }
        let vals: Vec<&str> = line.split(',').map(str::trim).collect();
        if vals.len() != cols {
            return Err(ParseDoseMapError::Shape {
                rows: ri + 1,
                cols: vals.len(),
            });
        }
        for (ci, v) in vals.iter().enumerate() {
            dose[grid.index(ci, ri)] = v.parse::<f64>().map_err(|_| ParseDoseMapError::Number {
                row: ri + 1,
                token: v.to_string(),
            })?;
        }
        nrows += 1;
    }
    if nrows != rows {
        return Err(ParseDoseMapError::Shape { rows: nrows, cols });
    }
    Ok(DoseMap::from_values(grid, dose))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DoseMap {
        let grid = DoseGrid::with_granularity(40.0, 30.0, 10.0);
        let vals: Vec<f64> = (0..grid.num_cells())
            .map(|i| i as f64 * 0.25 - 1.5)
            .collect();
        DoseMap::from_values(grid, vals)
    }

    #[test]
    fn roundtrip_preserves_values() {
        let map = sample();
        let text = write_dose_map(&map);
        let back = parse_dose_map(&text).expect("parse");
        assert_eq!(back.grid.cols(), map.grid.cols());
        assert_eq!(back.grid.rows(), map.grid.rows());
        for (a, b) in map.dose_pct.iter().zip(&back.dose_pct) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn header_is_self_describing() {
        let text = write_dose_map(&sample());
        assert!(text.starts_with("# dosemap cols=4 rows=3 width_um=40.0000 height_um=30.0000"));
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let text = write_dose_map(&sample());
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        assert!(matches!(
            parse_dose_map(&lines.join("\n")),
            Err(ParseDoseMapError::Shape { .. })
        ));
        // A ragged row.
        let ragged = text.replace(",-1.2500", "");
        assert!(matches!(
            parse_dose_map(&ragged),
            Err(ParseDoseMapError::Shape { .. })
        ));
    }

    #[test]
    fn roundtrip_with_awkward_dimensions() {
        // 240.832 µm at 5 µm granularity: width/cols is not exactly
        // representable, which must not flip the reconstructed grid size.
        let grid = DoseGrid::with_granularity(240.832, 240.832, 5.0);
        let vals = vec![0.5; grid.num_cells()];
        let map = DoseMap::from_values(grid, vals);
        let back = parse_dose_map(&write_dose_map(&map)).expect("parse");
        assert_eq!(back.grid.cols(), map.grid.cols());
        assert_eq!(back.grid.rows(), map.grid.rows());
    }

    #[test]
    fn bad_numbers_and_header_are_detected() {
        let text = write_dose_map(&sample()).replace("-1.5000", "NaNope");
        assert!(matches!(
            parse_dose_map(&text),
            Err(ParseDoseMapError::Number { .. })
        ));
        assert!(matches!(
            parse_dose_map("# dosemap cols=banana\n1,2\n"),
            Err(ParseDoseMapError::BadHeader(_))
        ));
        assert!(matches!(
            parse_dose_map(""),
            Err(ParseDoseMapError::BadHeader(_))
        ));
    }
}
