//! Scanner actuator models: Dosicom Legendre scan recipes and Unicom-XL
//! slit polynomial profiles.
//!
//! The physical scanner cannot set each grid cell independently: the dose
//! field it can realize is (to first order) *separable* — a slit-direction
//! profile `s(x)` applied by the Unicom-XL gray filter (polynomial up to
//! 6th order) plus a scan-direction profile `D_set(y) = Σₙ Lₙ·Pₙ(y)`
//! realized by Dosicom laser-energy modulation (up to 8 Legendre
//! coefficients). [`ActuatorFit`] projects an arbitrary grid dose map
//! onto that realizable subspace and reports the residual.

use crate::grid::DoseMap;
use dme_qp::lsq;

/// Maximum Legendre order supported by the scan recipe (the paper: "up to
/// eight Legendre coefficients").
pub const MAX_SCAN_ORDER: usize = 8;
/// Maximum polynomial order of the slit profile (the paper: "polynomials
/// of up to the 6th order").
pub const MAX_SLIT_ORDER: usize = 6;

/// Legendre polynomial `Pₙ(y)` via the Bonnet recurrence.
///
/// # Panics
///
/// Panics if `y` is outside `[−1, 1]` by more than a small tolerance.
pub fn legendre(n: usize, y: f64) -> f64 {
    assert!(
        (-1.0 - 1e-9..=1.0 + 1e-9).contains(&y),
        "scan position must be in [-1, 1]"
    );
    match n {
        0 => 1.0,
        1 => y,
        _ => {
            let mut p0 = 1.0;
            let mut p1 = y;
            for k in 2..=n {
                let p2 = ((2 * k - 1) as f64 * y * p1 - (k - 1) as f64 * p0) / k as f64;
                p0 = p1;
                p1 = p2;
            }
            p1
        }
    }
}

/// A Dosicom scan-direction dose recipe `D_set(y) = Σₙ₌₁⁸ Lₙ·Pₙ(y)` with
/// an additional constant offset `L₀` (the per-field dose offset the
/// scanner applies).
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRecipe {
    /// Coefficients `L₀..L₈` (constant term first).
    pub coeffs: Vec<f64>,
}

impl ScanRecipe {
    /// Dose at normalized scan position `y ∈ [−1, 1]`, %.
    pub fn dose_at(&self, y: f64) -> f64 {
        self.coeffs
            .iter()
            .enumerate()
            .map(|(n, &c)| c * legendre(n, y))
            .sum()
    }

    /// Least-squares fit of a recipe of the given order to samples
    /// `(y, dose)`.
    ///
    /// # Errors
    ///
    /// Returns an error if there are fewer samples than coefficients.
    pub fn fit(samples: &[(f64, f64)], order: usize) -> Result<Self, dme_qp::SolveError> {
        let order = order.min(MAX_SCAN_ORDER);
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|&(y, _)| (0..=order).map(|n| legendre(n, y)).collect())
            .collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, d)| d).collect();
        let coeffs = lsq::fit_basis(&rows, &ys, None)?;
        Ok(Self { coeffs })
    }
}

/// A Unicom-XL slit profile: an ordinary polynomial in the normalized
/// slit coordinate `x ∈ [−1, 1]`, up to 6th order. ASML's default filter
/// is the quadratic special case.
#[derive(Debug, Clone, PartialEq)]
pub struct SlitProfile {
    /// Polynomial coefficients, constant term first.
    pub coeffs: Vec<f64>,
}

impl SlitProfile {
    /// Dose at normalized slit position `x ∈ [−1, 1]`, %.
    pub fn dose_at(&self, x: f64) -> f64 {
        let mut v = 0.0;
        for &c in self.coeffs.iter().rev() {
            v = v * x + c;
        }
        v
    }

    /// Least-squares polynomial fit of the given order to `(x, dose)`
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns an error if there are fewer samples than coefficients.
    pub fn fit(samples: &[(f64, f64)], order: usize) -> Result<Self, dme_qp::SolveError> {
        let order = order.min(MAX_SLIT_ORDER);
        let xs: Vec<f64> = samples.iter().map(|&(x, _)| x).collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, d)| d).collect();
        let coeffs = lsq::polyfit(&xs, &ys, order)?;
        Ok(Self { coeffs })
    }
}

/// The projection of a grid dose map onto the scanner-realizable
/// separable subspace `slit(x) + scan(y)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ActuatorFit {
    /// Fitted slit (x-direction) profile.
    pub slit: SlitProfile,
    /// Fitted scan (y-direction) recipe.
    pub scan: ScanRecipe,
    /// RMS residual between the grid map and the realizable field, %.
    pub rms_residual_pct: f64,
    /// Maximum absolute residual, %.
    pub max_residual_pct: f64,
}

impl ActuatorFit {
    /// Realized dose at normalized coordinates.
    pub fn dose_at(&self, x: f64, y: f64) -> f64 {
        self.slit.dose_at(x) + self.scan.dose_at(y)
    }
}

/// Fits the separable actuator model to a grid dose map with a joint
/// linear least squares over the union basis (slit polynomial terms +
/// scan Legendre terms; the two constant terms are merged into the slit).
///
/// # Errors
///
/// Returns an error if the grid is too small for the requested orders.
pub fn actuator_fit(
    map: &DoseMap,
    slit_order: usize,
    scan_order: usize,
) -> Result<ActuatorFit, dme_qp::SolveError> {
    let grid = &map.grid;
    // Orders are capped by the hardware limits and by the number of
    // distinct sample positions (an order-k basis needs k+1 columns/rows).
    let slit_order = slit_order
        .min(MAX_SLIT_ORDER)
        .min(grid.cols().saturating_sub(1));
    let scan_order = scan_order
        .clamp(1, MAX_SCAN_ORDER)
        .min(grid.rows().saturating_sub(1).max(1));
    let mut rows = Vec::with_capacity(grid.num_cells());
    let mut ys = Vec::with_capacity(grid.num_cells());
    for idx in 0..grid.num_cells() {
        let (c, r) = grid.coords(idx);
        let x = if grid.cols() > 1 {
            2.0 * c as f64 / (grid.cols() - 1) as f64 - 1.0
        } else {
            0.0
        };
        let y = if grid.rows() > 1 {
            2.0 * r as f64 / (grid.rows() - 1) as f64 - 1.0
        } else {
            0.0
        };
        // Basis: [1, x, …, x^slit_order, P1(y), …, P_scan_order(y)].
        let mut row = Vec::with_capacity(slit_order + scan_order + 1);
        let mut pow = 1.0;
        for _ in 0..=slit_order {
            row.push(pow);
            pow *= x;
        }
        for n in 1..=scan_order {
            row.push(legendre(n, y));
        }
        rows.push(row);
        ys.push(map.dose_pct[idx]);
    }
    let coeffs = lsq::fit_basis(&rows, &ys, None)?;
    let (slit_coeffs, scan_tail) = coeffs.split_at(slit_order + 1);
    let mut scan_coeffs = vec![0.0];
    scan_coeffs.extend_from_slice(scan_tail);
    let fit = ActuatorFit {
        slit: SlitProfile {
            coeffs: slit_coeffs.to_vec(),
        },
        scan: ScanRecipe {
            coeffs: scan_coeffs,
        },
        rms_residual_pct: 0.0,
        max_residual_pct: 0.0,
    };
    // Residuals.
    let mut ss = 0.0;
    let mut mx = 0.0f64;
    for idx in 0..grid.num_cells() {
        let (c, r) = grid.coords(idx);
        let x = if grid.cols() > 1 {
            2.0 * c as f64 / (grid.cols() - 1) as f64 - 1.0
        } else {
            0.0
        };
        let y = if grid.rows() > 1 {
            2.0 * r as f64 / (grid.rows() - 1) as f64 - 1.0
        } else {
            0.0
        };
        let res = map.dose_pct[idx] - fit.dose_at(x, y);
        ss += res * res;
        mx = mx.max(res.abs());
    }
    Ok(ActuatorFit {
        rms_residual_pct: (ss / grid.num_cells() as f64).sqrt(),
        max_residual_pct: mx,
        ..fit
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::DoseGrid;

    #[test]
    fn legendre_known_values() {
        assert_eq!(legendre(0, 0.3), 1.0);
        assert_eq!(legendre(1, 0.3), 0.3);
        // P2(y) = (3y² − 1)/2.
        assert!((legendre(2, 0.5) - (3.0 * 0.25 - 1.0) / 2.0).abs() < 1e-14);
        // P3(1) = 1 for all n at y = 1.
        for n in 0..=8 {
            assert!((legendre(n, 1.0) - 1.0).abs() < 1e-12, "P{n}(1)");
        }
    }

    #[test]
    fn legendre_orthogonality_numerically() {
        // ∫ Pm Pn over [−1,1] ≈ 0 for m ≠ n (midpoint rule).
        let steps = 2000;
        for (m, n) in [(1, 2), (2, 3), (1, 4), (3, 5)] {
            let mut acc = 0.0;
            for k in 0..steps {
                let y = -1.0 + (k as f64 + 0.5) * 2.0 / steps as f64;
                acc += legendre(m, y) * legendre(n, y);
            }
            acc *= 2.0 / steps as f64;
            assert!(acc.abs() < 1e-4, "P{m}·P{n} integral = {acc}");
        }
    }

    #[test]
    fn scan_recipe_fit_recovers_exact_profile() {
        let truth = ScanRecipe {
            coeffs: vec![0.5, 1.0, -0.4, 0.0, 0.2],
        };
        let samples: Vec<(f64, f64)> = (0..40)
            .map(|i| -1.0 + i as f64 / 19.5)
            .map(|y| (y.clamp(-1.0, 1.0), truth.dose_at(y.clamp(-1.0, 1.0))))
            .collect();
        let fit = ScanRecipe::fit(&samples, 4).unwrap();
        for (a, b) in truth.coeffs.iter().zip(&fit.coeffs) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn slit_profile_evaluates_polynomials() {
        let p = SlitProfile {
            coeffs: vec![1.0, 0.0, 2.0],
        }; // 1 + 2x²
        assert!((p.dose_at(0.5) - 1.5).abs() < 1e-14);
        let samples: Vec<(f64, f64)> = (0..20)
            .map(|i| -1.0 + i as f64 / 9.5)
            .map(|x| (x, p.dose_at(x)))
            .collect();
        let fit = SlitProfile::fit(&samples, 2).unwrap();
        for (a, b) in p.coeffs.iter().zip(&fit.coeffs) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn separable_map_fits_exactly() {
        let grid = DoseGrid::with_granularity(100.0, 100.0, 10.0);
        let mut vals = vec![0.0; grid.num_cells()];
        for (idx, v) in vals.iter_mut().enumerate() {
            let (c, r) = grid.coords(idx);
            let x = 2.0 * c as f64 / 9.0 - 1.0;
            let y = 2.0 * r as f64 / 9.0 - 1.0;
            *v = 1.0 + 0.5 * x * x + 0.8 * legendre(2, y);
        }
        let map = DoseMap::from_values(grid, vals);
        let fit = actuator_fit(&map, 2, 2).unwrap();
        assert!(
            fit.rms_residual_pct < 1e-9,
            "rms = {}",
            fit.rms_residual_pct
        );
    }

    #[test]
    fn checkerboard_map_is_not_realizable() {
        // A checkerboard has no separable structure: the residual must
        // stay close to the map's own variation.
        let grid = DoseGrid::with_granularity(80.0, 80.0, 10.0);
        let vals: Vec<f64> = (0..grid.num_cells())
            .map(|idx| {
                let (c, r) = grid.coords(idx);
                if (c + r) % 2 == 0 {
                    2.0
                } else {
                    -2.0
                }
            })
            .collect();
        let map = DoseMap::from_values(grid, vals);
        let fit = actuator_fit(&map, 6, 8).unwrap();
        assert!(fit.rms_residual_pct > 1.0, "rms = {}", fit.rms_residual_pct);
    }

    #[test]
    #[should_panic(expected = "scan position")]
    fn legendre_rejects_out_of_domain() {
        let _ = legendre(2, 1.5);
    }
}
