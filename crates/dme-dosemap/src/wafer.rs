//! Across-wafer variation and per-field dose correction (the paper's
//! stated "ongoing work": extending dose-map optimization to minimize
//! delay variation across the wafer).
//!
//! A [`WaferModel`] lays exposure fields on a circular wafer and carries
//! a systematic across-wafer CD-error fingerprint — the radial bowl that
//! spin-on resist thickness and etch loading produce, plus a linear tilt
//! and a small random per-field residual. Dosicom applies one dose
//! *offset per field* on top of the (shared) intrafield recipe, so the
//! wafer-level correction is a per-field scalar; [`WaferModel::field_offsets`]
//! computes the clamped offsets that cancel the systematic fingerprint,
//! and the across-wafer linewidth variation (AWLV) before/after follows
//! from [`crate::metrics::cd_uniformity`].

use crate::DoseSensitivity;

/// Wafer and exposure-field geometry plus the systematic CD fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferModel {
    /// Usable wafer radius, mm (300 mm wafers: 150 minus edge exclusion).
    pub radius_mm: f64,
    /// Exposure field width, mm (full scanner field: 26).
    pub field_w_mm: f64,
    /// Exposure field height, mm (full scanner field: 33).
    pub field_h_mm: f64,
    /// Radial bowl amplitude of the CD error, nm (center-to-edge).
    pub bowl_nm: f64,
    /// Linear tilt across the wafer diameter, nm.
    pub tilt_nm: f64,
    /// 1σ random per-field residual, nm.
    pub noise_nm: f64,
    /// Seed for the deterministic residual.
    pub seed: u64,
}

impl Default for WaferModel {
    fn default() -> Self {
        Self {
            radius_mm: 147.0,
            field_w_mm: 26.0,
            field_h_mm: 33.0,
            bowl_nm: 2.5,
            tilt_nm: 1.0,
            noise_nm: 0.3,
            seed: 1,
        }
    }
}

/// One exposure field on the wafer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Field {
    /// Field-center x, mm (wafer center at origin).
    pub x_mm: f64,
    /// Field-center y, mm.
    pub y_mm: f64,
    /// Systematic + residual CD error of this field, nm.
    pub cd_err_nm: f64,
}

/// SplitMix64: a tiny deterministic generator, enough for the per-field
/// residual without pulling a dependency into this crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn std_normal(state: &mut u64) -> f64 {
    // Irwin–Hall (12 uniforms): adequate tails for a residual term.
    let mut acc = 0.0;
    for _ in 0..12 {
        acc += (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    }
    acc - 6.0
}

impl WaferModel {
    /// Lays out every field whose four corners fit on the wafer and
    /// evaluates the CD fingerprint at its center.
    pub fn fields(&self) -> Vec<Field> {
        let mut state = self.seed;
        let nx = (2.0 * self.radius_mm / self.field_w_mm).ceil() as i64;
        let ny = (2.0 * self.radius_mm / self.field_h_mm).ceil() as i64;
        let mut out = Vec::new();
        for iy in -ny..=ny {
            for ix in -nx..=nx {
                let x = ix as f64 * self.field_w_mm;
                let y = iy as f64 * self.field_h_mm;
                let corner_r = ((x.abs() + 0.5 * self.field_w_mm).powi(2)
                    + (y.abs() + 0.5 * self.field_h_mm).powi(2))
                .sqrt();
                if corner_r > self.radius_mm {
                    continue;
                }
                let r2 = (x * x + y * y) / (self.radius_mm * self.radius_mm);
                let cd = self.bowl_nm * (r2 - 0.5)
                    + self.tilt_nm * x / self.radius_mm
                    + self.noise_nm * std_normal(&mut state);
                out.push(Field {
                    x_mm: x,
                    y_mm: y,
                    cd_err_nm: cd,
                });
            }
        }
        out
    }

    /// Per-field Dosicom dose offsets (in %) canceling each field's CD
    /// error, clamped to the correction range.
    pub fn field_offsets(
        &self,
        fields: &[Field],
        sensitivity: DoseSensitivity,
        lo_pct: f64,
        hi_pct: f64,
    ) -> Vec<f64> {
        fields
            .iter()
            .map(|f| sensitivity.dose_pct_for(-f.cd_err_nm).clamp(lo_pct, hi_pct))
            .collect()
    }

    /// Residual CD error after applying per-field offsets, nm.
    pub fn corrected_errors(
        &self,
        fields: &[Field],
        offsets: &[f64],
        sensitivity: DoseSensitivity,
    ) -> Vec<f64> {
        fields
            .iter()
            .zip(offsets)
            .map(|(f, &o)| f.cd_err_nm + sensitivity.cd_delta_nm(o))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::cd_uniformity;

    #[test]
    fn field_count_matches_a_300mm_wafer() {
        let w = WaferModel::default();
        let fields = w.fields();
        // A 26×33 mm field on a 147 mm radius: several tens of full fields.
        assert!(
            fields.len() > 40 && fields.len() < 90,
            "{} fields",
            fields.len()
        );
        // All fields fully on the wafer.
        for f in &fields {
            let r = ((f.x_mm.abs() + 13.0).powi(2) + (f.y_mm.abs() + 16.5).powi(2)).sqrt();
            assert!(r <= w.radius_mm + 1e-9);
        }
    }

    #[test]
    fn fingerprint_is_radial_plus_tilt() {
        let w = WaferModel {
            noise_nm: 0.0,
            ..WaferModel::default()
        };
        let fields = w.fields();
        let center = fields
            .iter()
            .min_by(|a, b| (a.x_mm.hypot(a.y_mm)).total_cmp(&b.x_mm.hypot(b.y_mm)))
            .unwrap();
        let edge = fields
            .iter()
            .max_by(|a, b| (a.x_mm.hypot(a.y_mm)).total_cmp(&b.x_mm.hypot(b.y_mm)))
            .unwrap();
        assert!(edge.cd_err_nm.abs() > center.cd_err_nm.abs() - 1e-9);
    }

    #[test]
    fn correction_flattens_awlv() {
        let w = WaferModel::default();
        let fields = w.fields();
        let before: Vec<f64> = fields.iter().map(|f| f.cd_err_nm).collect();
        let offsets = w.field_offsets(&fields, DoseSensitivity::default(), -5.0, 5.0);
        let after = w.corrected_errors(&fields, &offsets, DoseSensitivity::default());
        let u_before = cd_uniformity(&before);
        let u_after = cd_uniformity(&after);
        assert!(
            u_after.three_sigma_nm < 0.05 * u_before.three_sigma_nm,
            "AWLV {} -> {}",
            u_before.three_sigma_nm,
            u_after.three_sigma_nm
        );
    }

    #[test]
    fn offsets_respect_range() {
        let w = WaferModel {
            bowl_nm: 40.0,
            ..WaferModel::default()
        }; // needs >5% dose
        let fields = w.fields();
        let offsets = w.field_offsets(&fields, DoseSensitivity::default(), -5.0, 5.0);
        assert!(offsets.iter().all(|o| (-5.0..=5.0).contains(o)));
        assert!(
            offsets.iter().any(|&o| o == 5.0 || o == -5.0),
            "clamp must engage"
        );
    }

    #[test]
    fn fields_are_deterministic() {
        let w = WaferModel::default();
        assert_eq!(w.fields(), w.fields());
        let other = WaferModel {
            seed: 2,
            ..WaferModel::default()
        };
        assert_ne!(w.fields(), other.fields());
    }
}
