//! CD-uniformity metrics and the classic (design-blind) DoseMapper use.
//!
//! Before this paper, DoseMapper was used *solely* to flatten linewidth
//! variation: measure the systematic CD error across the field (ACLV) or
//! wafer (AWLV), then apply the dose map that cancels it. These helpers
//! reproduce that baseline so the design-aware optimization can start
//! from a realistic "original dose map", as the paper's flow (Fig. 7)
//! prescribes.

use crate::grid::{DoseGrid, DoseMap};
use crate::DoseSensitivity;

/// Across-field CD statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdUniformity {
    /// Mean CD error, nm.
    pub mean_nm: f64,
    /// CD standard deviation, nm.
    pub sigma_nm: f64,
    /// The industry "3σ" uniformity number, nm.
    pub three_sigma_nm: f64,
    /// Full range (max − min), nm.
    pub range_nm: f64,
}

/// Computes CD uniformity of a per-grid CD-error map (nm values).
pub fn cd_uniformity(cd_err_nm: &[f64]) -> CdUniformity {
    if cd_err_nm.is_empty() {
        return CdUniformity {
            mean_nm: 0.0,
            sigma_nm: 0.0,
            three_sigma_nm: 0.0,
            range_nm: 0.0,
        };
    }
    let n = cd_err_nm.len() as f64;
    let mean = cd_err_nm.iter().sum::<f64>() / n;
    let var = cd_err_nm
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / n;
    let sigma = var.sqrt();
    let min = cd_err_nm.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = cd_err_nm.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    CdUniformity {
        mean_nm: mean,
        sigma_nm: sigma,
        three_sigma_nm: 3.0 * sigma,
        range_nm: max - min,
    }
}

/// CD error remaining after applying a dose map to a systematic CD error
/// field: `residual = error + Ds · dose`.
pub fn corrected_cd_err(
    cd_err_nm: &[f64],
    map: &DoseMap,
    sensitivity: DoseSensitivity,
) -> Vec<f64> {
    assert_eq!(
        cd_err_nm.len(),
        map.dose_pct.len(),
        "error/dose grid mismatch"
    );
    cd_err_nm
        .iter()
        .zip(&map.dose_pct)
        .map(|(&e, &d)| e + sensitivity.cd_delta_nm(d))
        .collect()
}

/// The classic ACLV-minimizing correction: the dose map that exactly
/// cancels a systematic CD error field, clamped to the correction range
/// (design-blind DoseMapper, the paper's starting point).
pub fn aclv_correction(
    grid: DoseGrid,
    cd_err_nm: &[f64],
    sensitivity: DoseSensitivity,
    lo_pct: f64,
    hi_pct: f64,
) -> DoseMap {
    assert_eq!(cd_err_nm.len(), grid.num_cells(), "error grid mismatch");
    let dose = cd_err_nm
        .iter()
        .map(|&e| sensitivity.dose_pct_for(-e).clamp(lo_pct, hi_pct))
        .collect();
    DoseMap::from_values(grid, dose)
}

/// A synthetic systematic CD-error field (bowl shape plus slit tilt) of
/// the kind radial resist-thickness and etch bias produce — used to give
/// experiments a realistic non-zero starting dose map.
pub fn synthetic_systematic_cd_error(grid: &DoseGrid, amplitude_nm: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(grid.num_cells());
    for idx in 0..grid.num_cells() {
        let (c, r) = grid.coords(idx);
        let x = if grid.cols() > 1 {
            2.0 * c as f64 / (grid.cols() - 1) as f64 - 1.0
        } else {
            0.0
        };
        let y = if grid.rows() > 1 {
            2.0 * r as f64 / (grid.rows() - 1) as f64 - 1.0
        } else {
            0.0
        };
        out.push(amplitude_nm * (0.6 * (x * x + y * y) - 0.3 + 0.25 * x));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniformity_of_constant_field_is_zero_sigma() {
        let u = cd_uniformity(&[2.0; 50]);
        assert_eq!(u.sigma_nm, 0.0);
        assert_eq!(u.mean_nm, 2.0);
        assert_eq!(u.range_nm, 0.0);
    }

    #[test]
    fn aclv_correction_flattens_systematic_error() {
        let grid = DoseGrid::with_granularity(100.0, 100.0, 10.0);
        let err = synthetic_systematic_cd_error(&grid, 3.0);
        let before = cd_uniformity(&err);
        let map = aclv_correction(grid, &err, DoseSensitivity::default(), -5.0, 5.0);
        let after = cd_uniformity(&corrected_cd_err(&err, &map, DoseSensitivity::default()));
        assert!(before.three_sigma_nm > 1.0);
        assert!(
            after.three_sigma_nm < 0.01 * before.three_sigma_nm,
            "{after:?}"
        );
    }

    #[test]
    fn correction_respects_range_clamp() {
        let grid = DoseGrid::with_granularity(20.0, 10.0, 10.0);
        // A 30 nm error needs 15% dose — clamped to 5%.
        let map = aclv_correction(grid, &[30.0, 0.0], DoseSensitivity::default(), -5.0, 5.0);
        assert_eq!(map.dose_pct[0], 5.0);
        assert_eq!(map.dose_pct[1], 0.0);
    }

    #[test]
    fn synthetic_error_is_bowl_shaped() {
        let grid = DoseGrid::with_granularity(100.0, 100.0, 10.0);
        let err = synthetic_systematic_cd_error(&grid, 2.0);
        // Center lower than corners.
        let center = err[grid.cell_of(50.0, 50.0)];
        let corner = err[grid.cell_of(0.0, 0.0)];
        assert!(corner > center);
    }
}
