//! Equivalent-inverter stage delay model.
//!
//! Every standard cell is characterized as an *equivalent inverter*: a
//! pull-up / pull-down pair with effective widths (series stacks divide
//! drive, parallel legs multiply it) switching a lumped output load. This
//! is the same RC abstraction Liberty NLDM characterization flows use to
//! seed their SPICE sweeps, and it produces delay that is close to linear
//! in both gate length and gate width over the ±10 nm range the dose map
//! can reach — the paper's Figs. 3 and 4.

use crate::Technology;

/// Slew-to-delay coupling: how much of the input transition time shows up
/// as added propagation delay.
pub const SLEW_TO_DELAY: f64 = 0.1;
/// Output transition time as a multiple of the switching RC constant.
pub const SLEW_GAIN: f64 = 1.9;

/// Electrical description of one logic stage (an equivalent inverter).
#[derive(Debug, Clone, PartialEq)]
pub struct StageParams {
    /// Effective NMOS pull-down width in nm (per-leg width / stack depth).
    pub wn_nm: f64,
    /// Effective PMOS pull-up width in nm.
    pub wp_nm: f64,
    /// Gate length in nm (shared by both devices).
    pub l_nm: f64,
    /// Fixed delay component in ns that does not scale with drive
    /// strength; set once at nominal gate length so delay-vs-L is
    /// linearized the way the paper's Fig. 3 measures it.
    pub intrinsic_ns: f64,
}

/// Delay and output-slew numbers for one stage evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageDelay {
    /// High-to-low propagation delay (NMOS pull-down), ns.
    pub tphl_ns: f64,
    /// Low-to-high propagation delay (PMOS pull-up), ns.
    pub tplh_ns: f64,
    /// Falling output transition time, ns.
    pub slew_fall_ns: f64,
    /// Rising output transition time, ns.
    pub slew_rise_ns: f64,
}

impl StageDelay {
    /// Average of the two propagation delays, ns.
    pub fn average_ns(&self) -> f64 {
        0.5 * (self.tphl_ns + self.tplh_ns)
    }

    /// Worst (maximum) of the two propagation delays, ns.
    pub fn worst_ns(&self) -> f64 {
        self.tphl_ns.max(self.tplh_ns)
    }
}

impl StageParams {
    /// Creates a stage with no intrinsic offset.
    pub fn new(wn_nm: f64, wp_nm: f64, l_nm: f64) -> Self {
        Self {
            wn_nm,
            wp_nm,
            l_nm,
            intrinsic_ns: 0.0,
        }
    }

    /// Computes the intrinsic (drive-independent) delay offset that makes
    /// this stage's FO4 delay contain `tech.intrinsic_fraction` of
    /// non-scaling delay at the *nominal* gate length and a typical input
    /// slew (the slew-coupling term is also drive-independent, so it
    /// counts toward that fraction). The offset is held fixed as `L` and
    /// `W` are modulated afterwards — that is what linearizes delay-vs-L
    /// to the slopes of the paper's Tables II/III.
    pub fn with_calibrated_intrinsic(mut self, tech: &Technology) -> Self {
        let phi = tech.intrinsic_fraction;
        let (fo4_load, typ_slew) = self.typical_environment_at(tech, tech.lnom_nm);
        let drive = self.drive_delay_ns_at(tech, tech.lnom_nm, fo4_load);
        let slew_term = SLEW_TO_DELAY * typ_slew;
        // Solve intrinsic + slew_term = phi * (intrinsic + drive + slew_term).
        self.intrinsic_ns = ((phi * (drive + slew_term) - slew_term) / (1.0 - phi)).max(0.0);
        self
    }

    /// A representative operating point for this stage: FO4 external load
    /// and the output slew an identical upstream stage would deliver.
    /// This is the point [`Self::with_calibrated_intrinsic`] calibrates at.
    pub fn typical_environment(&self, tech: &Technology) -> (f64, f64) {
        self.typical_environment_at(tech, self.l_nm)
    }

    fn typical_environment_at(&self, tech: &Technology, l_nm: f64) -> (f64, f64) {
        let load = 4.0 * self.input_cap_ff_at(tech, l_nm) + tech.cal_extra_load_ff;
        let drive = self.drive_delay_ns_at(tech, l_nm, load);
        (load, SLEW_GAIN * drive)
    }

    /// Input pin capacitance of the stage in fF at its current `L`.
    pub fn input_cap_ff(&self, tech: &Technology) -> f64 {
        self.input_cap_ff_at(tech, self.l_nm)
    }

    fn input_cap_ff_at(&self, tech: &Technology, l_nm: f64) -> f64 {
        tech.gate_cap_ff(self.wn_nm, l_nm) + tech.gate_cap_ff(self.wp_nm, l_nm)
    }

    /// Self-loading (diffusion) capacitance at the output in fF.
    pub fn self_cap_ff(&self, tech: &Technology) -> f64 {
        tech.diff_cap_ff(self.wn_nm) + tech.diff_cap_ff(self.wp_nm)
    }

    /// Average of pull-up and pull-down drive delays at an explicit gate
    /// length (used for intrinsic-offset calibration), ns.
    fn drive_delay_ns_at(&self, tech: &Technology, l_nm: f64, load_ff: f64) -> f64 {
        let c = load_ff + self.self_cap_ff(tech);
        let rn = tech.reff_n_kohm(self.wn_nm, l_nm);
        let rp = tech.reff_p_kohm(self.wp_nm, l_nm);
        0.5 * (rn + rp) * c * 1e-3 // kΩ·fF = ps → ns
    }

    /// Evaluates the stage: propagation delays and output slews for the
    /// given external load and input transition time.
    pub fn evaluate(&self, tech: &Technology, load_ff: f64, input_slew_ns: f64) -> StageDelay {
        let c = load_ff + self.self_cap_ff(tech);
        let rn = tech.reff_n_kohm(self.wn_nm, self.l_nm);
        let rp = tech.reff_p_kohm(self.wp_nm, self.l_nm);
        let slew_term = SLEW_TO_DELAY * input_slew_ns;
        let tphl = self.intrinsic_ns + rn * c * 1e-3 + slew_term;
        let tplh = self.intrinsic_ns + rp * c * 1e-3 + slew_term;
        StageDelay {
            tphl_ns: tphl,
            tplh_ns: tplh,
            slew_fall_ns: SLEW_GAIN * rn * c * 1e-3,
            slew_rise_ns: SLEW_GAIN * rp * c * 1e-3,
        }
    }

    /// Total subthreshold leakage of the stage in nW, averaged over the
    /// two output states (output high leaks through the pull-down, output
    /// low through the pull-up; PMOS off-current is mobility-scaled).
    pub fn leakage_nw(&self, tech: &Technology) -> f64 {
        let n_leak = tech.leakage_nw(self.l_nm, self.wn_nm);
        let p_leak = tech.pmos_mobility_ratio * tech.leakage_nw(self.l_nm, self.wp_nm);
        0.5 * (n_leak + p_leak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv_x1(tech: &Technology) -> StageParams {
        StageParams::new(tech.wmin_nm, 1.3 * tech.wmin_nm, tech.lnom_nm)
            .with_calibrated_intrinsic(tech)
    }

    #[test]
    fn tplh_slower_than_tphl_for_balanced_widths() {
        let t = Technology::n65();
        let s = inv_x1(&t).evaluate(&t, 2.0, 0.02);
        // PMOS at 1.3× width is still weaker than NMOS (0.45 mobility).
        assert!(s.tplh_ns > s.tphl_ns);
        assert!(s.slew_rise_ns > s.slew_fall_ns);
    }

    #[test]
    fn delay_increases_with_load_and_slew() {
        let t = Technology::n65();
        let cell = inv_x1(&t);
        let base = cell.evaluate(&t, 2.0, 0.02);
        assert!(cell.evaluate(&t, 4.0, 0.02).average_ns() > base.average_ns());
        assert!(cell.evaluate(&t, 2.0, 0.08).average_ns() > base.average_ns());
        // Slew does not affect output transition in this model.
        assert_eq!(cell.evaluate(&t, 2.0, 0.08).slew_rise_ns, base.slew_rise_ns);
    }

    #[test]
    fn delay_vs_length_matches_table2_ratios() {
        let t = Technology::n65();
        let nominal = inv_x1(&t);
        let (fo4, slew) = nominal.typical_environment(&t);
        let d_nom = nominal.evaluate(&t, fo4, slew).average_ns();
        let mut short = nominal.clone();
        short.l_nm = 55.0;
        let mut long = nominal.clone();
        long.l_nm = 75.0;
        let r_short = short.evaluate(&t, fo4, slew).average_ns() / d_nom;
        let r_long = long.evaluate(&t, fo4, slew).average_ns() / d_nom;
        // Paper Table II endpoints: 1.427/1.638 = 0.871 and 1.824/1.638 = 1.114.
        assert!((r_short - 0.871).abs() < 0.03, "short ratio = {r_short}");
        assert!((r_long - 1.114).abs() < 0.03, "long ratio = {r_long}");
    }

    #[test]
    fn delay_vs_length_matches_table3_ratios_90nm() {
        let t = Technology::n90();
        let nominal =
            StageParams::new(t.wmin_nm, 1.3 * t.wmin_nm, t.lnom_nm).with_calibrated_intrinsic(&t);
        let (fo4, slew) = nominal.typical_environment(&t);
        let d_nom = nominal.evaluate(&t, fo4, slew).average_ns();
        let mut short = nominal.clone();
        short.l_nm = 80.0;
        let mut long = nominal.clone();
        long.l_nm = 100.0;
        let r_short = short.evaluate(&t, fo4, slew).average_ns() / d_nom;
        let r_long = long.evaluate(&t, fo4, slew).average_ns() / d_nom;
        // Paper Table III endpoints: 1.758/1.990 = 0.883 and 2.188/1.990 = 1.100.
        assert!((r_short - 0.883).abs() < 0.03, "short ratio = {r_short}");
        assert!((r_long - 1.100).abs() < 0.03, "long ratio = {r_long}");
    }

    #[test]
    fn delay_nearly_linear_in_length() {
        // Max deviation of delay(L) from its chord over ±10 nm stays small,
        // matching the paper's observation (Fig. 3).
        let t = Technology::n65();
        let cell = inv_x1(&t);
        let fo4 = 4.0 * cell.input_cap_ff(&t);
        let at = |l: f64| {
            let mut c = cell.clone();
            c.l_nm = l;
            c.evaluate(&t, fo4, 0.02).average_ns()
        };
        let (d0, d1) = (at(55.0), at(75.0));
        for i in 0..=20 {
            let l = 55.0 + i as f64;
            let chord = d0 + (d1 - d0) * (l - 55.0) / 20.0;
            let dev = (at(l) - chord).abs() / at(65.0);
            assert!(dev < 0.01, "nonlinearity {dev} at L = {l}");
        }
    }

    #[test]
    fn delay_decreases_linearly_with_width() {
        // Fig. 4: widening both devices (fixed external load) speeds the
        // stage up, approximately linearly over ±10 nm.
        let t = Technology::n65();
        let cell = inv_x1(&t);
        let fo4 = 4.0 * cell.input_cap_ff(&t);
        let at = |dw: f64| {
            let mut c = cell.clone();
            c.wn_nm += dw;
            c.wp_nm += dw;
            c.evaluate(&t, fo4, 0.02).average_ns()
        };
        assert!(at(10.0) < at(0.0));
        assert!(at(-10.0) > at(0.0));
        let sym = (at(10.0) + at(-10.0) - 2.0 * at(0.0)).abs() / at(0.0);
        assert!(sym < 0.01, "width nonlinearity {sym}");
    }

    #[test]
    fn stage_leakage_tracks_device_leakage() {
        let t = Technology::n65();
        let cell = inv_x1(&t);
        let mut short = cell.clone();
        short.l_nm = 55.0;
        assert!(short.leakage_nw(&t) / cell.leakage_nw(&t) > 2.0);
        let mut wide = cell.clone();
        wide.wn_nm *= 2.0;
        wide.wp_nm *= 2.0;
        assert!((wide.leakage_nw(&t) / cell.leakage_nw(&t) - 2.0).abs() < 1e-12);
    }
}
