//! Parameter sweeps regenerating the paper's Figs. 3–6.
//!
//! Each function returns `(x, series...)` vectors ready for plotting or
//! for the `fig3to6` bench binary, which prints them as CSV. The sweeps
//! use a minimum-size inverter (INVX1-equivalent: minimum NMOS width,
//! 1.3× PMOS) under the paper's simulation condition (VDD = +1.0 V,
//! 25 °C, TT).

use crate::{StageParams, Technology};

/// One sampled point of a delay sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPoint {
    /// Swept value: absolute gate length (Figs. 3/5) or width delta
    /// (Figs. 4/6), in nm.
    pub x_nm: f64,
    /// Low-to-high propagation delay, ns.
    pub tplh_ns: f64,
    /// High-to-low propagation delay, ns.
    pub tphl_ns: f64,
}

/// One sampled point of a leakage sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakagePoint {
    /// Swept value in nm (see [`DelayPoint::x_nm`]).
    pub x_nm: f64,
    /// Average stage leakage, nW.
    pub leakage_nw: f64,
}

fn min_inverter(tech: &Technology) -> StageParams {
    StageParams::new(tech.wmin_nm, 1.3 * tech.wmin_nm, tech.lnom_nm).with_calibrated_intrinsic(tech)
}

/// Fig. 3: inverter TPLH/TPHL versus gate length over ±10 nm around
/// nominal, sampled every nanometer.
pub fn delay_vs_gate_length(tech: &Technology) -> Vec<DelayPoint> {
    let cell = min_inverter(tech);
    let (load, slew) = cell.typical_environment(tech);
    (-10..=10)
        .map(|dl| {
            let mut c = cell.clone();
            c.l_nm = tech.lnom_nm + dl as f64;
            let d = c.evaluate(tech, load, slew);
            DelayPoint {
                x_nm: c.l_nm,
                tplh_ns: d.tplh_ns,
                tphl_ns: d.tphl_ns,
            }
        })
        .collect()
}

/// Fig. 4: inverter TPLH/TPHL versus the *change* in gate width (both
/// devices shifted by the same delta), over ±10 nm.
pub fn delay_vs_gate_width(tech: &Technology) -> Vec<DelayPoint> {
    let cell = min_inverter(tech);
    let (load, slew) = cell.typical_environment(tech);
    (-10..=10)
        .map(|dw| {
            let mut c = cell.clone();
            c.wn_nm += dw as f64;
            c.wp_nm += dw as f64;
            let d = c.evaluate(tech, load, slew);
            DelayPoint {
                x_nm: dw as f64,
                tplh_ns: d.tplh_ns,
                tphl_ns: d.tphl_ns,
            }
        })
        .collect()
}

/// Fig. 5: average inverter leakage versus gate length (exponential).
pub fn leakage_vs_gate_length(tech: &Technology) -> Vec<LeakagePoint> {
    let cell = min_inverter(tech);
    (-10..=10)
        .map(|dl| {
            let mut c = cell.clone();
            c.l_nm = tech.lnom_nm + dl as f64;
            LeakagePoint {
                x_nm: c.l_nm,
                leakage_nw: c.leakage_nw(tech),
            }
        })
        .collect()
}

/// Fig. 6: average inverter leakage versus the change in gate width
/// (linear).
pub fn leakage_vs_gate_width(tech: &Technology) -> Vec<LeakagePoint> {
    let cell = min_inverter(tech);
    (-10..=10)
        .map(|dw| {
            let mut c = cell.clone();
            c.wn_nm += dw as f64;
            c.wp_nm += dw as f64;
            LeakagePoint {
                x_nm: dw as f64,
                leakage_nw: c.leakage_nw(tech),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_delay_monotone_increasing_in_length() {
        let pts = delay_vs_gate_length(&Technology::n65());
        assert_eq!(pts.len(), 21);
        for w in pts.windows(2) {
            assert!(w[1].tplh_ns > w[0].tplh_ns);
            assert!(w[1].tphl_ns > w[0].tphl_ns);
        }
    }

    #[test]
    fn fig4_delay_monotone_decreasing_in_width() {
        let pts = delay_vs_gate_width(&Technology::n65());
        for w in pts.windows(2) {
            assert!(w[1].tplh_ns < w[0].tplh_ns);
            assert!(w[1].tphl_ns < w[0].tphl_ns);
        }
    }

    #[test]
    fn fig5_leakage_exponential_in_length() {
        let pts = leakage_vs_gate_length(&Technology::n65());
        // Monotone decreasing and convex: successive downward steps shrink.
        for w in pts.windows(2) {
            assert!(w[1].leakage_nw < w[0].leakage_nw);
        }
        let first_drop = pts[0].leakage_nw - pts[1].leakage_nw;
        let last_drop = pts[19].leakage_nw - pts[20].leakage_nw;
        assert!(
            first_drop > 2.0 * last_drop,
            "leakage-vs-L is not convex enough"
        );
    }

    #[test]
    fn fig6_leakage_linear_in_width() {
        let pts = leakage_vs_gate_width(&Technology::n65());
        let steps: Vec<f64> = pts
            .windows(2)
            .map(|w| w[1].leakage_nw - w[0].leakage_nw)
            .collect();
        for s in &steps {
            assert!(*s > 0.0);
            assert!((s - steps[0]).abs() < 1e-9 * steps[0].abs().max(1.0));
        }
    }
}
