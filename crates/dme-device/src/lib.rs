//! Analytic MOSFET device models for dose-driven CD modulation studies.
//!
//! This crate replaces the SPICE decks and foundry device models used by
//! the paper *"Dose map and placement co-optimization for timing yield
//! enhancement and leakage power reduction"* (DAC 2008 / TCAD 2010). It
//! provides closed-form, physically motivated models of the two facts the
//! paper's entire formulation rests on (its Figs. 3–6):
//!
//! - **delay** is approximately *linear* in gate length and gate width
//!   around the nominal feature size (alpha-power-law saturation current
//!   plus a drive-independent intrinsic component), and
//! - **subthreshold leakage** is *exponential* in gate length (through
//!   short-channel threshold-voltage roll-off) and *linear* in gate width.
//!
//! The [`Technology`] presets (`n65`, `n90`) are calibrated so that a
//! uniform ±5% exposure-dose change (±10 nm of gate length at the paper's
//! −2 nm/% dose sensitivity) reproduces the endpoint ratios of the paper's
//! Tables II and III: at 65 nm, −10 nm of `L` gives ≈0.87× delay and
//! ≈2.55× leakage; +10 nm gives ≈1.11× delay and ≈0.62× leakage.
//!
//! # Example
//!
//! ```
//! use dme_device::Technology;
//!
//! let t = Technology::n65();
//! let nominal = t.leakage_nw(t.lnom_nm, 200.0);
//! let shortened = t.leakage_nw(t.lnom_nm - 10.0, 200.0);
//! assert!(shortened / nominal > 2.0, "short channel must be much leakier");
//! ```

#![deny(missing_docs)]

pub mod stage;
pub mod sweep;
mod tech;

pub use stage::{StageDelay, StageParams};
pub use tech::Technology;

/// Thermal voltage `kT/q` at 25 °C, in volts (the paper's simulation
/// condition is VDD = +1.0 V, temperature = +25 °C, process = TT).
pub const THERMAL_VOLTAGE: f64 = 0.025693;
