//! Technology presets and transistor-level analytic models.

use crate::THERMAL_VOLTAGE;

/// Analytic process-technology description.
///
/// All lengths are in nanometers, capacitances in femtofarads, currents in
/// microamperes, delays in nanoseconds and leakage in nanowatts.
///
/// The threshold voltage follows a classic short-channel roll-off model,
/// `Vth(L) = Vth_base − v_rolloff · exp(−(L − Lnom)/ℓ)`, which makes
/// subthreshold leakage exponential in `L` with the asymmetric slopes the
/// paper measures (leakage rises faster when `L` shrinks than it falls
/// when `L` grows). Saturation current follows the alpha-power law,
/// `Id ∝ (W/L)·(Vdd − Vth(L))^α`.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable node name, e.g. `"65nm"`.
    pub name: &'static str,
    /// Nominal (drawn) gate length in nm.
    pub lnom_nm: f64,
    /// Minimum transistor width in nm.
    pub wmin_nm: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Long-channel threshold voltage asymptote in volts.
    pub vth_base: f64,
    /// Threshold-voltage roll-off amplitude in volts.
    pub v_rolloff: f64,
    /// Roll-off characteristic length ℓ in nm.
    pub rolloff_ell_nm: f64,
    /// Alpha-power-law velocity-saturation exponent.
    pub alpha: f64,
    /// Subthreshold swing ideality factor `n` (swing = n·vT·ln 10).
    pub subthreshold_n: f64,
    /// NMOS transconductance scale, µA per square (W = L) at 1 V overdrive.
    pub k_njua: f64,
    /// PMOS/NMOS mobility ratio (< 1).
    pub pmos_mobility_ratio: f64,
    /// Off-current scale: nA per µm of width at nominal L (per device).
    pub ioff_na_per_um: f64,
    /// Gate capacitance in fF per µm² of gate area.
    pub cox_ff_per_um2: f64,
    /// Parasitic (diffusion) output capacitance in fF per µm of width.
    pub cdiff_ff_per_um: f64,
    /// Fraction of a typical stage delay that does not scale with
    /// drive strength (wire stubs, vias, input network); this is what
    /// makes delay-vs-L *linear* rather than proportional to the
    /// alpha-power drive.
    pub intrinsic_fraction: f64,
    /// Extra load (beyond FO4 pins) included in the stage-calibration
    /// operating point, fF — representative of the wire capacitance a
    /// placed net adds. Calibrating at this point makes the *chip-level*
    /// dose-to-delay sensitivity match the Tables II/III endpoints.
    pub cal_extra_load_ff: f64,
}

impl Technology {
    /// The 65 nm preset used by the paper's primary testcases (AES-65,
    /// JPEG-65). Calibrated against Table II of the paper: ±10 nm of gate
    /// length ⇒ delay ×0.87 / ×1.11 and leakage ×2.55 / ×0.62.
    pub fn n65() -> Self {
        Self {
            name: "65nm",
            lnom_nm: 65.0,
            wmin_nm: 200.0,
            vdd: 1.0,
            // v_rolloff/(n·vT) = 0.9483 and ℓ = 14.56 nm reproduce the
            // Table II leakage endpoints exactly (see crate tests).
            vth_base: 0.3568,
            v_rolloff: 0.0368,
            rolloff_ell_nm: 14.56,
            alpha: 1.3,
            subthreshold_n: 1.51,
            k_njua: 110.0,
            pmos_mobility_ratio: 0.45,
            ioff_na_per_um: 120.0,
            cox_ff_per_um2: 14.0,
            cdiff_ff_per_um: 0.7,
            intrinsic_fraction: 0.384,
            cal_extra_load_ff: 13.0,
        }
    }

    /// The 90 nm preset (AES-90, JPEG-90). Calibrated against Table III:
    /// ±10 nm of gate length ⇒ delay ×0.88 / ×1.10, leakage ×1.90 / ×0.70.
    pub fn n90() -> Self {
        Self {
            name: "90nm",
            lnom_nm: 90.0,
            wmin_nm: 280.0,
            vdd: 1.0,
            vth_base: 0.3814,
            v_rolloff: 0.0314,
            rolloff_ell_nm: 17.1,
            alpha: 1.3,
            subthreshold_n: 1.51,
            k_njua: 110.0,
            pmos_mobility_ratio: 0.45,
            ioff_na_per_um: 190.0,
            cox_ff_per_um2: 12.0,
            cdiff_ff_per_um: 0.8,
            intrinsic_fraction: 0.31,
            cal_extra_load_ff: 32.0,
        }
    }

    /// Threshold voltage at gate length `l_nm` (volts), including
    /// short-channel roll-off.
    pub fn vth(&self, l_nm: f64) -> f64 {
        self.vth_base - self.v_rolloff * (-(l_nm - self.lnom_nm) / self.rolloff_ell_nm).exp()
    }

    /// NMOS saturation drive current in µA for a device of the given
    /// width/length (alpha-power law). Clamped at zero overdrive.
    pub fn drive_current_n_ua(&self, w_nm: f64, l_nm: f64) -> f64 {
        let overdrive = (self.vdd - self.vth(l_nm)).max(0.0);
        self.k_njua * (w_nm / l_nm) * overdrive.powf(self.alpha)
    }

    /// PMOS saturation drive current in µA (mobility-degraded NMOS model).
    pub fn drive_current_p_ua(&self, w_nm: f64, l_nm: f64) -> f64 {
        self.pmos_mobility_ratio * self.drive_current_n_ua(w_nm, l_nm)
    }

    /// Effective switching resistance `Vdd / (2·Id)` of an NMOS pull-down,
    /// in kΩ (so that kΩ × fF = ps; callers convert to ns).
    pub fn reff_n_kohm(&self, w_nm: f64, l_nm: f64) -> f64 {
        1000.0 * self.vdd / (2.0 * self.drive_current_n_ua(w_nm, l_nm).max(1e-9))
    }

    /// Effective switching resistance of a PMOS pull-up, in kΩ.
    pub fn reff_p_kohm(&self, w_nm: f64, l_nm: f64) -> f64 {
        1000.0 * self.vdd / (2.0 * self.drive_current_p_ua(w_nm, l_nm).max(1e-9))
    }

    /// Subthreshold (off-state) leakage power of a single device in nW.
    ///
    /// `P = Vdd · Ioff`, `Ioff = ioff_scale · W · exp(−ΔVth/(n·vT))` where
    /// `ΔVth = Vth(L) − Vth(Lnom)`; exponential in `L`, linear in `W`.
    pub fn leakage_nw(&self, l_nm: f64, w_nm: f64) -> f64 {
        let dvth = self.vth(l_nm) - self.vth(self.lnom_nm);
        let ioff_na = self.ioff_na_per_um
            * (w_nm / 1000.0)
            * (-dvth / (self.subthreshold_n * THERMAL_VOLTAGE)).exp();
        self.vdd * ioff_na
    }

    /// Gate (input) capacitance of a device in fF: `Cox · W · L` plus
    /// overlap, folded into the per-area constant.
    pub fn gate_cap_ff(&self, w_nm: f64, l_nm: f64) -> f64 {
        self.cox_ff_per_um2 * (w_nm / 1000.0) * (l_nm / 1000.0)
    }

    /// Parasitic drain (self-loading) capacitance of a device in fF.
    pub fn diff_cap_ff(&self, w_nm: f64) -> f64 {
        self.cdiff_ff_per_um * (w_nm / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vth_rolls_off_for_short_channels() {
        for t in [Technology::n65(), Technology::n90()] {
            let nominal = t.vth(t.lnom_nm);
            assert!(t.vth(t.lnom_nm - 10.0) < nominal, "{}", t.name);
            assert!(t.vth(t.lnom_nm + 10.0) > nominal, "{}", t.name);
            // Roll-off is steeper on the short side (convexity).
            let down = nominal - t.vth(t.lnom_nm - 10.0);
            let up = t.vth(t.lnom_nm + 10.0) - nominal;
            assert!(down > up, "{}", t.name);
        }
    }

    #[test]
    fn leakage_ratio_matches_table2_endpoints_65nm() {
        let t = Technology::n65();
        let nom = t.leakage_nw(65.0, 200.0);
        let short = t.leakage_nw(55.0, 200.0) / nom;
        let long = t.leakage_nw(75.0, 200.0) / nom;
        // Paper Table II: +5% dose (L = 55 nm) → 1142.2/448 = 2.55×,
        // −5% dose (L = 75 nm) → 279.6/448 = 0.624×.
        assert!((short - 2.55).abs() < 0.08, "short ratio = {short}");
        assert!((long - 0.624).abs() < 0.02, "long ratio = {long}");
    }

    #[test]
    fn leakage_ratio_matches_table3_endpoints_90nm() {
        let t = Technology::n90();
        let nom = t.leakage_nw(90.0, 280.0);
        let short = t.leakage_nw(80.0, 280.0) / nom;
        let long = t.leakage_nw(100.0, 280.0) / nom;
        // Paper Table III: 4619/2430 = 1.90×, 1699.8/2430 = 0.699×.
        assert!((short - 1.90).abs() < 0.06, "short ratio = {short}");
        assert!((long - 0.699).abs() < 0.02, "long ratio = {long}");
    }

    #[test]
    fn leakage_linear_in_width() {
        let t = Technology::n65();
        let base = t.leakage_nw(65.0, 200.0);
        let double = t.leakage_nw(65.0, 400.0);
        assert!((double / base - 2.0).abs() < 1e-12);
    }

    #[test]
    fn drive_current_increases_with_width_decreases_with_length() {
        let t = Technology::n65();
        let nom = t.drive_current_n_ua(200.0, 65.0);
        assert!(t.drive_current_n_ua(400.0, 65.0) > nom);
        assert!(t.drive_current_n_ua(200.0, 75.0) < nom);
        // Shorter channel: both W/L and overdrive increase the current.
        assert!(t.drive_current_n_ua(200.0, 55.0) > nom);
    }

    #[test]
    fn pmos_is_weaker_than_nmos() {
        let t = Technology::n90();
        assert!(t.drive_current_p_ua(280.0, 90.0) < t.drive_current_n_ua(280.0, 90.0));
        assert!(t.reff_p_kohm(280.0, 90.0) > t.reff_n_kohm(280.0, 90.0));
    }

    #[test]
    fn capacitances_scale_with_geometry() {
        let t = Technology::n65();
        assert!(t.gate_cap_ff(400.0, 65.0) > t.gate_cap_ff(200.0, 65.0));
        assert!(t.gate_cap_ff(200.0, 75.0) > t.gate_cap_ff(200.0, 65.0));
        assert!(t.diff_cap_ff(400.0) > t.diff_cap_ff(200.0));
        // Sanity on magnitude: a minimum 65 nm device is a fraction of a fF.
        let c = t.gate_cap_ff(200.0, 65.0);
        assert!(c > 0.05 && c < 1.0, "cin = {c} fF");
    }
}
