//! Offline work-alike for the subset of the `criterion` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `criterion` cannot be fetched. This harness keeps the workspace's
//! `[[bench]]` targets source-compatible and produces wall-clock
//! statistics good enough for perf-trajectory tracking: each benchmark is
//! warmed up, then timed over a fixed number of samples, and the result
//! is printed both human-readably and as a machine-parsable
//! `BENCHLINE <name> mean_ns=<..> median_ns=<..> samples=<..>` line that
//! `scripts/bench_perf.sh` collects into `BENCH_perf.json`. No plots, no
//! statistical regression testing.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Hint for how batched inputs are grouped; accepted for source
/// compatibility, the shim times every batch individually either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Collected timing for one benchmark.
#[derive(Debug, Clone)]
pub struct Sampled {
    /// Benchmark id (`group/name` for grouped benches).
    pub name: String,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks, as upstream.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Self {
            filter,
            sample_size,
            warmup: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let warmup = self.warmup;
        if self.matches(name) {
            run_bench(name, sample_size, warmup, f);
        }
        self
    }

    /// Opens a named group; benchmarks inside are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            prefix: name.to_string(),
            sample_size: None,
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let warmup = self.parent.warmup;
        if self.parent.matches(&full) {
            run_bench(&full, samples, warmup, f);
        }
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter`/`iter_batched` time the
/// routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup also calibrates how many iterations fit one sample.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for ~10ms per sample, at least one iteration.
        let iters_per_sample = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.per_iter_ns.push(dt * 1e9 / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup excluded
    /// from the timing).
    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        // One warmup batch.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.per_iter_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, warmup: Duration, mut f: F) {
    let mut b = Bencher {
        sample_size: sample_size.max(1),
        warmup,
        per_iter_ns: Vec::new(),
    };
    f(&mut b);
    if b.per_iter_ns.is_empty() {
        // The closure never called iter/iter_batched; nothing to report.
        println!("{name:<48} (no measurement)");
        return;
    }
    let mut sorted = b.per_iter_ns.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mean = b.per_iter_ns.iter().sum::<f64>() / b.per_iter_ns.len() as f64;
    let median = sorted[sorted.len() / 2];
    let s = Sampled {
        name: name.to_string(),
        mean_ns: mean,
        median_ns: median,
        samples: b.per_iter_ns.len(),
    };
    println!(
        "{:<48} mean {:>12} median {:>12}",
        s.name,
        fmt_ns(s.mean_ns),
        fmt_ns(s.median_ns)
    );
    println!(
        "BENCHLINE {} mean_ns={:.1} median_ns={:.1} samples={}",
        s.name, s.mean_ns, s.median_ns, s.samples
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Builds a function running a list of benchmark functions, mirroring
/// upstream's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Builds the bench `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut b = Bencher {
            sample_size: 5,
            warmup: Duration::from_millis(1),
            per_iter_ns: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.per_iter_ns.len(), 5);
        assert!(b.per_iter_ns.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn iter_batched_times_each_batch() {
        let mut b = Bencher {
            sample_size: 4,
            warmup: Duration::from_millis(1),
            per_iter_ns: Vec::new(),
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.per_iter_ns.len(), 4);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            filter: None,
            sample_size: 2,
            warmup: Duration::from_millis(1),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
