//! Offline work-alike for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real
//! `proptest` cannot be fetched. This crate keeps the workspace's
//! property tests source-compatible: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], the [`proptest!`] test macro and the
//! `prop_assert*` family. Unlike upstream there is **no shrinking** — a
//! failing case panics with its inputs via the normal assertion message —
//! and case generation is deterministic (seeded from the test name and
//! case index) so failures reproduce exactly across runs.

#![deny(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one `(test, case)` pair. The stream
    /// depends only on the test name and case index, so a failure
    /// reproduces on every run.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty integer range");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the bounds used in tests (far below 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Uses each generated value to build a second strategy, then samples
    /// that (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9, S10 10);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9, S10 10, S11 11);
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one value uniformly over the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy (see
    /// [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $cfg;
            let __pt_strategy = ($($strat,)+);
            for __pt_case in 0..__pt_config.cases {
                let mut __pt_rng =
                    $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), __pt_case as u64);
                let ($($pat,)+) = $crate::Strategy::sample(&__pt_strategy, &mut __pt_rng);
                // The closure gives `prop_assume!` a per-case early exit
                // without aborting the remaining cases.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(2usize..6), &mut rng);
            assert!((2..6).contains(&v));
            let f = Strategy::sample(&(-3.0f64..3.0), &mut rng);
            assert!((-3.0..3.0).contains(&f));
            let i = Strategy::sample(&(-10i32..=10), &mut rng);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_length_and_flat_map() {
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n));
        let mut rng = crate::TestRng::for_case("vec", 3);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = Strategy::sample(&any::<u64>(), &mut crate::TestRng::for_case("d", 7));
        let b = Strategy::sample(&any::<u64>(), &mut crate::TestRng::for_case("d", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple bindings, assume + assert.
        #[test]
        fn macro_smoke((a, b) in (0usize..10, 0usize..10), scale in 1.0f64..2.0) {
            prop_assume!(a != b);
            prop_assert!((1.0..2.0).contains(&scale));
            prop_assert_ne!(a, b);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
