//! Quadratically constrained programs by bisection.
//!
//! The paper's second formulation — *minimize clock period `T` subject to
//! `ΔLeakage(d) ≤ ξ`* — is a convex program with a linear objective and one
//! convex quadratic constraint. For a convex program, the predicate
//! "there exists a feasible point with `T ≤ τ` and `ΔLeakage ≤ ξ`" is
//! monotone in `τ`, so the minimum `T` can be found exactly by bisection,
//! where each probe is the paper's *first* formulation (a plain QP:
//! minimize `ΔLeakage` subject to `T ≤ τ`) followed by an `≤ ξ` check.
//! This re-uses one solver for both problems, exactly as the two
//! formulations in the paper share all their constraints.

use crate::SolveError;

/// Outcome of one feasibility probe at a candidate objective value `t`.
#[derive(Debug, Clone)]
pub enum Probe<S> {
    /// A point satisfying every constraint at this `t` exists; carries the
    /// witness so the caller can warm-start the next probe.
    Feasible(S),
    /// No feasible point exists at this `t`.
    Infeasible,
}

/// Result of a bisection solve.
#[derive(Debug, Clone)]
pub struct BisectResult<S> {
    /// The smallest probed value proven feasible.
    pub t: f64,
    /// Witness returned by the feasibility oracle at `t`.
    pub witness: S,
    /// Number of oracle calls performed.
    pub probes: usize,
}

/// Minimizes a scalar `t ∈ [lo, hi]` subject to a monotone feasibility
/// oracle: `probe(t)` must be infeasible for all `t` below the optimum and
/// feasible above it. `hi` must be feasible (checked). Stops when the
/// bracket is narrower than `tol` and returns the feasible end.
///
/// # Errors
///
/// Returns [`SolveError::InvalidBracket`] if `lo > hi` or either bound is
/// not finite, [`SolveError::Numerical`] if `probe(hi)` reports infeasible
/// (the oracle contract requires the upper end to be feasible), and
/// propagates any error from the oracle itself.
pub fn bisect_min<S, F>(
    lo: f64,
    hi: f64,
    tol: f64,
    mut probe: F,
) -> Result<BisectResult<S>, SolveError>
where
    F: FnMut(f64) -> Result<Probe<S>, SolveError>,
{
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(SolveError::InvalidBracket { lo, hi });
    }
    let mut probes = 0usize;
    let mut best_t = hi;
    let mut best_witness = match probe(hi)? {
        Probe::Feasible(w) => {
            probes += 1;
            w
        }
        Probe::Infeasible => {
            return Err(SolveError::Numerical(format!(
                "bisection upper bound {hi} is infeasible; the bracket does not contain a solution"
            )))
        }
    };
    let mut lo = lo;
    let mut hi = hi;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        probes += 1;
        match probe(mid)? {
            Probe::Feasible(w) => {
                best_t = mid;
                best_witness = w;
                hi = mid;
            }
            Probe::Infeasible => {
                lo = mid;
            }
        }
    }
    Ok(BisectResult {
        t: best_t,
        witness: best_witness,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_threshold_of_monotone_predicate() {
        // Feasible iff t >= pi.
        let r = bisect_min(0.0, 10.0, 1e-6, |t| {
            Ok(if t >= std::f64::consts::PI {
                Probe::Feasible(t)
            } else {
                Probe::Infeasible
            })
        })
        .unwrap();
        assert!((r.t - std::f64::consts::PI).abs() < 1e-5);
        assert!(r.probes > 10);
    }

    #[test]
    fn witness_comes_from_last_feasible_probe() {
        let r = bisect_min(0.0, 8.0, 0.5, |t| {
            Ok(if t >= 3.0 {
                Probe::Feasible(format!("w@{t:.3}"))
            } else {
                Probe::Infeasible
            })
        })
        .unwrap();
        assert!(r.t >= 3.0 && r.t < 3.5);
        assert_eq!(r.witness, format!("w@{:.3}", r.t));
    }

    #[test]
    fn infeasible_upper_bound_is_an_error() {
        let r = bisect_min(0.0, 1.0, 1e-3, |_| Ok(Probe::<()>::Infeasible));
        assert!(matches!(r, Err(SolveError::Numerical(_))));
    }

    #[test]
    fn inverted_bracket_is_an_error() {
        let r = bisect_min(2.0, 1.0, 1e-3, |t| Ok(Probe::Feasible(t)));
        assert!(matches!(r, Err(SolveError::InvalidBracket { .. })));
    }

    #[test]
    fn degenerate_bracket_returns_hi() {
        let r = bisect_min(5.0, 5.0, 1e-3, |t| Ok(Probe::Feasible(t))).unwrap();
        assert_eq!(r.t, 5.0);
        assert_eq!(r.probes, 1);
    }

    #[test]
    fn oracle_errors_propagate() {
        let r = bisect_min(0.0, 1.0, 1e-3, |_| {
            Err::<Probe<()>, _>(SolveError::Numerical("oracle failed".into()))
        });
        assert!(matches!(r, Err(SolveError::Numerical(_))));
    }
}
