//! Sparse direct Newton backend: LDLᵀ on the assembled normal equations.
//!
//! Each IPM iteration solves `(P + AᵀDA)·Δx = rhs` where only the barrier
//! diagonal `D` changes. That split drives the design:
//!
//! - **once per `QuadProgram` structure** ([`DirectSolver::build`]): the
//!   sparsity pattern of `K = P + AᵀDA` (the symbolic `AᵀA` comes from
//!   per-row column pairs), a reverse Cuthill–McKee fill-reducing
//!   permutation of that pattern, a *scatter plan* mapping every `P`
//!   entry and every `A`-row entry pair to its slot in the permuted
//!   upper-triangular value array, and the symbolic LDLᵀ factorization
//!   (elimination tree + column counts + column pointers);
//! - **once per IPM iteration** ([`DirectSolver::factor`]): a numeric
//!   assembly that replays the scatter plan with the current `D`, then an
//!   up-looking numeric refactorization into the cached symbolic
//!   structure — no allocation, no pattern work;
//! - **twice per iteration** ([`DirectSolver::solve`]): permuted
//!   triangular solves (predictor and corrector share one factor).
//!
//! The factorization follows Davis's `LDL` (up-looking, elimination-tree
//! driven); tiny or non-positive pivots — variables whose `K` diagonal
//! vanishes — are clamped to a floor proportional to the largest diagonal
//! entry, and the IPM layer compensates with iterative refinement.

use crate::ordering::{minimum_degree, reverse_cuthill_mckee};
use crate::CsrMatrix;

/// A constraint row with this many nonzeros or more disqualifies the
/// direct backend: `AᵀA` gains `nnz_row²` entries per row, so a dense row
/// would densify `K`.
const DENSE_ROW_CAP: usize = 96;

/// Hard cap on the number of (pre-dedup) pattern entries the builder will
/// enumerate; beyond this the pattern build itself is the bottleneck and
/// the matrix-free CG path is the better tool.
const PATTERN_ENTRY_CAP: usize = 1 << 26;

/// Symbolic + numeric state for the cached sparse LDLᵀ of `K = P + AᵀDA`.
#[derive(Debug, Clone)]
pub(crate) struct DirectSolver {
    /// Structural fingerprint of (P, A) this cache was built for.
    pub fingerprint: u64,
    n: usize,
    /// Fill-reducing permutation, `perm[new] = old`.
    perm: Vec<usize>,
    /// Column pointers of the permuted upper-triangular `K` (CSC).
    kp: Vec<usize>,
    /// Row indices of the permuted upper-triangular `K`.
    ki: Vec<usize>,
    /// Numeric values, rebuilt by [`DirectSolver::factor`].
    kx: Vec<f64>,
    /// Slot of the diagonal entry `(j, j)` per permuted column.
    diag_slot: Vec<usize>,
    /// `(slot, index into P.vals)` for every upper-triangular `P` entry.
    p_plan: Vec<(u32, u32)>,
    /// Scatter plan for `AᵀDA`: slot `+= d[row]·a.vals[ai]·a.vals[aj]`.
    a_slot: Vec<u32>,
    a_i: Vec<u32>,
    a_j: Vec<u32>,
    a_row: Vec<u32>,
    factor: LdlFactor,
    /// Nonzeros in the upper triangle of `K` (diagonal included).
    pub nnz_k: usize,
    /// Nonzeros in `L` (strict lower triangle) from the symbolic phase.
    pub nnz_l: usize,
    /// Numeric factorizations performed since the symbolic build.
    pub factors: u64,
    /// Permuted-space scratch for [`DirectSolver::solve`].
    scratch: Vec<f64>,
}

impl DirectSolver {
    /// Builds the full symbolic side — pattern, ordering, scatter plan,
    /// elimination tree — for the structure of `(p, a)`. Returns `None`
    /// when a structural guard trips (a dense constraint row or a pattern
    /// too large to enumerate), in which case the caller falls back to CG.
    pub fn build(p: &CsrMatrix, a: &CsrMatrix, fingerprint: u64) -> Option<Self> {
        let _span = dme_obs::span("symbolic");
        let n = p.nrows();
        let (a_ptr, a_idx, _) = a.raw_parts();
        let (p_ptr, p_idx, _) = p.raw_parts();
        let m = a.nrows();

        // Guard: dense rows densify K; pattern size must stay enumerable.
        let mut pair_count = n + p.nnz();
        for r in 0..m {
            let len = a_ptr[r + 1] - a_ptr[r];
            if len > DENSE_ROW_CAP {
                return None;
            }
            pair_count += len * (len + 1) / 2;
            if pair_count > PATTERN_ENTRY_CAP {
                return None;
            }
        }

        // Pattern of K in original indices as packed (max<<32 | min) keys:
        // the full diagonal (so regularization always has a slot), upper
        // P entries, and all within-row column pairs of A.
        let mut keys: Vec<u64> = Vec::with_capacity(pair_count);
        let pack = |i: usize, j: usize| -> u64 {
            let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
            ((hi as u64) << 32) | lo as u64
        };
        for j in 0..n {
            keys.push(pack(j, j));
        }
        for r in 0..n {
            for &c in &p_idx[p_ptr[r]..p_ptr[r + 1]] {
                if c >= r {
                    keys.push(pack(r, c));
                }
            }
        }
        for r in 0..m {
            let row = &a_idx[a_ptr[r]..a_ptr[r + 1]];
            for (k1, &c1) in row.iter().enumerate() {
                for &c2 in &row[k1..] {
                    keys.push(pack(c1, c2));
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();

        // RCM on the off-diagonal adjacency (both directions).
        let mut deg = vec![0usize; n];
        for &k in &keys {
            let (lo, hi) = ((k & 0xffff_ffff) as usize, (k >> 32) as usize);
            if lo != hi {
                deg[lo] += 1;
                deg[hi] += 1;
            }
        }
        let mut adj_ptr = vec![0usize; n + 1];
        for v in 0..n {
            adj_ptr[v + 1] = adj_ptr[v] + deg[v];
        }
        let mut adj_idx = vec![0usize; adj_ptr[n]];
        let mut fill = adj_ptr.clone();
        for &k in &keys {
            let (lo, hi) = ((k & 0xffff_ffff) as usize, (k >> 32) as usize);
            if lo != hi {
                adj_idx[fill[lo]] = hi;
                fill[lo] += 1;
                adj_idx[fill[hi]] = lo;
                fill[hi] += 1;
            }
        }
        // Candidate orderings: RCM wins on pure chains, minimum degree
        // wins once hub-like dose columns appear (one dose variable
        // couples to every arrival variable in its grid cell). One
        // symbolic pass costs far less than one numeric factor, so run
        // it for both candidates and keep the sparser factor.
        struct Candidate {
            perm: Vec<usize>,
            iperm: Vec<usize>,
            kp: Vec<usize>,
            ki: Vec<usize>,
            factor: LdlFactor,
        }
        // Permutes the pattern into upper-CSC space: entry (row pi,
        // col pj) with pi <= pj, sorted column-major — exactly the
        // numeric order of the re-packed keys.
        let permute_symbolic = |perm: Vec<usize>| -> Candidate {
            let mut iperm = vec![0usize; n];
            for (new, &old) in perm.iter().enumerate() {
                iperm[old] = new;
            }
            let mut pkeys: Vec<u64> = keys
                .iter()
                .map(|&k| {
                    let (i, j) = ((k & 0xffff_ffff) as usize, (k >> 32) as usize);
                    let (lo, hi) = if iperm[i] <= iperm[j] {
                        (iperm[i], iperm[j])
                    } else {
                        (iperm[j], iperm[i])
                    };
                    ((hi as u64) << 32) | lo as u64
                })
                .collect();
            pkeys.sort_unstable();
            let mut kp = vec![0usize; n + 1];
            let mut ki = vec![0usize; pkeys.len()];
            for (s, &k) in pkeys.iter().enumerate() {
                let col = (k >> 32) as usize;
                kp[col + 1] += 1;
                ki[s] = (k & 0xffff_ffff) as usize;
            }
            for j in 0..n {
                kp[j + 1] += kp[j];
            }
            let factor = LdlFactor::symbolic(n, &kp, &ki);
            Candidate {
                perm,
                iperm,
                kp,
                ki,
                factor,
            }
        };
        let rcm = permute_symbolic(reverse_cuthill_mckee(n, &adj_ptr, &adj_idx));
        let md = permute_symbolic(minimum_degree(n, &adj_ptr, &adj_idx));
        let chosen = if md.factor.nnz_l() <= rcm.factor.nnz_l() {
            md
        } else {
            rcm
        };
        let Candidate {
            perm,
            iperm,
            kp,
            ki,
            factor,
        } = chosen;
        let nnz_k = keys.len();
        let ppack = |i: usize, j: usize| -> u64 {
            let (pi, pj) = (iperm[i], iperm[j]);
            let (lo, hi) = if pi <= pj { (pi, pj) } else { (pj, pi) };
            ((hi as u64) << 32) | lo as u64
        };
        let slot_of = |i: usize, j: usize| -> usize {
            // Upper-CSC binary search for permuted original-index (i, j).
            let key = ppack(i, j);
            let (lo, hi) = ((key & 0xffff_ffff) as usize, (key >> 32) as usize);
            let col = &ki[kp[hi]..kp[hi + 1]];
            kp[hi] + col.partition_point(|&r| r < lo)
        };
        let mut diag_slot = vec![0usize; n];
        for (j, slot) in diag_slot.iter_mut().enumerate() {
            *slot = slot_of(perm[j], perm[j]);
        }

        // Scatter plans against the current value layouts of P and A.
        let mut p_plan = Vec::with_capacity(p.nnz());
        for r in 0..n {
            for (e, &c) in p_idx.iter().enumerate().take(p_ptr[r + 1]).skip(p_ptr[r]) {
                if c >= r {
                    p_plan.push((slot_of(r, c) as u32, e as u32));
                }
            }
        }
        let mut a_slot = Vec::new();
        let mut a_i = Vec::new();
        let mut a_j = Vec::new();
        let mut a_row = Vec::new();
        for r in 0..m {
            for e1 in a_ptr[r]..a_ptr[r + 1] {
                for e2 in e1..a_ptr[r + 1] {
                    a_slot.push(slot_of(a_idx[e1], a_idx[e2]) as u32);
                    a_i.push(e1 as u32);
                    a_j.push(e2 as u32);
                    a_row.push(r as u32);
                }
            }
        }

        let nnz_l = factor.nnz_l();
        Some(Self {
            fingerprint,
            n,
            perm,
            kp,
            ki,
            kx: vec![0.0; nnz_k],
            diag_slot,
            p_plan,
            a_slot,
            a_i,
            a_j,
            a_row,
            factor,
            nnz_k,
            nnz_l,
            factors: 0,
            scratch: vec![0.0; n],
        })
    }

    /// Fill ratio `nnz(L) / nnz(K)` — the Auto-backend selection metric.
    pub fn fill_ratio(&self) -> f64 {
        self.nnz_l as f64 / self.nnz_k.max(1) as f64
    }

    /// Numeric phase: reassembles `K = P + AᵀDA` through the cached
    /// scatter plan and refactors into the cached symbolic structure.
    pub fn factor(&mut self, p: &CsrMatrix, a: &CsrMatrix, d: &[f64]) {
        let (_, _, pv) = p.raw_parts();
        let (_, _, av) = a.raw_parts();
        self.kx.fill(0.0);
        for &(slot, e) in &self.p_plan {
            self.kx[slot as usize] += pv[e as usize];
        }
        for q in 0..self.a_slot.len() {
            let w = d[self.a_row[q] as usize] * av[self.a_i[q] as usize] * av[self.a_j[q] as usize];
            self.kx[self.a_slot[q] as usize] += w;
        }
        let mut max_diag = 0.0f64;
        for &s in &self.diag_slot {
            max_diag = max_diag.max(self.kx[s].abs());
        }
        // Pivot floor: a vanished diagonal (variable untouched by P and
        // the active barrier rows) must not zero a pivot; refinement in
        // the IPM layer absorbs the perturbation.
        let pivot_floor = 1e-12 * max_diag.max(1e-300);
        self.factor
            .numeric(&self.kp, &self.ki, &self.kx, pivot_floor);
        self.factors += 1;
    }

    /// Solves `K·x = b` with the current factor (original variable order).
    pub fn solve(&mut self, b: &[f64], x: &mut [f64]) {
        for (new, &old) in self.perm.iter().enumerate() {
            self.scratch[new] = b[old];
        }
        self.factor.solve(&mut self.scratch);
        for (new, &old) in self.perm.iter().enumerate() {
            x[old] = self.scratch[new];
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }
}

/// Up-looking sparse LDLᵀ (Davis) with a persistent symbolic phase.
#[derive(Debug, Clone)]
struct LdlFactor {
    n: usize,
    /// Elimination-tree parent per column (`usize::MAX` = root).
    parent: Vec<usize>,
    /// Column pointers of `L` (strict lower triangle, CSC), length n+1.
    lp: Vec<usize>,
    /// Row indices of `L`, refilled by each numeric pass.
    li: Vec<usize>,
    /// Values of `L`.
    lx: Vec<f64>,
    /// Diagonal `D`.
    d: Vec<f64>,
    /// Dense accumulator workspace.
    y: Vec<f64>,
    /// Nonzero-pattern stack workspace.
    pattern: Vec<usize>,
    /// Visitation stamps (column index of last touch).
    flag: Vec<usize>,
    /// Per-column entry counts during the numeric pass.
    lnz: Vec<usize>,
}

impl LdlFactor {
    /// Symbolic factorization of the upper-CSC pattern (`kp`, `ki`):
    /// elimination tree and exact column counts of `L`.
    fn symbolic(n: usize, kp: &[usize], ki: &[usize]) -> Self {
        let mut parent = vec![usize::MAX; n];
        let mut flag = vec![usize::MAX; n];
        let mut counts = vec![0usize; n];
        for k in 0..n {
            flag[k] = k;
            for &row in &ki[kp[k]..kp[k + 1]] {
                let mut i = row;
                // Walk the elimination tree from i up toward k, marking.
                while i < k && flag[i] != k {
                    if parent[i] == usize::MAX {
                        parent[i] = k;
                    }
                    counts[i] += 1;
                    flag[i] = k;
                    i = parent[i];
                }
            }
        }
        let mut lp = vec![0usize; n + 1];
        for j in 0..n {
            lp[j + 1] = lp[j] + counts[j];
        }
        let lnz_total = lp[n];
        Self {
            n,
            parent,
            lp,
            li: vec![0; lnz_total],
            lx: vec![0.0; lnz_total],
            d: vec![0.0; n],
            y: vec![0.0; n],
            pattern: vec![0; n],
            flag,
            lnz: vec![0; n],
        }
    }

    fn nnz_l(&self) -> usize {
        self.lp[self.n]
    }

    /// Numeric factorization into the symbolic structure. Pivots below
    /// `pivot_floor` are clamped to it (K is SPSD up to barrier
    /// regularization, so negative pivots only arise from roundoff).
    fn numeric(&mut self, kp: &[usize], ki: &[usize], kx: &[f64], pivot_floor: f64) {
        let n = self.n;
        self.y[..n].fill(0.0);
        self.flag.fill(usize::MAX);
        self.lnz.fill(0);
        for k in 0..n {
            // Scatter column k of K and compute its L-pattern (the path
            // closure of the entries' rows in the elimination tree),
            // depth-first so `pattern[top..]` ends up topologically sorted.
            let mut top = n;
            self.flag[k] = k;
            for e in kp[k]..kp[k + 1] {
                let mut i = ki[e];
                self.y[i] += kx[e];
                let mut len = 0usize;
                while self.flag[i] != k {
                    self.pattern[len] = i;
                    len += 1;
                    self.flag[i] = k;
                    i = self.parent[i];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    self.pattern[top] = self.pattern[len];
                }
            }
            let mut dk = self.y[k];
            self.y[k] = 0.0;
            for t in top..n {
                let i = self.pattern[t];
                let yi = self.y[i];
                self.y[i] = 0.0;
                let p2 = self.lp[i] + self.lnz[i];
                for e in self.lp[i]..p2 {
                    self.y[self.li[e]] -= self.lx[e] * yi;
                }
                let l_ki = yi / self.d[i];
                dk -= l_ki * yi;
                self.li[p2] = k;
                self.lx[p2] = l_ki;
                self.lnz[i] += 1;
            }
            self.d[k] = if dk.is_finite() && dk > pivot_floor {
                dk
            } else {
                pivot_floor
            };
        }
    }

    /// In-place solve `L·D·Lᵀ·x = b` in the permuted index space.
    fn solve(&self, x: &mut [f64]) {
        let n = self.n;
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                for e in self.lp[j]..self.lp[j + 1] {
                    x[self.li[e]] -= self.lx[e] * xj;
                }
            }
        }
        for (xj, dj) in x.iter_mut().zip(&self.d) {
            *xj /= dj;
        }
        for j in (0..n).rev() {
            let mut xj = x[j];
            for e in self.lp[j]..self.lp[j + 1] {
                xj -= self.lx[e] * x[self.li[e]];
            }
            x[j] = xj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: K·x for the assembled normal equations.
    fn normal_mul(p: &CsrMatrix, a: &CsrMatrix, d: &[f64], x: &[f64]) -> Vec<f64> {
        let mut y = p.mul_vec(x);
        let mut t = a.mul_vec(x);
        for (ti, &di) in t.iter_mut().zip(d) {
            *ti *= di;
        }
        let at = a.mul_transpose_vec(&t);
        for (yi, ai) in y.iter_mut().zip(at) {
            *yi += ai;
        }
        y
    }

    fn check_solve(p: &CsrMatrix, a: &CsrMatrix, d: &[f64], b: &[f64], tol: f64) {
        let mut ds = DirectSolver::build(p, a, 0).expect("buildable");
        ds.factor(p, a, d);
        let mut x = vec![0.0; b.len()];
        ds.solve(b, &mut x);
        let kx = normal_mul(p, a, d, &x);
        for i in 0..b.len() {
            assert!(
                (kx[i] - b[i]).abs() < tol,
                "residual at {i}: {} vs {}",
                kx[i],
                b[i]
            );
        }
    }

    #[test]
    fn factors_and_solves_a_small_spd_system() {
        // P diagonal + a few coupling rows: strictly positive definite K.
        let p = CsrMatrix::diagonal(&[2.0, 1.0, 3.0, 0.5]);
        let a = CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, -1.0),
                (1, 1, 2.0),
                (1, 2, 1.0),
                (2, 2, -1.0),
                (2, 3, 1.0),
            ],
        );
        let d = vec![1.5, 0.25, 4.0];
        check_solve(&p, &a, &d, &[1.0, -2.0, 0.5, 3.0], 1e-9);
    }

    #[test]
    fn refactor_tracks_changing_d() {
        let p = CsrMatrix::diagonal(&[1.0, 1.0, 1.0]);
        let a =
            CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 1.0), (1, 2, -1.0)]);
        let mut ds = DirectSolver::build(&p, &a, 0).expect("buildable");
        for scale in [1.0, 10.0, 1e4] {
            let d = vec![scale, 2.0 * scale];
            ds.factor(&p, &a, &d);
            let b = vec![1.0, 2.0, 3.0];
            let mut x = vec![0.0; 3];
            ds.solve(&b, &mut x);
            let kx = normal_mul(&p, &a, &d, &x);
            for i in 0..3 {
                assert!((kx[i] - b[i]).abs() < 1e-7 * scale, "scale {scale} row {i}");
            }
        }
        assert_eq!(ds.factors, 3);
    }

    #[test]
    fn zero_diagonal_variables_survive_via_pivot_floor() {
        // Variable 1 appears in neither P nor A: K has a zero diagonal.
        let p = CsrMatrix::diagonal(&[2.0, 0.0, 1.0]);
        let a = CsrMatrix::from_triplets(1, 3, &[(0, 0, 1.0), (0, 2, 1.0)]);
        let mut ds = DirectSolver::build(&p, &a, 0).expect("buildable");
        ds.factor(&p, &a, &[3.0]);
        let mut x = vec![0.0; 3];
        ds.solve(&[1.0, 0.0, 1.0], &mut x);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dense_row_disqualifies_build() {
        let n = DENSE_ROW_CAP + 8;
        let p = CsrMatrix::identity(n);
        let trips: Vec<(usize, usize, f64)> = (0..n).map(|j| (0, j, 1.0)).collect();
        let a = CsrMatrix::from_triplets(1, n, &trips);
        assert!(DirectSolver::build(&p, &a, 0).is_none());
    }

    #[test]
    fn chain_structure_stays_sparse() {
        // Tridiagonal-ish chain: RCM + LDL must produce O(n) fill.
        let n = 500usize;
        let p = CsrMatrix::identity(n);
        let mut trips = Vec::new();
        for i in 0..n - 1 {
            trips.push((i, i, 1.0));
            trips.push((i, i + 1, -1.0));
        }
        let a = CsrMatrix::from_triplets(n - 1, n, &trips);
        let ds = DirectSolver::build(&p, &a, 0).expect("buildable");
        assert!(
            ds.fill_ratio() < 2.0,
            "chain fill ratio {} should be ~1",
            ds.fill_ratio()
        );
    }
}
