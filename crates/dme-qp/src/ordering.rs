//! Fill-reducing orderings for sparse symmetric factorization.
//!
//! The direct Newton backend factors `K = P + AᵀDA` with a sparse LDLᵀ;
//! the amount of fill-in that factorization produces depends entirely on
//! the elimination order. Two orderings are provided and the builder
//! keeps whichever gives the smaller symbolic factor:
//!
//! - **Reverse Cuthill–McKee**: breadth-first bandwidth minimization,
//!   O(|E|). Near-optimal on banded/chain-like graphs (pure timing
//!   chains) but poor when high-degree hubs exist — a hub ordered early
//!   turns its whole neighborhood into fill.
//! - **Minimum degree**: greedy elimination of the currently
//!   lowest-degree vertex on the evolving elimination graph. This is
//!   what the dose-map `K` wants: each dose variable couples to *every*
//!   arrival variable in its grid cell (a hub), so minimum degree
//!   eliminates the chain-like arrival variables first and the dose
//!   hubs last, after their neighborhoods have collapsed into small
//!   cliques — an order of magnitude less fill than RCM on the
//!   DMopt formulations.

/// Computes a reverse Cuthill–McKee permutation of the undirected graph
/// given in CSR adjacency form (`adj_ptr`/`adj_idx`, no self loops
/// required). Returns `perm` with `perm[new] = old`; every vertex appears
/// exactly once (disconnected components are each ordered from their own
/// pseudo-peripheral start).
pub(crate) fn reverse_cuthill_mckee(n: usize, adj_ptr: &[usize], adj_idx: &[usize]) -> Vec<usize> {
    let degree = |v: usize| adj_ptr[v + 1] - adj_ptr[v];
    let mut perm = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Stable iteration over start candidates: lowest degree first so the
    // BFS begins near the boundary of each component.
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&v| (degree(v), v));

    let mut frontier = Vec::new();
    let mut next = Vec::new();
    for &seed in &by_degree {
        if visited[seed] {
            continue;
        }
        let start = pseudo_peripheral(seed, adj_ptr, adj_idx, &mut visited);
        // Cuthill–McKee BFS from `start`, neighbors in increasing degree.
        visited[start] = true;
        let comp_begin = perm.len();
        perm.push(start);
        frontier.clear();
        frontier.push(start);
        while !frontier.is_empty() {
            next.clear();
            for &v in &frontier {
                let nbr_begin = next.len();
                for &w in &adj_idx[adj_ptr[v]..adj_ptr[v + 1]] {
                    if !visited[w] {
                        visited[w] = true;
                        next.push(w);
                    }
                }
                next[nbr_begin..].sort_by_key(|&w| (degree(w), w));
            }
            perm.extend_from_slice(&next);
            std::mem::swap(&mut frontier, &mut next);
        }
        // Reverse within the component (the "R" in RCM).
        perm[comp_begin..].reverse();
    }
    debug_assert_eq!(perm.len(), n);
    perm
}

/// Computes a minimum-degree permutation of the undirected graph given
/// in CSR adjacency form. Returns `perm` with `perm[new] = old`: the
/// vertex eliminated at step `k` becomes column `k` of the permuted
/// matrix. Exact elimination-graph minimum degree with deterministic
/// lowest-index tie-breaking; the quotient-graph tricks of AMD are not
/// needed at the sizes the direct backend accepts.
pub(crate) fn minimum_degree(n: usize, adj_ptr: &[usize], adj_idx: &[usize]) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Per-vertex adjacency on the evolving elimination graph. Lists are
    // kept sorted, deduplicated, and free of eliminated vertices: every
    // elimination rewrites exactly its neighbors' lists, and only those
    // lists could have referenced the eliminated vertex.
    let mut adj: Vec<Vec<u32>> = (0..n)
        .map(|v| {
            let mut a: Vec<u32> = adj_idx[adj_ptr[v]..adj_ptr[v + 1]]
                .iter()
                .filter(|&&w| w != v)
                .map(|&w| w as u32)
                .collect();
            a.sort_unstable();
            a.dedup();
            a
        })
        .collect();
    let mut eliminated = vec![false; n];
    // Lazy heap: stale entries (degree changed since push) are skipped.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|v| Reverse((adj[v].len(), v))).collect();
    let mut perm = Vec::with_capacity(n);
    let mut merged: Vec<u32> = Vec::new();
    while let Some(Reverse((d, v))) = heap.pop() {
        if eliminated[v] || adj[v].len() != d {
            continue;
        }
        eliminated[v] = true;
        let nbrs = std::mem::take(&mut adj[v]);
        perm.push(v);
        let vv = v as u32;
        // Leaf fast path: no clique to form, only drop v from the single
        // neighbor's list. This is the dominant elimination early on.
        if nbrs.len() == 1 {
            let wu = nbrs[0] as usize;
            if let Ok(pos) = adj[wu].binary_search(&vv) {
                adj[wu].remove(pos);
            }
            heap.push(Reverse((adj[wu].len(), wu)));
            continue;
        }
        // Eliminating v turns its neighborhood into a clique: each
        // neighbor's new list is the sorted union of its old list (minus
        // v) with the other neighbors — a linear two-pointer merge, both
        // inputs being sorted and deduplicated already.
        for &w in &nbrs {
            let wu = w as usize;
            merged.clear();
            let a = &adj[wu];
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < nbrs.len() {
                let x = a[i];
                if x == vv {
                    i += 1;
                    continue;
                }
                let y = nbrs[j];
                if y == w {
                    j += 1;
                    continue;
                }
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => {
                        merged.push(x);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(y);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(x);
                        i += 1;
                        j += 1;
                    }
                }
            }
            for &x in &a[i..] {
                if x != vv {
                    merged.push(x);
                }
            }
            for &y in &nbrs[j..] {
                if y != w {
                    merged.push(y);
                }
            }
            std::mem::swap(&mut adj[wu], &mut merged);
            heap.push(Reverse((adj[wu].len(), wu)));
        }
    }
    debug_assert_eq!(perm.len(), n);
    perm
}

/// Finds a pseudo-peripheral vertex of `seed`'s component: repeatedly
/// jump to a minimum-degree vertex of the deepest BFS level until the
/// eccentricity stops growing. `visited` is only used as scratch and is
/// restored to all-false for the component before returning.
fn pseudo_peripheral(
    seed: usize,
    adj_ptr: &[usize],
    adj_idx: &[usize],
    visited: &mut [bool],
) -> usize {
    let degree = |v: usize| adj_ptr[v + 1] - adj_ptr[v];
    let mut start = seed;
    let mut best_depth = 0usize;
    for _ in 0..8 {
        // BFS recording the last level.
        let mut frontier = vec![start];
        visited[start] = true;
        let mut touched = vec![start];
        let mut depth = 0usize;
        let mut last_level = frontier.clone();
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in &adj_idx[adj_ptr[v]..adj_ptr[v + 1]] {
                    if !visited[w] {
                        visited[w] = true;
                        touched.push(w);
                        next.push(w);
                    }
                }
            }
            if !next.is_empty() {
                depth += 1;
                last_level = next.clone();
            }
            frontier = next;
        }
        for v in touched {
            visited[v] = false;
        }
        if depth <= best_depth {
            break;
        }
        best_depth = depth;
        start = last_level
            .iter()
            .copied()
            .min_by_key(|&v| (degree(v), v))
            .unwrap_or(start);
    }
    start
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacency(n: usize, edges: &[(usize, usize)]) -> (Vec<usize>, Vec<usize>) {
        let mut deg = vec![0usize; n];
        for &(a, b) in edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        let mut ptr = vec![0usize; n + 1];
        for v in 0..n {
            ptr[v + 1] = ptr[v] + deg[v];
        }
        let mut idx = vec![0usize; ptr[n]];
        let mut fill = ptr.clone();
        for &(a, b) in edges {
            idx[fill[a]] = b;
            fill[a] += 1;
            idx[fill[b]] = a;
            fill[b] += 1;
        }
        (ptr, idx)
    }

    fn bandwidth(perm: &[usize], edges: &[(usize, usize)]) -> usize {
        let n = perm.len();
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        edges
            .iter()
            .map(|&(a, b)| inv[a].abs_diff(inv[b]))
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn rcm_is_a_permutation() {
        let edges = [(0, 3), (3, 1), (1, 4), (4, 2), (0, 4), (5, 6)];
        let (ptr, idx) = adjacency(8, &edges);
        let perm = reverse_cuthill_mckee(8, &ptr, &idx);
        let mut seen = [false; 8];
        for &v in &perm {
            assert!(!seen[v], "duplicate vertex {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rcm_narrows_a_shuffled_path() {
        // A path graph relabelled badly: natural order has bandwidth ~n.
        let n = 64usize;
        let relabel = |v: usize| (v * 37) % n;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|v| (relabel(v), relabel(v + 1))).collect();
        let (ptr, idx) = adjacency(n, &edges);
        let identity: Vec<usize> = (0..n).collect();
        let perm = reverse_cuthill_mckee(n, &ptr, &idx);
        let bw = bandwidth(&perm, &edges);
        assert!(
            bw <= 2,
            "path graph must be ordered to bandwidth <= 2, got {bw} (identity {})",
            bandwidth(&identity, &edges)
        );
    }

    #[test]
    fn rcm_handles_isolated_vertices() {
        let (ptr, idx) = adjacency(4, &[(1, 2)]);
        let perm = reverse_cuthill_mckee(4, &ptr, &idx);
        assert_eq!(perm.len(), 4);
    }

    #[test]
    fn minimum_degree_is_a_permutation() {
        let edges = [(0, 3), (3, 1), (1, 4), (4, 2), (0, 4), (5, 6), (0, 0)];
        let (ptr, idx) = adjacency(8, &edges);
        let perm = minimum_degree(8, &ptr, &idx);
        let mut seen = [false; 8];
        for &v in &perm {
            assert!(!seen[v], "duplicate vertex {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn minimum_degree_eliminates_hub_last() {
        // Star graph: the hub must come last — eliminating it first would
        // turn all leaves into one dense clique.
        let n = 9usize;
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        let (ptr, idx) = adjacency(n, &edges);
        let perm = minimum_degree(n, &ptr, &idx);
        // Once two vertices remain the orders are fill-equivalent, so the
        // hub may legitimately land second-to-last.
        let hub_pos = perm.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= n - 2, "hub ordered at {hub_pos} in {perm:?}");
    }
}
