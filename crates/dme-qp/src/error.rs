//! Error types for the QP solver.

use std::error::Error;
use std::fmt;

/// Errors returned by the solver entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// A matrix or vector has an inconsistent dimension.
    Dimension(String),
    /// A constraint row has `l > u` or a NaN bound.
    InvalidBounds {
        /// Constraint row index.
        row: usize,
        /// Offending lower bound.
        lower: f64,
        /// Offending upper bound.
        upper: f64,
    },
    /// A numerical failure occurred (non-PSD `P`, non-finite iterates).
    Numerical(String),
    /// Bisection was given an empty or invalid bracket.
    InvalidBracket {
        /// Lower end of the bracket.
        lo: f64,
        /// Upper end of the bracket.
        hi: f64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Dimension(msg) => write!(f, "dimension mismatch: {msg}"),
            SolveError::InvalidBounds { row, lower, upper } => {
                write!(f, "invalid bounds at row {row}: [{lower}, {upper}]")
            }
            SolveError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            SolveError::InvalidBracket { lo, hi } => {
                write!(f, "invalid bisection bracket [{lo}, {hi}]")
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<SolveError> = vec![
            SolveError::Dimension("x".into()),
            SolveError::InvalidBounds {
                row: 1,
                lower: 2.0,
                upper: 1.0,
            },
            SolveError::Numerical("bad".into()),
            SolveError::InvalidBracket { lo: 1.0, hi: 0.0 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
