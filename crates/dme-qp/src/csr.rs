//! Compressed sparse row matrices.

use std::fmt;
use std::sync::OnceLock;

/// Minimum stored-entry count before a matrix–vector product fans out to
/// the thread pool; below this fork-join overhead dominates.
const SPMV_PAR_CUTOFF_NNZ: usize = 16 * 1024;

/// Rows per parallel task in the SpMV kernels. The per-row accumulation
/// order never changes, so this only affects load balancing.
const SPMV_ROW_GRAIN: usize = 256;

/// A sparse matrix in compressed-sparse-row (CSR) format.
///
/// Supports exactly the operations the ADMM solver and the dose-map
/// formulation builder need: construction from triplets or rows,
/// matrix–vector products with the matrix and its transpose, and per-column
/// squared norms (for Jacobi preconditioning of `AᵀA`).
///
/// Transpose products use a lazily built, cached explicit transpose so
/// `Aᵀx` is a row-parallel gather instead of a serial scatter; the gather
/// accumulates each output in the same (row-ascending) order the scatter
/// did, so results are bitwise identical.
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
    /// Cached explicit transpose (structural fields only; its own cache
    /// is never populated). Built on first transpose product.
    transpose: OnceLock<Box<CsrMatrix>>,
}

impl Clone for CsrMatrix {
    fn clone(&self) -> Self {
        // The cache is cheap to rebuild; don't deep-copy it.
        Self {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.clone(),
            transpose: OnceLock::new(),
        }
    }
}

impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality only; the transpose cache is derived state.
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.vals == other.vals
    }
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix({}x{}, nnz={})",
            self.nrows,
            self.ncols,
            self.nnz()
        )
    }
}

impl CsrMatrix {
    /// Creates an empty (all-zero) matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
            transpose: OnceLock::new(),
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![1.0; n],
            transpose: OnceLock::new(),
        }
    }

    /// Creates a square diagonal matrix from its diagonal entries.
    /// Zero entries are stored explicitly (keeps row structure trivial).
    pub fn diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        Self {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: diag.to_vec(),
            transpose: OnceLock::new(),
        }
    }

    /// Builds a matrix from `(row, col, value)` triplets. Duplicate
    /// positions are summed; triplets need not be sorted.
    ///
    /// # Panics
    ///
    /// Panics if any triplet indexes outside `nrows × ncols`.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                r < nrows && c < ncols,
                "triplet ({r},{c}) outside {nrows}x{ncols}"
            );
        }
        // Count entries per row.
        let mut counts = vec![0usize; nrows];
        for &(r, _, _) in triplets {
            counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for r in 0..nrows {
            row_ptr[r + 1] = row_ptr[r] + counts[r];
        }
        let nnz = row_ptr[nrows];
        let mut col_idx = vec![0usize; nnz];
        let mut vals = vec![0.0; nnz];
        let mut next = row_ptr.clone();
        for &(r, c, v) in triplets {
            let k = next[r];
            col_idx[k] = c;
            vals[k] = v;
            next[r] += 1;
        }
        let mut m = Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
            transpose: OnceLock::new(),
        };
        m.sort_and_dedup_rows();
        m
    }

    /// Builds a matrix row by row; each row is a slice of `(col, value)`
    /// pairs. Duplicate columns within a row are summed.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    pub fn from_rows(ncols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for row in rows {
            for &(c, v) in row {
                assert!(c < ncols, "column {c} out of range (ncols={ncols})");
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        let mut m = Self {
            nrows: rows.len(),
            ncols,
            row_ptr,
            col_idx,
            vals,
            transpose: OnceLock::new(),
        };
        m.sort_and_dedup_rows();
        m
    }

    fn sort_and_dedup_rows(&mut self) {
        let mut new_col = Vec::with_capacity(self.col_idx.len());
        let mut new_val = Vec::with_capacity(self.vals.len());
        let mut new_ptr = Vec::with_capacity(self.nrows + 1);
        new_ptr.push(0usize);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                scratch.push((self.col_idx[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                new_col.push(c);
                new_val.push(v);
            }
            new_ptr.push(new_col.len());
        }
        self.col_idx = new_col;
        self.vals = new_val;
        self.row_ptr = new_ptr;
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Raw CSR arrays `(row_ptr, col_idx, vals)` for the in-crate direct
    /// factorization (pattern enumeration and scatter-plan replay need
    /// positional access that the `row` iterator cannot express).
    pub(crate) fn raw_parts(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.vals)
    }

    /// FNV-1a hash of the sparsity *structure*: dimensions, row pointers
    /// and column indices (values excluded). Two matrices with equal
    /// fingerprints share assembly plans and symbolic factorizations —
    /// the key that lets the IPM reuse its direct-backend cache across
    /// bisection probes, where only bounds and values change.
    pub(crate) fn pattern_fingerprint(&self, mut hash: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut mix = |v: u64| {
            hash ^= v;
            hash = hash.wrapping_mul(PRIME);
        };
        mix(self.nrows as u64);
        mix(self.ncols as u64);
        for &p in &self.row_ptr {
            mix(p as u64);
        }
        for &c in &self.col_idx {
            mix(c as u64);
        }
        hash
    }

    /// Iterates over the stored entries of one row as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.nrows);
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// Dense `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// `y = A·x` into a caller-provided buffer (reused across ADMM
    /// iterations to avoid per-iteration allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        if !dme_par::would_parallelize(self.nnz(), SPMV_PAR_CUTOFF_NNZ) {
            for (r, yr) in y.iter_mut().enumerate() {
                *yr = self.row_dot(r, x);
            }
            return;
        }
        // Row-parallel: each output element is one row's dot product, so
        // the accumulation order (and thus the result) is unchanged.
        dme_par::par_chunks_mut(y, SPMV_ROW_GRAIN, |row0, chunk| {
            for (k, yr) in chunk.iter_mut().enumerate() {
                *yr = self.row_dot(row0 + k, x);
            }
        });
    }

    #[inline]
    fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for k in self.row_ptr[r]..self.row_ptr[r + 1] {
            acc += self.vals[k] * x[self.col_idx[k]];
        }
        acc
    }

    /// Dense `y = Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn mul_transpose_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.ncols];
        self.mul_transpose_vec_into(x, &mut y);
        y
    }

    /// `y = Aᵀ·x` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows` or `y.len() != ncols`.
    pub fn mul_transpose_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "x length mismatch");
        assert_eq!(y.len(), self.ncols, "y length mismatch");
        // Gather through the cached explicit transpose instead of
        // scattering through `self`: output elements become independent
        // (parallelizable) and each `y[c]` accumulates its terms in the
        // same row-ascending order the scatter used, so the result is
        // bitwise identical. The zero-skip mirrors the scatter's
        // `x[r] == 0.0` fast path exactly.
        let t = self.transpose_ref();
        let gather = |c: usize, x: &[f64]| -> f64 {
            let mut acc = 0.0;
            for k in t.row_ptr[c]..t.row_ptr[c + 1] {
                let xr = x[t.col_idx[k]];
                if xr == 0.0 {
                    continue;
                }
                acc += t.vals[k] * xr;
            }
            acc
        };
        if !dme_par::would_parallelize(self.nnz(), SPMV_PAR_CUTOFF_NNZ) {
            for (c, yc) in y.iter_mut().enumerate() {
                *yc = gather(c, x);
            }
            return;
        }
        dme_par::par_chunks_mut(y, SPMV_ROW_GRAIN, |col0, chunk| {
            for (k, yc) in chunk.iter_mut().enumerate() {
                *yc = gather(col0 + k, x);
            }
        });
    }

    /// The cached explicit transpose, built on first use. Entries of each
    /// transpose row are ordered by ascending original row index.
    fn transpose_ref(&self) -> &CsrMatrix {
        self.transpose.get_or_init(|| {
            let mut counts = vec![0usize; self.ncols];
            for &c in &self.col_idx {
                counts[c] += 1;
            }
            let mut row_ptr = vec![0usize; self.ncols + 1];
            for c in 0..self.ncols {
                row_ptr[c + 1] = row_ptr[c] + counts[c];
            }
            let mut col_idx = vec![0usize; self.nnz()];
            let mut vals = vec![0.0; self.nnz()];
            let mut next = row_ptr.clone();
            for r in 0..self.nrows {
                for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                    let c = self.col_idx[k];
                    let slot = next[c];
                    col_idx[slot] = r;
                    vals[slot] = self.vals[k];
                    next[c] += 1;
                }
            }
            Box::new(CsrMatrix {
                nrows: self.ncols,
                ncols: self.nrows,
                row_ptr,
                col_idx,
                vals,
                transpose: OnceLock::new(),
            })
        })
    }

    /// Per-column sums of squared entries, i.e. the diagonal of `AᵀA`.
    pub fn column_sq_norms(&self) -> Vec<f64> {
        let mut norms = vec![0.0; self.ncols];
        for k in 0..self.vals.len() {
            norms[self.col_idx[k]] += self.vals[k] * self.vals[k];
        }
        norms
    }

    /// The main diagonal (length `min(nrows, ncols)`), zeros where absent.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for (r, dr) in d.iter_mut().enumerate() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] == r {
                    *dr = self.vals[k];
                }
            }
        }
        d
    }

    /// Converts to a dense row-major matrix (tests and tiny systems only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, row) in dense.iter_mut().enumerate() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                row[self.col_idx[k]] += self.vals[k];
            }
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mul(m: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        m.iter()
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    #[test]
    fn triplets_sum_duplicates_and_sort() {
        let m =
            CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 2, 3.0), (1, 1, -1.0)]);
        assert_eq!(m.nnz(), 3);
        let rows: Vec<Vec<(usize, f64)>> = (0..2).map(|r| m.row(r).collect()).collect();
        assert_eq!(rows[0], vec![(0, 2.0), (2, 4.0)]);
        assert_eq!(rows[1], vec![(1, -1.0)]);
    }

    #[test]
    fn mul_matches_dense() {
        let m =
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, -3.0), (2, 1, 0.5)]);
        let dense = m.to_dense();
        let x = [1.5, -2.0];
        assert_eq!(m.mul_vec(&x), dense_mul(&dense, &x));
        // transpose
        let xt = [1.0, 2.0, 3.0];
        let yt = m.mul_transpose_vec(&xt);
        let mut expect = vec![0.0; 2];
        for r in 0..3 {
            for c in 0..2 {
                expect[c] += dense[r][c] * xt[r];
            }
        }
        assert_eq!(yt, expect);
    }

    #[test]
    fn identity_and_diagonal() {
        let i3 = CsrMatrix::identity(3);
        assert_eq!(i3.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        let d = CsrMatrix::diagonal(&[2.0, 0.0, -1.0]);
        assert_eq!(d.mul_vec(&[1.0, 5.0, 2.0]), vec![2.0, 0.0, -2.0]);
        assert_eq!(d.diag(), vec![2.0, 0.0, -1.0]);
    }

    #[test]
    fn column_sq_norms_match_ata_diag() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 3.0), (1, 0, 4.0), (1, 1, 2.0)]);
        assert_eq!(m.column_sq_norms(), vec![25.0, 4.0]);
    }

    #[test]
    fn from_rows_builds_expected_shape() {
        let m = CsrMatrix::from_rows(
            4,
            &[vec![(3, 1.0), (0, 2.0)], vec![], vec![(1, 1.0), (1, 1.0)]],
        );
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        let r2: Vec<_> = m.row(2).collect();
        assert_eq!(r2, vec![(1, 2.0)]);
    }

    #[test]
    fn zeros_multiply_to_zero() {
        let m = CsrMatrix::zeros(2, 3);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![0.0, 0.0]);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn triplets_out_of_range_panics() {
        CsrMatrix::from_triplets(1, 1, &[(1, 0, 1.0)]);
    }
}
