//! Pluggable interior-point strategy seams.
//!
//! The IPM iteration loop in [`crate::IpmSolver`] is written against
//! three small traits rather than one hard-coded algorithm, following
//! the shape of copters' `lp/mpc` solver (solver generic over the
//! augmented-system formulation, the centering rule, and the line
//! search):
//!
//! - [`AugmentedSystem`] — forms and solves the per-iteration Newton
//!   system. The bundled [`CondensedSystem`] eliminates slacks and
//!   multipliers down to the SPD system `(P + AᵀDA)·Δx = rhs`, backed
//!   by either matrix-free CG or the cached sparse LDLᵀ factorization.
//! - [`MuUpdate`] — chooses the centering parameter σ each iteration
//!   and decides whether an affine predictor pass runs at all.
//!   [`MehrotraCentering`] is the adaptive `σ = (µ_aff/µ)³` rule;
//!   [`FixedCentering`] is the classical short/long-step path-following
//!   rule (one Newton solve per iteration, constant σ).
//! - [`LineSearch`] — maps a search direction to primal and dual step
//!   lengths. [`FractionToBoundary`] is the standard rule keeping
//!   slacks and multipliers strictly positive.
//!
//! Strategy selection is a [`crate::IpmSettings`] field with an
//! environment override (`DME_QP_IPM=mehrotra|basic`), mirroring the
//! `DME_QP_BACKEND` and `DME_DOSEPL_ENGINE` toggles: the default
//! [`IpmStrategy::Auto`] resolves the variable once per solve and an
//! unknown value degrades to the Mehrotra default rather than aborting.

mod augmented_system;
mod line_search;
mod mu_update;

pub use augmented_system::{AugmentedSystem, CondensedSystem};
pub use line_search::{FractionToBoundary, LineSearch, RowView};
pub use mu_update::{CenteringContext, FixedCentering, MehrotraCentering, MuUpdate};

/// Which interior-point iteration strategy drives the solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IpmStrategy {
    /// Resolve from the `DME_QP_IPM` environment variable at solve time
    /// (`mehrotra` or `basic`, case-insensitive); unset or unknown
    /// values fall back to Mehrotra.
    #[default]
    Auto,
    /// Mehrotra predictor-corrector: an affine predictor solve picks the
    /// adaptive centering `σ = (µ_aff/µ)³` and contributes second-order
    /// complementarity corrections; both solves share one factorization.
    Mehrotra,
    /// Basic path-following: a single centered Newton solve per
    /// iteration with fixed σ ([`crate::IpmSettings::sigma_basic`]).
    /// Kept selectable as the baseline the predictor-corrector is
    /// measured against (`ipm_iterations` in BENCH_perf.json).
    Basic,
}

impl IpmStrategy {
    /// Parses a strategy override value. Unknown strings map to `None`
    /// so a typo in `DME_QP_IPM` degrades to the configured default
    /// rather than aborting a long flow.
    pub fn parse(s: &str) -> Option<IpmStrategy> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(IpmStrategy::Auto),
            "mehrotra" => Some(IpmStrategy::Mehrotra),
            "basic" => Some(IpmStrategy::Basic),
            _ => None,
        }
    }

    /// Resolves `Auto` against the `DME_QP_IPM` environment variable.
    /// The result is concrete: never `Auto`.
    pub fn resolve(self) -> IpmStrategy {
        match self {
            IpmStrategy::Auto => std::env::var("DME_QP_IPM")
                .ok()
                .and_then(|v| IpmStrategy::parse(&v))
                .filter(|s| *s != IpmStrategy::Auto)
                .unwrap_or(IpmStrategy::Mehrotra),
            other => other,
        }
    }

    /// Stable lower-case name for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            IpmStrategy::Auto => "auto",
            IpmStrategy::Mehrotra => "mehrotra",
            IpmStrategy::Basic => "basic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_values_only() {
        assert_eq!(IpmStrategy::parse("mehrotra"), Some(IpmStrategy::Mehrotra));
        assert_eq!(IpmStrategy::parse("Basic"), Some(IpmStrategy::Basic));
        assert_eq!(IpmStrategy::parse("AUTO"), Some(IpmStrategy::Auto));
        assert_eq!(IpmStrategy::parse("fancy"), None);
        assert_eq!(IpmStrategy::parse(""), None);
    }

    #[test]
    fn explicit_strategies_resolve_to_themselves() {
        // Explicit settings win regardless of the environment; only Auto
        // consults DME_QP_IPM (not set here, so it lands on the default
        // unless the strategy matrix leg forces one).
        assert_eq!(IpmStrategy::Mehrotra.resolve(), IpmStrategy::Mehrotra);
        assert_eq!(IpmStrategy::Basic.resolve(), IpmStrategy::Basic);
        assert_ne!(IpmStrategy::Auto.resolve(), IpmStrategy::Auto);
    }
}
