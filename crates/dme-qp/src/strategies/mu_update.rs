//! Centering (µ-update) strategies.

/// Inputs to the per-iteration centering decision.
#[derive(Debug, Clone, Copy)]
pub struct CenteringContext {
    /// Average complementarity gap µ at the top of the iteration.
    pub mu: f64,
    /// Predicted gap after the full affine step (equal to `mu` for
    /// strategies that skip the predictor pass).
    pub mu_aff: f64,
    /// Absolute dual-residual infinity norm `‖Px + q + Aᵀy‖∞`.
    pub rd_inf: f64,
    /// Normalizer `max(‖q‖∞, 1)` for the dual residual.
    pub q_norm: f64,
}

/// Chooses the centering parameter σ ∈ [0, 1] each IPM iteration, and
/// declares whether the iteration runs an affine predictor solve first.
pub trait MuUpdate {
    /// Whether the iteration performs the affine predictor solve (and
    /// second-order complementarity correction) before the centered
    /// corrector solve. When `false`, the loop does exactly one Newton
    /// solve with the σ returned by [`MuUpdate::sigma`].
    fn needs_predictor(&self) -> bool;

    /// Centering parameter σ for the (corrector) solve. The target
    /// complementarity products are `σ·µ`.
    fn sigma(&self, ctx: &CenteringContext) -> f64;
}

/// Centrality safeguard shared by all centering rules: while dual
/// infeasibility dwarfs the complementarity gap, hold the barrier up —
/// letting µ collapse first ill-conditions every later Newton system.
fn centrality_floor(sigma: f64, ctx: &CenteringContext) -> f64 {
    if ctx.rd_inf > 1e2 * ctx.mu.max(1e-300) && ctx.rd_inf / ctx.q_norm > 1e-4 {
        sigma.max(0.5)
    } else {
        sigma
    }
}

/// Mehrotra's adaptive rule `σ = (µ_aff/µ)³`: when the affine step
/// already shrinks the gap a lot, barely center; when it is blocked,
/// recenter aggressively.
#[derive(Debug, Clone, Copy, Default)]
pub struct MehrotraCentering;

impl MuUpdate for MehrotraCentering {
    fn needs_predictor(&self) -> bool {
        true
    }

    fn sigma(&self, ctx: &CenteringContext) -> f64 {
        let sigma = if ctx.mu > 1e-300 {
            (ctx.mu_aff / ctx.mu).clamp(0.0, 1.0).powi(3)
        } else {
            0.0
        };
        centrality_floor(sigma, ctx)
    }
}

/// Classical path-following with a constant centering parameter: no
/// predictor pass, one Newton solve per iteration aiming at `σ·µ`.
#[derive(Debug, Clone, Copy)]
pub struct FixedCentering {
    /// The constant σ (the solver default is
    /// [`crate::IpmSettings::sigma_basic`]).
    pub sigma: f64,
}

impl MuUpdate for FixedCentering {
    fn needs_predictor(&self) -> bool {
        false
    }

    fn sigma(&self, ctx: &CenteringContext) -> f64 {
        centrality_floor(self.sigma.clamp(0.0, 1.0), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(mu: f64, mu_aff: f64) -> CenteringContext {
        CenteringContext {
            mu,
            mu_aff,
            rd_inf: 0.0,
            q_norm: 1.0,
        }
    }

    #[test]
    fn mehrotra_sigma_is_cubed_ratio() {
        let m = MehrotraCentering;
        assert!((m.sigma(&ctx(1.0, 0.5)) - 0.125).abs() < 1e-15);
        assert_eq!(m.sigma(&ctx(1.0, 0.0)), 0.0);
        assert_eq!(m.sigma(&ctx(0.0, 0.0)), 0.0);
        // A blocked affine step (µ_aff ≈ µ) recenters fully.
        assert!((m.sigma(&ctx(1.0, 1.0)) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn fixed_sigma_is_constant_until_the_safeguard_bites() {
        let f = FixedCentering { sigma: 0.1 };
        assert!((f.sigma(&ctx(1.0, 1.0)) - 0.1).abs() < 1e-15);
        // Large dual residual relative to µ floors σ at 0.5 for both rules.
        let hot = CenteringContext {
            mu: 1e-9,
            mu_aff: 1e-9,
            rd_inf: 1.0,
            q_norm: 1.0,
        };
        assert!((f.sigma(&hot) - 0.5).abs() < 1e-15);
        assert!((MehrotraCentering.sigma(&hot) - 1.0).abs() < 1e-15);
    }
}
