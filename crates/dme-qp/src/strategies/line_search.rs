//! Step-length (line-search) strategies.

/// Borrowed view of the per-row barrier state the line search consumes:
/// bound structure, current slacks, and one-sided multipliers.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    /// Finite-lower-bound flags per row.
    pub has_l: &'a [bool],
    /// Finite-upper-bound flags per row.
    pub has_u: &'a [bool],
    /// Lower bounds (after equality-gap widening).
    pub l: &'a [f64],
    /// Upper bounds (after equality-gap widening).
    pub u: &'a [f64],
    /// Row slacks `s`, strictly inside `[l, u]`.
    pub s: &'a [f64],
    /// Lower-side multipliers `z_l > 0` (0 where no lower bound).
    pub zl: &'a [f64],
    /// Upper-side multipliers `z_u > 0`.
    pub zu: &'a [f64],
}

/// Maps a search direction to primal and dual step lengths
/// `(α_p, α_d) ∈ (0, 1]²`.
pub trait LineSearch {
    /// Largest steps keeping slacks (primal) and multipliers (dual)
    /// strictly positive, shrunk by the fraction-to-the-boundary factor
    /// `frac` (1.0 for the affine predictor probe, the configured
    /// `step_frac` for the actual step). Separate step lengths are the
    /// standard Mehrotra practice: one blocked multiplier must not
    /// freeze the primal (and vice versa).
    fn step_lengths(
        &self,
        rows: &RowView<'_>,
        ds: &[f64],
        dzl: &[f64],
        dzu: &[f64],
        frac: f64,
    ) -> (f64, f64);
}

/// The standard fraction-to-the-boundary rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct FractionToBoundary;

impl LineSearch for FractionToBoundary {
    fn step_lengths(
        &self,
        rows: &RowView<'_>,
        ds: &[f64],
        dzl: &[f64],
        dzu: &[f64],
        frac: f64,
    ) -> (f64, f64) {
        let mut ap = 1.0f64;
        let mut ad = 1.0f64;
        for i in 0..ds.len() {
            if rows.has_l[i] {
                let sl = rows.s[i] - rows.l[i];
                if ds[i] < 0.0 {
                    ap = ap.min(-sl / ds[i]);
                }
                if dzl[i] < 0.0 {
                    ad = ad.min(-rows.zl[i] / dzl[i]);
                }
            }
            if rows.has_u[i] {
                let su = rows.u[i] - rows.s[i];
                if ds[i] > 0.0 {
                    ap = ap.min(su / ds[i]);
                }
                if dzu[i] < 0.0 {
                    ad = ad.min(-rows.zu[i] / dzu[i]);
                }
            }
        }
        ((frac * ap).min(1.0), (frac * ad).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_slack_limits_the_primal_step_only() {
        let rows = RowView {
            has_l: &[true],
            has_u: &[false],
            l: &[0.0],
            u: &[f64::INFINITY],
            s: &[1.0],
            zl: &[2.0],
            zu: &[0.0],
        };
        // Slack heads for the boundary at step 0.5; the multiplier grows.
        let (ap, ad) = FractionToBoundary.step_lengths(&rows, &[-2.0], &[1.0], &[0.0], 1.0);
        assert!((ap - 0.5).abs() < 1e-15);
        assert!((ad - 1.0).abs() < 1e-15);
        // The fraction-to-boundary factor shrinks both.
        let (ap, ad) = FractionToBoundary.step_lengths(&rows, &[-2.0], &[-4.0], &[0.0], 0.995);
        assert!((ap - 0.995 * 0.5).abs() < 1e-15);
        assert!((ad - 0.995 * 0.5).abs() < 1e-15);
    }
}
