//! Newton (augmented-system) formulations and their linear solvers.

use crate::ldl::DirectSolver;
use crate::observer::{CgSolve, FactorizationEvent, SolverObserver};
use crate::{CsrMatrix, SolveError};
use dme_par::vecops;
use std::time::Instant;

/// Forms and solves the per-iteration Newton system.
///
/// The contract is the condensed normal-equations form: after the slacks
/// and one-sided multipliers are eliminated, each step reduces to
/// `(P + AᵀDA)·Δx = −r_d − Aᵀ(g + D·r_p)` where `D` is the barrier
/// diagonal and `g` carries the (strategy-dependent) complementarity
/// targets. Implementations own the linear-solver state so one numeric
/// preparation ([`AugmentedSystem::prepare`]) can be shared by several
/// solves — exactly what the Mehrotra predictor/corrector pair exploits.
pub trait AugmentedSystem {
    /// Linear-solver name for telemetry: `"direct"` or `"cg"`.
    fn backend_name(&self) -> &'static str;

    /// Sets the relative/absolute accuracy targets for subsequent
    /// [`AugmentedSystem::solve`] calls (the Eisenstat–Walker forcing
    /// sequence changes these every iteration).
    fn set_tolerances(&mut self, rel_tol: f64, abs_tol: f64);

    /// Prepares the system for the barrier diagonal `d`: one numeric
    /// refactorization on the direct path (streamed to `obs`), a no-op
    /// for matrix-free CG.
    fn prepare(&mut self, d: &[f64], obs: &mut dyn SolverObserver);

    /// Solves `(P + AᵀDA)·Δx = −rd − Aᵀ(g + D·rp)` into `dx`, streaming
    /// CG telemetry to `obs` on the iterative path.
    ///
    /// # Errors
    ///
    /// [`SolveError::Numerical`] when the solve produces non-finite
    /// values or CG detects negative curvature (`P` not PSD).
    fn solve(
        &mut self,
        g: &[f64],
        d: &[f64],
        rd: &[f64],
        rp: &[f64],
        dx: &mut Vec<f64>,
        obs: &mut dyn SolverObserver,
    ) -> Result<CgSolve, SolveError>;
}

/// The condensed SPD formulation `(P + AᵀDA)` with the two bundled
/// linear solvers: cached sparse LDLᵀ (numeric refactorization per
/// [`CondensedSystem::prepare`] call) or Jacobi-preconditioned
/// matrix-free CG.
pub struct CondensedSystem<'a> {
    p: &'a CsrMatrix,
    a: &'a CsrMatrix,
    p_diag: Vec<f64>,
    direct: Option<&'a mut DirectSolver>,
    cg: Option<CgScratch>,
    cg_max_iter: usize,
    rel_tol: f64,
    abs_tol: f64,
}

impl<'a> CondensedSystem<'a> {
    /// Builds the system over the (scaled) problem matrices. Exactly one
    /// of the two linear solvers is active: `direct` when the caller's
    /// backend decision produced a factorization, CG otherwise.
    /// Crate-internal: construction requires the private [`DirectSolver`].
    pub(crate) fn new(
        p: &'a CsrMatrix,
        a: &'a CsrMatrix,
        direct: Option<&'a mut DirectSolver>,
        cg_max_iter: usize,
    ) -> Self {
        let n = p.ncols();
        let m = a.nrows();
        let cg = direct.is_none().then(|| CgScratch::new(n, m));
        Self {
            p,
            a,
            p_diag: p.diag(),
            direct,
            cg,
            cg_max_iter,
            rel_tol: 1e-10,
            abs_tol: 1e-13,
        }
    }
}

impl AugmentedSystem for CondensedSystem<'_> {
    fn backend_name(&self) -> &'static str {
        if self.direct.is_some() {
            "direct"
        } else {
            "cg"
        }
    }

    fn set_tolerances(&mut self, rel_tol: f64, abs_tol: f64) {
        self.rel_tol = rel_tol;
        self.abs_tol = abs_tol;
    }

    fn prepare(&mut self, d: &[f64], obs: &mut dyn SolverObserver) {
        if let Some(ds) = self.direct.as_deref_mut() {
            let _span = dme_obs::span("refactor");
            let t0 = Instant::now();
            ds.factor(self.p, self.a, d);
            obs.factorization(&FactorizationEvent {
                symbolic_reused: ds.factors > 1,
                refactor_ns: t0.elapsed().as_nanos() as u64,
                nnz_l: ds.nnz_l,
                n: ds.num_vars(),
            });
        }
    }

    fn solve(
        &mut self,
        g: &[f64],
        d: &[f64],
        rd: &[f64],
        rp: &[f64],
        dx: &mut Vec<f64>,
        obs: &mut dyn SolverObserver,
    ) -> Result<CgSolve, SolveError> {
        let _span = dme_obs::span("solve");
        let n = self.p.ncols();
        let m = self.a.nrows();
        let mut t = vec![0.0f64; m];
        for i in 0..m {
            t[i] = g[i] + d[i] * rp[i];
        }
        let at_t = self.a.mul_transpose_vec(&t);
        let mut rhs = vec![0.0f64; n];
        for j in 0..n {
            rhs[j] = -rd[j] - at_t[j];
        }
        dx.fill(0.0);
        if let Some(ds) = self.direct.as_deref_mut() {
            return direct_newton_solve(ds, self.p, self.a, d, &rhs, dx, self.abs_tol);
        }
        let cg = self.cg.as_mut().expect("CG scratch exists on the CG path");
        let stats = cg.solve(
            self.p,
            self.a,
            d,
            &self.p_diag,
            &rhs,
            dx,
            self.cg_max_iter,
            self.rel_tol,
            self.abs_tol,
        )?;
        obs.cg_solve(&stats);
        Ok(stats)
    }
}

/// Direct Newton solve: LDLᵀ triangular solves plus up to two iterative-
/// refinement passes against the matrix-free operator, honoring the same
/// absolute accuracy target as the CG path (the pivot floor and the
/// normal-equations conditioning make raw triangular solves a hair less
/// accurate than the factorization's cost would suggest).
fn direct_newton_solve(
    ds: &mut DirectSolver,
    p: &CsrMatrix,
    a: &CsrMatrix,
    d: &[f64],
    rhs: &[f64],
    dx: &mut [f64],
    abs_tol: f64,
) -> Result<CgSolve, SolveError> {
    let n = rhs.len();
    let m = d.len();
    ds.solve(rhs, dx);
    let mut corr = vec![0.0f64; n];
    let mut resid = vec![0.0f64; n];
    let mut tm = vec![0.0f64; m];
    let b_norm = vecops::norm2(rhs).max(1e-300);
    let mut rel = 0.0;
    for _ in 0..3 {
        // resid = rhs − (P + AᵀDA)·dx, matrix-free.
        p.mul_vec_into(dx, &mut resid);
        a.mul_vec_into(dx, &mut tm);
        vecops::mul_assign(d, &mut tm);
        let at = a.mul_transpose_vec(&tm);
        for j in 0..n {
            resid[j] = rhs[j] - resid[j] - at[j];
        }
        let r_norm = vecops::norm2(&resid);
        rel = r_norm / b_norm;
        if r_norm <= abs_tol.max(1e-14 * b_norm) {
            break;
        }
        ds.solve(&resid, &mut corr);
        for j in 0..n {
            dx[j] += corr[j];
        }
    }
    if dx.iter().any(|v| !v.is_finite()) {
        return Err(SolveError::Numerical(
            "direct Newton solve produced non-finite values".into(),
        ));
    }
    Ok(CgSolve {
        iterations: 0,
        rel_residual: rel,
    })
}

/// CG on `(P + AᵀDA)` with Jacobi preconditioning (shares the matrix-free
/// structure of the ADMM x-update but with the barrier diagonal `D`).
struct CgScratch {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    kp: Vec<f64>,
    sm: Vec<f64>,
    sn: Vec<f64>,
}

impl CgScratch {
    fn new(n: usize, m: usize) -> Self {
        Self {
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            kp: vec![0.0; n],
            sm: vec![0.0; m],
            sn: vec![0.0; n],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve(
        &mut self,
        pm: &CsrMatrix,
        a: &CsrMatrix,
        d: &[f64],
        p_diag: &[f64],
        b: &[f64],
        x: &mut [f64],
        max_iter: usize,
        rel_tol: f64,
        abs_tol: f64,
    ) -> Result<CgSolve, SolveError> {
        let n = b.len();
        let trace = std::env::var_os("DME_IPM_TRACE").is_some();
        // Jacobi preconditioner: diag(P) + Σ d_i·a_ij², stored inverted so
        // the per-iteration apply is a parallel element-wise product.
        let mut inv_prec = vec![1e-12f64; n];
        for j in 0..n {
            inv_prec[j] += p_diag[j];
        }
        for (i, &di) in d.iter().enumerate().take(a.nrows()) {
            for (c, v) in a.row(i) {
                inv_prec[c] += di * v * v;
            }
        }
        for v in &mut inv_prec {
            *v = 1.0 / *v;
        }
        let b_norm = vecops::norm2(b).max(1e-300);
        // x starts at 0, so r = b.
        self.r.copy_from_slice(b);
        vecops::hadamard(&inv_prec, &self.r, &mut self.z);
        let mut rz = vecops::dot(&self.r, &self.z);
        self.p.copy_from_slice(&self.z);
        let mut iterations = 0usize;
        for _ in 0..max_iter {
            let r_norm = vecops::norm2(&self.r);
            if r_norm <= (rel_tol * b_norm).min(abs_tol.max(rel_tol * b_norm * 1e-3)) {
                break;
            }
            pm.mul_vec_into(&self.p, &mut self.kp);
            a.mul_vec_into(&self.p, &mut self.sm);
            vecops::mul_assign(d, &mut self.sm);
            a.mul_transpose_vec_into(&self.sm, &mut self.sn);
            vecops::axpy(1.0, &self.sn, &mut self.kp);
            vecops::axpy(1e-12, &self.p, &mut self.kp);
            let pkp = vecops::dot(&self.p, &self.kp);
            if !pkp.is_finite() || pkp <= 0.0 {
                if pkp < 0.0 {
                    return Err(SolveError::Numerical(
                        "CG encountered negative curvature; P is not PSD".into(),
                    ));
                }
                break;
            }
            iterations += 1;
            let alpha = rz / pkp;
            vecops::cg_update(x, alpha, &self.p, &mut self.r, -alpha, &self.kp);
            vecops::hadamard(&inv_prec, &self.r, &mut self.z);
            let rz_new = vecops::dot(&self.r, &self.z);
            let beta = rz_new / rz.max(1e-300);
            rz = rz_new;
            vecops::xpby(&self.z, beta, &mut self.p);
        }
        let rel_residual = vecops::norm2(&self.r) / b_norm;
        if trace {
            eprintln!("    cg: rel_res={rel_residual:.2e} (b_norm={b_norm:.2e})");
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(SolveError::Numerical(
                "CG produced non-finite iterate".into(),
            ));
        }
        Ok(CgSolve {
            iterations,
            rel_residual,
        })
    }
}
