//! Primal-dual interior-point solver (Mehrotra predictor-corrector).
//!
//! This is the workhorse solver for the dose-map QPs: timing-graph
//! constraint chains make first-order splitting methods (ADMM) converge
//! with a contraction factor near one, while a Newton-type interior-point
//! method reaches 1e-8 accuracy in a few tens of iterations — the same
//! reason the paper reaches for CPLEX. The implementation solves
//!
//! ```text
//! min ½·xᵀPx + qᵀx   s.t.   l ≤ Ax ≤ u
//! ```
//!
//! by introducing row slacks `s = Ax` with barrier terms on the finite
//! sides of `[l, u]`, reducing each Newton step to the SPD system
//! `(P + AᵀDA)·Δx = rhs` (see [`crate::strategies::CondensedSystem`]).
//!
//! The iteration loop is written against the pluggable strategy seams in
//! [`crate::strategies`]: the default Mehrotra predictor-corrector runs
//! an affine predictor solve and a second-order-corrected centering
//! solve against one shared factorization per iteration, while the
//! classical fixed-σ path-following baseline (`DME_QP_IPM=basic`, or
//! [`IpmSettings::strategy`]) does a single centered solve — the two can
//! be diffed per-iteration through [`SolverObserver`] telemetry and are
//! benchmarked head-to-head by `scripts/bench_perf.sh`.
//!
//! Rows with `l = u` (equalities) are handled by clamping the barrier
//! diagonal, which penalizes them stiffly; rows with both bounds infinite
//! are inert.

use crate::admm::{Solution, SolveStatus};
use crate::ldl::DirectSolver;
use crate::observer::{CgSolve, IpmIteration, NopObserver, SolverObserver};
use crate::strategies::{
    AugmentedSystem, CenteringContext, CondensedSystem, FixedCentering, FractionToBoundary,
    IpmStrategy, LineSearch, MehrotraCentering, MuUpdate, RowView,
};
use crate::{QuadProgram, SolveError};
use dme_par::vecops;
use std::cell::RefCell;

/// Which linear solver computes each Newton step `(P + AᵀDA)·Δx = rhs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NewtonBackend {
    /// Matrix-free Jacobi-preconditioned conjugate gradients. Memory
    /// stays linear in the nonzeros; iteration count depends on the
    /// conditioning of the barrier diagonal.
    Cg,
    /// Assembled sparse LDLᵀ with a cached symbolic factorization: the
    /// pattern, fill-reducing ordering, and elimination tree are built
    /// once per problem structure; each IPM iteration only replays a
    /// scatter plan and refactors numerically. Falls back to CG when the
    /// structure disqualifies itself (a dense constraint row).
    Direct,
    /// Direct when the symbolic fill estimate stays below
    /// [`IpmSettings::direct_fill_limit`], else CG. The estimate is
    /// computed once per structure and the decision is cached.
    #[default]
    Auto,
}

/// Settings for [`IpmSolver`].
#[derive(Debug, Clone)]
pub struct IpmSettings {
    /// Convergence tolerance on the scaled primal/dual residuals.
    pub eps: f64,
    /// Convergence tolerance on the average complementarity gap µ.
    pub eps_mu: f64,
    /// Maximum interior-point (Newton) iterations.
    pub max_iter: usize,
    /// Maximum CG iterations per Newton solve.
    pub cg_max_iter: usize,
    /// Relative CG tolerance (the floor when adaptive forcing is on).
    pub cg_tol: f64,
    /// Fraction-to-the-boundary step factor.
    pub step_frac: f64,
    /// Ruiz equilibration passes (0 disables scaling).
    pub scaling_iters: usize,
    /// Newton-system backend selection.
    pub backend: NewtonBackend,
    /// `Auto` picks the direct backend only while `nnz(L) / nnz(K)` stays
    /// at or below this ratio; past it the factor is deemed too dense and
    /// CG wins on memory and per-iteration cost.
    pub direct_fill_limit: f64,
    /// Eisenstat–Walker adaptive forcing for the CG path: early Newton
    /// iterations, whose steps are inaccurate anyway, solve to a loose
    /// tolerance tied to the KKT residual decrease instead of grinding
    /// to `cg_tol`.
    pub adaptive_cg: bool,
    /// Iteration strategy: Mehrotra predictor-corrector or the basic
    /// fixed-σ path-following baseline. The default `Auto` resolves the
    /// `DME_QP_IPM` environment override at solve time.
    pub strategy: IpmStrategy,
    /// Constant centering parameter for [`IpmStrategy::Basic`].
    pub sigma_basic: f64,
}

impl Default for IpmSettings {
    fn default() -> Self {
        Self {
            eps: 1e-6,
            eps_mu: 1e-8,
            max_iter: 60,
            cg_max_iter: 400,
            cg_tol: 1e-10,
            step_frac: 0.995,
            scaling_iters: 10,
            backend: NewtonBackend::default(),
            direct_fill_limit: 16.0,
            adaptive_cg: true,
            strategy: IpmStrategy::default(),
            sigma_basic: 0.1,
        }
    }
}

/// Per-structure cache for the direct backend, validated by a pattern
/// fingerprint so one solver instance can be reused across bisection
/// probes (`set_tau` only moves bounds, never the sparsity).
#[derive(Debug, Clone, Default)]
enum DirectCache {
    /// No structure seen yet.
    #[default]
    Empty,
    /// The structure with this fingerprint was examined and turned down
    /// (dense row, pattern blowup, or fill estimate past the limit).
    Rejected(u64),
    /// Built and ready for numeric refactorization.
    Built(Box<DirectSolver>),
}

/// Interior-point solver over the strategy seams in
/// [`crate::strategies`] (Mehrotra predictor-corrector by default).
#[derive(Debug, Clone, Default)]
pub struct IpmSolver {
    settings: IpmSettings,
    /// Warm-start point `(x, y)` in the *unscaled* problem space, carried
    /// across solves until replaced (parity with `AdmmSolver`).
    warm: Option<(Vec<f64>, Vec<f64>)>,
    /// Direct-backend cache; interior-mutable so `solve(&self)` keeps its
    /// signature while the symbolic factorization persists across calls.
    direct: RefCell<DirectCache>,
}

/// Barrier state per constraint row.
struct Rows {
    /// Finite lower bound flag.
    has_l: Vec<bool>,
    /// Finite upper bound flag.
    has_u: Vec<bool>,
    /// Slack value `s` (clamped strictly inside `[l, u]`).
    s: Vec<f64>,
    /// Lower-side multiplier `z_l ≥ 0` (0 where no lower bound).
    zl: Vec<f64>,
    /// Upper-side multiplier `z_u ≥ 0`.
    zu: Vec<f64>,
}

impl IpmSolver {
    /// Creates a solver with the given settings.
    pub fn new(settings: IpmSettings) -> Self {
        Self {
            settings,
            warm: None,
            direct: RefCell::new(DirectCache::Empty),
        }
    }

    /// Provides a warm-start point (in the original, unscaled problem
    /// space) for the next solves — typically the solution of an adjacent
    /// bisection probe. The point seeds the primal iterate, the row
    /// slacks, and the barrier multipliers; it persists until replaced.
    /// Mirrors [`crate::AdmmSolver::warm_start`].
    pub fn warm_start(&mut self, x: Vec<f64>, y: Vec<f64>) -> &mut Self {
        self.warm = Some((x, y));
        self
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Numerical`] if a Newton system solve produces
    /// non-finite values (e.g. `P` not PSD).
    pub fn solve(&self, qp: &QuadProgram) -> Result<Solution, SolveError> {
        self.solve_observed(qp, &mut NopObserver)
    }

    /// Solves the program, streaming per-iteration telemetry to `obs`
    /// (see [`SolverObserver`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`IpmSolver::solve`].
    pub fn solve_observed(
        &self,
        qp: &QuadProgram,
        obs: &mut dyn SolverObserver,
    ) -> Result<Solution, SolveError> {
        let _span = dme_obs::span("ipm");
        // Ruiz equilibration: mixed row/column units (ns-scale timing rows
        // against %-scale dose rows) otherwise stall the dual residual.
        let scale = crate::admm::Scaling::compute(qp, self.settings.scaling_iters);
        let n = qp.num_vars();
        let m = qp.num_constraints();
        let scaled = QuadProgram {
            p: scale.scale_p(&qp.p),
            q: (0..n).map(|j| scale.cost * scale.d[j] * qp.q[j]).collect(),
            a: scale.scale_a(&qp.a),
            l: (0..m).map(|i| scale.e[i] * qp.l[i]).collect(),
            u: (0..m).map(|i| scale.e[i] * qp.u[i]).collect(),
        };
        // Map the warm-start point into the scaled space (the inverse of
        // the un-scaling applied to the solution below). A point with the
        // wrong dimensions is silently ignored.
        let warm_scaled = self.warm.as_ref().and_then(|(wx, wy)| {
            if wx.len() != n || wy.len() != m {
                return None;
            }
            let x: Vec<f64> = (0..n).map(|j| wx[j] / scale.d[j]).collect();
            let y: Vec<f64> = (0..m).map(|i| wy[i] * scale.cost / scale.e[i]).collect();
            (x.iter().chain(y.iter()).all(|v| v.is_finite())).then_some((x, y))
        });
        let mut sol = self.solve_scaled(&scaled, warm_scaled, obs)?;
        for j in 0..n {
            sol.x[j] *= scale.d[j];
        }
        for i in 0..m {
            sol.y[i] *= scale.e[i] / scale.cost;
        }
        sol.objective = qp.objective(&sol.x);
        // Residuals in unscaled space.
        let px = qp.p.mul_vec(&sol.x);
        let aty = qp.a.mul_transpose_vec(&sol.y);
        sol.dual_residual = (0..n)
            .map(|j| (px[j] + qp.q[j] + aty[j]).abs())
            .fold(0.0f64, f64::max);
        sol.primal_residual = qp.max_violation(&sol.x);
        Ok(sol)
    }

    /// Decides (and lazily builds) the direct backend for this structure.
    /// The decision is cached by pattern fingerprint, so repeated solves
    /// on the same structure — IPM bisection probes — pay the symbolic
    /// cost exactly once.
    fn use_direct(&self, qp: &QuadProgram) -> bool {
        let st = &self.settings;
        if st.backend == NewtonBackend::Cg {
            return false;
        }
        let fp =
            qp.a.pattern_fingerprint(qp.p.pattern_fingerprint(0xcbf2_9ce4_8422_2325));
        let mut cache = self.direct.borrow_mut();
        match &*cache {
            DirectCache::Built(ds) if ds.fingerprint == fp => return true,
            DirectCache::Rejected(rej) if *rej == fp => return false,
            _ => {}
        }
        match DirectSolver::build(&qp.p, &qp.a, fp) {
            Some(ds)
                if st.backend == NewtonBackend::Direct
                    || ds.fill_ratio() <= st.direct_fill_limit =>
            {
                *cache = DirectCache::Built(Box::new(ds));
                true
            }
            _ => {
                *cache = DirectCache::Rejected(fp);
                false
            }
        }
    }

    fn solve_scaled(
        &self,
        qp: &QuadProgram,
        warm: Option<(Vec<f64>, Vec<f64>)>,
        obs: &mut dyn SolverObserver,
    ) -> Result<Solution, SolveError> {
        let st = &self.settings;
        let n = qp.num_vars();
        let m = qp.num_constraints();
        let p = &qp.p;
        let a = &qp.a;
        let q = &qp.q;

        // Strategy seams: the centering rule decides whether an affine
        // predictor pass runs; the line search maps directions to steps.
        let strategy = st.strategy.resolve();
        obs.strategy(strategy.name());
        let mehrotra_mu = MehrotraCentering;
        let fixed_mu = FixedCentering {
            sigma: st.sigma_basic,
        };
        let mu_rule: &dyn MuUpdate = match strategy {
            IpmStrategy::Basic => &fixed_mu,
            _ => &mehrotra_mu,
        };
        let use_predictor = mu_rule.needs_predictor();
        let line_search = FractionToBoundary;

        // Scale used to make equality rows (l = u) numerically benign:
        // give them a tiny synthetic gap.
        let gap_min = 1e-8;
        let mut l = qp.l.clone();
        let mut u = qp.u.clone();
        for i in 0..m {
            if u[i] - l[i] < gap_min && u[i].is_finite() {
                let mid = 0.5 * (u[i] + l[i]);
                l[i] = mid - 0.5 * gap_min;
                u[i] = mid + 0.5 * gap_min;
            }
        }

        let mut rows = Rows {
            has_l: l.iter().map(|v| v.is_finite()).collect(),
            has_u: u.iter().map(|v| v.is_finite()).collect(),
            s: vec![0.0; m],
            zl: vec![0.0; m],
            zu: vec![0.0; m],
        };

        let q_norm = inf_norm(q).max(1.0);
        let b_norm = l
            .iter()
            .chain(u.iter())
            .filter(|v| v.is_finite())
            .fold(0.0f64, |acc, v| acc.max(v.abs()))
            .max(1.0);

        // Newton backend: resolved once per solve; the direct cache (and
        // its symbolic factorization) persists across solves on the same
        // structure.
        let use_direct = self.use_direct(qp);
        obs.newton_backend(if use_direct { "direct" } else { "cg" });
        let mut guard = use_direct.then(|| self.direct.borrow_mut());
        let direct = match guard.as_deref_mut() {
            Some(DirectCache::Built(ds)) => Some(ds.as_mut()),
            _ => None,
        };
        let mut sys = CondensedSystem::new(p, a, direct, st.cg_max_iter);

        // Scratch buffers.
        let mut d = vec![0.0f64; m];
        let mut g = vec![0.0f64; m];
        let mut dx = vec![0.0f64; n];

        // --- initialization ---
        // Cold start: the Mehrotra starting-point heuristic — one loose
        // Newton solve of min ½xᵀPx + qᵀx + ½‖Ax − t‖² pulling each
        // bounded row toward a well-centered target `t` (the same
        // condensed system with unit barrier weights, so the direct
        // path reuses its symbolic factorization), then slacks clamped
        // well inside the bounds and unit one-sided multipliers.
        // Warm start: seed x from the caller's point, keep the
        // slacks only a sliver inside the boundary (the point is
        // expected near-optimal, where active constraints sit *on* the
        // boundary), and split the warm dual row-multipliers into the
        // two one-sided barrier multipliers with a small positivity
        // floor.
        let mut x = vec![0.0f64; n];
        if let Some((wx, _)) = &warm {
            x.copy_from_slice(wx);
        } else if n > 0 && m > 0 {
            let _span = dme_obs::span("start");
            let mut d0 = vec![0.0f64; m];
            let mut rp0 = vec![0.0f64; m];
            for i in 0..m {
                let (fl, fu) = (rows.has_l[i], rows.has_u[i]);
                if fl || fu {
                    // Narrow rows — equality rows carry only the 1e-8
                    // synthetic gap — must be met much more tightly than
                    // wide inequality rows, or the initial primal residual
                    // dwarfs their slack box and the fraction-to-boundary
                    // rule pins the first steps near zero. Inverse-width
                    // weighting (capped so the system stays solvable by a
                    // loose CG pass) leaves their residual at the box's
                    // scale instead.
                    d0[i] = if fl && fu {
                        (u[i] - l[i]).clamp(1e-6, 1.0).recip()
                    } else {
                        1.0
                    };
                    // rp = A·0 − t = −t for target slack t.
                    rp0[i] = -match (fl, fu) {
                        (true, true) => 0.5 * (l[i] + u[i]),
                        (true, false) => l[i] + 1.0,
                        _ => u[i] - 1.0,
                    };
                }
            }
            // A starting point only needs a loose solve; non-finite or
            // runaway results (singular systems) fall back to x = 0.
            sys.set_tolerances(1e-4, 1e-6 * q_norm);
            sys.prepare(&d0, obs);
            if sys.solve(&g, &d0, q, &rp0, &mut dx, obs).is_ok()
                && inf_norm(&dx) <= 1e8 * (1.0 + b_norm)
            {
                x.copy_from_slice(&dx);
            }
        }
        let ax0 = a.mul_vec(&x);
        for i in 0..m {
            let (lo, hi) = (l[i], u[i]);
            let margin = match (&warm, lo.is_finite() && hi.is_finite()) {
                (None, true) => (0.1 * (hi - lo)).clamp(1e-6, 1.0),
                (None, false) => 1.0,
                (Some(_), true) => (1e-3 * (hi - lo)).clamp(1e-9, 1e-3),
                (Some(_), false) => 1e-6,
            };
            rows.s[i] = match (rows.has_l[i], rows.has_u[i]) {
                (true, true) => ax0[i].clamp(
                    lo + margin.min(0.4 * (hi - lo)),
                    hi - margin.min(0.4 * (hi - lo)),
                ),
                (true, false) => ax0[i].max(lo + margin),
                (false, true) => ax0[i].min(hi - margin),
                (false, false) => ax0[i],
            };
            let wy = warm.as_ref().map_or(0.0, |(_, wy)| wy[i]);
            if rows.has_l[i] {
                rows.zl[i] = if warm.is_some() { (-wy).max(1e-4) } else { 1.0 };
            }
            if rows.has_u[i] {
                rows.zu[i] = if warm.is_some() { wy.max(1e-4) } else { 1.0 };
            }
        }
        let mut y: Vec<f64> = (0..m).map(|i| rows.zu[i] - rows.zl[i]).collect();

        // Eisenstat–Walker forcing state (CG path): previous relative KKT
        // residual, driving the next solve's relative tolerance.
        let mut prev_kkt: Option<f64> = None;

        // Reduced-precision acceptance bounds for the two stall exits
        // below: primal feasibility and the complementarity gap must be
        // near full precision (those are what downstream timing checks
        // consume), while the dual residual — the quantity a degenerate
        // active set pins away from zero — is accepted at 1e-2 relative.
        const STALL_RP: f64 = 1e-4;
        const STALL_RD: f64 = 1e-2;
        const STALL_MU: f64 = 1e-4;

        let mut status = SolveStatus::MaxIterations;
        let mut iterations = st.max_iter;
        let mut final_rp = f64::INFINITY;
        let mut final_rd = f64::INFINITY;
        let mut stalled_steps = 0usize;
        let mut prev_mu = f64::INFINITY;
        // Merit-based stall detection: the best combined KKT merit seen
        // so far and the number of consecutive iterations without a ≥1%
        // improvement on it.
        let mut best_merit = f64::INFINITY;
        let mut no_progress = 0usize;

        for iter in 0..st.max_iter {
            // Residuals.
            let px = p.mul_vec(&x);
            let aty = a.mul_transpose_vec(&y);
            let rd: Vec<f64> = (0..n).map(|j| px[j] + q[j] + aty[j]).collect();
            let ax = a.mul_vec(&x);
            let rp: Vec<f64> = (0..m).map(|i| ax[i] - rows.s[i]).collect();
            // y-consistency is maintained exactly (y := zu − zl below).
            let mut mu = 0.0;
            let mut nfin = 0usize;
            for i in 0..m {
                if rows.has_l[i] {
                    mu += rows.zl[i] * (rows.s[i] - l[i]);
                    nfin += 1;
                }
                if rows.has_u[i] {
                    mu += rows.zu[i] * (u[i] - rows.s[i]);
                    nfin += 1;
                }
            }
            if nfin > 0 {
                mu /= nfin as f64;
            }
            // OSQP-style relative residuals: normalize by the magnitude of
            // the terms composing each residual, not just the static data
            // norms. On the dose-map QPs the active timing multipliers are
            // orders of magnitude above ‖q‖ (≈1 after cost scaling), so a
            // q-only denominator would turn the dual test into an absolute
            // one and overstate the residual by the same factor.
            let rp_scale = b_norm.max(inf_norm(&ax)).max(inf_norm(&rows.s));
            let rd_scale = q_norm.max(inf_norm(&px)).max(inf_norm(&aty));
            let rp_inf = inf_norm(&rp) / rp_scale;
            let rd_inf = inf_norm(&rd) / rd_scale;
            final_rp = inf_norm(&rp);
            final_rd = inf_norm(&rd);
            if rp_inf < st.eps && rd_inf < st.eps && mu < st.eps_mu {
                status = SolveStatus::Solved;
                iterations = iter;
                break;
            }
            // Reduced-precision stall exit. On degenerate programs (the
            // dose-map QPs at τ = nominal have a maximally active timing
            // set) the central path leads to a non-strictly-complementary
            // point: the merit stops contracting while the step length
            // collapses, and Mehrotra iterations churn forever. When the
            // merit has not improved by ≥1% for several consecutive
            // iterations AND the iterate already meets the reduced
            // tolerances below (primal and µ near full precision, dual
            // within 1e-2 — the dual is exactly what non-strict
            // complementarity blocks), declare it solved at reduced
            // precision — the behaviour of production interior-point
            // codes. An iterate that is stalled but *not* within reduced
            // precision keeps iterating (an inexact Newton backend may
            // still escape, and an honest MaxIterations beats a wrong
            // Solved).
            let merit = rp_inf.max(rd_inf).max(mu);
            if merit < 0.99 * best_merit {
                best_merit = merit;
                no_progress = 0;
            } else {
                no_progress += 1;
            }
            if no_progress >= 5 && rp_inf < STALL_RP && rd_inf < STALL_RD && mu < STALL_MU {
                status = SolveStatus::Solved;
                iterations = iter;
                break;
            }

            // Regularized slacks: the *same* effective slack values are
            // used in D, g and the Δz recovery formulas, so the Newton
            // identity `PΔx + AᵀΔy = −rd` holds exactly even when a slack
            // is pinned to the boundary (inconsistent clamping would leak
            // the clamp error straight into the dual residual).
            let mut sl_eff = vec![0.0f64; m];
            let mut su_eff = vec![0.0f64; m];
            for i in 0..m {
                if rows.has_l[i] {
                    sl_eff[i] = (rows.s[i] - l[i]).max(rows.zl[i] * 1e-12).max(1e-14);
                }
                if rows.has_u[i] {
                    su_eff[i] = (u[i] - rows.s[i]).max(rows.zu[i] * 1e-12).max(1e-14);
                }
            }
            // Barrier diagonal D and first-order term g (σ = 0, affine).
            for i in 0..m {
                let mut di = 0.0;
                let mut gi = 0.0;
                if rows.has_l[i] {
                    di += rows.zl[i] / sl_eff[i];
                    gi += rows.zl[i]; // −c_l/sl with c_l = −Zl·sl
                }
                if rows.has_u[i] {
                    di += rows.zu[i] / su_eff[i];
                    gi -= rows.zu[i]; // c_u/su with c_u = −Zu·su
                }
                d[i] = di.max(1e-12);
                // r_y = y − zu + zl = 0 by construction.
                g[i] = gi;
            }

            // CG must deliver ABSOLUTE accuracy below the dual residual we
            // are trying to reach: with a huge RHS (D·rp terms), relative
            // tolerance alone leaves an absolute error that becomes the
            // dual-residual floor.
            let cg_abs_tol = (1e-2 * inf_norm(&rd))
                .max(0.05 * st.eps * q_norm)
                .max(1e-13);
            // Eisenstat–Walker forcing: the relative CG tolerance tracks
            // the square of the KKT residual contraction, so early Newton
            // steps (inaccurate regardless) stop over-solving while the
            // endgame still reaches `cg_tol`. The absolute floor above is
            // what guarantees final accuracy either way.
            let kkt = rp_inf.max(rd_inf);
            let cg_rel_tol = if st.adaptive_cg {
                match prev_kkt {
                    Some(prev) if prev > 0.0 && kkt.is_finite() => {
                        (0.9 * (kkt / prev).powi(2)).clamp(st.cg_tol, 1e-2)
                    }
                    _ => 1e-2,
                }
            } else {
                st.cg_tol
            };
            prev_kkt = Some(kkt);
            sys.set_tolerances(cg_rel_tol, cg_abs_tol);

            // One numeric preparation per iteration — the predictor and
            // corrector share D, hence the factorization.
            sys.prepare(&d, obs);

            let rows_view = RowView {
                has_l: &rows.has_l,
                has_u: &rows.has_u,
                l: &l,
                u: &u,
                s: &rows.s,
                zl: &rows.zl,
                zu: &rows.zu,
            };

            // Affine predictor: (P + AᵀDA)Δx = −rd − Aᵀ(g + D·rp) with the
            // first-order g, probed to the boundary to measure µ_aff. The
            // basic strategy skips it; the affine deltas stay zero so the
            // shared corrector formulas below degrade to plain centering.
            let mut ds_aff = vec![0.0f64; m];
            let mut dzl_aff = vec![0.0f64; m];
            let mut dzu_aff = vec![0.0f64; m];
            let (mu_aff, cg_pred) = if use_predictor {
                let _span = dme_obs::span("predictor");
                let cg_pred = sys.solve(&g, &d, &rd, &rp, &mut dx, obs)?;
                let adx = a.mul_vec(&dx);
                for i in 0..m {
                    ds_aff[i] = adx[i] + rp[i];
                    if rows.has_l[i] {
                        dzl_aff[i] = -rows.zl[i] - rows.zl[i] * ds_aff[i] / sl_eff[i];
                    }
                    if rows.has_u[i] {
                        dzu_aff[i] = -rows.zu[i] + rows.zu[i] * ds_aff[i] / su_eff[i];
                    }
                }
                let (ap_aff, ad_aff) = {
                    let _span = dme_obs::span("line_search");
                    line_search.step_lengths(&rows_view, &ds_aff, &dzl_aff, &dzu_aff, 1.0)
                };
                let a_aff = ap_aff.min(ad_aff);
                // µ after the affine step.
                let mut mu_aff = 0.0;
                for i in 0..m {
                    if rows.has_l[i] {
                        mu_aff += (rows.zl[i] + a_aff * dzl_aff[i])
                            * (rows.s[i] + a_aff * ds_aff[i] - l[i]).max(0.0);
                    }
                    if rows.has_u[i] {
                        mu_aff += (rows.zu[i] + a_aff * dzu_aff[i])
                            * (u[i] - rows.s[i] - a_aff * ds_aff[i]).max(0.0);
                    }
                }
                if nfin > 0 {
                    mu_aff /= nfin as f64;
                }
                (mu_aff, cg_pred)
            } else {
                (
                    mu,
                    CgSolve {
                        iterations: 0,
                        rel_residual: 0.0,
                    },
                )
            };
            let sigma = mu_rule.sigma(&CenteringContext {
                mu,
                mu_aff,
                rd_inf: inf_norm(&rd),
                q_norm,
            });

            // Per-row centering targets: σµ, except on narrow-box rows —
            // equality rows live in the 1e-8 synthetic gap — where the
            // global target is unreachable (the product z·s cannot exceed
            // z·(u−l) no matter where s sits in the box). Clamping to a
            // quarter of that reachable ceiling keeps their slack step at
            // the box's own scale; an unreachable target turns into a huge
            // Δs that the fraction-to-boundary rule must crush, pinning
            // α near zero for every row. Wide and one-sided rows always
            // get the plain σµ target.
            let mut tl = vec![0.0f64; m];
            let mut tu = vec![0.0f64; m];
            for i in 0..m {
                tl[i] = sigma * mu;
                tu[i] = sigma * mu;
                if rows.has_l[i] && rows.has_u[i] {
                    let w = u[i] - l[i];
                    if w < 1e-6 {
                        tl[i] = tl[i].min(0.25 * rows.zl[i] * w);
                        tu[i] = tu[i].min(0.25 * rows.zu[i] * w);
                    }
                }
            }

            // Corrector (the only solve for the basic strategy): σµ
            // centering plus the Mehrotra second-order terms (zero when no
            // predictor ran).
            let _span_corr = dme_obs::span("corrector");
            for i in 0..m {
                let mut gi = 0.0;
                if rows.has_l[i] {
                    let cl = tl[i] - rows.zl[i] * sl_eff[i] - dzl_aff[i] * ds_aff[i];
                    gi -= cl / sl_eff[i];
                }
                if rows.has_u[i] {
                    let cu = tu[i] - rows.zu[i] * su_eff[i] + dzu_aff[i] * ds_aff[i];
                    gi += cu / su_eff[i];
                }
                g[i] = gi;
            }
            let cg_corr = sys.solve(&g, &d, &rd, &rp, &mut dx, obs)?;

            let adx = a.mul_vec(&dx);
            let mut ds = vec![0.0f64; m];
            let mut dzl = vec![0.0f64; m];
            let mut dzu = vec![0.0f64; m];
            for i in 0..m {
                ds[i] = adx[i] + rp[i];
                if rows.has_l[i] {
                    let cl = tl[i] - rows.zl[i] * sl_eff[i] - dzl_aff[i] * ds_aff[i];
                    dzl[i] = (cl - rows.zl[i] * ds[i]) / sl_eff[i];
                }
                if rows.has_u[i] {
                    let cu = tu[i] - rows.zu[i] * su_eff[i] + dzu_aff[i] * ds_aff[i];
                    dzu[i] = (cu + rows.zu[i] * ds[i]) / su_eff[i];
                }
            }
            let (ap_step, ad_step) = {
                let _span = dme_obs::span("line_search");
                line_search.step_lengths(&rows_view, &ds, &dzl, &dzu, st.step_frac)
            };
            drop(_span_corr);
            // One common step: the QP dual residual couples x and y, so
            // unequal steps would inject error proportional to the (large)
            // direction magnitudes.
            let alpha = ap_step.min(ad_step);
            obs.ipm_iteration(&IpmIteration {
                iter,
                mu,
                mu_aff,
                primal_residual: final_rp,
                dual_residual: final_rd,
                sigma,
                alpha,
                cg_iters_predictor: cg_pred.iterations,
                cg_iters_corrector: cg_corr.iterations,
            });
            if std::env::var_os("DME_IPM_TRACE").is_some() {
                eprintln!(
                    "ipm iter {iter:>3}: mu={mu:.3e} rp={:.2e} rd={:.2e} rp_rel={rp_inf:.2e} \
                     rd_rel={rd_inf:.2e} sigma={sigma:.2e} alpha={alpha:.3e}",
                    inf_norm(&rp),
                    inf_norm(&rd)
                );
            }

            // Stall exit: once the common step length collapses the
            // iterate no longer moves. At that point the primal is
            // feasible to high accuracy and the objective is within
            // O(µ·m) of optimal — accept it if the primal tolerance is
            // met (the hard requirement downstream), and report the
            // achieved dual residual honestly in the solution.
            let mu_frozen = (mu - prev_mu).abs() <= 1e-4 * prev_mu.min(f64::MAX);
            prev_mu = mu;
            if alpha < 1e-6 && mu_frozen {
                stalled_steps += 1;
                if stalled_steps >= 3 {
                    if rp_inf < STALL_RP && rd_inf < STALL_RD && mu < STALL_MU {
                        status = SolveStatus::Solved;
                    }
                    iterations = iter + 1;
                    break;
                }
            } else {
                stalled_steps = 0;
            }
            for j in 0..n {
                x[j] += alpha * dx[j];
            }
            for i in 0..m {
                rows.s[i] += alpha * ds[i];
                // Keep the iterate strictly interior: a slack or multiplier
                // that lands exactly on (or numerically past) its boundary
                // would freeze every future step length at zero. The nudges
                // perturb the residuals by O(1e-12), which the next Newton
                // step absorbs.
                if rows.has_l[i] {
                    rows.zl[i] = (rows.zl[i] + alpha * dzl[i]).max(1e-12);
                    rows.s[i] = rows.s[i].max(l[i] + 1e-12);
                }
                if rows.has_u[i] {
                    rows.zu[i] = (rows.zu[i] + alpha * dzu[i]).max(1e-12);
                    rows.s[i] = rows.s[i].min(u[i] - 1e-12);
                }
                y[i] = rows.zu[i] - rows.zl[i];
            }
            if x.iter().any(|v| !v.is_finite()) {
                return Err(SolveError::Numerical(
                    "IPM produced non-finite iterate".into(),
                ));
            }
        }

        let objective = qp.objective(&x);
        Ok(Solution {
            x,
            y,
            objective,
            status,
            iterations,
            primal_residual: final_rp,
            dual_residual: final_rd,
        })
    }
}

fn inf_norm(v: &[f64]) -> f64 {
    vecops::inf_norm(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::FactorizationEvent;
    use crate::CsrMatrix;

    /// Default settings with the strategy pinned to Mehrotra so the
    /// assertions stay meaningful under the `DME_QP_IPM=basic` CI leg.
    fn mehrotra_settings() -> IpmSettings {
        IpmSettings {
            strategy: IpmStrategy::Mehrotra,
            ..IpmSettings::default()
        }
    }

    fn solve(qp: &QuadProgram) -> Solution {
        IpmSolver::new(IpmSettings::default())
            .solve(qp)
            .expect("solve")
    }

    #[test]
    fn box_constrained_quadratic() {
        // min (x+5)^2 s.t. 0 <= x <= 1 -> x = 0.
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0]),
            vec![10.0],
            CsrMatrix::identity(1),
            vec![0.0],
            vec![1.0],
        )
        .unwrap();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::Solved);
        assert!(s.x[0].abs() < 1e-6, "x = {}", s.x[0]);
    }

    #[test]
    fn active_inequality() {
        // min (x0-1)^2 + (x1-2)^2 s.t. x0 + x1 <= 2, x >= 0 -> (0.5, 1.5).
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0, 2.0]),
            vec![-2.0, -4.0],
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (2, 1, 1.0)]),
            vec![f64::NEG_INFINITY, 0.0, 0.0],
            vec![2.0, f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::Solved);
        assert!((s.x[0] - 0.5).abs() < 1e-6);
        assert!((s.x[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn lp_with_zero_p() {
        // min x0 + x1 s.t. x0 + 2 x1 >= 2, x >= 0 -> objective 1.
        let qp = QuadProgram::new(
            CsrMatrix::zeros(2, 2),
            vec![1.0, 1.0],
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.0), (2, 1, 1.0)]),
            vec![2.0, 0.0, 0.0],
            vec![f64::INFINITY; 3],
        )
        .unwrap();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::Solved);
        assert!((s.objective - 1.0).abs() < 1e-6, "obj = {}", s.objective);
    }

    #[test]
    fn equality_row_is_respected() {
        // min x0^2 + x1^2 s.t. x0 + x1 = 2 -> (1, 1).
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0, 2.0]),
            vec![0.0, 0.0],
            CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]),
            vec![2.0],
            vec![2.0],
        )
        .unwrap();
        let s = solve(&qp);
        assert!((s.x[0] - 1.0).abs() < 1e-5, "x0 = {}", s.x[0]);
        assert!((s.x[1] - 1.0).abs() < 1e-5);
    }

    fn chain_qp() -> (QuadProgram, usize, f64, f64) {
        // The structure ADMM struggles with: a long chain of arrival
        // constraints coupled to a handful of dose variables.
        let n = 200usize;
        let k = 10usize;
        let t0 = 0.003;
        let c = -0.002;
        let tau = 0.95 * n as f64 * t0;
        let nvars = k + n + 1;
        let t_idx = k + n;
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for g in 0..k {
            rows.push(vec![(g, 1.0)]);
            lo.push(-5.0);
            hi.push(5.0);
        }
        rows.push(vec![(k, -1.0), (0, c)]);
        lo.push(f64::NEG_INFINITY);
        hi.push(-t0);
        for i in 0..n - 1 {
            rows.push(vec![(k + i, 1.0), (k + i + 1, -1.0), (i % k, c)]);
            lo.push(f64::NEG_INFINITY);
            hi.push(-t0);
        }
        rows.push(vec![(k + n - 1, 1.0), (t_idx, -1.0)]);
        lo.push(f64::NEG_INFINITY);
        hi.push(0.0);
        rows.push(vec![(t_idx, 1.0)]);
        lo.push(f64::NEG_INFINITY);
        hi.push(tau);
        let mut pd = vec![0.0; nvars];
        let mut q = vec![0.0; nvars];
        for g in 0..k {
            pd[g] = 2.0;
            q[g] = 6.0;
        }
        let a = CsrMatrix::from_rows(nvars, &rows);
        let qp = QuadProgram::new(CsrMatrix::diagonal(&pd), q, a, lo, hi).unwrap();
        (qp, t_idx, tau, k as f64 * (0.075f64 * 0.075 + 6.0 * 0.075))
    }

    #[test]
    fn chain_problem_converges_fast() {
        let (qp, t_idx, tau, uniform_obj) = chain_qp();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::Solved);
        assert!(s.iterations < 60, "took {} iterations", s.iterations);
        assert!(
            qp.max_violation(&s.x) < 1e-6,
            "viol = {}",
            qp.max_violation(&s.x)
        );
        // The timing bound is active at the optimum.
        assert!(
            (s.x[t_idx] - tau).abs() < 1e-5,
            "T = {} vs tau = {tau}",
            s.x[t_idx]
        );
        // Uniform dose d = 0.075 on every grid is feasible with objective
        // k·(d² + 6d) ≈ 4.56; the optimizer must do at least as well.
        assert!(s.objective <= uniform_obj + 1e-6, "obj = {}", s.objective);
    }

    #[test]
    fn basic_strategy_matches_mehrotra_on_the_chain_problem() {
        // The fixed-σ baseline must reach the same optimum; Mehrotra's
        // adaptive centering must not need more iterations than it.
        let (qp, _, _, _) = chain_qp();
        let mehrotra = IpmSolver::new(mehrotra_settings()).solve(&qp).expect("pc");
        let basic = IpmSolver::new(IpmSettings {
            strategy: IpmStrategy::Basic,
            ..IpmSettings::default()
        })
        .solve(&qp)
        .expect("basic");
        assert_eq!(basic.status, SolveStatus::Solved);
        assert!(
            (mehrotra.objective - basic.objective).abs() < 1e-4 * (1.0 + mehrotra.objective.abs()),
            "objectives diverge: {} vs {}",
            mehrotra.objective,
            basic.objective
        );
        assert!(qp.max_violation(&basic.x) < 1e-6);
        assert!(
            mehrotra.iterations <= basic.iterations,
            "mehrotra {} vs basic {}",
            mehrotra.iterations,
            basic.iterations
        );
    }

    #[test]
    fn ipm_and_admm_agree() {
        // Cross-check the two backends on a moderately sized strongly
        // convex problem: both must reach the same optimum.
        use crate::{AdmmSettings, AdmmSolver};
        let n = 12usize;
        let p_diag: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let q: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 1.0));
            if i + 1 < n {
                trips.push((n + i, i, 1.0));
                trips.push((n + i, i + 1, -1.0));
            }
        }
        let m = 2 * n - 1;
        let a = CsrMatrix::from_triplets(m, n, &trips);
        let mut l = vec![-2.0; m];
        let mut u = vec![2.0; m];
        for i in n..m {
            l[i] = -0.5;
            u[i] = 0.5;
        }
        let qp = QuadProgram::new(CsrMatrix::diagonal(&p_diag), q, a, l, u).unwrap();
        let ipm = solve(&qp);
        let admm = AdmmSolver::new(AdmmSettings::default()).solve(&qp).unwrap();
        assert!(
            (ipm.objective - admm.objective).abs() < 1e-3 * (1.0 + ipm.objective.abs()),
            "IPM {} vs ADMM {}",
            ipm.objective,
            admm.objective
        );
        for j in 0..n {
            assert!(
                (ipm.x[j] - admm.x[j]).abs() < 5e-3,
                "x[{j}]: {} vs {}",
                ipm.x[j],
                admm.x[j]
            );
        }
    }

    #[derive(Default)]
    struct Collect {
        iters: Vec<IpmIteration>,
        cg: Vec<CgSolve>,
        factorizations: Vec<FactorizationEvent>,
        backends: Vec<&'static str>,
        strategies: Vec<&'static str>,
    }
    impl SolverObserver for Collect {
        fn ipm_iteration(&mut self, it: &IpmIteration) {
            self.iters.push(*it);
        }
        fn cg_solve(&mut self, cg: &CgSolve) {
            self.cg.push(*cg);
        }
        fn newton_backend(&mut self, backend: &'static str) {
            self.backends.push(backend);
        }
        fn strategy(&mut self, name: &'static str) {
            self.strategies.push(name);
        }
        fn factorization(&mut self, ev: &FactorizationEvent) {
            self.factorizations.push(*ev);
        }
    }

    fn small_qp() -> QuadProgram {
        QuadProgram::new(
            CsrMatrix::diagonal(&[2.0, 2.0]),
            vec![-2.0, -4.0],
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (2, 1, 1.0)]),
            vec![f64::NEG_INFINITY, 0.0, 0.0],
            vec![2.0, f64::INFINITY, f64::INFINITY],
        )
        .unwrap()
    }

    #[test]
    fn observer_streams_per_iteration_telemetry() {
        let qp = small_qp();
        let mut obs = Collect::default();
        // Pin the CG backend (this test asserts the per-CG-solve stream)
        // and the Mehrotra strategy (two CG solves per iteration).
        let s = IpmSolver::new(IpmSettings {
            backend: NewtonBackend::Cg,
            ..mehrotra_settings()
        })
        .solve_observed(&qp, &mut obs)
        .expect("solve");
        assert_eq!(s.status, SolveStatus::Solved);
        assert_eq!(obs.strategies, vec!["mehrotra"]);
        // One record per completed Newton iteration, indexed in order,
        // and two CG solves (predictor + corrector) per record, plus the
        // one loose solve behind the cold starting-point heuristic.
        assert_eq!(obs.iters.len(), s.iterations);
        assert!(!obs.iters.is_empty());
        for (k, it) in obs.iters.iter().enumerate() {
            assert_eq!(it.iter, k);
            assert!(it.mu.is_finite() && it.mu >= 0.0);
            assert!(it.mu_aff.is_finite() && it.mu_aff >= 0.0);
            assert!(it.primal_residual.is_finite());
            assert!(it.dual_residual.is_finite());
            assert!((0.0..=1.0).contains(&it.alpha));
        }
        assert_eq!(obs.cg.len(), 2 * obs.iters.len() + 1);
        assert!(obs.cg.iter().any(|c| c.iterations > 0));
        assert_eq!(obs.backends, vec!["cg"]);
        assert!(obs.factorizations.is_empty());
        // µ must shrink substantially from first to last iteration.
        let first = obs.iters.first().unwrap().mu;
        let last = obs.iters.last().unwrap().mu;
        assert!(last < first, "mu did not decrease: {first} -> {last}");
    }

    #[test]
    fn basic_strategy_does_one_solve_per_iteration() {
        let qp = small_qp();
        let mut obs = Collect::default();
        let s = IpmSolver::new(IpmSettings {
            backend: NewtonBackend::Cg,
            strategy: IpmStrategy::Basic,
            ..IpmSettings::default()
        })
        .solve_observed(&qp, &mut obs)
        .expect("solve");
        assert_eq!(s.status, SolveStatus::Solved);
        assert_eq!(obs.strategies, vec!["basic"]);
        // One corrector CG solve per iteration (plus the starting-point
        // solve); the predictor pass is skipped entirely.
        assert_eq!(obs.cg.len(), obs.iters.len() + 1);
        for it in &obs.iters {
            assert_eq!(it.cg_iters_predictor, 0);
            // With no affine probe, µ_aff is reported as µ and σ is the
            // fixed centering parameter (until the safeguard bites).
            assert_eq!(it.mu_aff, it.mu);
            assert!(it.sigma >= 0.1 - 1e-15);
        }
    }

    #[test]
    fn direct_backend_matches_cg() {
        let qp = small_qp();
        let cg = IpmSolver::new(IpmSettings {
            backend: NewtonBackend::Cg,
            ..IpmSettings::default()
        })
        .solve(&qp)
        .expect("cg solve");
        let direct = IpmSolver::new(IpmSettings {
            backend: NewtonBackend::Direct,
            ..IpmSettings::default()
        })
        .solve(&qp)
        .expect("direct solve");
        assert_eq!(cg.status, direct.status);
        assert!(
            (cg.objective - direct.objective).abs() < 1e-6,
            "objectives diverge: {} vs {}",
            cg.objective,
            direct.objective
        );
        for j in 0..qp.num_vars() {
            assert!((cg.x[j] - direct.x[j]).abs() < 1e-5, "x[{j}]");
        }
    }

    #[test]
    fn direct_backend_streams_factorization_telemetry() {
        let qp = small_qp();
        let solver = IpmSolver::new(IpmSettings {
            backend: NewtonBackend::Direct,
            ..mehrotra_settings()
        });
        let mut obs = Collect::default();
        let s = solver.solve_observed(&qp, &mut obs).expect("solve");
        assert_eq!(s.status, SolveStatus::Solved);
        assert_eq!(obs.backends, vec!["direct"]);
        // One factorization per Newton iteration plus one for the cold
        // starting-point heuristic, no CG events; only the very first
        // numeric pass builds the symbolic side.
        assert_eq!(
            obs.factorizations.len(),
            obs.iters.len().max(s.iterations) + 1
        );
        assert!(obs.cg.is_empty());
        assert!(!obs.factorizations[0].symbolic_reused);
        assert!(obs.factorizations[1..].iter().all(|f| f.symbolic_reused));
        assert!(obs.factorizations.iter().all(|f| f.nnz_l > 0 && f.n == 2));
        assert!(obs
            .iters
            .iter()
            .all(|it| it.cg_iters_predictor == 0 && it.cg_iters_corrector == 0));
        // A second solve on the same solver reuses the cached symbolic
        // factorization from the very first iteration on.
        let mut obs2 = Collect::default();
        solver.solve_observed(&qp, &mut obs2).expect("re-solve");
        assert!(!obs2.factorizations.is_empty());
        assert!(obs2.factorizations.iter().all(|f| f.symbolic_reused));
    }

    #[test]
    fn auto_backend_falls_back_on_dense_rows() {
        // One row touching 100+ variables disqualifies the direct build;
        // Auto (and even forced Direct) must degrade to CG and still solve.
        let n = 128usize;
        let mut trips: Vec<(usize, usize, f64)> = (0..n).map(|j| (0, j, 1.0)).collect();
        for j in 0..n {
            trips.push((1 + j, j, 1.0));
        }
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&vec![2.0; n]),
            vec![1.0; n],
            CsrMatrix::from_triplets(1 + n, n, &trips),
            std::iter::once(-1e3).chain((0..n).map(|_| -1.0)).collect(),
            std::iter::once(1e3).chain((0..n).map(|_| 1.0)).collect(),
        )
        .unwrap();
        for backend in [NewtonBackend::Auto, NewtonBackend::Direct] {
            let mut obs = Collect::default();
            let s = IpmSolver::new(IpmSettings {
                backend,
                ..IpmSettings::default()
            })
            .solve_observed(&qp, &mut obs)
            .expect("solve");
            assert_eq!(s.status, SolveStatus::Solved);
            assert_eq!(obs.backends, vec!["cg"]);
        }
    }

    #[test]
    fn warm_start_cuts_iterations() {
        // Re-solving from the previous optimum after a small bound change
        // (a bisection probe) must not take more iterations than cold —
        // even now that cold solves start from the Mehrotra heuristic
        // point rather than x = 0.
        let qp = {
            let n = 40usize;
            let p_diag: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
            let q: Vec<f64> = (0..n).map(|i| ((i * 5) % 7) as f64 - 3.0).collect();
            let mut trips = Vec::new();
            for i in 0..n {
                trips.push((i, i, 1.0));
                if i + 1 < n {
                    trips.push((n + i, i, 1.0));
                    trips.push((n + i, i + 1, -1.0));
                }
            }
            let m = 2 * n - 1;
            QuadProgram::new(
                CsrMatrix::diagonal(&p_diag),
                q,
                CsrMatrix::from_triplets(m, n, &trips),
                vec![-1.5; m],
                vec![1.5; m],
            )
            .unwrap()
        };
        let mut solver = IpmSolver::new(IpmSettings::default());
        let base = solver.solve(&qp).expect("cold solve");
        // Nudge the bounds slightly (what set_tau does between probes).
        let mut probe = qp.clone();
        for u in probe.u.iter_mut() {
            *u *= 0.98;
        }
        let cold = solver.solve(&probe).expect("cold probe");
        solver.warm_start(base.x.clone(), base.y.clone());
        let warm = solver.solve(&probe).expect("warm probe");
        assert_eq!(warm.status, SolveStatus::Solved);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!((warm.objective - cold.objective).abs() < 1e-5 * (1.0 + cold.objective.abs()));
    }

    #[test]
    fn free_rows_are_inert() {
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0]),
            vec![-2.0],
            CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 3.0)]),
            vec![f64::NEG_INFINITY, f64::NEG_INFINITY],
            vec![f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let s = solve(&qp);
        assert!((s.x[0] - 1.0).abs() < 1e-6);
    }
}
