//! OSQP-style ADMM solver with matrix-free conjugate-gradient x-updates.
//!
//! The algorithm follows Stellato et al., *"OSQP: an operator splitting
//! solver for quadratic programs"*: Ruiz equilibration, the two-block ADMM
//! splitting with over-relaxation, per-row penalty `ρᵢ` (boosted on equality
//! rows), and periodic `ρ` adaptation from the primal/dual residual ratio.
//! Unlike OSQP we never factorize the KKT matrix: the x-update solves
//! `(P + σI + AᵀRA)·x = rhs` by preconditioned conjugate gradients, applying
//! `P` and `A` as operators. That trades per-iteration cost for zero setup
//! cost and a tiny memory footprint, which suits the dose-map instances
//! (up to ~10⁵ variables, ~3·10⁵ constraints) well.

use crate::{CsrMatrix, QuadProgram, SolveError};
use dme_par::vecops;

/// Convergence / behaviour knobs for [`AdmmSolver`].
#[derive(Debug, Clone)]
pub struct AdmmSettings {
    /// Absolute tolerance on residuals.
    pub eps_abs: f64,
    /// Relative tolerance on residuals.
    pub eps_rel: f64,
    /// Maximum ADMM iterations.
    pub max_iter: usize,
    /// ADMM dual regularization σ.
    pub sigma: f64,
    /// Initial penalty ρ.
    pub rho: f64,
    /// Over-relaxation α ∈ (0, 2).
    pub alpha: f64,
    /// Iterations between ρ adaptations (0 disables adaptation).
    pub adaptive_rho_interval: usize,
    /// Ruiz equilibration passes (0 disables scaling).
    pub scaling_iters: usize,
    /// Maximum inner CG iterations per x-update.
    pub cg_max_iter: usize,
    /// Check residuals every this many iterations.
    pub check_interval: usize,
}

impl Default for AdmmSettings {
    fn default() -> Self {
        Self {
            eps_abs: 1e-5,
            eps_rel: 1e-5,
            max_iter: 20_000,
            sigma: 1e-6,
            rho: 0.1,
            alpha: 1.6,
            adaptive_rho_interval: 50,
            scaling_iters: 10,
            cg_max_iter: 200,
            check_interval: 10,
        }
    }
}

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Residuals met the requested tolerances.
    Solved,
    /// Iteration limit hit; the returned point is the best iterate.
    MaxIterations,
    /// A primal infeasibility certificate was found.
    PrimalInfeasible,
}

/// Result of a QP solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Primal solution.
    pub x: Vec<f64>,
    /// Dual solution (one multiplier per constraint row).
    pub y: Vec<f64>,
    /// Objective value `½ xᵀPx + qᵀx` at `x`.
    pub objective: f64,
    /// Termination status.
    pub status: SolveStatus,
    /// ADMM iterations used.
    pub iterations: usize,
    /// Final primal residual `‖Ax − z‖∞` (unscaled).
    pub primal_residual: f64,
    /// Final dual residual `‖Px + q + Aᵀy‖∞` (unscaled).
    pub dual_residual: f64,
}

/// OSQP-style ADMM solver for [`QuadProgram`]s.
#[derive(Debug, Clone, Default)]
pub struct AdmmSolver {
    settings: AdmmSettings,
    warm_x: Option<Vec<f64>>,
    warm_y: Option<Vec<f64>>,
}

impl AdmmSolver {
    /// Creates a solver with the given settings.
    pub fn new(settings: AdmmSettings) -> Self {
        Self {
            settings,
            warm_x: None,
            warm_y: None,
        }
    }

    /// Provides a warm-start point (used by QCP bisection to reuse the
    /// previous τ's solution). Lengths are validated at solve time.
    pub fn warm_start(&mut self, x: Vec<f64>, y: Vec<f64>) -> &mut Self {
        self.warm_x = Some(x);
        self.warm_y = Some(y);
        self
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Dimension`] if a warm-start vector has the
    /// wrong length, or [`SolveError::Numerical`] if the inner CG solve
    /// produces non-finite values (e.g. `P` not PSD).
    pub fn solve(&self, qp: &QuadProgram) -> Result<Solution, SolveError> {
        let st = &self.settings;
        let n = qp.num_vars();
        let m = qp.num_constraints();

        // --- Ruiz equilibration -------------------------------------------------
        let scale = Scaling::compute(qp, st.scaling_iters);
        let sp = scale.scale_p(&qp.p);
        let sa = scale.scale_a(&qp.a);
        let sq: Vec<f64> = (0..n).map(|j| scale.cost * scale.d[j] * qp.q[j]).collect();
        let sl: Vec<f64> = (0..m).map(|i| scale.e[i] * qp.l[i]).collect();
        let su: Vec<f64> = (0..m).map(|i| scale.e[i] * qp.u[i]).collect();

        // Per-row rho: equality rows get a much stiffer penalty.
        let mut rho_bar = st.rho;
        let row_is_eq: Vec<bool> = (0..m).map(|i| (su[i] - sl[i]).abs() < 1e-12).collect();
        let rho_vec = |rb: f64| -> Vec<f64> {
            row_is_eq
                .iter()
                .map(|&eq| {
                    if eq {
                        (rb * 1e3).clamp(1e-6, 1e6)
                    } else {
                        rb.clamp(1e-6, 1e6)
                    }
                })
                .collect()
        };
        let mut rho = rho_vec(rho_bar);

        // --- state ---------------------------------------------------------------
        let mut x = match &self.warm_x {
            Some(w) if w.len() == n => (0..n).map(|j| w[j] / scale.d[j]).collect::<Vec<_>>(),
            Some(w) => {
                return Err(SolveError::Dimension(format!(
                    "warm-start x has length {}, expected {n}",
                    w.len()
                )))
            }
            None => vec![0.0; n],
        };
        let mut y = match &self.warm_y {
            Some(w) if w.len() == m => (0..m)
                .map(|i| w[i] * scale.cost / scale.e[i])
                .collect::<Vec<_>>(),
            Some(w) => {
                return Err(SolveError::Dimension(format!(
                    "warm-start y has length {}, expected {m}",
                    w.len()
                )))
            }
            None => vec![0.0; m],
        };
        let mut z = sa.mul_vec(&x);
        for i in 0..m {
            z[i] = z[i].clamp(sl[i], su[i]);
        }

        // Buffers.
        let mut rhs = vec![0.0; n];
        let mut xt = x.clone();
        let mut zt = vec![0.0; m];
        let mut tmp_m = vec![0.0; m];
        let mut tmp_n = vec![0.0; n];
        let mut cg = CgWorkspace::new(n, m);
        let p_diag = sp.diag();
        let mut precond = build_precond(&p_diag, &sa, &rho, st.sigma);

        let mut status = SolveStatus::MaxIterations;
        let mut iterations = st.max_iter;
        let mut prim_res = f64::INFINITY;
        let mut dual_res = f64::INFINITY;
        let mut prev_y = y.clone();

        for k in 0..st.max_iter {
            // rhs = sigma*x - q + A'(rho.*z - y)
            for i in 0..m {
                tmp_m[i] = rho[i] * z[i] - y[i];
            }
            sa.mul_transpose_vec_into(&tmp_m, &mut rhs);
            for j in 0..n {
                rhs[j] += st.sigma * x[j] - sq[j];
            }
            // Solve (P + sigma I + A' R A) xt = rhs by PCG, warm-started at x.
            let cg_tol = (prim_res.min(dual_res) * 1e-2).clamp(1e-12, 1e-6);
            xt.copy_from_slice(&x);
            cg.solve(
                &sp,
                &sa,
                &rho,
                st.sigma,
                &precond,
                &rhs,
                &mut xt,
                st.cg_max_iter,
                cg_tol,
            )?;

            sa.mul_vec_into(&xt, &mut zt);

            // Over-relaxed updates.
            for j in 0..n {
                x[j] = st.alpha * xt[j] + (1.0 - st.alpha) * x[j];
            }
            prev_y.copy_from_slice(&y);
            for i in 0..m {
                let zr = st.alpha * zt[i] + (1.0 - st.alpha) * z[i];
                let z_new = (zr + y[i] / rho[i]).clamp(sl[i], su[i]);
                y[i] += rho[i] * (zr - z_new);
                z[i] = z_new;
            }

            if (k + 1) % st.check_interval != 0 && k + 1 != st.max_iter {
                continue;
            }

            // --- unscaled residuals ---
            sa.mul_vec_into(&x, &mut tmp_m);
            let mut rp: f64 = 0.0;
            let mut ax_norm: f64 = 0.0;
            let mut z_norm: f64 = 0.0;
            for i in 0..m {
                let ei = scale.e[i];
                rp = rp.max(((tmp_m[i] - z[i]) / ei).abs());
                ax_norm = ax_norm.max((tmp_m[i] / ei).abs());
                z_norm = z_norm.max((z[i] / ei).abs());
            }
            let px = sp.mul_vec(&x);
            sa.mul_transpose_vec_into(&y, &mut tmp_n);
            let mut rd: f64 = 0.0;
            let mut px_norm: f64 = 0.0;
            let mut aty_norm: f64 = 0.0;
            let mut q_norm: f64 = 0.0;
            let cinv = 1.0 / scale.cost;
            for j in 0..n {
                let dj = 1.0 / scale.d[j];
                rd = rd.max(((px[j] + sq[j] + tmp_n[j]) * dj * cinv).abs());
                px_norm = px_norm.max((px[j] * dj * cinv).abs());
                aty_norm = aty_norm.max((tmp_n[j] * dj * cinv).abs());
                q_norm = q_norm.max((sq[j] * dj * cinv).abs());
            }
            prim_res = rp;
            dual_res = rd;
            let eps_prim = st.eps_abs + st.eps_rel * ax_norm.max(z_norm);
            let eps_dual = st.eps_abs + st.eps_rel * px_norm.max(aty_norm).max(q_norm);

            if std::env::var_os("DME_QP_TRACE").is_some() && (k + 1) % 1000 == 0 {
                eprintln!(
                    "iter {:>6}: rp={rp:.3e} rd={rd:.3e} rho={rho_bar:.3e} eps_p={eps_prim:.1e} eps_d={eps_dual:.1e}",
                    k + 1
                );
            }
            if rp <= eps_prim && rd <= eps_dual {
                status = SolveStatus::Solved;
                iterations = k + 1;
                break;
            }

            // --- primal infeasibility certificate ---
            if primal_infeasible(&sa, &y, &prev_y, &sl, &su, st.eps_abs) {
                status = SolveStatus::PrimalInfeasible;
                iterations = k + 1;
                break;
            }

            // --- rho adaptation ---
            // Matrix-free x-updates make re-penalization free (no
            // factorization to redo), so adapt aggressively: any sustained
            // residual imbalance reshapes ρ.
            if st.adaptive_rho_interval > 0 && (k + 1) % st.adaptive_rho_interval == 0 {
                let ratio = ((rp / eps_prim.max(1e-12)) / (rd / eps_dual.max(1e-12))).sqrt();
                if !(0.67..=1.5).contains(&ratio) {
                    rho_bar = (rho_bar * ratio).clamp(1e-6, 1e6);
                    rho = rho_vec(rho_bar);
                    precond = build_precond(&p_diag, &sa, &rho, st.sigma);
                }
            }
        }

        // Unscale.
        let x_out: Vec<f64> = (0..n).map(|j| x[j] * scale.d[j]).collect();
        let y_out: Vec<f64> = (0..m).map(|i| y[i] * scale.e[i] / scale.cost).collect();
        let objective = qp.objective(&x_out);
        if !objective.is_finite() {
            return Err(SolveError::Numerical("objective is not finite".into()));
        }
        Ok(Solution {
            x: x_out,
            y: y_out,
            objective,
            status,
            iterations,
            primal_residual: prim_res,
            dual_residual: dual_res,
        })
    }
}

/// Detects the OSQP primal-infeasibility certificate: `δy = y − y_prev`
/// with `‖Aᵀδy‖∞` small and the support function `uᵀ(δy)₊ + lᵀ(δy)₋`
/// strictly negative.
fn primal_infeasible(
    a: &CsrMatrix,
    y: &[f64],
    prev_y: &[f64],
    l: &[f64],
    u: &[f64],
    eps: f64,
) -> bool {
    let m = y.len();
    let dy: Vec<f64> = (0..m).map(|i| y[i] - prev_y[i]).collect();
    let dy_norm = vecops::inf_norm(&dy);
    if dy_norm < 1e-10 {
        return false;
    }
    let at_dy = a.mul_transpose_vec(&dy);
    let at_norm = vecops::inf_norm(&at_dy);
    if at_norm > eps * dy_norm {
        return false;
    }
    let mut support = 0.0;
    for i in 0..m {
        if dy[i] > 0.0 {
            if u[i].is_infinite() {
                return false;
            }
            support += u[i] * dy[i];
        } else if dy[i] < 0.0 {
            if l[i].is_infinite() {
                return false;
            }
            support += l[i] * dy[i];
        }
    }
    support < -eps * dy_norm
}

/// Diagonal (Jacobi) preconditioner for `P + σI + AᵀRA`.
fn build_precond(p_diag: &[f64], a: &CsrMatrix, rho: &[f64], sigma: f64) -> Vec<f64> {
    let n = p_diag.len();
    let mut d = vec![sigma; n];
    for j in 0..n {
        d[j] += p_diag[j];
    }
    for (r, &rho_r) in rho.iter().enumerate().take(a.nrows()) {
        for (c, v) in a.row(r) {
            d[c] += rho_r * v * v;
        }
    }
    for dj in &mut d {
        if *dj <= 0.0 {
            *dj = 1.0;
        }
    }
    d
}

/// `out = (P + σI + Aᵀ·diag(ρ)·A)·v`, applied matrix-free.
#[allow(clippy::too_many_arguments)]
fn apply_kkt(
    p: &CsrMatrix,
    a: &CsrMatrix,
    rho: &[f64],
    sigma: f64,
    v: &[f64],
    out: &mut [f64],
    scratch_m: &mut [f64],
    scratch_n: &mut [f64],
) {
    p.mul_vec_into(v, out);
    a.mul_vec_into(v, scratch_m);
    vecops::mul_assign(rho, scratch_m);
    a.mul_transpose_vec_into(scratch_m, scratch_n);
    vecops::axpy(sigma, v, out);
    vecops::axpy(1.0, scratch_n, out);
}

/// Preconditioned conjugate gradients on `K = P + σI + AᵀRA` applied
/// matrix-free.
struct CgWorkspace {
    r: Vec<f64>,
    zv: Vec<f64>,
    p: Vec<f64>,
    kp: Vec<f64>,
    scratch_m: Vec<f64>,
    scratch_n: Vec<f64>,
    inv_precond: Vec<f64>,
}

impl CgWorkspace {
    fn new(n: usize, m: usize) -> Self {
        Self {
            r: vec![0.0; n],
            zv: vec![0.0; n],
            p: vec![0.0; n],
            kp: vec![0.0; n],
            scratch_m: vec![0.0; m],
            scratch_n: vec![0.0; n],
            inv_precond: vec![0.0; n],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve(
        &mut self,
        pm: &CsrMatrix,
        a: &CsrMatrix,
        rho: &[f64],
        sigma: f64,
        precond: &[f64],
        b: &[f64],
        x: &mut [f64],
        max_iter: usize,
        rel_tol: f64,
    ) -> Result<(), SolveError> {
        let n = b.len();
        let b_norm = vecops::norm2(b).max(1e-30);
        // Inverted preconditioner: the apply becomes a parallel
        // element-wise product.
        if self.inv_precond.len() != n {
            self.inv_precond = vec![0.0; n];
        }
        for (inv, p) in self.inv_precond.iter_mut().zip(precond) {
            *inv = 1.0 / *p;
        }
        // r = b - K x  (reuse kp as the K·x buffer)
        apply_kkt(
            pm,
            a,
            rho,
            sigma,
            x,
            &mut self.kp,
            &mut self.scratch_m,
            &mut self.scratch_n,
        );
        for ((rj, &bj), &kj) in self.r.iter_mut().zip(b).zip(&self.kp) {
            *rj = bj - kj;
        }
        vecops::hadamard(&self.inv_precond, &self.r, &mut self.zv);
        let mut rz = vecops::dot(&self.r, &self.zv);
        self.p.copy_from_slice(&self.zv);
        for _ in 0..max_iter {
            let r_norm = vecops::norm2(&self.r);
            if r_norm <= rel_tol * b_norm {
                break;
            }
            apply_kkt(
                pm,
                a,
                rho,
                sigma,
                &self.p,
                &mut self.kp,
                &mut self.scratch_m,
                &mut self.scratch_n,
            );
            let pkp = vecops::dot(&self.p, &self.kp);
            if !pkp.is_finite() || pkp <= 0.0 {
                if pkp < 0.0 {
                    return Err(SolveError::Numerical(
                        "CG encountered negative curvature; P is not PSD".into(),
                    ));
                }
                break;
            }
            let alpha = rz / pkp;
            vecops::cg_update(x, alpha, &self.p, &mut self.r, -alpha, &self.kp);
            vecops::hadamard(&self.inv_precond, &self.r, &mut self.zv);
            let rz_new = vecops::dot(&self.r, &self.zv);
            let beta = rz_new / rz.max(1e-300);
            rz = rz_new;
            vecops::xpby(&self.zv, beta, &mut self.p);
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(SolveError::Numerical(
                "CG produced non-finite iterate".into(),
            ));
        }
        Ok(())
    }
}

/// Ruiz equilibration scaling factors: variables `d`, constraints `e`, and
/// a scalar cost normalization `cost`. Shared by the ADMM and IPM solvers.
pub(crate) struct Scaling {
    pub(crate) d: Vec<f64>,
    pub(crate) e: Vec<f64>,
    pub(crate) cost: f64,
}

impl Scaling {
    pub(crate) fn compute(qp: &QuadProgram, iters: usize) -> Self {
        let n = qp.num_vars();
        let m = qp.num_constraints();
        let mut d = vec![1.0; n];
        let mut e = vec![1.0; m];
        let mut cost = 1.0;
        if iters == 0 {
            return Self { d, e, cost };
        }
        // Work on running scaled copies implicitly via the cumulative d/e.
        for _ in 0..iters {
            // Column inf-norms of scaled [P; A] per variable, row inf-norms of
            // scaled A per constraint.
            let mut col_norm = vec![0.0f64; n];
            for r in 0..n {
                for (c, v) in qp.p.row(r) {
                    let s = (cost * d[r] * d[c] * v).abs();
                    col_norm[c] = col_norm[c].max(s);
                }
            }
            let mut row_norm = vec![0.0f64; m];
            for r in 0..m {
                for (c, v) in qp.a.row(r) {
                    let s = (e[r] * d[c] * v).abs();
                    col_norm[c] = col_norm[c].max(s);
                    row_norm[r] = row_norm[r].max(s);
                }
            }
            for j in 0..n {
                if col_norm[j] > 1e-12 {
                    d[j] /= col_norm[j].sqrt();
                    d[j] = d[j].clamp(1e-6, 1e6);
                }
            }
            for i in 0..m {
                if row_norm[i] > 1e-12 {
                    e[i] /= row_norm[i].sqrt();
                    e[i] = e[i].clamp(1e-6, 1e6);
                }
            }
            // Cost scaling: normalize mean column norm of scaled P and |q|.
            let mut p_col = vec![0.0f64; n];
            for r in 0..n {
                for (c, v) in qp.p.row(r) {
                    p_col[c] = p_col[c].max((cost * d[r] * d[c] * v).abs());
                }
            }
            let mean_p = p_col.iter().sum::<f64>() / n as f64;
            let q_norm = (0..n)
                .map(|j| (cost * d[j] * qp.q[j]).abs())
                .fold(0.0f64, f64::max);
            let denom = mean_p.max(q_norm);
            if denom > 1e-12 {
                cost = (cost / denom).clamp(1e-9, 1e9);
            }
        }
        Self { d, e, cost }
    }

    pub(crate) fn scale_p(&self, p: &CsrMatrix) -> CsrMatrix {
        let mut trips = Vec::with_capacity(p.nnz());
        for r in 0..p.nrows() {
            for (c, v) in p.row(r) {
                trips.push((r, c, self.cost * self.d[r] * self.d[c] * v));
            }
        }
        CsrMatrix::from_triplets(p.nrows(), p.ncols(), &trips)
    }

    pub(crate) fn scale_a(&self, a: &CsrMatrix) -> CsrMatrix {
        let mut trips = Vec::with_capacity(a.nnz());
        for r in 0..a.nrows() {
            for (c, v) in a.row(r) {
                trips.push((r, c, self.e[r] * self.d[c] * v));
            }
        }
        CsrMatrix::from_triplets(a.nrows(), a.ncols(), &trips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(qp: &QuadProgram) -> Solution {
        AdmmSolver::new(AdmmSettings::default())
            .solve(qp)
            .expect("solve")
    }

    #[test]
    fn unconstrained_quadratic() {
        // min (x-3)^2 -> x = 3
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0]),
            vec![-6.0],
            CsrMatrix::zeros(0, 1),
            vec![],
            vec![],
        )
        .unwrap();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::Solved);
        assert!((s.x[0] - 3.0).abs() < 1e-4, "x = {}", s.x[0]);
    }

    #[test]
    fn box_constrained_clamps() {
        // min (x+5)^2 s.t. 0 <= x <= 1 -> x = 0
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0]),
            vec![10.0],
            CsrMatrix::identity(1),
            vec![0.0],
            vec![1.0],
        )
        .unwrap();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::Solved);
        assert!(s.x[0].abs() < 1e-4);
    }

    #[test]
    fn equality_constraint() {
        // min x0^2 + x1^2 s.t. x0 + x1 = 2 -> (1, 1)
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0, 2.0]),
            vec![0.0, 0.0],
            CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]),
            vec![2.0],
            vec![2.0],
        )
        .unwrap();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::Solved);
        assert!((s.x[0] - 1.0).abs() < 1e-3, "x0 = {}", s.x[0]);
        assert!((s.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn active_inequality_kkt() {
        // min (x0-1)^2 + (x1-2)^2 s.t. x0 + x1 <= 2, x >= 0 -> (0.5, 1.5)
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0, 2.0]),
            vec![-2.0, -4.0],
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (2, 1, 1.0)]),
            vec![f64::NEG_INFINITY, 0.0, 0.0],
            vec![2.0, f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::Solved);
        assert!((s.x[0] - 0.5).abs() < 1e-4);
        assert!((s.x[1] - 1.5).abs() < 1e-4);
        // KKT: dual of the active row should be ~1 (gradient balance).
        assert!((s.y[0] - 1.0).abs() < 1e-3, "y0 = {}", s.y[0]);
    }

    #[test]
    fn lp_is_solved_with_zero_p() {
        // min x0 + x1 s.t. x0 + 2 x1 >= 2, x >= 0  -> (0, 1), objective 1
        let qp = QuadProgram::new(
            CsrMatrix::zeros(2, 2),
            vec![1.0, 1.0],
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.0), (2, 1, 1.0)]),
            vec![2.0, 0.0, 0.0],
            vec![f64::INFINITY; 3],
        )
        .unwrap();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::Solved);
        assert!((s.objective - 1.0).abs() < 1e-3, "obj = {}", s.objective);
        assert!(qp.max_violation(&s.x) < 1e-4);
    }

    #[test]
    fn primal_infeasible_is_detected() {
        // x <= -1 and x >= 1 simultaneously.
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0]),
            vec![0.0],
            CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
            vec![f64::NEG_INFINITY, 1.0],
            vec![-1.0, f64::INFINITY],
        )
        .unwrap();
        let s = solve(&qp);
        assert_eq!(s.status, SolveStatus::PrimalInfeasible);
    }

    #[test]
    fn warm_start_converges_faster() {
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2.0, 2.0]),
            vec![-2.0, -4.0],
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (2, 1, 1.0)]),
            vec![f64::NEG_INFINITY, 0.0, 0.0],
            vec![2.0, f64::INFINITY, f64::INFINITY],
        )
        .unwrap();
        let cold = solve(&qp);
        let mut solver = AdmmSolver::new(AdmmSettings::default());
        solver.warm_start(cold.x.clone(), cold.y.clone());
        let warm = solver.solve(&qp).unwrap();
        assert_eq!(warm.status, SolveStatus::Solved);
        assert!(warm.iterations <= cold.iterations);
        assert!((warm.x[0] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn badly_scaled_problem_survives_equilibration() {
        // min 1e6*(x0 - 1e-3)^2 + 1e-6*(x1 - 1e3)^2 with loose boxes. The
        // curvatures span 12 orders of magnitude; without Ruiz equilibration
        // a tight absolute tolerance is unreachable in the iteration budget.
        let qp = QuadProgram::new(
            CsrMatrix::diagonal(&[2e6, 2e-6]),
            vec![-2e3, -2e-3],
            CsrMatrix::identity(2),
            vec![-1e9, -1e9],
            vec![1e9, 1e9],
        )
        .unwrap();
        let settings = AdmmSettings {
            eps_abs: 1e-9,
            eps_rel: 0.0,
            ..AdmmSettings::default()
        };
        let s = AdmmSolver::new(settings).solve(&qp).unwrap();
        assert_eq!(s.status, SolveStatus::Solved);
        assert!((s.x[0] - 1e-3).abs() < 1e-6, "x0 = {}", s.x[0]);
        assert!((s.x[1] - 1e3).abs() < 1.0, "x1 = {}", s.x[1]);
    }
}
