//! Solver telemetry hooks.
//!
//! The IPM exposes its inner loop through a pure observer trait so that
//! callers can collect per-iteration convergence telemetry without this
//! crate depending on any tracing infrastructure. The solver invokes
//! the hooks unconditionally; a no-op implementation ([`NopObserver`])
//! keeps the default path free of any cost beyond a virtual call per
//! Newton iteration (two per CG solve), which is noise next to the
//! matrix-vector products each iteration performs.

/// Telemetry for one completed interior-point (Newton) iteration,
/// reported just before the step is applied. The predictor/corrector
/// split is visible per iteration: `mu_aff` and `cg_iters_predictor`
/// carry the affine pass (degenerate — `mu_aff = mu`, zero CG
/// iterations — under the basic single-solve strategy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpmIteration {
    /// Zero-based Newton iteration index.
    pub iter: usize,
    /// Average complementarity gap µ at the top of the iteration.
    pub mu: f64,
    /// Complementarity gap predicted by the affine predictor probe
    /// (equal to `mu` when the strategy runs no predictor pass).
    pub mu_aff: f64,
    /// Primal residual `‖Ax − s‖∞` (scaled problem, absolute).
    pub primal_residual: f64,
    /// Dual residual `‖Px + q + Aᵀy‖∞` (scaled problem, absolute).
    pub dual_residual: f64,
    /// Mehrotra centering parameter σ chosen this iteration.
    pub sigma: f64,
    /// Common primal/dual step length α actually taken.
    pub alpha: f64,
    /// CG iterations spent on the affine predictor solve.
    pub cg_iters_predictor: usize,
    /// CG iterations spent on the corrector solve.
    pub cg_iters_corrector: usize,
}

/// Telemetry for one inner conjugate-gradient solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgSolve {
    /// CG iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖r‖₂ / ‖b‖₂`.
    pub rel_residual: f64,
}

/// Telemetry for one numeric (re)factorization in the direct Newton
/// backend — one per IPM iteration (the predictor and corrector share
/// the factor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorizationEvent {
    /// Whether the symbolic factorization (elimination tree, pattern,
    /// ordering, scatter plan) was reused from an earlier iteration or
    /// probe — `false` only for the first numeric pass after a symbolic
    /// (re)build.
    pub symbolic_reused: bool,
    /// Wall-clock nanoseconds spent on numeric assembly + refactorization.
    pub refactor_ns: u64,
    /// Nonzeros in the `L` factor (strict lower triangle).
    pub nnz_l: usize,
    /// Dimension of the Newton system.
    pub n: usize,
}

/// Receiver for solver telemetry; all methods default to no-ops so
/// implementors override only what they consume.
pub trait SolverObserver {
    /// Called once per completed Newton iteration.
    fn ipm_iteration(&mut self, it: &IpmIteration) {
        let _ = it;
    }

    /// Called after every inner CG solve: predictor then corrector under
    /// the Mehrotra strategy, corrector only under the basic strategy,
    /// plus one loose solve for the cold starting-point heuristic. Not
    /// called by the direct backend.
    fn cg_solve(&mut self, cg: &CgSolve) {
        let _ = cg;
    }

    /// Called once per solve after backend selection resolves, with
    /// `"direct"` or `"cg"`.
    fn newton_backend(&mut self, backend: &'static str) {
        let _ = backend;
    }

    /// Called once per solve after the iteration strategy resolves, with
    /// `"mehrotra"` or `"basic"` (see [`crate::strategies::IpmStrategy`]).
    fn strategy(&mut self, name: &'static str) {
        let _ = name;
    }

    /// Called once per IPM iteration on the direct backend, after the
    /// numeric (re)factorization.
    fn factorization(&mut self, ev: &FactorizationEvent) {
        let _ = ev;
    }
}

/// The do-nothing observer used by [`crate::IpmSolver::solve`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NopObserver;

impl SolverObserver for NopObserver {}
