//! Sparse convex quadratic programming for dose-map optimization.
//!
//! This crate is the drop-in substitute for the commercial solver (ILOG
//! CPLEX) used by the paper *"Dose map and placement co-optimization for
//! timing yield enhancement and leakage power reduction"* (DAC 2008 /
//! TCAD 2010). It provides:
//!
//! - [`CsrMatrix`]: a compressed-sparse-row matrix with the handful of
//!   operations an operator-splitting solver needs (`A·x`, `Aᵀ·x`,
//!   column norms),
//! - [`QuadProgram`] + [`AdmmSolver`]: an OSQP-style ADMM solver for
//!   problems of the form `min ½·xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u`, with the
//!   `x`-update performed by a matrix-free preconditioned conjugate-gradient
//!   solve (the KKT matrix `P + σI + ρAᵀA` is never formed),
//! - [`qcp::bisect_min`]: an exact reduction of the paper's quadratically
//!   constrained program (minimize clock period subject to a leakage bound)
//!   to a sequence of QP feasibility questions,
//! - [`lsq`]: small dense least-squares fits used for library
//!   characterization (the `Ap`, `Bp`, `αp`, `βp`, `γp` coefficients).
//!
//! # Example
//!
//! Minimize `(x₀−1)² + (x₁−2)²` subject to `x₀ + x₁ ≤ 2` and `x ≥ 0`:
//!
//! ```
//! use dme_qp::{CsrMatrix, QuadProgram, AdmmSettings, AdmmSolver};
//!
//! # fn main() -> Result<(), dme_qp::SolveError> {
//! let p = CsrMatrix::diagonal(&[2.0, 2.0]);
//! let q = vec![-2.0, -4.0];
//! let a = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (2, 1, 1.0)]);
//! let l = vec![f64::NEG_INFINITY, 0.0, 0.0];
//! let u = vec![2.0, f64::INFINITY, f64::INFINITY];
//! let qp = QuadProgram::new(p, q, a, l, u)?;
//! let sol = AdmmSolver::new(AdmmSettings::default()).solve(&qp)?;
//! assert!((sol.x[0] - 0.5).abs() < 1e-4);
//! assert!((sol.x[1] - 1.5).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod admm;
mod csr;
mod error;
mod ipm;
mod ldl;
pub mod lsq;
pub mod mps;
mod observer;
mod ordering;
pub mod qcp;
pub mod strategies;

pub use admm::{AdmmSettings, AdmmSolver, Solution, SolveStatus};
pub use csr::CsrMatrix;
pub use error::SolveError;
pub use ipm::{IpmSettings, IpmSolver, NewtonBackend};
pub use observer::{CgSolve, FactorizationEvent, IpmIteration, NopObserver, SolverObserver};
pub use strategies::IpmStrategy;

/// A convex quadratic program `min ½·xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u`.
///
/// `P` must be symmetric positive semidefinite and stored in full (not
/// triangular) form; diagonal matrices — the common case in this workspace —
/// trivially satisfy this.
#[derive(Debug, Clone)]
pub struct QuadProgram {
    /// Quadratic cost matrix (symmetric PSD), `n × n`.
    pub p: CsrMatrix,
    /// Linear cost vector, length `n`.
    pub q: Vec<f64>,
    /// Constraint matrix, `m × n`.
    pub a: CsrMatrix,
    /// Constraint lower bounds, length `m` (`-inf` allowed).
    pub l: Vec<f64>,
    /// Constraint upper bounds, length `m` (`+inf` allowed).
    pub u: Vec<f64>,
}

impl QuadProgram {
    /// Creates a quadratic program, validating dimensional consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Dimension`] if `P` is not square `n × n`, `q`
    /// is not length `n`, `A` is not `m × n`, or the bounds are not length
    /// `m`; returns [`SolveError::InvalidBounds`] if any `l[i] > u[i]` or a
    /// bound is NaN.
    pub fn new(
        p: CsrMatrix,
        q: Vec<f64>,
        a: CsrMatrix,
        l: Vec<f64>,
        u: Vec<f64>,
    ) -> Result<Self, SolveError> {
        let n = q.len();
        if p.nrows() != n || p.ncols() != n {
            return Err(SolveError::Dimension(format!(
                "P is {}x{}, expected {n}x{n}",
                p.nrows(),
                p.ncols()
            )));
        }
        if a.ncols() != n {
            return Err(SolveError::Dimension(format!(
                "A has {} columns, expected {n}",
                a.ncols()
            )));
        }
        let m = a.nrows();
        if l.len() != m || u.len() != m {
            return Err(SolveError::Dimension(format!(
                "bounds have length {}/{}, expected {m}",
                l.len(),
                u.len()
            )));
        }
        for i in 0..m {
            if l[i].is_nan() || u[i].is_nan() || l[i] > u[i] {
                return Err(SolveError::InvalidBounds {
                    row: i,
                    lower: l[i],
                    upper: u[i],
                });
            }
        }
        Ok(Self { p, q, a, l, u })
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.q.len()
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.a.nrows()
    }

    /// Objective value `½·xᵀPx + qᵀx` at a point.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let px = self.p.mul_vec(x);
        let mut v = 0.0;
        for i in 0..x.len() {
            v += 0.5 * x[i] * px[i] + self.q[i] * x[i];
        }
        v
    }

    /// Maximum constraint violation `max(0, l − Ax, Ax − u)` in the ∞-norm.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let ax = self.a.mul_vec(x);
        let mut worst: f64 = 0.0;
        for ((&axi, &li), &ui) in ax.iter().zip(&self.l).zip(&self.u) {
            worst = worst.max(li - axi).max(axi - ui);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_mismatched_dims() {
        let p = CsrMatrix::diagonal(&[1.0, 1.0]);
        let a = CsrMatrix::identity(2);
        let err = QuadProgram::new(p, vec![0.0; 3], a, vec![0.0; 2], vec![1.0; 2]);
        assert!(matches!(err, Err(SolveError::Dimension(_))));
    }

    #[test]
    fn new_rejects_crossed_bounds() {
        let p = CsrMatrix::diagonal(&[1.0]);
        let a = CsrMatrix::identity(1);
        let err = QuadProgram::new(p, vec![0.0], a, vec![2.0], vec![1.0]);
        assert!(matches!(err, Err(SolveError::InvalidBounds { row: 0, .. })));
    }

    #[test]
    fn objective_and_violation() {
        let p = CsrMatrix::diagonal(&[2.0, 4.0]);
        let a = CsrMatrix::identity(2);
        let qp = QuadProgram::new(p, vec![1.0, -1.0], a, vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        // f(x) = x0^2 + 2 x1^2 + x0 - x1 at (1, 2) = 1 + 8 + 1 - 2 = 8
        let x = [1.0, 2.0];
        assert!((qp.objective(&x) - 8.0).abs() < 1e-12);
        assert!((qp.max_violation(&x) - 1.0).abs() < 1e-12);
        assert_eq!(qp.num_vars(), 2);
        assert_eq!(qp.num_constraints(), 2);
    }
}
