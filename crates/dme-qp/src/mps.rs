//! MPS/QPS reader and writer for [`QuadProgram`].
//!
//! Parses the (free-format) MPS linear-programming exchange format plus
//! the QPS quadratic extension used by the Maros–Mészáros QP test set:
//! a `QUADOBJ` section listing the lower triangle of the Hessian `Q` of
//! the objective `c₀ + cᵀx + ½·xᵀQx`. This is what lets the IPM be
//! validated and benchmarked as a standalone QP engine against external
//! problems (`tests/qps/`, `dmeopt qp solve`), not only on dose-map
//! programs.
//!
//! The mapping onto [`QuadProgram`]'s `l ≤ Ax ≤ u` form is total:
//! row types `E`/`L`/`G` (with optional `RANGES`) become two-sided row
//! bounds, and variable bounds from the `BOUNDS` section (default
//! `0 ≤ x`) are appended as identity constraint rows, since the solver
//! form carries no separate variable-bound vector. The objective
//! constant `c₀` (the negated RHS entry of the objective row, per MPS
//! convention) is preserved on the side so reported objectives can match
//! published optima.

use crate::{CsrMatrix, QuadProgram};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

/// A parsed QPS problem: the solver-form program plus the naming and
/// objective-offset metadata the file carried.
#[derive(Debug, Clone)]
pub struct QpsProblem {
    /// Problem name from the `NAME` card (empty if absent).
    pub name: String,
    /// The program in solver form (variable bounds appended as identity
    /// rows after the file's constraint rows).
    pub qp: QuadProgram,
    /// Column (variable) names, in file order.
    pub var_names: Vec<String>,
    /// Constraint-row names, in file order. Appended variable-bound rows
    /// are *not* named here; they occupy rows
    /// `row_names.len()..qp.num_constraints()` in column order of the
    /// bounded variables.
    pub row_names: Vec<String>,
    /// Objective constant `c₀`: reported objectives are
    /// `qp.objective(x) + c0`.
    pub c0: f64,
}

impl QpsProblem {
    /// Objective including the file's constant term,
    /// `c₀ + cᵀx + ½·xᵀQx`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        self.qp.objective(x) + self.c0
    }
}

/// Errors from [`parse_qps`] / [`load_qps`].
#[derive(Debug)]
pub enum MpsError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A line could not be parsed; carries the 1-based line number.
    Parse {
        /// 1-based line number of the offending card.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The sections parsed but do not assemble into a valid program
    /// (e.g. crossed bounds, no columns).
    Invalid(String),
}

impl fmt::Display for MpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpsError::Io(e) => write!(f, "MPS read failed: {e}"),
            MpsError::Parse { line, msg } => write!(f, "MPS parse error at line {line}: {msg}"),
            MpsError::Invalid(msg) => write!(f, "invalid MPS problem: {msg}"),
        }
    }
}

impl std::error::Error for MpsError {}

impl From<std::io::Error> for MpsError {
    fn from(e: std::io::Error) -> Self {
        MpsError::Io(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowKind {
    Eq,
    Le,
    Ge,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Rows,
    Columns,
    Rhs,
    Ranges,
    Bounds,
    QuadObj,
    Done,
}

/// Reads and parses a QPS/MPS file from disk.
///
/// # Errors
///
/// [`MpsError::Io`] on read failure, otherwise as [`parse_qps`].
pub fn load_qps(path: &std::path::Path) -> Result<QpsProblem, MpsError> {
    let text = std::fs::read_to_string(path)?;
    parse_qps(&text)
}

/// Parses QPS/MPS text (free format: cards split on whitespace).
///
/// Supported sections: `NAME`, `ROWS` (`N`/`E`/`L`/`G`), `COLUMNS`,
/// `RHS`, `RANGES`, `BOUNDS` (`LO`/`UP`/`FX`/`FR`/`MI`/`PL`),
/// `QUADOBJ`/`QMATRIX`, `ENDATA`. Integer markers and integer bound
/// types are rejected — this is a continuous QP solver.
///
/// # Errors
///
/// [`MpsError::Parse`] with a line number for malformed cards, unknown
/// names, or unsupported features; [`MpsError::Invalid`] when the parsed
/// sections do not form a valid program.
pub fn parse_qps(text: &str) -> Result<QpsProblem, MpsError> {
    let mut name = String::new();
    let mut section = Section::None;
    // Constraint rows (non-objective), in declaration order.
    let mut row_names: Vec<String> = Vec::new();
    let mut row_kind: Vec<RowKind> = Vec::new();
    let mut row_index: HashMap<String, usize> = HashMap::new();
    let mut obj_row: Option<String> = None;
    let mut var_names: Vec<String> = Vec::new();
    let mut var_index: HashMap<String, usize> = HashMap::new();
    // Accumulated coefficients (BTreeMap: dedup + deterministic order).
    let mut a_entries: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut q_obj: BTreeMap<usize, f64> = BTreeMap::new();
    let mut quad: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut rhs: HashMap<usize, f64> = HashMap::new();
    let mut ranges: HashMap<usize, f64> = HashMap::new();
    let mut c0 = 0.0f64;
    // Variable bounds, MPS default [0, +inf); `explicit_lo` tracks
    // whether a lower bound was stated (the classic negative-UP rule).
    let mut var_lo: Vec<f64> = Vec::new();
    let mut var_hi: Vec<f64> = Vec::new();
    let mut explicit_lo: Vec<bool> = Vec::new();

    let err = |line: usize, msg: String| MpsError::Parse { line, msg };
    let num = |line: usize, tok: &str| -> Result<f64, MpsError> {
        tok.parse::<f64>()
            .map_err(|_| err(line, format!("expected a number, got '{tok}'")))
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        // Comment cards start with '*'; blank lines are skipped.
        if raw.trim().is_empty() || raw.starts_with('*') {
            continue;
        }
        let indented = raw.starts_with(' ') || raw.starts_with('\t');
        let toks: Vec<&str> = raw.split_whitespace().collect();
        if !indented {
            // Section header.
            match toks[0] {
                "NAME" => {
                    name = toks.get(1).map(|s| s.to_string()).unwrap_or_default();
                    continue;
                }
                "ROWS" => section = Section::Rows,
                "COLUMNS" => section = Section::Columns,
                "RHS" => section = Section::Rhs,
                "RANGES" => section = Section::Ranges,
                "BOUNDS" => section = Section::Bounds,
                "QUADOBJ" | "QMATRIX" => section = Section::QuadObj,
                "ENDATA" => {
                    section = Section::Done;
                    break;
                }
                other => return Err(err(lineno, format!("unknown section '{other}'"))),
            }
            continue;
        }
        match section {
            Section::None | Section::Done => {
                return Err(err(lineno, "data card before any section header".into()));
            }
            Section::Rows => {
                let [kind, rname] = toks[..] else {
                    return Err(err(lineno, "ROWS card needs: <type> <name>".into()));
                };
                match kind.to_ascii_uppercase().as_str() {
                    "N" => {
                        if obj_row.is_some() {
                            return Err(err(lineno, "multiple objective (N) rows".into()));
                        }
                        obj_row = Some(rname.to_string());
                    }
                    k @ ("E" | "L" | "G") => {
                        if row_index.contains_key(rname) {
                            return Err(err(lineno, format!("duplicate row '{rname}'")));
                        }
                        row_index.insert(rname.to_string(), row_names.len());
                        row_names.push(rname.to_string());
                        row_kind.push(match k {
                            "E" => RowKind::Eq,
                            "L" => RowKind::Le,
                            _ => RowKind::Ge,
                        });
                    }
                    other => return Err(err(lineno, format!("unknown row type '{other}'"))),
                }
            }
            Section::Columns => {
                if toks.len() >= 3 && toks[1] == "'MARKER'" {
                    return Err(err(lineno, "integer markers are not supported".into()));
                }
                if toks.len() != 3 && toks.len() != 5 {
                    return Err(err(
                        lineno,
                        "COLUMNS card needs: <col> (<row> <val>){1,2}".into(),
                    ));
                }
                let col = *var_index.entry(toks[0].to_string()).or_insert_with(|| {
                    var_names.push(toks[0].to_string());
                    var_lo.push(0.0);
                    var_hi.push(f64::INFINITY);
                    explicit_lo.push(false);
                    var_names.len() - 1
                });
                for pair in toks[1..].chunks(2) {
                    let val = num(lineno, pair[1])?;
                    if Some(pair[0]) == obj_row.as_deref() {
                        *q_obj.entry(col).or_insert(0.0) += val;
                    } else {
                        let Some(&r) = row_index.get(pair[0]) else {
                            return Err(err(lineno, format!("unknown row '{}'", pair[0])));
                        };
                        *a_entries.entry((r, col)).or_insert(0.0) += val;
                    }
                }
            }
            Section::Rhs => {
                // First token is the RHS-set name (ignored).
                if toks.len() != 3 && toks.len() != 5 {
                    return Err(err(
                        lineno,
                        "RHS card needs: <set> (<row> <val>){1,2}".into(),
                    ));
                }
                for pair in toks[1..].chunks(2) {
                    let val = num(lineno, pair[1])?;
                    if Some(pair[0]) == obj_row.as_deref() {
                        // MPS convention: the objective constant is the
                        // *negated* RHS entry of the objective row.
                        c0 = -val;
                    } else {
                        let Some(&r) = row_index.get(pair[0]) else {
                            return Err(err(lineno, format!("unknown row '{}'", pair[0])));
                        };
                        rhs.insert(r, val);
                    }
                }
            }
            Section::Ranges => {
                if toks.len() != 3 && toks.len() != 5 {
                    return Err(err(
                        lineno,
                        "RANGES card needs: <set> (<row> <val>){1,2}".into(),
                    ));
                }
                for pair in toks[1..].chunks(2) {
                    let Some(&r) = row_index.get(pair[0]) else {
                        return Err(err(lineno, format!("unknown row '{}'", pair[0])));
                    };
                    ranges.insert(r, num(lineno, pair[1])?);
                }
            }
            Section::Bounds => {
                let kind = toks[0].to_ascii_uppercase();
                let needs_val = match kind.as_str() {
                    "LO" | "UP" | "FX" => true,
                    "FR" | "MI" | "PL" => false,
                    other => {
                        return Err(err(
                            lineno,
                            format!("unsupported bound type '{other}' (continuous only)"),
                        ));
                    }
                };
                if toks.len() != if needs_val { 4 } else { 3 } {
                    return Err(err(
                        lineno,
                        format!("BOUNDS card needs: {kind} <set> <col> {}", {
                            if needs_val {
                                "<val>"
                            } else {
                                ""
                            }
                        }),
                    ));
                }
                let Some(&j) = var_index.get(toks[2]) else {
                    return Err(err(lineno, format!("unknown column '{}'", toks[2])));
                };
                match kind.as_str() {
                    "LO" => {
                        var_lo[j] = num(lineno, toks[3])?;
                        explicit_lo[j] = true;
                    }
                    "UP" => {
                        let v = num(lineno, toks[3])?;
                        var_hi[j] = v;
                        // Classic MPS rule: a negative upper bound with no
                        // stated lower bound frees the lower side.
                        if v < 0.0 && !explicit_lo[j] {
                            var_lo[j] = f64::NEG_INFINITY;
                        }
                    }
                    "FX" => {
                        let v = num(lineno, toks[3])?;
                        var_lo[j] = v;
                        var_hi[j] = v;
                        explicit_lo[j] = true;
                    }
                    "FR" => {
                        var_lo[j] = f64::NEG_INFINITY;
                        var_hi[j] = f64::INFINITY;
                        explicit_lo[j] = true;
                    }
                    "MI" => {
                        var_lo[j] = f64::NEG_INFINITY;
                        explicit_lo[j] = true;
                    }
                    "PL" => {
                        var_hi[j] = f64::INFINITY;
                    }
                    _ => unreachable!("kind validated above"),
                }
            }
            Section::QuadObj => {
                let [c1, c2, vtok] = toks[..] else {
                    return Err(err(lineno, "QUADOBJ card needs: <col> <col> <val>".into()));
                };
                let (Some(&j1), Some(&j2)) = (var_index.get(c1), var_index.get(c2)) else {
                    return Err(err(lineno, format!("unknown column '{c1}' or '{c2}'")));
                };
                let v = num(lineno, vtok)?;
                // Lower-triangle entry of Q: mirror off-diagonals so the
                // stored P is fully symmetric (the solver form keeps P
                // explicit, ½·xᵀPx).
                *quad.entry((j1.max(j2), j1.min(j2))).or_insert(0.0) += v;
            }
        }
    }
    if section != Section::Done {
        return Err(MpsError::Invalid("missing ENDATA".into()));
    }
    if var_names.is_empty() {
        return Err(MpsError::Invalid("no columns".into()));
    }

    let n = var_names.len();
    let mc = row_names.len();
    // Row bounds from type + RHS + RANGES.
    let mut l = Vec::with_capacity(mc);
    let mut u = Vec::with_capacity(mc);
    for (i, &kind) in row_kind.iter().enumerate() {
        let b = rhs.get(&i).copied().unwrap_or(0.0);
        let (mut lo, mut hi) = match kind {
            RowKind::Eq => (b, b),
            RowKind::Le => (f64::NEG_INFINITY, b),
            RowKind::Ge => (b, f64::INFINITY),
        };
        if let Some(&r) = ranges.get(&i) {
            match kind {
                RowKind::Le => lo = hi - r.abs(),
                RowKind::Ge => hi = lo + r.abs(),
                RowKind::Eq => {
                    if r >= 0.0 {
                        hi = b + r;
                    } else {
                        lo = b + r;
                    }
                }
            }
        }
        l.push(lo);
        u.push(hi);
    }
    // Append variable bounds as identity rows (solver form has none).
    let mut trips: Vec<(usize, usize, f64)> =
        a_entries.iter().map(|(&(r, c), &v)| (r, c, v)).collect();
    let mut m = mc;
    for j in 0..n {
        if var_lo[j].is_finite() || var_hi[j].is_finite() {
            trips.push((m, j, 1.0));
            l.push(var_lo[j]);
            u.push(var_hi[j]);
            m += 1;
        }
    }
    let a = CsrMatrix::from_triplets(m, n, &trips);
    let mut p_trips: Vec<(usize, usize, f64)> = Vec::with_capacity(2 * quad.len());
    for (&(r, c), &v) in &quad {
        p_trips.push((r, c, v));
        if r != c {
            p_trips.push((c, r, v));
        }
    }
    let p = CsrMatrix::from_triplets(n, n, &p_trips);
    let q: Vec<f64> = (0..n)
        .map(|j| q_obj.get(&j).copied().unwrap_or(0.0))
        .collect();
    let qp = QuadProgram::new(p, q, a, l, u).map_err(|e| MpsError::Invalid(e.to_string()))?;
    Ok(QpsProblem {
        name,
        qp,
        var_names,
        row_names,
        c0,
    })
}

/// Serializes a [`QpsProblem`] back to QPS text. Round-trips through
/// [`parse_qps`] bit-exactly: bounds appended by the reader are emitted
/// as `BOUNDS` cards again (not as rows), and every number uses the
/// shortest exact decimal form.
pub fn write_qps(pb: &QpsProblem) -> String {
    let qp = &pb.qp;
    let n = qp.num_vars();
    let mc = pb.row_names.len();
    let mut out = String::new();
    out.push_str(&format!("NAME {}\n", pb.name));
    out.push_str("ROWS\n N  OBJ\n");
    for i in 0..mc {
        let kind = if qp.l[i] == qp.u[i] {
            'E'
        } else if qp.l[i].is_finite() {
            'G'
        } else {
            'L'
        };
        out.push_str(&format!(" {kind}  {}\n", pb.row_names[i]));
    }
    // Column-major coefficient lists (objective row first).
    out.push_str("COLUMNS\n");
    let mut col_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..mc {
        for (j, v) in qp.a.row(i) {
            col_rows[j].push((i, v));
        }
    }
    for (j, col) in col_rows.iter().enumerate() {
        if qp.q[j] != 0.0 {
            out.push_str(&format!(
                "    {}  OBJ  {}\n",
                pb.var_names[j],
                fmt_num(qp.q[j])
            ));
        }
        for &(i, v) in col {
            out.push_str(&format!(
                "    {}  {}  {}\n",
                pb.var_names[j],
                pb.row_names[i],
                fmt_num(v)
            ));
        }
    }
    out.push_str("RHS\n");
    if pb.c0 != 0.0 {
        out.push_str(&format!("    RHS  OBJ  {}\n", fmt_num(-pb.c0)));
    }
    for i in 0..mc {
        let b = if qp.l[i].is_finite() {
            qp.l[i]
        } else {
            qp.u[i]
        };
        if b.is_finite() && b != 0.0 {
            out.push_str(&format!("    RHS  {}  {}\n", pb.row_names[i], fmt_num(b)));
        }
    }
    // Two-sided inequality rows need a RANGES card.
    let mut ranges = String::new();
    for i in 0..mc {
        if qp.l[i].is_finite() && qp.u[i].is_finite() && qp.l[i] != qp.u[i] {
            ranges.push_str(&format!(
                "    RNG  {}  {}\n",
                pb.row_names[i],
                fmt_num(qp.u[i] - qp.l[i])
            ));
        }
    }
    if !ranges.is_empty() {
        out.push_str("RANGES\n");
        out.push_str(&ranges);
    }
    // Variable bounds: rows mc.. are the reader-appended identity rows;
    // variables without one are free.
    let mut bounded: Vec<Option<(f64, f64)>> = vec![None; n];
    for i in mc..qp.num_constraints() {
        let mut it = qp.a.row(i);
        if let Some((j, _)) = it.next() {
            bounded[j] = Some((qp.l[i], qp.u[i]));
        }
    }
    out.push_str("BOUNDS\n");
    for (j, b) in bounded.iter().enumerate() {
        match *b {
            None => out.push_str(&format!(" FR BND  {}\n", pb.var_names[j])),
            Some((lo, hi)) => {
                if lo == hi {
                    out.push_str(&format!(" FX BND  {}  {}\n", pb.var_names[j], fmt_num(lo)));
                    continue;
                }
                match (lo.is_finite(), lo == 0.0) {
                    (true, false) => {
                        out.push_str(&format!(" LO BND  {}  {}\n", pb.var_names[j], fmt_num(lo)))
                    }
                    (false, _) => out.push_str(&format!(" MI BND  {}\n", pb.var_names[j])),
                    _ => {}
                }
                if hi.is_finite() {
                    out.push_str(&format!(" UP BND  {}  {}\n", pb.var_names[j], fmt_num(hi)));
                }
            }
        }
    }
    // Lower triangle of Q.
    let mut quad = String::new();
    for r in 0..n {
        for (c, v) in qp.p.row(r) {
            if c <= r {
                quad.push_str(&format!(
                    "    {}  {}  {}\n",
                    pb.var_names[r],
                    pb.var_names[c],
                    fmt_num(v)
                ));
            }
        }
    }
    if !quad.is_empty() {
        out.push_str("QUADOBJ\n");
        out.push_str(&quad);
    }
    out.push_str("ENDATA\n");
    out
}

/// Shortest decimal form that parses back to the same f64.
fn fmt_num(v: f64) -> String {
    let s = format!("{v}");
    debug_assert_eq!(s.parse::<f64>().ok(), Some(v));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const HS35_LIKE: &str = "\
* A tiny QPS problem (HS35 shape).
NAME TINY
ROWS
 N  obj
 L  c1
COLUMNS
    x1  obj  -8.0  c1  1.0
    x2  obj  -6.0  c1  1.0
    x3  obj  -4.0  c1  2.0
RHS
    RHS  c1  3.0  obj  -9.0
QUADOBJ
    x1  x1  4.0
    x1  x2  2.0
    x1  x3  2.0
    x2  x2  4.0
    x3  x3  2.0
ENDATA
";

    #[test]
    fn parses_rows_columns_bounds_and_quadobj() {
        let pb = parse_qps(HS35_LIKE).expect("parse");
        assert_eq!(pb.name, "TINY");
        assert_eq!(pb.var_names, vec!["x1", "x2", "x3"]);
        assert_eq!(pb.row_names, vec!["c1"]);
        assert_eq!(pb.c0, 9.0);
        // 1 constraint row + 3 default-bound rows (0 ≤ x).
        assert_eq!(pb.qp.num_constraints(), 4);
        assert_eq!(pb.qp.u[0], 3.0);
        assert!(pb.qp.l[0].is_infinite());
        for i in 1..4 {
            assert_eq!(pb.qp.l[i], 0.0);
            assert!(pb.qp.u[i].is_infinite());
        }
        // Q mirrored into full symmetric P.
        let x = [1.0, 1.0, 1.0];
        // ½xᵀPx = ½(4+4+2) + 2 + 2 = 9; qᵀx = −18; +c0 = 9 ⇒ 0.
        assert!((pb.objective(&x) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn round_trips_bit_exactly() {
        let pb = parse_qps(HS35_LIKE).expect("parse");
        let text = write_qps(&pb);
        let pb2 = parse_qps(&text).expect("reparse");
        assert_eq!(pb.c0, pb2.c0);
        assert_eq!(pb.qp.q, pb2.qp.q);
        assert_eq!(pb.qp.l, pb2.qp.l);
        assert_eq!(pb.qp.u, pb2.qp.u);
        let x = [0.3, -1.7, 2.2];
        assert_eq!(pb.qp.objective(&x), pb2.qp.objective(&x));
        assert_eq!(pb.qp.a.mul_vec(&x), pb2.qp.a.mul_vec(&x));
    }

    #[test]
    fn negative_up_frees_the_default_lower_bound() {
        let text = "\
NAME NEGUP
ROWS
 N  obj
 G  c1
COLUMNS
    x1  c1  1.0
    x2  c1  1.0
RHS
    RHS  c1  -5.0
BOUNDS
 UP BND  x1  -1.0
 LO BND  x2  -2.0
ENDATA
";
        let pb = parse_qps(text).expect("parse");
        // x1: UP −1 with no LO stated ⇒ (−inf, −1]. x2: [−2, +inf).
        assert!(pb.qp.l[1].is_infinite() && pb.qp.l[1] < 0.0);
        assert_eq!(pb.qp.u[1], -1.0);
        assert_eq!(pb.qp.l[2], -2.0);
        assert!(pb.qp.u[2].is_infinite());
    }

    #[test]
    fn ranges_widen_rows() {
        let text = "\
NAME RNG
ROWS
 N  obj
 L  c1
 G  c2
 E  c3
COLUMNS
    x1  c1  1.0  c2  1.0
    x1  c3  1.0
BOUNDS
 FR BND  x1
RHS
    RHS  c1  4.0  c2  1.0
    RHS  c3  2.0
RANGES
    RNG  c1  2.0  c2  3.0
    RNG  c3  -1.5
ENDATA
";
        let pb = parse_qps(text).expect("parse");
        assert_eq!((pb.qp.l[0], pb.qp.u[0]), (2.0, 4.0));
        assert_eq!((pb.qp.l[1], pb.qp.u[1]), (1.0, 4.0));
        assert_eq!((pb.qp.l[2], pb.qp.u[2]), (0.5, 2.0));
    }

    #[test]
    fn malformed_inputs_are_rejected_with_line_numbers() {
        let cases: &[(&str, &str)] = &[
            (
                "ROWS\n N  obj\nCOLUMNS\n    x1  bogus  1.0\nENDATA\n",
                "unknown row",
            ),
            ("ROWS\n Z  r1\nENDATA\n", "unknown row type"),
            ("ROWS\n N  o1\n N  o2\nENDATA\n", "multiple objective"),
            ("ROWS\n N  obj\n L  c1\n L  c1\nENDATA\n", "duplicate row"),
            (
                "ROWS\n N  obj\nCOLUMNS\n    x1  obj  twelve\nENDATA\n",
                "expected a number",
            ),
            (
                "ROWS\n N  obj\nCOLUMNS\n    x1  obj\nENDATA\n",
                "COLUMNS card",
            ),
            (
                "ROWS\n N  obj\nCOLUMNS\n    x1  obj  1.0\nBOUNDS\n UI BND  x1  3\nENDATA\n",
                "unsupported bound type",
            ),
            (
                "ROWS\n N  obj\nCOLUMNS\n    x1  obj  1.0\n",
                "missing ENDATA",
            ),
            ("GARBAGE\n", "unknown section"),
            (" L  c1\nROWS\nENDATA\n", "before any section"),
            ("ROWS\nENDATA\n", "no columns"),
            (
                "ROWS\n N  obj\nCOLUMNS\n    x1  obj  1.0\nBOUNDS\n FX BND  x1  1.0\n \
                 LO BND  x1  5.0\n UP BND  x1  1.0\nENDATA\n",
                "invalid MPS problem",
            ),
        ];
        for (text, want) in cases {
            let e = parse_qps(text).expect_err(want);
            let msg = e.to_string();
            assert!(msg.contains(want), "'{msg}' does not mention '{want}'");
        }
    }

    #[test]
    fn parse_errors_carry_the_offending_line() {
        let text = "ROWS\n N  obj\nCOLUMNS\n    x1  obj  NaN?\nENDATA\n";
        match parse_qps(text) {
            Err(MpsError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected a parse error, got {other:?}"),
        }
    }
}
