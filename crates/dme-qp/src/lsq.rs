//! Small dense least-squares fits.
//!
//! Library characterization fits the paper's surrogate models to sampled
//! data: delay is fitted *linearly* against gate-length and gate-width
//! deltas (coefficients `Ap`, `Bp`), leakage *quadratically* against the
//! gate-length delta and *linearly* against the gate-width delta
//! (coefficients `αp`, `βp`, `γp`). The systems involved are tiny (2–4
//! unknowns, tens of samples), so plain normal equations with a Cholesky
//! factorization are both adequate and fast.

use crate::SolveError;

/// Fits `y ≈ c₀ + c₁·x` by least squares, returning `(c0, c1, ssr)` where
/// `ssr` is the sum of squared residuals.
///
/// # Errors
///
/// Returns [`SolveError::Dimension`] if the slices differ in length or
/// have fewer than two points, or [`SolveError::Numerical`] if all `x`
/// values coincide.
pub fn fit_linear(x: &[f64], y: &[f64]) -> Result<(f64, f64, f64), SolveError> {
    let c = polyfit(x, y, 1)?;
    let ssr = ssr_poly(&c, x, y);
    Ok((c[0], c[1], ssr))
}

/// Fits `y ≈ c₀ + c₁·x + c₂·x²` by least squares, returning
/// `(c0, c1, c2, ssr)`.
///
/// # Errors
///
/// Returns [`SolveError::Dimension`] if the slices differ in length or
/// have fewer than three points, or [`SolveError::Numerical`] if the
/// normal equations are singular.
pub fn fit_quadratic(x: &[f64], y: &[f64]) -> Result<(f64, f64, f64, f64), SolveError> {
    let c = polyfit(x, y, 2)?;
    let ssr = ssr_poly(&c, x, y);
    Ok((c[0], c[1], c[2], ssr))
}

/// Fits a polynomial of the given degree by least squares; returns the
/// coefficients in ascending-power order (`c[0] + c[1] x + …`).
///
/// # Errors
///
/// Returns [`SolveError::Dimension`] on mismatched or insufficient data
/// (needs at least `degree + 1` points), or [`SolveError::Numerical`] if
/// the normal equations are singular.
pub fn polyfit(x: &[f64], y: &[f64], degree: usize) -> Result<Vec<f64>, SolveError> {
    if x.len() != y.len() {
        return Err(SolveError::Dimension(format!(
            "x has {} points but y has {}",
            x.len(),
            y.len()
        )));
    }
    let k = degree + 1;
    if x.len() < k {
        return Err(SolveError::Dimension(format!(
            "need at least {k} points for degree {degree}, got {}",
            x.len()
        )));
    }
    // Design matrix rows are [1, x, x^2, ...]; solve the k×k normal equations.
    let mut ata = vec![vec![0.0; k]; k];
    let mut atb = vec![0.0; k];
    for (&xi, &yi) in x.iter().zip(y) {
        let mut pow = vec![1.0; k];
        for d in 1..k {
            pow[d] = pow[d - 1] * xi;
        }
        for r in 0..k {
            atb[r] += pow[r] * yi;
            for c in 0..k {
                ata[r][c] += pow[r] * pow[c];
            }
        }
    }
    solve_spd(&mut ata, &mut atb)?;
    Ok(atb)
}

/// Generic weighted linear least squares: finds `c` minimizing
/// `Σ wᵢ (yᵢ − rowᵢ·c)²` for arbitrary design-matrix rows (used for the
/// Legendre dose-recipe fits).
///
/// # Errors
///
/// Returns [`SolveError::Dimension`] on ragged rows or mismatched lengths,
/// or [`SolveError::Numerical`] if the normal equations are singular.
pub fn fit_basis(rows: &[Vec<f64>], y: &[f64], w: Option<&[f64]>) -> Result<Vec<f64>, SolveError> {
    if rows.len() != y.len() {
        return Err(SolveError::Dimension(format!(
            "{} design rows but {} observations",
            rows.len(),
            y.len()
        )));
    }
    let k = rows.first().map_or(0, |r| r.len());
    if k == 0 || rows.len() < k {
        return Err(SolveError::Dimension(format!(
            "need at least {k} observations for {k} basis functions, got {}",
            rows.len()
        )));
    }
    if let Some(w) = w {
        if w.len() != y.len() {
            return Err(SolveError::Dimension(
                "weight vector length mismatch".into(),
            ));
        }
    }
    let mut ata = vec![vec![0.0; k]; k];
    let mut atb = vec![0.0; k];
    for (i, row) in rows.iter().enumerate() {
        if row.len() != k {
            return Err(SolveError::Dimension(format!(
                "design row {i} has length {}",
                row.len()
            )));
        }
        let wi = w.map_or(1.0, |w| w[i]);
        for r in 0..k {
            atb[r] += wi * row[r] * y[i];
            for c in 0..k {
                ata[r][c] += wi * row[r] * row[c];
            }
        }
    }
    solve_spd(&mut ata, &mut atb)?;
    Ok(atb)
}

/// Sum of squared residuals of a polynomial fit.
fn ssr_poly(c: &[f64], x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(&xi, &yi)| {
            let mut v = 0.0;
            for &ck in c.iter().rev() {
                v = v * xi + ck;
            }
            let r = yi - v;
            r * r
        })
        .sum()
}

/// In-place Cholesky solve of a small SPD system `M·x = b` (answer left in
/// `b`). A tiny ridge is added when the matrix is near-singular.
fn solve_spd(m: &mut [Vec<f64>], b: &mut [f64]) -> Result<(), SolveError> {
    let n = b.len();
    let max_diag = m
        .iter()
        .enumerate()
        .map(|(i, row)| row[i].abs())
        .fold(0.0f64, f64::max)
        .max(1e-300);
    // Cholesky: M = L Lᵀ. A pivot that collapses relative to the largest
    // diagonal entry indicates rank deficiency (collinear sample points).
    for i in 0..n {
        for j in 0..=i {
            let mut sum = m[i][j];
            for (mik, mjk) in m[i][..j].iter().zip(&m[j][..j]) {
                sum -= mik * mjk;
            }
            if i == j {
                if sum <= 1e-12 * max_diag {
                    return Err(SolveError::Numerical(
                        "normal equations are singular (collinear sample points?)".into(),
                    ));
                }
                m[i][j] = sum.sqrt();
            } else {
                m[i][j] = sum / m[j][j];
            }
        }
    }
    // Forward solve L v = b.
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= m[i][k] * b[k];
        }
        b[i] = sum / m[i][i];
    }
    // Back solve Lᵀ x = v.
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= m[k][i] * b[k];
        }
        b[i] = sum / m[i][i];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 2.5 - 0.75 * v).collect();
        let (c0, c1, ssr) = fit_linear(&x, &y).unwrap();
        assert!((c0 - 2.5).abs() < 1e-10);
        assert!((c1 + 0.75).abs() < 1e-10);
        assert!(ssr < 1e-18);
    }

    #[test]
    fn quadratic_fit_recovers_exact_parabola() {
        let x: Vec<f64> = (-5..=5).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 1.0 + 2.0 * v + 0.5 * v * v).collect();
        let (c0, c1, c2, ssr) = fit_quadratic(&x, &y).unwrap();
        assert!((c0 - 1.0).abs() < 1e-9);
        assert!((c1 - 2.0).abs() < 1e-9);
        assert!((c2 - 0.5).abs() < 1e-9);
        assert!(ssr < 1e-15);
    }

    #[test]
    fn quadratic_fit_of_exponential_has_positive_curvature() {
        // Leakage ~ exp(-lambda * dL): the quadratic surrogate must be convex.
        let x: Vec<f64> = (-10..=10).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| (0.09 * -v).exp()).collect();
        let (_, _, c2, _) = fit_quadratic(&x, &y).unwrap();
        assert!(c2 > 0.0);
    }

    #[test]
    fn basis_fit_matches_polyfit() {
        let x = [0.0, 0.5, 1.0, 1.5, 2.0];
        let y = [1.0, 1.3, 1.9, 2.6, 3.2];
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![1.0, v]).collect();
        let c_basis = fit_basis(&rows, &y, None).unwrap();
        let c_poly = polyfit(&x, &y, 1).unwrap();
        assert!((c_basis[0] - c_poly[0]).abs() < 1e-10);
        assert!((c_basis[1] - c_poly[1]).abs() < 1e-10);
    }

    #[test]
    fn insufficient_points_is_an_error() {
        assert!(matches!(
            fit_quadratic(&[0.0, 1.0], &[1.0, 2.0]),
            Err(SolveError::Dimension(_))
        ));
        assert!(matches!(
            fit_linear(&[0.0], &[1.0]),
            Err(SolveError::Dimension(_))
        ));
    }

    #[test]
    fn collinear_points_are_singular() {
        let x = [2.0, 2.0, 2.0];
        let y = [1.0, 2.0, 3.0];
        assert!(matches!(polyfit(&x, &y, 2), Err(SolveError::Numerical(_))));
    }
}
