//! External QP validation suite.
//!
//! Solves every QPS fixture under `tests/qps/` (workspace root) with
//! both iteration strategies, checks published optima where known,
//! cross-checks the IPM against the ADMM solver, and pins golden
//! iteration counts on two fixtures so a regression in the Mehrotra
//! machinery shows up as a count change, not a silent slowdown.

use dme_qp::mps::{load_qps, QpsProblem};
use dme_qp::{
    AdmmSettings, AdmmSolver, IpmSettings, IpmSolver, IpmStrategy, NewtonBackend, Solution,
    SolveStatus,
};
use std::path::PathBuf;

fn qps_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/qps")
}

fn fixtures() -> Vec<(String, QpsProblem)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(qps_dir()).expect("tests/qps exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "qps") {
            let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
            let pb = load_qps(&path).unwrap_or_else(|e| panic!("{stem}: {e}"));
            out.push((stem, pb));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(
        out.len() >= 12,
        "expected the full suite, got {}",
        out.len()
    );
    out
}

/// Published (or analytically derived — see the fixture headers)
/// optimal objective values, including the QPS constant term.
fn known_optimum(name: &str) -> Option<f64> {
    Some(match name {
        "hs21" => -99.96,
        "hs35" => 1.0 / 9.0,
        "hs51" => 0.0,
        "hs52" => 1859.0 / 349.0,
        "hs53" => 176.0 / 43.0,
        "hs76" => -4.681818181818181,
        "tame" => 0.0,
        "box-lp" => 1.0,
        "eq-ls" => 1.75,
        "degen" => -2.0,
        _ => return None,
    })
}

fn solve_with(pb: &QpsProblem, strategy: IpmStrategy, backend: NewtonBackend) -> Solution {
    let st = IpmSettings {
        strategy,
        backend,
        ..IpmSettings::default()
    };
    IpmSolver::new(st).solve(&pb.qp).expect("IPM solve")
}

#[test]
fn both_strategies_solve_every_fixture_to_known_optima() {
    for (name, pb) in fixtures() {
        let meh = solve_with(&pb, IpmStrategy::Mehrotra, NewtonBackend::Auto);
        let basic = solve_with(&pb, IpmStrategy::Basic, NewtonBackend::Auto);
        for (tag, sol) in [("mehrotra", &meh), ("basic", &basic)] {
            assert_eq!(
                sol.status,
                SolveStatus::Solved,
                "{name}/{tag}: {:?} after {} iterations",
                sol.status,
                sol.iterations
            );
            let viol = pb.qp.max_violation(&sol.x);
            assert!(viol < 1e-6, "{name}/{tag}: violation {viol:.3e}");
            if let Some(opt) = known_optimum(&name) {
                let got = pb.objective(&sol.x);
                assert!(
                    (got - opt).abs() <= 1e-4 * (1.0 + opt.abs()),
                    "{name}/{tag}: objective {got} vs published {opt}"
                );
            }
        }
        let (o1, o2) = (pb.objective(&meh.x), pb.objective(&basic.x));
        assert!(
            (o1 - o2).abs() <= 1e-4 * (1.0 + o1.abs()),
            "{name}: strategies disagree, mehrotra {o1} vs basic {o2}"
        );
    }
}

#[test]
fn mehrotra_cuts_suite_iterations_meaningfully() {
    let mut meh_total = 0usize;
    let mut basic_total = 0usize;
    let mut table = String::new();
    for (name, pb) in fixtures() {
        let meh = solve_with(&pb, IpmStrategy::Mehrotra, NewtonBackend::Auto);
        let basic = solve_with(&pb, IpmStrategy::Basic, NewtonBackend::Auto);
        meh_total += meh.iterations;
        basic_total += basic.iterations;
        table.push_str(&format!(
            "  {name}: mehrotra {} vs basic {}\n",
            meh.iterations, basic.iterations
        ));
        assert!(
            meh.iterations <= basic.iterations,
            "{name}: mehrotra {} > basic {}",
            meh.iterations,
            basic.iterations
        );
    }
    // The PR's acceptance bar is a >= 30% median reduction (recorded in
    // BENCH_perf.json); in aggregate the suite must clear it with room.
    assert!(
        (meh_total as f64) <= 0.7 * basic_total as f64,
        "suite iterations: mehrotra {meh_total} vs basic {basic_total}\n{table}"
    );
}

/// Golden iteration counts on the direct backend, where every solve is
/// deterministic. A change here is not necessarily a bug — but it must
/// be looked at and the constants re-baked consciously.
#[test]
fn golden_iteration_counts_on_reference_fixtures() {
    for (name, golden) in [("hs35", 6), ("dme-chain", 6)] {
        let pb = load_qps(&qps_dir().join(format!("{name}.qps"))).expect("fixture");
        let sol = solve_with(&pb, IpmStrategy::Mehrotra, NewtonBackend::Direct);
        assert_eq!(sol.status, SolveStatus::Solved, "{name}");
        assert_eq!(
            sol.iterations, golden,
            "{name}: iteration count drifted from golden"
        );
    }
}

#[test]
fn admm_cross_checks_the_ipm_on_every_fixture() {
    for (name, pb) in fixtures() {
        let ipm = solve_with(&pb, IpmStrategy::Mehrotra, NewtonBackend::Auto);
        let admm = AdmmSolver::new(AdmmSettings::default())
            .solve(&pb.qp)
            .unwrap_or_else(|e| panic!("{name}: ADMM {e}"));
        assert_eq!(admm.status, SolveStatus::Solved, "{name}: ADMM status");
        let (oi, oa) = (pb.objective(&ipm.x), pb.objective(&admm.x));
        assert!(
            (oi - oa).abs() <= 1e-3 * (1.0 + oi.abs()),
            "{name}: IPM {oi} vs ADMM {oa}"
        );
    }
}

#[test]
fn fixtures_round_trip_through_the_writer() {
    for (name, pb) in fixtures() {
        let text = dme_qp::mps::write_qps(&pb);
        let back = dme_qp::mps::parse_qps(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(pb.c0, back.c0, "{name}");
        assert_eq!(pb.qp.q, back.qp.q, "{name}");
        assert_eq!(pb.qp.l, back.qp.l, "{name}");
        assert_eq!(pb.qp.u, back.qp.u, "{name}");
        let x: Vec<f64> = (0..pb.qp.num_vars())
            .map(|i| 0.1 * i as f64 - 0.3)
            .collect();
        assert_eq!(pb.qp.objective(&x), back.qp.objective(&x), "{name}");
        assert_eq!(pb.qp.a.mul_vec(&x), back.qp.a.mul_vec(&x), "{name}");
    }
}
