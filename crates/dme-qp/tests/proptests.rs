//! Property-based tests for the convex solvers.

use dme_qp::{CsrMatrix, IpmSettings, IpmSolver, QuadProgram};
use proptest::prelude::*;

/// Builds a random convex QP that is feasible *by construction*: bounds
/// are placed around `A·x0` for a sampled point `x0`.
fn feasible_qp(
    n: usize,
    m: usize,
    p_diag: Vec<f64>,
    q: Vec<f64>,
    entries: Vec<(usize, usize, f64)>,
    x0: Vec<f64>,
    spreads: Vec<f64>,
) -> (QuadProgram, Vec<f64>) {
    let a = CsrMatrix::from_triplets(m, n, &entries);
    let ax0 = a.mul_vec(&x0);
    let l: Vec<f64> = (0..m).map(|i| ax0[i] - spreads[i]).collect();
    let u: Vec<f64> = (0..m).map(|i| ax0[i] + spreads[i]).collect();
    let qp = QuadProgram::new(CsrMatrix::diagonal(&p_diag), q, a, l, u).expect("valid QP");
    (qp, x0)
}

fn qp_strategy() -> impl Strategy<Value = (QuadProgram, Vec<f64>)> {
    (2usize..6, 2usize..8).prop_flat_map(|(n, m)| {
        let p_diag = proptest::collection::vec(0.0f64..4.0, n);
        let q = proptest::collection::vec(-3.0f64..3.0, n);
        let entries = proptest::collection::vec(
            ((0..m), (0..n), -2.0f64..2.0).prop_map(|(r, c, v)| (r, c, v)),
            m..2 * m,
        );
        let x0 = proptest::collection::vec(-2.0f64..2.0, n);
        let spreads = proptest::collection::vec(0.1f64..3.0, m);
        (p_diag, q, entries, x0, spreads)
            .prop_map(move |(p, q, e, x0, s)| feasible_qp(n, m, p, q, e, x0, s))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The IPM returns a feasible point whose objective does not exceed
    /// the constructed feasible point's (minimization actually minimizes).
    #[test]
    fn ipm_feasible_and_no_worse_than_witness((qp, x0) in qp_strategy()) {
        let sol = IpmSolver::new(IpmSettings::default()).solve(&qp).expect("solve");
        prop_assert!(qp.max_violation(&sol.x) < 1e-5,
            "violation {}", qp.max_violation(&sol.x));
        prop_assert!(sol.objective <= qp.objective(&x0) + 1e-5,
            "objective {} vs witness {}", sol.objective, qp.objective(&x0));
    }

    /// Tightening any constraint's bounds around the solution cannot
    /// improve the objective (monotonicity of constrained minimization).
    #[test]
    fn tightening_never_improves((qp, _x0) in qp_strategy()) {
        let sol = IpmSolver::new(IpmSettings::default()).solve(&qp).expect("solve");
        let mut tighter = qp.clone();
        for i in 0..tighter.l.len() {
            let w = tighter.u[i] - tighter.l[i];
            tighter.l[i] += 0.25 * w;
            tighter.u[i] -= 0.25 * w;
        }
        // The tightened problem may be infeasible for the original center;
        // it is still feasible by construction (x0 remains inside after a
        // 25% symmetric shrink only if spreads allowed — so only compare
        // when the solver reports a feasible point).
        if let Ok(t) = IpmSolver::new(IpmSettings::default()).solve(&tighter) {
            if tighter.max_violation(&t.x) < 1e-5 {
                prop_assert!(t.objective >= sol.objective - 1e-5,
                    "tightened {} < original {}", t.objective, sol.objective);
            }
        }
    }

    /// Least-squares: the fitted line's residual never exceeds that of
    /// nearby perturbed coefficient pairs (local optimality).
    #[test]
    fn linear_fit_is_locally_optimal(
        xs in proptest::collection::vec(-10.0f64..10.0, 3..20),
        noise in proptest::collection::vec(-1.0f64..1.0, 20),
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
    ) {
        // Need non-degenerate x spread.
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 0.5);
        let ys: Vec<f64> = xs.iter().zip(&noise).map(|(&x, &n)| a + b * x + n).collect();
        let (c0, c1, ssr) = dme_qp::lsq::fit_linear(&xs, &ys).expect("fit");
        let ssr_at = |c0: f64, c1: f64| -> f64 {
            xs.iter().zip(&ys).map(|(&x, &y)| {
                let r = y - c0 - c1 * x;
                r * r
            }).sum()
        };
        for (d0, d1) in [(0.01, 0.0), (-0.01, 0.0), (0.0, 0.01), (0.0, -0.01)] {
            prop_assert!(ssr <= ssr_at(c0 + d0, c1 + d1) + 1e-9);
        }
    }
}
