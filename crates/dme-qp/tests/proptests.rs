//! Property-based tests for the convex solvers.

use dme_qp::{CsrMatrix, IpmSettings, IpmSolver, IpmStrategy, NewtonBackend, QuadProgram};
use proptest::prelude::*;

/// Deterministic banded matrix big enough to cross the SpMV parallel
/// cutoff (16k nnz), with pseudorandom values derived from `seed`.
fn banded_csr(rows: usize, cols: usize, band: usize, seed: u64) -> CsrMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*; value in (-1, 1)
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    let mut entries = Vec::new();
    for r in 0..rows {
        for k in 0..band {
            let c = (r + k * 7) % cols;
            entries.push((r, c, next()));
        }
    }
    CsrMatrix::from_triplets(rows, cols, &entries)
}

/// Builds a random convex QP that is feasible *by construction*: bounds
/// are placed around `A·x0` for a sampled point `x0`.
fn feasible_qp(
    n: usize,
    m: usize,
    p_diag: Vec<f64>,
    q: Vec<f64>,
    entries: Vec<(usize, usize, f64)>,
    x0: Vec<f64>,
    spreads: Vec<f64>,
) -> (QuadProgram, Vec<f64>) {
    let a = CsrMatrix::from_triplets(m, n, &entries);
    let ax0 = a.mul_vec(&x0);
    let l: Vec<f64> = (0..m).map(|i| ax0[i] - spreads[i]).collect();
    let u: Vec<f64> = (0..m).map(|i| ax0[i] + spreads[i]).collect();
    let qp = QuadProgram::new(CsrMatrix::diagonal(&p_diag), q, a, l, u).expect("valid QP");
    (qp, x0)
}

fn qp_strategy() -> impl Strategy<Value = (QuadProgram, Vec<f64>)> {
    sized_qp_strategy(2, 6, 2, 8)
}

fn sized_qp_strategy(
    n_lo: usize,
    n_hi: usize,
    m_lo: usize,
    m_hi: usize,
) -> impl Strategy<Value = (QuadProgram, Vec<f64>)> {
    (n_lo..n_hi, m_lo..m_hi).prop_flat_map(|(n, m)| {
        let p_diag = proptest::collection::vec(0.0f64..4.0, n);
        let q = proptest::collection::vec(-3.0f64..3.0, n);
        let entries = proptest::collection::vec(
            ((0..m), (0..n), -2.0f64..2.0).prop_map(|(r, c, v)| (r, c, v)),
            m..2 * m,
        );
        let x0 = proptest::collection::vec(-2.0f64..2.0, n);
        let spreads = proptest::collection::vec(0.1f64..3.0, m);
        (p_diag, q, entries, x0, spreads)
            .prop_map(move |(p, q, e, x0, s)| feasible_qp(n, m, p, q, e, x0, s))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The IPM returns a feasible point whose objective does not exceed
    /// the constructed feasible point's (minimization actually minimizes).
    #[test]
    fn ipm_feasible_and_no_worse_than_witness((qp, x0) in qp_strategy()) {
        let sol = IpmSolver::new(IpmSettings::default()).solve(&qp).expect("solve");
        prop_assert!(qp.max_violation(&sol.x) < 1e-5,
            "violation {}", qp.max_violation(&sol.x));
        prop_assert!(sol.objective <= qp.objective(&x0) + 1e-5,
            "objective {} vs witness {}", sol.objective, qp.objective(&x0));
    }

    /// Tightening any constraint's bounds around the solution cannot
    /// improve the objective (monotonicity of constrained minimization).
    #[test]
    fn tightening_never_improves((qp, _x0) in qp_strategy()) {
        let sol = IpmSolver::new(IpmSettings::default()).solve(&qp).expect("solve");
        let mut tighter = qp.clone();
        for i in 0..tighter.l.len() {
            let w = tighter.u[i] - tighter.l[i];
            tighter.l[i] += 0.25 * w;
            tighter.u[i] -= 0.25 * w;
        }
        // The tightened problem may be infeasible for the original center;
        // it is still feasible by construction (x0 remains inside after a
        // 25% symmetric shrink only if spreads allowed — so only compare
        // when the solver reports a feasible point).
        if let Ok(t) = IpmSolver::new(IpmSettings::default()).solve(&tighter) {
            if tighter.max_violation(&t.x) < 1e-5 {
                prop_assert!(t.objective >= sol.objective - 1e-5,
                    "tightened {} < original {}", t.objective, sol.objective);
            }
        }
    }

    /// Parallel SpMV (forward and transpose) is bitwise identical to the
    /// serial path, above and below the size cutoff.
    #[test]
    fn spmv_parallel_matches_serial_bitwise(
        seed in any::<u64>(),
        rows in 300usize..500,
        cols in 300usize..500,
        band in 40usize..70,
    ) {
        // Ask for a multi-thread pool even on single-core CI machines so
        // the parallel code path genuinely executes (first pool touch in
        // this process wins; losing the race only means both runs are
        // serial, which keeps the property trivially true).
        std::env::set_var("DME_NUM_THREADS", "4");
        let m = banded_csr(rows, cols, band, seed);
        let x: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.37).sin()).collect();
        let xt: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.71).cos()).collect();
        let mut y_serial = vec![0.0; rows];
        let mut y_par = vec![0.0; rows];
        let mut yt_serial = vec![0.0; cols];
        let mut yt_par = vec![0.0; cols];
        dme_par::set_force_serial(true);
        m.mul_vec_into(&x, &mut y_serial);
        m.mul_transpose_vec_into(&xt, &mut yt_serial);
        dme_par::set_force_serial(false);
        m.mul_vec_into(&x, &mut y_par);
        m.mul_transpose_vec_into(&xt, &mut yt_par);
        for i in 0..rows {
            prop_assert_eq!(y_serial[i].to_bits(), y_par[i].to_bits(), "row {}", i);
        }
        for j in 0..cols {
            prop_assert_eq!(yt_serial[j].to_bits(), yt_par[j].to_bits(), "col {}", j);
        }
    }

    /// The IPM produces the same solution bitwise with the parallel
    /// kernels on and off.
    #[test]
    fn ipm_parallel_matches_serial((qp, _x0) in qp_strategy()) {
        std::env::set_var("DME_NUM_THREADS", "4");
        dme_par::set_force_serial(true);
        let serial = IpmSolver::new(IpmSettings::default()).solve(&qp).expect("serial solve");
        dme_par::set_force_serial(false);
        let par = IpmSolver::new(IpmSettings::default()).solve(&qp).expect("parallel solve");
        prop_assert_eq!(serial.objective.to_bits(), par.objective.to_bits());
        for i in 0..serial.x.len() {
            prop_assert_eq!(serial.x[i].to_bits(), par.x[i].to_bits(), "x[{}]", i);
        }
    }

    /// The sparse direct (LDLᵀ) and matrix-free CG Newton backends agree:
    /// same solve status, objectives within tolerance, and both feasible.
    #[test]
    fn direct_and_cg_backends_agree((qp, _x0) in qp_strategy()) {
        let cg = IpmSolver::new(IpmSettings {
            backend: NewtonBackend::Cg,
            ..IpmSettings::default()
        })
        .solve(&qp);
        let direct = IpmSolver::new(IpmSettings {
            backend: NewtonBackend::Direct,
            ..IpmSettings::default()
        })
        .solve(&qp);
        match (cg, direct) {
            (Ok(c), Ok(d)) => {
                prop_assert_eq!(c.status, d.status);
                prop_assert!((c.objective - d.objective).abs() < 1e-4,
                    "cg {} vs direct {}", c.objective, d.objective);
                prop_assert!(qp.max_violation(&d.x) < 1e-5,
                    "direct violation {}", qp.max_violation(&d.x));
            }
            (c, d) => prop_assert!(false, "backend disagreement: cg {:?} direct {:?}",
                c.map(|s| s.status), d.map(|s| s.status)),
        }
    }

    /// Warm-starting a solver with a previous probe's solution converges
    /// to the same answer as a cold start on the same problem.
    #[test]
    fn warm_start_converges_to_same_answer((qp, _x0) in qp_strategy()) {
        let cold = IpmSolver::new(IpmSettings::default()).solve(&qp).expect("cold solve");
        let mut solver = IpmSolver::new(IpmSettings::default());
        solver.warm_start(cold.x.clone(), cold.y.clone());
        let warm = solver.solve(&qp).expect("warm solve");
        prop_assert_eq!(cold.status, warm.status);
        prop_assert!((cold.objective - warm.objective).abs() < 1e-4,
            "cold {} vs warm {}", cold.objective, warm.objective);
        prop_assert!(qp.max_violation(&warm.x) < 1e-5);
    }

    /// The Mehrotra predictor-corrector and the basic fixed-σ strategy
    /// are different *paths* to the same optimum: both must land on the
    /// central-path limit with first-order (KKT) agreement. Small scale.
    #[test]
    fn strategies_agree_small((qp, _x0) in sized_qp_strategy(2, 6, 2, 8)) {
        assert_strategies_agree(&qp);
    }

    /// Least-squares: the fitted line's residual never exceeds that of
    /// nearby perturbed coefficient pairs (local optimality).
    #[test]
    fn linear_fit_is_locally_optimal(
        xs in proptest::collection::vec(-10.0f64..10.0, 3..20),
        noise in proptest::collection::vec(-1.0f64..1.0, 20),
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
    ) {
        // Need non-degenerate x spread.
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 0.5);
        let ys: Vec<f64> = xs.iter().zip(&noise).map(|(&x, &n)| a + b * x + n).collect();
        let (c0, c1, ssr) = dme_qp::lsq::fit_linear(&xs, &ys).expect("fit");
        let ssr_at = |c0: f64, c1: f64| -> f64 {
            xs.iter().zip(&ys).map(|(&x, &y)| {
                let r = y - c0 - c1 * x;
                r * r
            }).sum()
        };
        for (d0, d1) in [(0.01, 0.0), (-0.01, 0.0), (0.0, 0.01), (0.0, -0.01)] {
            prop_assert!(ssr <= ssr_at(c0 + d0, c1 + d1) + 1e-9);
        }
    }
}

/// Solves `qp` with both iteration strategies pinned (so the
/// `DME_QP_IPM=basic` CI leg cannot turn this into basic-vs-basic) and
/// checks KKT-level agreement at the optimum.
fn assert_strategies_agree(qp: &QuadProgram) {
    let solve = |strategy: IpmStrategy| {
        IpmSolver::new(IpmSettings {
            strategy,
            ..IpmSettings::default()
        })
        .solve(qp)
        .expect("solve")
    };
    let meh = solve(IpmStrategy::Mehrotra);
    let basic = solve(IpmStrategy::Basic);
    prop_assert_eq!(meh.status, basic.status);
    prop_assert!(
        qp.max_violation(&meh.x) <= 1e-6,
        "mehrotra violation {}",
        qp.max_violation(&meh.x)
    );
    prop_assert!(
        qp.max_violation(&basic.x) <= 1e-6,
        "basic violation {}",
        qp.max_violation(&basic.x)
    );
    let scale = 1.0 + meh.objective.abs();
    prop_assert!(
        (meh.objective - basic.objective).abs() <= 1e-4 * scale,
        "objectives disagree: mehrotra {} vs basic {}",
        meh.objective,
        basic.objective
    );
}

// Medium and large scales run fewer cases: the point is coverage of the
// size-dependent code paths (backend auto-selection flips to the direct
// solver, SpMV crosses its parallel cutoff), not distribution density.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Strategy agreement at medium scale (direct backend territory).
    #[test]
    fn strategies_agree_medium((qp, _x0) in sized_qp_strategy(15, 30, 20, 40)) {
        assert_strategies_agree(&qp);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Strategy agreement at the largest proptest scale.
    #[test]
    fn strategies_agree_large((qp, _x0) in sized_qp_strategy(60, 90, 80, 140)) {
        assert_strategies_agree(&qp);
    }
}
