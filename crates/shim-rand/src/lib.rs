//! Offline work-alike for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched. This crate provides source-compatible replacements
//! for exactly what the workspace imports: the [`Rng`] / [`SeedableRng`]
//! traits and [`rngs::StdRng`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid for synthetic-design generation, but
//! the streams differ from upstream `rand`'s ChaCha-based `StdRng`, so
//! seeded designs are reproducible *within* this workspace only.

#![deny(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` ∈ [0, 1), integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * self.gen::<f64>()
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution of the
/// real crate, flattened into a trait).
pub trait Standard {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_and_bool_behave() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&heads), "heads = {heads}");
    }
}
