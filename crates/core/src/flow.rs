//! The end-to-end optimization flow (Figs. 7–8 of the paper).
//!
//! Place → nominal golden analysis → DMopt (QP or QCP) → snap + golden
//! signoff → optional dosePl cell swapping with ECO legalization and a
//! final golden analysis.

use crate::context::{GoldenSummary, OptContext};
use crate::dosepl::{dosepl, DoseplConfig, DoseplResult};
use crate::error::DmoptError;
use crate::optimize::{optimize, DmoptConfig, DmoptResult};

/// Flow configuration: the DMopt step plus an optional dosePl step.
#[derive(Debug, Clone, Default)]
pub struct FlowConfig {
    /// Dose-map optimization settings.
    pub dmopt: DmoptConfig,
    /// Cell-swapping settings; `None` skips the dosePl stage.
    pub dosepl: Option<DoseplConfig>,
}

/// Result of the full flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Golden summary of the un-optimized design.
    pub nominal: GoldenSummary,
    /// DMopt outcome.
    pub dmopt: DmoptResult,
    /// dosePl outcome, when the stage ran.
    pub dosepl: Option<DoseplResult>,
}

impl FlowResult {
    /// The final golden summary after every enabled stage.
    pub fn final_summary(&self) -> GoldenSummary {
        self.dosepl
            .as_ref()
            .map_or(self.dmopt.golden_after, |d| d.golden_after)
    }
}

/// Runs the integrated flow on a prepared context.
///
/// # Errors
///
/// Propagates any [`DmoptError`] from the DMopt stage (dosePl cannot
/// fail: it simply accepts no swaps).
pub fn run(ctx: &OptContext<'_>, cfg: &FlowConfig) -> Result<FlowResult, DmoptError> {
    let _span = dme_obs::span("flow");
    let dmopt_result = optimize(ctx, &cfg.dmopt)?;
    let dosepl_result = cfg.dosepl.as_ref().map(|dcfg| {
        dosepl(
            ctx,
            &dmopt_result.poly_map,
            dmopt_result.active_map.as_ref(),
            cfg.dmopt.sensitivity.0,
            dcfg,
        )
    });
    let result = FlowResult {
        nominal: ctx.nominal_summary(),
        dmopt: dmopt_result,
        dosepl: dosepl_result,
    };
    if dme_obs::enabled() {
        // The manifest's QoR section: the deltas the paper's tables
        // report, recorded run-over-run by dme-qor and gated in CI.
        let final_summary = result.final_summary();
        dme_obs::set_qor("flow/nominal_mct_ns", result.nominal.mct_ns);
        dme_obs::set_qor("flow/nominal_leakage_uw", result.nominal.leakage_uw);
        dme_obs::set_qor("flow/final_mct_ns", final_summary.mct_ns);
        dme_obs::set_qor("flow/final_leakage_uw", final_summary.leakage_uw);
        dme_obs::set_qor(
            "flow/delta_leakage_uw",
            final_summary.leakage_uw - result.nominal.leakage_uw,
        );
        // Worst negative slack of the optimized design against the
        // nominal clock period (positive = timing improved).
        dme_obs::set_qor("flow/wns_ns", result.nominal.mct_ns - final_summary.mct_ns);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::Objective;
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles};

    #[test]
    fn full_flow_improves_timing_at_bounded_leakage() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let cfg = FlowConfig {
            dmopt: DmoptConfig {
                objective: Objective::MinTiming { xi_uw: 0.0 },
                grid_g_um: 5.0,
                ..DmoptConfig::default()
            },
            dosepl: Some(DoseplConfig {
                top_k: 100,
                rounds: 3,
                swaps_per_round: 2,
                ..DoseplConfig::default()
            }),
        };
        let r = run(&ctx, &cfg).expect("flow");
        let final_summary = r.final_summary();
        assert!(
            final_summary.mct_ns < r.nominal.mct_ns,
            "flow must improve MCT"
        );
        // dosePl can only improve on DMopt's timing.
        assert!(final_summary.mct_ns <= r.dmopt.golden_after.mct_ns + 1e-12);
        assert!(final_summary.leakage_uw <= r.nominal.leakage_uw * 1.05);
    }

    #[test]
    fn flow_without_dosepl_matches_dmopt() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let cfg = FlowConfig {
            dmopt: DmoptConfig::default(),
            dosepl: None,
        };
        let r = run(&ctx, &cfg).expect("flow");
        assert!(r.dosepl.is_none());
        assert_eq!(r.final_summary(), r.dmopt.golden_after);
    }
}
