//! Persistent cell → dose-grid index for the dosePl candidate loop.
//!
//! dosePl used to rebuild its per-grid candidate lists from scratch at
//! every round start — an O(n) pass over all instances. [`GridIndex`]
//! instead keeps the membership across rounds and re-files only the
//! cells the placement journal reports as moved, mirroring the
//! `RowIndex` design in `dme-placement`: per-grid member lists sorted
//! ascending by instance id (the enumeration order the from-scratch
//! build produces), plus the reverse `grid_of` map.
//!
//! Sync happens at round boundaries only. Mid-round the index is
//! intentionally stale — the reference implementation reads positions
//! captured at round start, and candidate selection must stay bitwise
//! identical to it.

use dme_dosemap::DoseGrid;
use dme_liberty::Library;
use dme_netlist::{InstId, Netlist};
use dme_placement::Placement;

/// Per-grid member lists (all cells, ascending id) plus the reverse
/// cell → grid map (see module docs).
pub(crate) struct GridIndex {
    members: Vec<Vec<InstId>>,
    grid_of: Vec<u32>,
}

impl GridIndex {
    /// Builds the index with one O(n) pass — once per dosePl run (or
    /// per round, for the from-scratch reference engine).
    pub fn build(lib: &Library, nl: &Netlist, placement: &Placement, grid: &DoseGrid) -> Self {
        let mut s = Self {
            members: vec![Vec::new(); grid.num_cells()],
            grid_of: vec![0; nl.num_instances()],
        };
        s.rebuild(lib, nl, placement, grid);
        s
    }

    /// From-scratch refill at the current positions (the costed oracle
    /// path the reference engine pays every round).
    pub fn rebuild(&mut self, lib: &Library, nl: &Netlist, placement: &Placement, grid: &DoseGrid) {
        for m in &mut self.members {
            m.clear();
        }
        self.members.resize(grid.num_cells(), Vec::new());
        self.grid_of.resize(nl.num_instances(), 0);
        for i in 0..nl.num_instances() {
            let id = InstId(i as u32);
            let (x, y) = placement.center(lib, nl, id);
            let g = grid.cell_of(x, y);
            self.grid_of[i] = g as u32;
            self.members[g].push(id); // ascending id by construction
        }
    }

    /// Dose-grid cell the instance was filed under at the last sync.
    #[inline]
    pub fn grid_of(&self, i: usize) -> usize {
        self.grid_of[i] as usize
    }

    /// Members of a grid cell, ascending by instance id.
    #[inline]
    pub fn members(&self, g: usize) -> &[InstId] {
        &self.members[g]
    }

    /// Re-files the given cells at their current positions — O(|touched|
    /// · log members) instead of the O(n) rebuild. `touched` must cover
    /// every cell that moved since the last sync (duplicates and
    /// unmoved cells are fine); under-reporting desynchronizes the
    /// index exactly like `RowIndex`.
    pub fn sync(
        &mut self,
        lib: &Library,
        nl: &Netlist,
        placement: &Placement,
        grid: &DoseGrid,
        touched: &[InstId],
    ) {
        for &id in touched {
            let i = id.0 as usize;
            let (x, y) = placement.center(lib, nl, id);
            let g = grid.cell_of(x, y) as u32;
            let old = self.grid_of[i];
            if old == g {
                continue;
            }
            let old_list = &mut self.members[old as usize];
            let pos = old_list.binary_search(&id).expect("instance indexed in its grid");
            old_list.remove(pos);
            let new_list = &mut self.members[g as usize];
            let pos = new_list
                .binary_search(&id)
                .expect_err("instance filed in two grids");
            new_list.insert(pos, id);
            self.grid_of[i] = g;
        }
    }

    /// Debug oracle: whether the index equals a from-scratch build at
    /// the current positions.
    #[cfg(any(debug_assertions, test))]
    pub fn is_consistent(
        &self,
        lib: &Library,
        nl: &Netlist,
        placement: &Placement,
        grid: &DoseGrid,
    ) -> bool {
        let fresh = Self::build(lib, nl, placement, grid);
        fresh.grid_of == self.grid_of && fresh.members == self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_netlist::{gen, profiles};

    fn setup() -> (Library, dme_netlist::Design, Placement, DoseGrid) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let grid = DoseGrid::with_granularity(p.die_w_um, p.die_h_um, 5.0);
        (lib, d, p, grid)
    }

    #[test]
    fn build_files_every_cell_once_in_ascending_order() {
        let (lib, d, p, grid) = setup();
        let idx = GridIndex::build(&lib, &d.netlist, &p, &grid);
        let mut seen = 0usize;
        for g in 0..grid.num_cells() {
            let m = idx.members(g);
            seen += m.len();
            for w in m.windows(2) {
                assert!(w[0] < w[1], "members must be ascending");
            }
            for &id in m {
                assert_eq!(idx.grid_of(id.0 as usize), g);
            }
        }
        assert_eq!(seen, d.netlist.num_instances());
    }

    #[test]
    fn sync_tracks_journaled_moves_like_a_rebuild() {
        let (lib, d, mut p, grid) = setup();
        let n = d.netlist.num_instances();
        let mut idx = GridIndex::build(&lib, &d.netlist, &p, &grid);
        let mut pd = dme_placement::PlacementDelta::new();
        // Swap + repack sequences, syncing from the journal each round
        // the way dosePl does.
        for step in 0..5u32 {
            let mark = pd.mark();
            let (a, b) = (
                InstId((step * 5 + 1) % n as u32),
                InstId((step * 11 + 3) % n as u32),
            );
            if a != b {
                p.swap_cells_tracked(a, b, &mut pd);
                let rows = [
                    (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
                    (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
                ];
                p.repack_rows_tracked(&lib, &d.netlist, &rows, &mut pd);
            }
            let touched = pd.touched_since(mark);
            idx.sync(&lib, &d.netlist, &p, &grid, &touched);
            assert!(idx.is_consistent(&lib, &d.netlist, &p, &grid), "step {step}");
        }
        // Round-style rollback: capture the touched set before the
        // journal replays (and empties) itself, then re-file those
        // cells at their restored positions.
        let moved = pd.touched_since(0);
        pd.undo_all(&mut p);
        idx.sync(&lib, &d.netlist, &p, &grid, &moved);
        assert!(idx.is_consistent(&lib, &d.netlist, &p, &grid));
    }

    #[test]
    fn sync_with_unmoved_cells_is_a_noop() {
        let (lib, d, p, grid) = setup();
        let idx_before = GridIndex::build(&lib, &d.netlist, &p, &grid);
        let mut idx = GridIndex::build(&lib, &d.netlist, &p, &grid);
        let all: Vec<InstId> = (0..d.netlist.num_instances() as u32).map(InstId).collect();
        idx.sync(&lib, &d.netlist, &p, &grid, &all);
        assert_eq!(idx.members, idx_before.members);
        assert_eq!(idx.grid_of, idx_before.grid_of);
    }
}
