//! `dmeopt` — command-line front end for dose-map / placement
//! co-optimization.
//!
//! ```text
//! dmeopt generate --profile aes65 [--scale 0.2] [--verilog out.v]
//!                 [--def out.def] [--lib out.lib]
//! dmeopt analyze  --profile aes65 [--scale 0.2] [--dosemap map.csv]
//! dmeopt optimize --profile aes65 [--scale 0.2]
//!                 [--objective leakage|timing] [--xi-uw 0] [--grid 5]
//!                 [--layers poly|both] [--prune] [--dosemap-out map.csv]
//! dmeopt flow     --profile aes65 [--scale 0.2] [--grid 5] [--top-k 1000]
//! dmeopt watch    snapshot.json [--interval-ms 500] [--once]
//! dmeopt obs      ls
//! dmeopt qp       solve file.qps [--strategy mehrotra|basic] | suite [dir]
//! dmeopt qor      ingest run.json... | diff run baseline | report
//! dmeopt prof     report run.json [--flame out.svg] | diff run base...
//! ```
//!
//! `generate` can also be driven from files instead of a built-in
//! profile: `--verilog-in design.v --def-in design.def --tech 65`
//! (for `analyze`/`optimize`/`flow`).
//!
//! Every subcommand also accepts the observability options `--trace`
//! (collect in-process telemetry), `--trace-json events.jsonl` (stream
//! JSONL trace events), `--report run.json` (write a run manifest with
//! stage spans, solver telemetry and swap tallies; implies `--trace`)
//! and `--verbose` (raise the stderr log threshold to `info`). The
//! `DME_TRACE` / `DME_TRACE_JSON` / `DME_LOG` environment variables are
//! equivalent; `DME_GIT_SHA` stamps the manifest's `git_sha`.
//!
//! Run commands additionally accept `--snapshot <path>` /
//! `--snapshot-ms <n>` (`DME_SNAPSHOT_MS` / `DME_SNAPSHOT_PATH` are
//! equivalent) to start the live snapshot publisher; point
//! `dmeopt watch <path>` at the file from another terminal for a live
//! stage/rate view, and `dmeopt obs ls` lists every metric name the
//! flow can emit.
//!
//! `qp` exercises the `dme-qp` interior-point solver as a standalone QP
//! engine over MPS/QPS files: `solve` prints an OSQP-style summary
//! (status, iterations, objective, residuals) for one problem, `suite`
//! runs every fixture in a directory under both iteration strategies
//! and prints the per-problem iteration table (non-convergence fails
//! the command — this is the CI `qp-suite` gate). With `--report` the
//! manifest's `records` section carries one `qp_solve` row per solve
//! plus the `ipm_iter` per-iteration trajectory, machine-readable.
//!
//! `qor` is the QoR regression sentinel (see `crates/dme-qor`): `ingest`
//! normalizes run manifests into `results/qor_history.jsonl`, `diff`
//! gates a run against a baseline with noise-aware median/MAD
//! thresholds (exit 3 = confirmed regression), and `report` renders a
//! self-contained HTML dashboard.
//!
//! `prof` consumes the manifest v3 `profile` section: `report` prints
//! the span-tree breakdown (per-path calls, total/self wall time,
//! allocation attribution) and can render a standalone flamegraph SVG;
//! `diff` compares a run's per-path self times against one or more
//! baseline manifests with the same median/MAD floors the QoR gate
//! uses, exiting 3 on a confirmed self-time regression. The binary
//! installs [`dme_obs::TrackingAllocator`] as its global allocator, so
//! traced runs (`--trace` / `--report`) also attribute heap traffic to
//! the innermost open span at ~one branch per allocation when idle.

use dme_device::Technology;
use dme_dosemap::io::{parse_dose_map, write_dose_map};
use dme_liberty::Library;
use dme_netlist::{gen, profiles, verilog, Design, DesignProfile};
use dme_placement::{io as place_io, Placement};
use dme_sta::{analyze, GeometryAssignment};
use dmeopt::dosepl::assignment_for_placement;
use dmeopt::flow::{run as run_flow, FlowConfig};
use dmeopt::{optimize, DmoptConfig, DoseplConfig, Layers, Objective, OptContext};
use std::collections::HashMap;
use std::process::ExitCode;

/// Route every allocation through the observability layer so profiled
/// runs can attribute heap churn to the innermost open span. Disabled
/// (one relaxed atomic load per call) unless tracing is armed.
#[global_allocator]
static GLOBAL: dme_obs::TrackingAllocator<std::alloc::System> =
    dme_obs::TrackingAllocator(std::alloc::System);

/// Parsed command line: a subcommand, `--key value` options (`--flag`
/// with no value stores an empty string), and positional arguments
/// (used by `qor` for its verb and file paths).
#[derive(Debug, Default)]
struct Args {
    command: String,
    opts: HashMap<String, String>,
    positionals: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter();
    let command = it.next().cloned().ok_or("missing subcommand")?;
    let mut opts = HashMap::new();
    let mut positionals = Vec::new();
    let mut key: Option<String> = None;
    for a in it {
        if let Some(k) = a.strip_prefix("--") {
            if let Some(prev) = key.take() {
                opts.insert(prev, String::new()); // previous was a flag
            }
            key = Some(k.to_string());
        } else if let Some(k) = key.take() {
            opts.insert(k, a.clone());
        } else {
            positionals.push(a.clone());
        }
    }
    if let Some(k) = key {
        opts.insert(k, String::new());
    }
    Ok(Args {
        command,
        opts,
        positionals,
    })
}

/// Applies the observability options (see the module docs) and stamps
/// run metadata into the manifest. Call once, right after arg parsing.
/// Returns the live snapshot publisher when one was requested (via
/// `--snapshot`/`--snapshot-ms` or `DME_SNAPSHOT_MS`); the handle
/// publishes the `final` snapshot when dropped at the end of `main`.
fn init_obs(args: &Args) -> Option<dme_obs::publisher::Publisher> {
    if let Some(path) = args.opts.get("trace-json") {
        if path.is_empty() {
            eprintln!("error: --trace-json requires a path");
        } else if let Err(e) = dme_obs::set_trace_path(path) {
            eprintln!("error: opening trace {path}: {e}");
        }
    }
    if args.opts.contains_key("verbose") {
        dme_obs::set_max_level(dme_obs::Level::Info);
    }
    if args.opts.contains_key("trace") || args.opts.contains_key("report") {
        dme_obs::set_enabled(true);
    }
    // The publisher only makes sense for commands that actually run the
    // flow — `watch` in particular must never overwrite the snapshot it
    // is reading.
    let run_command = matches!(
        args.command.as_str(),
        "generate" | "analyze" | "optimize" | "flow"
    );
    let publisher = if !run_command {
        None
    } else if args.opts.contains_key("snapshot") || args.opts.contains_key("snapshot-ms") {
        let path = match args.opts.get("snapshot").map(String::as_str) {
            Some("") | None => "snapshot.json".to_string(),
            Some(p) => p.to_string(),
        };
        let interval_ms = args
            .opts
            .get("snapshot-ms")
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|ms| *ms > 0)
            .unwrap_or(200);
        Some(dme_obs::publisher::start(&path, interval_ms))
    } else {
        dme_obs::publisher::start_from_env()
    };
    if dme_obs::enabled() {
        dme_obs::set_meta_str("bin", "dmeopt");
        dme_obs::set_meta_str("command", &args.command);
        if let Some(p) = args.opts.get("profile") {
            dme_obs::set_meta_str("profile", p);
        }
        if let Some(s) = args.opts.get("scale") {
            dme_obs::set_meta_str("scale", s);
        }
        if let Ok(sha) = std::env::var("DME_GIT_SHA") {
            if !sha.trim().is_empty() {
                dme_obs::set_meta_str("git_sha", sha.trim());
            }
        }
        dme_obs::set_meta_num("threads", dme_par::num_threads() as f64);
        dme_obs::set_meta_bool("feature_parallel", dme_par::parallel_enabled());
        if let Some(path) = args.opts.get("report") {
            if !path.is_empty() {
                dme_obs::set_report_path(path);
            }
        }
        // A crashing run must still flush its trace and leave a
        // manifest stub (status: "panicked") at the --report path.
        dme_obs::install_panic_hook();
    }
    publisher
}

/// Writes the `--report` manifest (if requested), prints the summary
/// table to stderr, and closes the JSONL sink. Call once before exit.
fn finish_obs(args: &Args) {
    if !dme_obs::enabled() {
        return;
    }
    if let Some(path) = args.opts.get("report") {
        if path.is_empty() {
            eprintln!("error: --report requires a path");
        } else {
            dme_obs::set_meta_str("status", "ok");
            match dme_obs::write_report(path) {
                Ok(()) => dme_obs::info!("wrote run manifest {path}"),
                Err(e) => dme_obs::error!("writing run manifest {path}: {e}"),
            }
        }
    }
    eprint!("{}", dme_obs::summary_table());
    dme_obs::close_trace();
}

fn profile_by_name(name: &str) -> Option<DesignProfile> {
    match name {
        "aes65" => Some(profiles::aes65()),
        "jpeg65" => Some(profiles::jpeg65()),
        "aes90" => Some(profiles::aes90()),
        "jpeg90" => Some(profiles::jpeg90()),
        "small" => Some(profiles::small()),
        "tiny" => Some(profiles::tiny()),
        _ => None,
    }
}

struct Bench {
    lib: Library,
    design: Design,
    placement: Placement,
}

fn load_bench(args: &Args) -> Result<Bench, String> {
    if let Some(vpath) = args.opts.get("verilog-in") {
        let tech = match args.opts.get("tech").map(String::as_str) {
            Some("65") | None => Technology::n65(),
            Some("90") => Technology::n90(),
            Some(other) => return Err(format!("unknown tech {other:?} (use 65 or 90)")),
        };
        let lib = Library::standard(tech);
        let text = std::fs::read_to_string(vpath).map_err(|e| format!("{vpath}: {e}"))?;
        let netlist = verilog::parse_netlist(&text, &lib).map_err(|e| e.to_string())?;
        let dpath = args
            .opts
            .get("def-in")
            .ok_or("--verilog-in requires --def-in for the placement")?;
        let dtext = std::fs::read_to_string(dpath).map_err(|e| format!("{dpath}: {e}"))?;
        let placement = place_io::parse_placement(&dtext, &netlist).map_err(|e| e.to_string())?;
        let die_area_mm2 = placement.die_w_um * placement.die_h_um * 1e-6;
        let mut profile = profiles::tiny();
        profile.name = "FILE".into();
        profile.die_area_mm2 = die_area_mm2;
        let design = Design { netlist, profile };
        return Ok(Bench {
            lib,
            design,
            placement,
        });
    }
    let pname = args
        .opts
        .get("profile")
        .ok_or("--profile (or --verilog-in) is required")?;
    let mut profile = profile_by_name(pname).ok_or_else(|| format!("unknown profile {pname:?}"))?;
    if let Some(s) = args.opts.get("scale") {
        let f: f64 = s.parse().map_err(|_| format!("bad --scale {s:?}"))?;
        profile = profile.scaled(f);
    }
    let tech = match profile.node {
        profiles::TechNode::N65 => Technology::n65(),
        profiles::TechNode::N90 => Technology::n90(),
    };
    let lib = Library::standard(tech);
    let design = gen::generate(&profile, &lib);
    let placement = {
        let _span = dme_obs::span("place");
        dme_placement::place(&design, &lib)
    };
    Ok(Bench {
        lib,
        design,
        placement,
    })
}

fn dmopt_config(args: &Args) -> Result<DmoptConfig, String> {
    let mut cfg = DmoptConfig::default();
    if let Some(g) = args.opts.get("grid") {
        cfg.grid_g_um = g.parse().map_err(|_| format!("bad --grid {g:?}"))?;
    }
    match args.opts.get("objective").map(String::as_str) {
        Some("timing") => {
            let xi = args
                .opts
                .get("xi-uw")
                .map(|v| v.parse::<f64>().map_err(|_| format!("bad --xi-uw {v:?}")))
                .transpose()?
                .unwrap_or(0.0);
            cfg.objective = Objective::MinTiming { xi_uw: xi };
        }
        Some("leakage") | None => {}
        Some(other) => return Err(format!("unknown objective {other:?}")),
    }
    match args.opts.get("layers").map(String::as_str) {
        Some("both") => cfg.layers = Layers::PolyAndActive,
        Some("poly") | None => {}
        Some(other) => return Err(format!("unknown layers {other:?}")),
    }
    if args.opts.contains_key("prune") {
        cfg.prune = true;
    }
    if let Some(h) = args.opts.get("hold-margin-ns") {
        cfg.hold_margin_ns = Some(
            h.parse()
                .map_err(|_| format!("bad --hold-margin-ns {h:?}"))?,
        );
    }
    Ok(cfg)
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let b = load_bench(args)?;
    dme_obs::report!(
        "generated {}: {} cells, {} nets, die {:.1}×{:.1} µm",
        b.design.profile.name,
        b.design.netlist.num_instances(),
        b.design.netlist.num_nets(),
        b.placement.die_w_um,
        b.placement.die_h_um
    );
    if let Some(path) = args.opts.get("verilog") {
        let text = verilog::write_netlist(&b.design.netlist, &b.lib, "dme");
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        dme_obs::report!("wrote {path}");
    }
    if let Some(path) = args.opts.get("def") {
        let text = place_io::write_placement(&b.placement, &b.design.netlist);
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        dme_obs::report!("wrote {path}");
    }
    if let Some(path) = args.opts.get("lib") {
        let text = dme_liberty::io::write_library(&b.lib, 0.0, 0.0);
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        dme_obs::report!("wrote {path}");
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let b = load_bench(args)?;
    let n = b.design.netlist.num_instances();
    let doses = match args.opts.get("dosemap") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let map = parse_dose_map(&text).map_err(|e| e.to_string())?;
            let ctx = OptContext::new(&b.lib, &b.design, &b.placement);
            assignment_for_placement(&ctx, &b.placement, &map, None, -2.0)
        }
        None => GeometryAssignment::nominal(n),
    };
    let r = {
        let _span = dme_obs::span("golden_sta");
        analyze(&b.lib, &b.design.netlist, &b.placement, &doses)
    };
    dme_obs::report!("MCT      : {:.4} ns", r.mct_ns);
    dme_obs::report!("leakage  : {:.1} µW", r.total_leakage_uw);
    let setup: Vec<f64> = b
        .design
        .netlist
        .instances
        .iter()
        .map(|i| b.lib.cell(i.cell_idx).setup_ns(b.lib.tech()))
        .collect();
    let paths = dme_sta::worst_path_per_endpoint(&b.design.netlist, &r, &setup);
    let pct = dme_sta::report::criticality_percentages(&paths, r.mct_ns, &[0.95, 0.90, 0.80]);
    dme_obs::report!("endpoints: {}", paths.len());
    dme_obs::report!(
        "criticality (95/90/80% of MCT): {:.2}% / {:.2}% / {:.2}%",
        pct[0],
        pct[1],
        pct[2]
    );
    dme_obs::report!("hold     : worst slack {:.4} ns", r.worst_hold_slack_ns);
    if let Some(path) = args.opts.get("sdf") {
        let text = dme_sta::sdf::write_sdf(&b.design.netlist, &r, "dme");
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        dme_obs::report!("wrote {path}");
    }
    Ok(())
}

fn cmd_optimize(args: &Args) -> Result<(), String> {
    let b = load_bench(args)?;
    let ctx = {
        let _span = dme_obs::span("golden_sta");
        OptContext::new(&b.lib, &b.design, &b.placement)
    };
    let cfg = dmopt_config(args)?;
    let r = optimize(&ctx, &cfg).map_err(|e| e.to_string())?;
    let (mct_imp, leak_imp) = r.golden_after.improvement_over(&r.golden_before);
    dme_obs::report!(
        "MCT      : {:.4} -> {:.4} ns ({mct_imp:+.2}%)",
        r.golden_before.mct_ns,
        r.golden_after.mct_ns
    );
    dme_obs::report!(
        "leakage  : {:.1} -> {:.1} µW ({leak_imp:+.2}%)",
        r.golden_before.leakage_uw,
        r.golden_after.leakage_uw
    );
    dme_obs::report!(
        "solver   : {} vars, {} rows, {} iterations, {} probe(s), {:.2?}",
        r.num_vars,
        r.num_constraints,
        r.iterations,
        r.probes,
        r.runtime
    );
    if let Some(path) = args.opts.get("dosemap-out") {
        std::fs::write(path, write_dose_map(&r.poly_map)).map_err(|e| format!("{path}: {e}"))?;
        dme_obs::report!("wrote {path}");
    }
    Ok(())
}

fn cmd_flow(args: &Args) -> Result<(), String> {
    let b = load_bench(args)?;
    let ctx = {
        let _span = dme_obs::span("golden_sta");
        OptContext::new(&b.lib, &b.design, &b.placement)
    };
    let mut cfg = FlowConfig {
        dmopt: dmopt_config(args)?,
        dosepl: Some(DoseplConfig::default()),
    };
    cfg.dmopt.objective = Objective::MinTiming { xi_uw: 0.0 };
    if let Some(k) = args.opts.get("top-k") {
        if let Some(d) = cfg.dosepl.as_mut() {
            d.top_k = k.parse().map_err(|_| format!("bad --top-k {k:?}"))?;
        }
    }
    let r = run_flow(&ctx, &cfg).map_err(|e| e.to_string())?;
    dme_obs::report!(
        "nominal   : MCT {:.4} ns, leakage {:.1} µW",
        r.nominal.mct_ns,
        r.nominal.leakage_uw
    );
    dme_obs::report!(
        "after QCP : MCT {:.4} ns, leakage {:.1} µW",
        r.dmopt.golden_after.mct_ns,
        r.dmopt.golden_after.leakage_uw
    );
    if let Some(dp) = &r.dosepl {
        dme_obs::report!(
            "after dosePl: MCT {:.4} ns, leakage {:.1} µW ({} swaps accepted)",
            dp.golden_after.mct_ns,
            dp.golden_after.leakage_uw,
            dp.swaps_accepted
        );
    }
    Ok(())
}

/// Default committed QoR history, relative to the repo root.
const DEFAULT_HISTORY: &str = "results/qor_history.jsonl";

/// Exit code for a confirmed QoR regression (distinct from generic
/// errors so CI can tell "the gate fired" from "the tool broke").
const EXIT_REGRESSION: u8 = 3;

/// Loads the run under test: a `.jsonl` history (its last record) or a
/// run-manifest JSON document (normalized on the fly).
fn qor_load_run(path: &str) -> Result<dme_qor::QorRecord, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".jsonl") {
        dme_qor::parse_history(&text)
            .map_err(|e| format!("{path}: {e}"))?
            .pop()
            .ok_or_else(|| format!("{path}: history is empty"))
    } else {
        dme_qor::normalize_manifest(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// Loads the baseline: every record of a `.jsonl` history (the diff
/// config windows it), or a single-record baseline from one manifest.
fn qor_load_baseline(path: &str) -> Result<Vec<dme_qor::QorRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".jsonl") {
        dme_qor::parse_history(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        Ok(vec![
            dme_qor::normalize_manifest(&text).map_err(|e| format!("{path}: {e}"))?
        ])
    }
}

fn qor_diff_config(args: &Args) -> Result<dme_qor::DiffConfig, String> {
    let mut cfg = dme_qor::DiffConfig::default();
    let parse_f64 = |key: &str, target: &mut f64| -> Result<(), String> {
        if let Some(v) = args.opts.get(key) {
            *target = v.parse().map_err(|_| format!("bad --{key} {v:?}"))?;
        }
        Ok(())
    };
    parse_f64("k-mad", &mut cfg.k_mad)?;
    parse_f64("min-rel", &mut cfg.min_rel)?;
    parse_f64("time-min-rel", &mut cfg.time_min_rel)?;
    if let Some(w) = args.opts.get("window") {
        cfg.window = w.parse().map_err(|_| format!("bad --window {w:?}"))?;
    }
    Ok(cfg)
}

fn qor_ingest(args: &Args) -> Result<(), String> {
    let manifests = &args.positionals[1..];
    if manifests.is_empty() {
        return Err("qor ingest requires at least one manifest path".into());
    }
    let history = args
        .opts
        .get("history")
        .cloned()
        .unwrap_or_else(|| DEFAULT_HISTORY.to_string());
    for path in manifests {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let mut rec = dme_qor::normalize_manifest(&text).map_err(|e| format!("{path}: {e}"))?;
        if let Some(sha) = args.opts.get("git-sha") {
            rec.git_sha = sha.clone();
        }
        rec.ts_s = match args.opts.get("ts") {
            Some(t) => t.parse().map_err(|_| format!("bad --ts {t:?}"))?,
            None => std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0),
        };
        dme_qor::append_history(std::path::Path::new(&history), &rec)
            .map_err(|e| format!("{history}: {e}"))?;
        dme_obs::report!("qor: appended {} to {history}", rec.label());
    }
    Ok(())
}

fn qor_diff(args: &Args) -> Result<ExitCode, String> {
    let [_, run_path, baseline_path] = args.positionals.as_slice() else {
        return Err("qor diff requires exactly two paths: <run> <baseline>".into());
    };
    let run = qor_load_run(run_path)?;
    let baseline = qor_load_baseline(baseline_path)?;
    if baseline.is_empty() {
        return Err(format!("{baseline_path}: baseline is empty"));
    }
    let cfg = qor_diff_config(args)?;
    let mut report = dme_qor::diff_records(&run, &baseline, &cfg);
    report.baseline_label = baseline_path.clone();
    let md = dme_qor::markdown::diff_markdown(&report);
    print!("{md}");
    if let Some(path) = args.opts.get("md") {
        std::fs::write(path, &md).map_err(|e| format!("{path}: {e}"))?;
    }
    if report.has_regression() && !args.opts.contains_key("informational") {
        return Ok(ExitCode::from(EXIT_REGRESSION));
    }
    Ok(ExitCode::SUCCESS)
}

fn qor_report(args: &Args) -> Result<(), String> {
    let history_path = args
        .opts
        .get("history")
        .cloned()
        .unwrap_or_else(|| DEFAULT_HISTORY.to_string());
    let text =
        std::fs::read_to_string(&history_path).map_err(|e| format!("{history_path}: {e}"))?;
    let history = dme_qor::parse_history(&text).map_err(|e| format!("{history_path}: {e}"))?;

    let manifest_doc = match args.opts.get("manifest") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(dme_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let bench: Vec<dme_obs::json::Value> = match args.opts.get("bench-history") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            text.lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| dme_obs::json::parse(l).map_err(|e| format!("{path}: {e}")))
                .collect::<Result<_, _>>()?
        }
        None => Vec::new(),
    };
    // `--snapshot <path>` embeds the run's last live telemetry snapshot
    // (the file the publisher leaves behind) as a dashboard panel.
    let snapshot_doc = match args.opts.get("snapshot") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(dme_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    // With two or more records, embed a latest-vs-rest comparison.
    let diff = if history.len() >= 2 {
        let (run, base) = history.split_last().expect("len >= 2");
        let mut d = dme_qor::diff_records(run, base, &qor_diff_config(args)?);
        d.baseline_label = history_path.clone();
        Some(d)
    } else {
        None
    };
    let html = dme_qor::dashboard::render(&dme_qor::dashboard::DashboardInput {
        history: &history,
        manifest: manifest_doc.as_ref(),
        bench_history: &bench,
        diff: diff.as_ref(),
        snapshot: snapshot_doc.as_ref(),
        title: "DME QoR dashboard",
    });
    let out = args
        .opts
        .get("out")
        .cloned()
        .unwrap_or_else(|| "qor_dashboard.html".to_string());
    std::fs::write(&out, html).map_err(|e| format!("{out}: {e}"))?;
    dme_obs::report!("qor: wrote dashboard {out}");
    if let Some(path) = args.opts.get("md") {
        match &diff {
            Some(d) => {
                let md = dme_qor::markdown::diff_markdown(d);
                std::fs::write(path, md).map_err(|e| format!("{path}: {e}"))?;
                dme_obs::report!("qor: wrote markdown summary {path}");
            }
            None => dme_obs::warn!("--md needs at least two history records; skipped"),
        }
    }
    Ok(())
}

/// `dmeopt qor <ingest|diff|report>` — the QoR regression sentinel.
fn cmd_qor(args: &Args) -> Result<ExitCode, String> {
    match args.positionals.first().map(String::as_str) {
        Some("ingest") => qor_ingest(args).map(|()| ExitCode::SUCCESS),
        Some("diff") => qor_diff(args),
        Some("report") => qor_report(args).map(|()| ExitCode::SUCCESS),
        Some(other) => Err(format!("unknown qor verb {other:?}")),
        None => Err("qor requires a verb: ingest, diff or report".into()),
    }
}

/// Parses the profile section of a manifest file, labelled by its path.
fn prof_load(path: &str) -> Result<dme_qor::Profile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    dme_qor::parse_manifest_profile(&text, path).map_err(|e| format!("{path}: {e}"))
}

fn prof_diff_config(args: &Args) -> Result<dme_qor::ProfileDiffConfig, String> {
    let mut cfg = dme_qor::ProfileDiffConfig::default();
    let parse_f64 = |key: &str, target: &mut f64| -> Result<(), String> {
        if let Some(v) = args.opts.get(key) {
            *target = v.parse().map_err(|_| format!("bad --{key} {v:?}"))?;
        }
        Ok(())
    };
    parse_f64("k-mad", &mut cfg.k_mad)?;
    parse_f64("time-min-rel", &mut cfg.time_min_rel)?;
    if let Some(v) = args.opts.get("min-abs-us") {
        let us: f64 = v.parse().map_err(|_| format!("bad --min-abs-us {v:?}"))?;
        cfg.min_abs_ns = us * 1e3;
    }
    if let Some(w) = args.opts.get("window") {
        cfg.window = w.parse().map_err(|_| format!("bad --window {w:?}"))?;
    }
    Ok(cfg)
}

/// `prof report <manifest.json>` — span-tree breakdown + flamegraph.
fn prof_report(args: &Args) -> Result<(), String> {
    let [_, manifest_path] = args.positionals.as_slice() else {
        return Err("prof report requires exactly one manifest path".into());
    };
    let profile = prof_load(manifest_path)?;
    print!("{}", dme_qor::profile_tree_text(&profile));
    if let Some(out) = args.opts.get("flame") {
        if out.is_empty() {
            return Err("--flame requires a path".into());
        }
        let title = format!("dmeopt profile — {manifest_path}");
        let svg = dme_qor::flamegraph_svg(&profile, &title, true);
        std::fs::write(out, svg).map_err(|e| format!("{out}: {e}"))?;
        dme_obs::report!("prof: wrote flamegraph {out}");
    }
    Ok(())
}

/// `prof diff <run> <baseline>...` — gate per-path self times against
/// baseline manifests. Exit 3 = confirmed self-time regression.
fn prof_diff(args: &Args) -> Result<ExitCode, String> {
    let paths = &args.positionals[1..];
    let [run_path, baseline_paths @ ..] = paths else {
        return Err("prof diff requires <run> <baseline>... manifest paths".into());
    };
    if baseline_paths.is_empty() {
        return Err("prof diff requires at least one baseline manifest".into());
    }
    let run = prof_load(run_path)?;
    let baselines: Vec<dme_qor::Profile> = baseline_paths
        .iter()
        .map(|p| prof_load(p))
        .collect::<Result<_, _>>()?;
    let cfg = prof_diff_config(args)?;
    let mut report = dme_qor::diff_profiles(&run, &baselines, &cfg);
    if let [single] = baseline_paths {
        report.baseline_label = single.clone();
    }
    let md = dme_qor::markdown::diff_markdown(&report);
    print!("{md}");
    if let Some(path) = args.opts.get("md") {
        std::fs::write(path, &md).map_err(|e| format!("{path}: {e}"))?;
    }
    if report.has_regression() && !args.opts.contains_key("informational") {
        return Ok(ExitCode::from(EXIT_REGRESSION));
    }
    Ok(ExitCode::SUCCESS)
}

/// `dmeopt prof <report|diff>` — the self-profiling front end.
fn cmd_prof(args: &Args) -> Result<ExitCode, String> {
    match args.positionals.first().map(String::as_str) {
        Some("report") => prof_report(args).map(|()| ExitCode::SUCCESS),
        Some("diff") => prof_diff(args),
        Some(other) => Err(format!("unknown prof verb {other:?}")),
        None => Err("prof requires a verb: report or diff".into()),
    }
}

/// Reads the `status` field out of snapshot JSON (`None` when the text
/// does not parse — e.g. caught mid-rename on a non-atomic filesystem).
fn snapshot_status(text: &str) -> Option<String> {
    dme_obs::json::parse(text)
        .ok()?
        .get("status")
        .and_then(dme_obs::json::Value::as_str)
        .map(str::to_string)
}

/// `dmeopt watch <snapshot.json>` — refresh-loop terminal view of a
/// live run. Exits when the snapshot reports `final` or `panicked`
/// status (or after one frame with `--once`).
fn cmd_watch(args: &Args) -> Result<(), String> {
    let path = args
        .positionals
        .first()
        .ok_or("watch requires a snapshot path")?;
    let interval_ms: u64 = match args.opts.get("interval-ms") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|ms| *ms > 0)
            .ok_or_else(|| format!("bad --interval-ms {v:?}"))?,
        None => 500,
    };
    let once = args.opts.contains_key("once");
    let mut waiting_reported = false;
    loop {
        match std::fs::read_to_string(path) {
            Ok(text) => match dme_qor::render_snapshot(&text) {
                Ok(frame) => {
                    if !once {
                        // Clear screen and home the cursor between frames.
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{frame}");
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                    let status = snapshot_status(&text).unwrap_or_default();
                    if once {
                        return Ok(());
                    }
                    if status == "final" || status == "panicked" {
                        println!("\nrun {status}; exiting watch");
                        return Ok(());
                    }
                }
                Err(e) => {
                    if once {
                        return Err(e);
                    }
                    // Transient parse issues just skip a frame.
                    eprintln!("watch: {e}");
                }
            },
            Err(e) => {
                if once {
                    return Err(format!("{path}: {e}"));
                }
                if !waiting_reported {
                    println!("waiting for {path} ...");
                    waiting_reported = true;
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Builds the IPM settings for `dmeopt qp` from `--strategy` and
/// `--backend`. Unlike the env overrides (which degrade on typos so a
/// long flow survives), an explicit CLI value must parse or the command
/// aborts.
fn qp_settings(args: &Args) -> Result<dme_qp::IpmSettings, String> {
    let mut st = dme_qp::IpmSettings::default();
    if let Some(v) = args.opts.get("strategy") {
        st.strategy = dme_qp::IpmStrategy::parse(v)
            .ok_or_else(|| format!("bad --strategy {v:?} (auto, mehrotra or basic)"))?;
    }
    if let Some(v) = args.opts.get("backend") {
        st.backend = match v.to_ascii_lowercase().as_str() {
            "auto" => dme_qp::NewtonBackend::Auto,
            "direct" => dme_qp::NewtonBackend::Direct,
            "cg" => dme_qp::NewtonBackend::Cg,
            _ => return Err(format!("bad --backend {v:?} (auto, direct or cg)")),
        };
    }
    Ok(st)
}

/// Solves one loaded QPS problem, streaming telemetry when tracing is
/// armed and recording a `qp_solve` row for the `--report` manifest.
fn qp_run_one(
    name: &str,
    pb: &dme_qp::mps::QpsProblem,
    st: &dme_qp::IpmSettings,
) -> Result<(dme_qp::Solution, f64), String> {
    let solver = dme_qp::IpmSolver::new(st.clone());
    dme_obs::counter_add("qp/solves", 1);
    let sol = if dme_obs::enabled() {
        solver.solve_observed(&pb.qp, &mut dmeopt::ObsSolverObserver)
    } else {
        solver.solve(&pb.qp)
    }
    .map_err(|e| format!("{name}: {e}"))?;
    let objective = pb.objective(&sol.x);
    dme_obs::record(
        "qp_solve",
        &[
            ("n", pb.qp.num_vars() as f64),
            ("m", pb.qp.a.nrows() as f64),
            ("iterations", sol.iterations as f64),
            ("objective", objective),
            ("pri_res", sol.primal_residual),
            ("dua_res", sol.dual_residual),
            (
                "solved",
                f64::from(sol.status == dme_qp::SolveStatus::Solved),
            ),
        ],
    );
    Ok((sol, objective))
}

/// `qp solve <file.qps>` — solve one MPS/QPS problem and print an
/// OSQP-style summary (status, iterations, objective, residuals).
fn qp_solve(args: &Args) -> Result<(), String> {
    let [_, path] = args.positionals.as_slice() else {
        return Err("qp solve requires exactly one .qps path".into());
    };
    let st = qp_settings(args)?;
    let pb =
        dme_qp::mps::load_qps(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    let t0 = std::time::Instant::now();
    let (sol, objective) = qp_run_one(&pb.name, &pb, &st)?;
    let elapsed = t0.elapsed();
    println!(
        "problem:    {} ({} variables, {} constraint rows)",
        pb.name,
        pb.qp.num_vars(),
        pb.qp.a.nrows()
    );
    println!(
        "strategy:   {} ({} backend)",
        st.strategy.resolve().name(),
        match st.backend {
            dme_qp::NewtonBackend::Auto => "auto",
            dme_qp::NewtonBackend::Direct => "direct",
            dme_qp::NewtonBackend::Cg => "cg",
        }
    );
    println!("status:     {:?}", sol.status);
    println!("iterations: {}", sol.iterations);
    println!("objective:  {objective:.10e}");
    println!(
        "residuals:  pri {:.3e}, dua {:.3e}, max violation {:.3e}",
        sol.primal_residual,
        sol.dual_residual,
        pb.qp.max_violation(&sol.x)
    );
    println!("run time:   {:.3} ms", elapsed.as_secs_f64() * 1e3);
    if sol.status != dme_qp::SolveStatus::Solved {
        return Err(format!(
            "{}: solver stopped with {:?} after {} iterations",
            pb.name, sol.status, sol.iterations
        ));
    }
    Ok(())
}

/// `qp suite [dir]` — solve every `.qps` fixture under `dir` (default
/// `tests/qps`) with BOTH iteration strategies and print a per-problem
/// iteration table; any non-converged solve fails the command. This is
/// the CI `qp-suite` entry point and the source of the EXPERIMENTS.md
/// iteration tables.
fn qp_suite(args: &Args) -> Result<(), String> {
    let dir = args
        .positionals
        .get(1)
        .map(String::as_str)
        .unwrap_or("tests/qps");
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "qps"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{dir}: no .qps fixtures found"));
    }
    let base = qp_settings(args)?;
    let mut failures = Vec::new();
    let mut totals = [0usize; 2];
    println!(
        "{:<12} {:>4} {:>4} {:>9} {:>6}  objective",
        "problem", "n", "m", "mehrotra", "basic"
    );
    for path in &paths {
        let label = path.file_stem().unwrap_or_default().to_string_lossy();
        let pb = dme_qp::mps::load_qps(path).map_err(|e| format!("{label}: {e}"))?;
        let mut iters = [0usize; 2];
        let mut objective = 0.0;
        for (k, strategy) in [dme_qp::IpmStrategy::Mehrotra, dme_qp::IpmStrategy::Basic]
            .into_iter()
            .enumerate()
        {
            let st = dme_qp::IpmSettings {
                strategy,
                ..base.clone()
            };
            let (sol, obj) = qp_run_one(&label, &pb, &st)?;
            if sol.status != dme_qp::SolveStatus::Solved {
                failures.push(format!(
                    "{label}/{}: {:?} after {} iterations",
                    strategy.name(),
                    sol.status,
                    sol.iterations
                ));
            }
            iters[k] = sol.iterations;
            totals[k] += sol.iterations;
            objective = obj;
        }
        println!(
            "{label:<12} {:>4} {:>4} {:>9} {:>6}  {objective:.6e}",
            pb.qp.num_vars(),
            pb.qp.a.nrows(),
            iters[0],
            iters[1]
        );
    }
    println!(
        "{:<12} {:>4} {:>4} {:>9} {:>6}  ({:+.1}%)",
        "total",
        "",
        "",
        totals[0],
        totals[1],
        100.0 * (totals[0] as f64 - totals[1] as f64) / totals[1].max(1) as f64
    );
    if !failures.is_empty() {
        return Err(format!(
            "{} solve(s) failed to converge:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ));
    }
    Ok(())
}

/// `dmeopt qp <solve|suite>` — the standalone QP front end over MPS/QPS
/// files (see `crates/dme-qp`). Machine-readable output comes from the
/// shared observability options: `--report run.json` writes a manifest
/// whose `records` section carries one `qp_solve` row per solve plus the
/// per-iteration `ipm_iter` convergence trajectory.
fn cmd_qp(args: &Args) -> Result<(), String> {
    match args.positionals.first().map(String::as_str) {
        Some("solve") => qp_solve(args),
        Some("suite") => qp_suite(args),
        Some(other) => Err(format!("unknown qp verb {other:?}")),
        None => Err("qp requires a verb: solve or suite".into()),
    }
}

/// `dmeopt obs ls` — print the metric catalog (every counter, span,
/// histogram and record kind the flow can emit).
fn cmd_obs(args: &Args) -> Result<(), String> {
    match args.positionals.first().map(String::as_str) {
        Some("ls") => {
            print!("{}", dme_obs::catalog::catalog_table());
            Ok(())
        }
        Some(other) => Err(format!("unknown obs verb {other:?}")),
        None => Err("obs requires a verb: ls".into()),
    }
}

const USAGE: &str = "usage: dmeopt <generate|analyze|optimize|flow|watch|obs|qp|qor|prof> [options]
  common: --profile aes65|jpeg65|aes90|jpeg90|small|tiny [--scale f]
          or --verilog-in f.v --def-in f.def [--tech 65|90]
  generate: [--verilog out.v] [--def out.def] [--lib out.lib]
  analyze : [--dosemap map.csv] [--sdf out.sdf]
  optimize: [--objective leakage|timing] [--xi-uw x] [--grid g]
            [--layers poly|both] [--prune] [--hold-margin-ns h]
            [--dosemap-out map.csv]
  flow    : [--grid g] [--top-k k]
  watch   : <snapshot.json> [--interval-ms n] [--once]
            (live view of a run publishing snapshots; exits on final)
  obs     : ls (print the counter/span/histogram/record catalog)
  qp      : solve <file.qps> [--strategy auto|mehrotra|basic]
                 [--backend auto|direct|cg]
                 (OSQP-style summary; exit 1 on non-convergence)
            suite [dir=tests/qps] (every fixture under both strategies,
                 per-problem iteration table; exit 1 on non-convergence)
  qor     : ingest <manifest.json>... [--history h.jsonl] [--git-sha sha] [--ts secs]
            diff <run> <baseline> [--window n] [--k-mad k] [--min-rel f]
                 [--time-min-rel f] [--md out.md] [--informational]
                 (exit 3 = confirmed regression)
            report [--history h.jsonl] [--manifest run.json]
                 [--bench-history b.jsonl] [--snapshot snap.json]
                 [--out dash.html] [--md out.md]
  prof    : report <run.json> [--flame out.svg]
            diff <run.json> <baseline.json>... [--window n] [--k-mad k]
                 [--time-min-rel f] [--min-abs-us us] [--md out.md]
                 [--informational] (exit 3 = confirmed self-time regression)
  observability (all subcommands): [--trace] [--trace-json events.jsonl]
          [--report run.json] [--verbose]
          [--snapshot snap.json] [--snapshot-ms n] (live snapshot publisher;
          DME_SNAPSHOT_MS / DME_SNAPSHOT_PATH are equivalent)";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let _publisher = init_obs(&args);
    // Test hook: crash after observability is armed so the integration
    // suite can verify the panic hook flushes the trace and leaves a
    // `status: "panicked"` manifest stub. `DME_TEST_PANIC=span` panics
    // with a span still open after a nested span completed, exercising
    // the hook's batched-span-stats flush (the completed span's delta
    // would otherwise only reach the registry when the stack drained).
    if let Some(v) = std::env::var_os("DME_TEST_PANIC") {
        if v == "span" {
            let _outer = dme_obs::span("flow");
            {
                let _inner = dme_obs::span("stage");
            }
            panic!("DME_TEST_PANIC=span set (panicking mid-span-stack)");
        }
        panic!("DME_TEST_PANIC set");
    }
    let result = match args.command.as_str() {
        "generate" => cmd_generate(&args).map(|()| ExitCode::SUCCESS),
        "analyze" => cmd_analyze(&args).map(|()| ExitCode::SUCCESS),
        "optimize" => cmd_optimize(&args).map(|()| ExitCode::SUCCESS),
        "flow" => cmd_flow(&args).map(|()| ExitCode::SUCCESS),
        "watch" => cmd_watch(&args).map(|()| ExitCode::SUCCESS),
        "obs" => cmd_obs(&args).map(|()| ExitCode::SUCCESS),
        "qp" => cmd_qp(&args).map(|()| ExitCode::SUCCESS),
        "qor" => cmd_qor(&args),
        "prof" => cmd_prof(&args),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    finish_obs(&args);
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        parse_args(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).expect("parse")
    }

    #[test]
    fn arg_parsing_handles_flags_and_values() {
        let a = args(&["optimize", "--profile", "tiny", "--prune", "--grid", "8"]);
        assert_eq!(a.command, "optimize");
        assert_eq!(a.opts["profile"], "tiny");
        assert_eq!(a.opts["grid"], "8");
        assert!(a.opts.contains_key("prune"));
    }

    #[test]
    fn trailing_flag_is_kept() {
        let a = args(&["flow", "--profile", "tiny", "--prune"]);
        assert!(a.opts.contains_key("prune"));
    }

    #[test]
    fn bad_args_are_rejected_and_positionals_collected() {
        assert!(parse_args(&[]).is_err());
        let a = args(&["qor", "diff", "run.json", "base.jsonl", "--window", "5"]);
        assert_eq!(a.command, "qor");
        assert_eq!(a.positionals, ["diff", "run.json", "base.jsonl"]);
        assert_eq!(a.opts["window"], "5");
    }

    #[test]
    fn qor_rejects_bad_verbs_and_arities() {
        assert!(cmd_qor(&args(&["qor"])).is_err());
        assert!(cmd_qor(&args(&["qor", "frobnicate"])).is_err());
        assert!(cmd_qor(&args(&["qor", "diff", "only-one.json"])).is_err());
        assert!(cmd_qor(&args(&["qor", "ingest"])).is_err());
    }

    #[test]
    fn qor_diff_config_maps_options() {
        let a = args(&[
            "qor",
            "diff",
            "r",
            "b",
            "--window",
            "9",
            "--k-mad",
            "2.5",
            "--min-rel",
            "0.01",
            "--time-min-rel",
            "0.4",
        ]);
        let cfg = qor_diff_config(&a).expect("config");
        assert_eq!(cfg.window, 9);
        assert_eq!(cfg.k_mad, 2.5);
        assert_eq!(cfg.min_rel, 0.01);
        assert_eq!(cfg.time_min_rel, 0.4);
        assert!(qor_diff_config(&args(&["qor", "diff", "r", "b", "--window", "x"])).is_err());
    }

    #[test]
    fn prof_rejects_bad_verbs_and_arities() {
        assert!(cmd_prof(&args(&["prof"])).is_err());
        assert!(cmd_prof(&args(&["prof", "flame"])).is_err());
        assert!(cmd_prof(&args(&["prof", "report"])).is_err());
        assert!(cmd_prof(&args(&["prof", "report", "a.json", "b.json"])).is_err());
        assert!(cmd_prof(&args(&["prof", "diff", "only-run.json"])).is_err());
    }

    #[test]
    fn prof_diff_config_maps_options() {
        let a = args(&[
            "prof",
            "diff",
            "r",
            "b",
            "--window",
            "7",
            "--k-mad",
            "4.0",
            "--time-min-rel",
            "0.5",
            "--min-abs-us",
            "100",
        ]);
        let cfg = prof_diff_config(&a).expect("config");
        assert_eq!(cfg.window, 7);
        assert_eq!(cfg.k_mad, 4.0);
        assert_eq!(cfg.time_min_rel, 0.5);
        assert_eq!(cfg.min_abs_ns, 100_000.0);
        assert!(prof_diff_config(&args(&["prof", "diff", "r", "b", "--window", "x"])).is_err());
    }

    #[test]
    fn qp_rejects_bad_verbs_strategies_and_arities() {
        assert!(cmd_qp(&args(&["qp"])).is_err());
        assert!(cmd_qp(&args(&["qp", "frobnicate"])).is_err());
        assert!(cmd_qp(&args(&["qp", "solve"])).is_err());
        assert!(cmd_qp(&args(&["qp", "solve", "a.qps", "b.qps"])).is_err());
        assert!(qp_settings(&args(&["qp", "solve", "a.qps", "--strategy", "fancy"])).is_err());
        assert!(qp_settings(&args(&["qp", "solve", "a.qps", "--backend", "gpu"])).is_err());
    }

    #[test]
    fn qp_settings_map_options() {
        let a = args(&[
            "qp",
            "solve",
            "x.qps",
            "--strategy",
            "basic",
            "--backend",
            "direct",
        ]);
        let st = qp_settings(&a).expect("settings");
        assert_eq!(st.strategy, dme_qp::IpmStrategy::Basic);
        assert!(matches!(st.backend, dme_qp::NewtonBackend::Direct));
        // Defaults: Auto strategy (env-resolved at solve time), Auto backend.
        let st = qp_settings(&args(&["qp", "suite"])).expect("settings");
        assert_eq!(st.strategy, dme_qp::IpmStrategy::Auto);
    }

    #[test]
    fn qp_solve_and_suite_run_the_bundled_fixtures() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/qps");
        let a = args(&[
            "qp",
            "solve",
            &format!("{root}/hs35.qps"),
            "--backend",
            "direct",
        ]);
        qp_solve(&a).expect("hs35 solves");
        let a = args(&["qp", "suite", root]);
        qp_suite(&a).expect("suite converges under both strategies");
    }

    #[test]
    fn profiles_resolve() {
        for p in ["aes65", "jpeg65", "aes90", "jpeg90", "small", "tiny"] {
            assert!(profile_by_name(p).is_some(), "{p}");
        }
        assert!(profile_by_name("nope").is_none());
    }

    #[test]
    fn config_builder_maps_options() {
        let a = args(&[
            "optimize",
            "--profile",
            "tiny",
            "--objective",
            "timing",
            "--xi-uw",
            "3.5",
            "--layers",
            "both",
            "--grid",
            "7.5",
            "--prune",
        ]);
        let cfg = dmopt_config(&a).expect("config");
        assert_eq!(cfg.grid_g_um, 7.5);
        assert!(cfg.prune);
        assert_eq!(cfg.layers, Layers::PolyAndActive);
        assert!(matches!(cfg.objective, Objective::MinTiming { xi_uw } if xi_uw == 3.5));
    }

    #[test]
    fn end_to_end_tiny_optimize() {
        let a = args(&["optimize", "--profile", "tiny"]);
        cmd_optimize(&a).expect("optimize runs");
    }
}
