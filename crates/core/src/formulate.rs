//! Building the QP instance from a placed design (Eqs. 2–12).
//!
//! Decision variables, in order:
//!
//! 1. `d^P` — one poly-layer dose delta per grid cell (percent);
//! 2. `d^A` — one active-layer dose delta per grid cell (only when both
//!    layers are modulated);
//! 3. `a`  — one arrival-time variable per (kept) instance output (ns);
//! 4. `T`  — the clock period (ns), always the last variable.
//!
//! Constraint rows:
//!
//! - dose box bounds, Eq. (3)/(8);
//! - dose smoothness between horizontal / vertical / diagonal grid
//!   neighbors, Eq. (4)/(9);
//! - arrival propagation per timing edge with dose-scaled gate delays,
//!   Eq. (5)/(10): `a_r + wire + t_q⁰ + Ap·Ds·d^P + Bp·Ds·d^A ≤ a_q`;
//! - endpoint capture: `a_r + wire + setup ≤ T`;
//! - the period bound `T ≤ τ`, Eq. (6)/(11) — its row index is exposed so
//!   the QCP bisection can retighten τ without rebuilding anything.
//!
//! The objective is the quadratic leakage surrogate of Eq. (2), expressed
//! per grid cell by accumulating the per-instance `αp`, `βp`, `γp`.
//!
//! # Constraint pruning (optional extension)
//!
//! With `prune` enabled, arrival variables and their rows are restricted
//! to instances whose nominal slack is smaller than the worst possible
//! cumulative delay increase along any path through them (`pot_q`,
//! computed by a forward/backward pass over per-instance worst-case
//! deltas). A pruned path satisfies `delay ≤ (MCT₀ − slack) + pot ≤
//! τ_ref` under *any* admissible dose, so dropping it is sound for every
//! probe `τ ≥ τ_ref`. Edges from pruned producers into kept consumers use
//! the constant upper bound `arrival₀ + inc_arr`. This is our own speed
//! extension (benchmarked as an ablation); the paper formulates the full
//! constraint set.

use crate::context::OptContext;
use dme_dosemap::{DoseGrid, DoseSensitivity};
use dme_qp::{CsrMatrix, QuadProgram};

/// Which layers the dose map modulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerChoice {
    /// Poly layer only (gate length).
    PolyOnly,
    /// Poly and active layers (gate length and width).
    PolyAndActive,
}

/// Parameters the formulation needs (a subset of the optimizer config).
#[derive(Debug, Clone, Copy)]
pub struct FormulationParams {
    /// Layer selection.
    pub layers: LayerChoice,
    /// Dose lower bound per grid, %.
    pub lo_pct: f64,
    /// Dose upper bound per grid, %.
    pub hi_pct: f64,
    /// Smoothness bound δ between neighboring grids, %.
    pub delta_pct: f64,
    /// Dose sensitivity (nm per %).
    pub sensitivity: DoseSensitivity,
    /// Initial clock-period bound τ, ns.
    pub tau_ns: f64,
    /// Enable timing-constraint pruning.
    pub prune: bool,
    /// Smallest τ any subsequent probe will use (soundness floor for
    /// pruning; ignored when `prune` is false).
    pub tau_ref_ns: f64,
    /// When set, the period bound becomes *elastic*: `T − v ≤ τ` with
    /// `v ≥ 0` penalized at this weight (objective units per ns). The
    /// QCP bisection uses this so that over-tight probes stay feasible
    /// and are recognized by `v > 0` instead of by an infeasibility
    /// certificate.
    pub elastic_weight: Option<f64>,
    /// When set, adds hold constraints: every flip-flop data pin's
    /// *earliest* arrival must stay above its hold requirement plus this
    /// margin (ns). Min-arrival variables `b` mirror the setup arrivals
    /// with the opposite inequality direction: `b_q ≤ b_r + wire +
    /// t_q^best(d)` and `b_endpoint ≥ hold + margin` — feasible iff every
    /// early path clears the requirement. The paper's introduction
    /// motivates exactly this (hold-critical devices want *lower* dose);
    /// its formulations leave it implicit. Incompatible with pruning.
    pub hold_margin_ns: Option<f64>,
}

/// Mapping from model entities to variable indices.
#[derive(Debug, Clone)]
pub struct VarLayout {
    /// Number of grid cells (per layer).
    pub num_grids: usize,
    /// Whether active-layer variables exist.
    pub active: bool,
    /// Arrival-variable index per instance (`None` when pruned).
    pub arr_index: Vec<Option<usize>>,
    /// Index of the clock-period variable `T`.
    pub t_idx: usize,
    /// Total variable count.
    pub num_vars: usize,
}

impl VarLayout {
    /// Variable index of grid `g`'s poly dose.
    pub fn poly_var(&self, g: usize) -> usize {
        g
    }

    /// Variable index of grid `g`'s active dose.
    ///
    /// # Panics
    ///
    /// Panics if the formulation has no active layer.
    pub fn active_var(&self, g: usize) -> usize {
        assert!(self.active, "formulation has no active-layer variables");
        self.num_grids + g
    }
}

/// A built QP instance plus the bookkeeping to interpret and re-bound it.
#[derive(Debug, Clone)]
pub struct Formulation {
    /// The convex program (`min ½xᵀPx + qᵀx` s.t. `l ≤ Ax ≤ u`).
    pub qp: QuadProgram,
    /// Variable layout.
    pub layout: VarLayout,
    /// Row index of the `T ≤ τ` constraint (mutate `qp.u[tau_row]` to
    /// re-tighten during bisection).
    pub tau_row: usize,
    /// Grid cell of each instance.
    pub grid_of_inst: Vec<usize>,
    /// Number of instances with arrival variables (= instances − pruned).
    pub num_kept: usize,
    /// Elastic variable index and its penalty weight, when enabled.
    pub elastic: Option<(usize, f64)>,
}

impl Formulation {
    /// Builds the QP for a context, grid and parameter set.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (contexts are
    /// built from validated designs, so this indicates internal
    /// corruption).
    pub fn build(ctx: &OptContext<'_>, grid: &DoseGrid, params: &FormulationParams) -> Self {
        let nl = &ctx.design.netlist;
        let n = nl.num_instances();
        let k = grid.num_cells();
        let ds = params.sensitivity.0;
        let active = params.layers == LayerChoice::PolyAndActive;

        // --- instance → grid assignment from placement ---
        let grid_of_inst: Vec<usize> = (0..n)
            .map(|i| {
                let (x, y) = ctx
                    .placement
                    .center(ctx.lib, nl, dme_netlist::InstId(i as u32));
                grid.cell_of(x, y)
            })
            .collect();

        // --- pruning analysis ---
        let order = nl.topo_order().expect("acyclic netlist");
        let delta_max: Vec<f64> = (0..n)
            .map(|i| {
                let dl = (ctx.ap[i] * ds * params.lo_pct).max(ctx.ap[i] * ds * params.hi_pct);
                let dw = if active {
                    (ctx.bp[i] * ds * params.lo_pct).max(ctx.bp[i] * ds * params.hi_pct)
                } else {
                    0.0
                };
                dl.max(0.0) + dw.max(0.0)
            })
            .collect();
        let mut inc_arr = vec![0.0f64; n];
        for &id in &order {
            let i = id.0 as usize;
            let inst = nl.instance(id);
            if inst.is_sequential {
                inc_arr[i] = delta_max[i];
                continue;
            }
            let mut up = 0.0f64;
            for &net in &inst.inputs {
                if let Some(drv) = nl.net(net).driver {
                    up = up.max(inc_arr[drv.0 as usize]);
                }
            }
            inc_arr[i] = up + delta_max[i];
        }
        let mut inc_down = vec![0.0f64; n];
        for &id in order.iter().rev() {
            let i = id.0 as usize;
            let mut down = 0.0f64;
            for &(sink, _) in &nl.net(nl.instance(id).output).sinks {
                let s = sink.0 as usize;
                if nl.instance(sink).is_sequential {
                    continue; // endpoint: setup is dose-independent
                }
                down = down.max(delta_max[s] + inc_down[s]);
            }
            inc_down[i] = down;
        }
        let kept: Vec<bool> = (0..n)
            .map(|i| {
                if !params.prune {
                    return true;
                }
                // Worst path delay through i under any admissible dose.
                let worst =
                    (ctx.nominal.mct_ns - ctx.nominal.slack_ns[i]) + inc_arr[i] + inc_down[i];
                worst > params.tau_ref_ns - 1e-9
            })
            .collect();
        let abar = |i: usize| ctx.nominal.arrival_ns[i] + inc_arr[i];

        // --- variable layout ---
        let dose_vars = if active { 2 * k } else { k };
        let mut arr_index = vec![None; n];
        let mut next = dose_vars;
        for i in 0..n {
            if kept[i] {
                arr_index[i] = Some(next);
                next += 1;
            }
        }
        // Min-arrival (hold) variables, one per instance, when requested.
        let hold_vars: Option<Vec<usize>> = params.hold_margin_ns.map(|_| {
            assert!(
                !params.prune,
                "hold constraints are incompatible with pruning"
            );
            (0..n)
                .map(|_| {
                    let v = next;
                    next += 1;
                    v
                })
                .collect()
        });
        let t_idx = next;
        next += 1;
        let num_kept = t_idx - dose_vars - hold_vars.as_ref().map_or(0, Vec::len);
        let elastic_idx = params.elastic_weight.map(|_| {
            let v = next;
            next += 1;
            v
        });
        let num_vars = next;

        // --- objective ---
        let mut p_diag = vec![0.0f64; num_vars];
        let mut qv = vec![0.0f64; num_vars];
        for (i, &g) in grid_of_inst.iter().enumerate().take(n) {
            p_diag[g] += 2.0 * ctx.alpha[i] * ds * ds;
            qv[g] += ctx.beta[i] * ds;
            if active {
                qv[k + g] += ctx.gamma[i] * ds;
            }
        }
        if let (Some(v), Some(w)) = (elastic_idx, params.elastic_weight) {
            qv[v] = w;
        }
        let p = CsrMatrix::diagonal(&p_diag);

        // --- constraint rows ---
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        let push = |row: Vec<(usize, f64)>,
                    l: f64,
                    u: f64,
                    rows: &mut Vec<Vec<(usize, f64)>>,
                    lov: &mut Vec<f64>,
                    hiv: &mut Vec<f64>| {
            rows.push(row);
            lov.push(l);
            hiv.push(u);
        };

        // Dose boxes (Eqs. 3, 8).
        for g in 0..k {
            push(
                vec![(g, 1.0)],
                params.lo_pct,
                params.hi_pct,
                &mut rows,
                &mut lo,
                &mut hi,
            );
        }
        if active {
            for g in 0..k {
                push(
                    vec![(k + g, 1.0)],
                    params.lo_pct,
                    params.hi_pct,
                    &mut rows,
                    &mut lo,
                    &mut hi,
                );
            }
        }
        // Smoothness (Eqs. 4, 9).
        for (a, b) in grid.neighbor_pairs() {
            push(
                vec![(a, 1.0), (b, -1.0)],
                -params.delta_pct,
                params.delta_pct,
                &mut rows,
                &mut lo,
                &mut hi,
            );
        }
        if active {
            for (a, b) in grid.neighbor_pairs() {
                push(
                    vec![(k + a, 1.0), (k + b, -1.0)],
                    -params.delta_pct,
                    params.delta_pct,
                    &mut rows,
                    &mut lo,
                    &mut hi,
                );
            }
        }

        // Timing propagation (Eqs. 5, 10).
        for id in nl.inst_ids() {
            let i = id.0 as usize;
            let Some(aq) = arr_index[i] else { continue };
            let inst = nl.instance(id);
            let g = grid_of_inst[i];
            let mut dose_terms = vec![(g, ctx.ap[i] * ds)];
            if active {
                dose_terms.push((k + g, ctx.bp[i] * ds));
            }
            let t_q0 = ctx.nominal.gate_delay_ns[i];
            if inst.is_sequential {
                // Launch: t_q(d) ≤ a_q.
                let mut row = dose_terms.clone();
                row.push((aq, -1.0));
                push(row, f64::NEG_INFINITY, -t_q0, &mut rows, &mut lo, &mut hi);
                continue;
            }
            for &net in &inst.inputs {
                let wire = ctx.nominal.wire_delay_ns[net.0 as usize];
                let rhs = -(wire + t_q0);
                match nl.net(net).driver {
                    Some(drv) => {
                        let r = drv.0 as usize;
                        let mut row = dose_terms.clone();
                        row.push((aq, -1.0));
                        match arr_index[r] {
                            Some(ar) => {
                                row.push((ar, 1.0));
                                push(row, f64::NEG_INFINITY, rhs, &mut rows, &mut lo, &mut hi);
                            }
                            None => {
                                push(
                                    row,
                                    f64::NEG_INFINITY,
                                    rhs - abar(r),
                                    &mut rows,
                                    &mut lo,
                                    &mut hi,
                                );
                            }
                        }
                    }
                    None => {
                        // Primary input: wire + t_q(d) ≤ a_q.
                        let mut row = dose_terms.clone();
                        row.push((aq, -1.0));
                        push(row, f64::NEG_INFINITY, rhs, &mut rows, &mut lo, &mut hi);
                    }
                }
            }
        }

        // Endpoint capture rows; pruned endpoints fold into a floor on T.
        let mut t_floor = f64::NEG_INFINITY;
        let endpoint = |r: usize,
                        extra: f64,
                        rows: &mut Vec<Vec<(usize, f64)>>,
                        lov: &mut Vec<f64>,
                        hiv: &mut Vec<f64>,
                        t_floor: &mut f64| match arr_index[r] {
            Some(ar) => {
                rows.push(vec![(ar, 1.0), (t_idx, -1.0)]);
                lov.push(f64::NEG_INFINITY);
                hiv.push(-extra);
            }
            None => {
                *t_floor = t_floor.max(abar(r) + extra);
            }
        };
        for id in nl.inst_ids() {
            let inst = nl.instance(id);
            if inst.is_sequential {
                let data = inst.inputs[0];
                if let Some(drv) = nl.net(data).driver {
                    let wire = ctx.nominal.wire_delay_ns[data.0 as usize];
                    endpoint(
                        drv.0 as usize,
                        wire + ctx.setup_ns[id.0 as usize],
                        &mut rows,
                        &mut lo,
                        &mut hi,
                        &mut t_floor,
                    );
                }
            }
        }
        for &po in &nl.primary_outputs {
            if let Some(drv) = nl.net(po).driver {
                endpoint(
                    drv.0 as usize,
                    0.0,
                    &mut rows,
                    &mut lo,
                    &mut hi,
                    &mut t_floor,
                );
            }
        }

        // Hold rows: b_q ≤ b_r + wire + t_best(d) per edge (mins are the
        // lower envelope), and b ≥ hold + margin at every FF data pin.
        if let (Some(bvars), Some(margin)) = (&hold_vars, params.hold_margin_ns) {
            let tech = ctx.lib.tech();
            for id in nl.inst_ids() {
                let i = id.0 as usize;
                let inst = nl.instance(id);
                let g = grid_of_inst[i];
                let mut dose_terms = vec![(g, -ctx.ap[i] * ds)];
                if active {
                    dose_terms.push((k + g, -ctx.bp[i] * ds));
                }
                let t_best = ctx.nominal.gate_delay_best_ns[i];
                if inst.is_sequential {
                    // b_q ≤ t_best(d): row b_q − Ap·Ds·d ≤ t_best0.
                    let mut row = dose_terms.clone();
                    row.push((bvars[i], 1.0));
                    push(row, f64::NEG_INFINITY, t_best, &mut rows, &mut lo, &mut hi);
                    // Hold check at this FF's data pin.
                    let data = inst.inputs[0];
                    if let Some(drv) = nl.net(data).driver {
                        let wire = ctx.nominal.wire_delay_ns[data.0 as usize];
                        let hold = ctx.lib.cell(inst.cell_idx).hold_ns(tech);
                        push(
                            vec![(bvars[drv.0 as usize], 1.0)],
                            hold + margin - wire,
                            f64::INFINITY,
                            &mut rows,
                            &mut lo,
                            &mut hi,
                        );
                    }
                    continue;
                }
                for &net in &inst.inputs {
                    let wire = ctx.nominal.wire_delay_ns[net.0 as usize];
                    let mut row = dose_terms.clone();
                    row.push((bvars[i], 1.0));
                    match nl.net(net).driver {
                        Some(drv) => {
                            row.push((bvars[drv.0 as usize], -1.0));
                            push(
                                row,
                                f64::NEG_INFINITY,
                                wire + t_best,
                                &mut rows,
                                &mut lo,
                                &mut hi,
                            );
                        }
                        None => {
                            push(
                                row,
                                f64::NEG_INFINITY,
                                wire + t_best,
                                &mut rows,
                                &mut lo,
                                &mut hi,
                            );
                        }
                    }
                }
            }
        }

        // The τ row. Elastic mode splits the floor off so the bound row
        // stays one-sided: T − v ≤ τ, v ≥ 0, T ≥ t_floor.
        let tau_row = rows.len();
        match elastic_idx {
            Some(v) => {
                rows.push(vec![(t_idx, 1.0), (v, -1.0)]);
                lo.push(f64::NEG_INFINITY);
                hi.push(params.tau_ns);
                rows.push(vec![(v, 1.0)]);
                lo.push(0.0);
                hi.push(f64::INFINITY);
                if t_floor.is_finite() {
                    rows.push(vec![(t_idx, 1.0)]);
                    lo.push(t_floor);
                    hi.push(f64::INFINITY);
                }
            }
            None => {
                rows.push(vec![(t_idx, 1.0)]);
                lo.push(t_floor);
                hi.push(params.tau_ns);
            }
        }

        let a = CsrMatrix::from_rows(num_vars, &rows);
        let qp =
            QuadProgram::new(p, qv, a, lo, hi).expect("formulation is dimensionally consistent");
        Formulation {
            qp,
            layout: VarLayout {
                num_grids: k,
                active,
                arr_index,
                t_idx,
                num_vars,
            },
            tau_row,
            grid_of_inst,
            num_kept,
            elastic: elastic_idx.zip(params.elastic_weight),
        }
    }

    /// Retightens the clock-period bound to a new τ (bisection probes).
    pub fn set_tau(&mut self, tau_ns: f64) {
        self.qp.u[self.tau_row] = tau_ns;
    }

    /// The leakage part of the objective at a solution (the elastic
    /// penalty, if any, subtracted out), in the objective's native nW.
    pub fn leakage_objective(&self, x: &[f64]) -> f64 {
        let mut obj = self.qp.objective(x);
        if let Some((v, w)) = self.elastic {
            obj -= w * x[v];
        }
        obj
    }

    /// The elastic violation `v` at a solution (0 when not elastic), ns.
    pub fn elastic_violation(&self, x: &[f64]) -> f64 {
        self.elastic.map_or(0.0, |(v, _)| x[v])
    }

    /// Extracts the per-grid poly doses from a solution vector.
    pub fn poly_doses(&self, x: &[f64]) -> Vec<f64> {
        x[..self.layout.num_grids].to_vec()
    }

    /// Extracts the per-grid active doses (empty when poly-only).
    pub fn active_doses(&self, x: &[f64]) -> Vec<f64> {
        if self.layout.active {
            x[self.layout.num_grids..2 * self.layout.num_grids].to_vec()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles};

    fn build_tiny(prune: bool, layers: LayerChoice) -> (Formulation, usize) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let grid = DoseGrid::with_granularity(p.die_w_um, p.die_h_um, 5.0);
        let params = FormulationParams {
            layers,
            lo_pct: -5.0,
            hi_pct: 5.0,
            delta_pct: 2.0,
            sensitivity: DoseSensitivity::default(),
            tau_ns: ctx.nominal.mct_ns,
            prune,
            tau_ref_ns: ctx.nominal.mct_ns,
            elastic_weight: None,
            hold_margin_ns: None,
        };
        let n = ctx.num_instances();
        (Formulation::build(&ctx, &grid, &params), n)
    }

    #[test]
    fn unpruned_formulation_keeps_every_instance() {
        let (f, n) = build_tiny(false, LayerChoice::PolyOnly);
        assert_eq!(f.num_kept, n);
        assert_eq!(f.layout.num_vars, f.layout.num_grids + n + 1);
        assert_eq!(f.layout.t_idx, f.layout.num_vars - 1);
    }

    #[test]
    fn active_layer_doubles_dose_variables() {
        let (poly, _) = build_tiny(false, LayerChoice::PolyOnly);
        let (both, _) = build_tiny(false, LayerChoice::PolyAndActive);
        assert_eq!(
            both.layout.num_vars - poly.layout.num_vars,
            poly.layout.num_grids
        );
        assert!(both.layout.active && !poly.layout.active);
    }

    #[test]
    fn pruning_removes_slack_rich_instances() {
        let (full, n) = build_tiny(false, LayerChoice::PolyOnly);
        let (pruned, _) = build_tiny(true, LayerChoice::PolyOnly);
        assert!(pruned.num_kept < n, "nothing pruned");
        assert!(pruned.qp.num_constraints() < full.qp.num_constraints());
    }

    #[test]
    fn zero_dose_is_feasible_at_nominal_tau() {
        // x = 0 (zero doses, arrivals = nominal, T = MCT) must satisfy
        // everything: the formulation linearizes around nominal.
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let grid = DoseGrid::with_granularity(p.die_w_um, p.die_h_um, 5.0);
        let params = FormulationParams {
            layers: LayerChoice::PolyOnly,
            lo_pct: -5.0,
            hi_pct: 5.0,
            delta_pct: 2.0,
            sensitivity: DoseSensitivity::default(),
            tau_ns: ctx.nominal.mct_ns,
            prune: false,
            tau_ref_ns: ctx.nominal.mct_ns,
            elastic_weight: None,
            hold_margin_ns: None,
        };
        let f = Formulation::build(&ctx, &grid, &params);
        let mut x = vec![0.0; f.layout.num_vars];
        for (i, slot) in f.layout.arr_index.iter().enumerate() {
            if let Some(v) = slot {
                x[*v] = ctx.nominal.arrival_ns[i];
            }
        }
        x[f.layout.t_idx] = ctx.nominal.mct_ns;
        let viol = f.qp.max_violation(&x);
        assert!(viol < 1e-9, "violation = {viol}");
        // And its objective (ΔLeakage at zero dose) is exactly zero.
        assert!(f.qp.objective(&x).abs() < 1e-12);
    }

    #[test]
    fn set_tau_changes_only_the_bound() {
        let (mut f, _) = build_tiny(false, LayerChoice::PolyOnly);
        let before = f.qp.u[f.tau_row];
        f.set_tau(before * 0.9);
        assert!((f.qp.u[f.tau_row] - before * 0.9).abs() < 1e-15);
    }
}
