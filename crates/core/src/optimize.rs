//! The DMopt optimizer: solve, snap, golden signoff.

use crate::context::{GoldenSummary, OptContext};
use crate::error::DmoptError;
use crate::formulate::{Formulation, FormulationParams};
use dme_dosemap::{DoseGrid, DoseMap, DoseSensitivity};
use dme_qp::qcp::{bisect_min, Probe};
use dme_qp::{
    AdmmSettings, AdmmSolver, IpmSettings, IpmSolver, NewtonBackend, QuadProgram, Solution,
    SolveStatus,
};
use dme_sta::{analyze, GeometryAssignment};
use std::time::{Duration, Instant};

pub use crate::formulate::LayerChoice as Layers;

/// Which convex solver backs the optimization.
#[derive(Debug, Clone)]
pub enum SolverKind {
    /// Mehrotra predictor-corrector interior point (default — the right
    /// tool for timing-chain QPs, like the paper's CPLEX).
    Ipm(IpmSettings),
    /// OSQP-style ADMM (useful for very large instances at loose
    /// tolerances, and as a cross-check).
    Admm(AdmmSettings),
}

impl Default for SolverKind {
    fn default() -> Self {
        SolverKind::Ipm(IpmSettings::default())
    }
}

/// Streams IPM telemetry into the observability registry: one `ipm_iter`
/// record per Newton iteration (the convergence trajectory — µ, µ_aff,
/// primal/dual residuals, σ, α) plus strategy/CG effort counters and a
/// per-solve CG iteration histogram. Only useful when tracing is enabled;
/// shared by the QCP bisection driver and the `dmeopt qp` subcommand.
pub struct ObsSolverObserver;

impl dme_qp::SolverObserver for ObsSolverObserver {
    fn ipm_iteration(&mut self, it: &dme_qp::IpmIteration) {
        dme_obs::record(
            "ipm_iter",
            &[
                ("iter", it.iter as f64),
                ("mu", it.mu),
                ("mu_aff", it.mu_aff),
                ("rp_inf", it.primal_residual),
                ("rd_inf", it.dual_residual),
                ("sigma", it.sigma),
                ("alpha", it.alpha),
                ("cg_pred", it.cg_iters_predictor as f64),
                ("cg_corr", it.cg_iters_corrector as f64),
            ],
        );
        dme_obs::counter_add("qp/ipm_iterations", 1);
    }

    fn strategy(&mut self, name: &'static str) {
        match name {
            "mehrotra" => dme_obs::counter_add("qp/strategy_mehrotra", 1),
            _ => dme_obs::counter_add("qp/strategy_basic", 1),
        }
    }

    fn cg_solve(&mut self, cg: &dme_qp::CgSolve) {
        dme_obs::counter_add("qp/cg_solves", 1);
        dme_obs::counter_add("qp/cg_iterations", cg.iterations as u64);
        dme_obs::histogram_record("qp/cg_iters_per_solve", cg.iterations as u64);
    }

    fn newton_backend(&mut self, backend: &'static str) {
        match backend {
            "direct" => dme_obs::counter_add("qp/backend_direct", 1),
            _ => dme_obs::counter_add("qp/backend_cg", 1),
        }
    }

    fn factorization(&mut self, ev: &dme_qp::FactorizationEvent) {
        dme_obs::counter_add("qp/factorizations", 1);
        if ev.symbolic_reused {
            dme_obs::counter_add("qp/symbolic_reuse", 1);
        }
        dme_obs::counter_add("qp/refactor_ns", ev.refactor_ns);
        dme_obs::histogram_record("qp/refactor_ns_per_iter", ev.refactor_ns);
    }
}

/// Parses a `DME_QP_BACKEND` override value. Unknown strings are ignored
/// (the configured backend stands) so a typo degrades gracefully rather
/// than aborting a long flow.
fn parse_backend(s: &str) -> Option<NewtonBackend> {
    match s.to_ascii_lowercase().as_str() {
        "direct" => Some(NewtonBackend::Direct),
        "cg" => Some(NewtonBackend::Cg),
        "auto" => Some(NewtonBackend::Auto),
        _ => None,
    }
}

/// One solver instance reused for every QP solve inside a single
/// [`optimize`] call — all bisection probes and the adaptive guard-band
/// retry. Holding the instance (rather than rebuilding per solve) is what
/// lets the IPM's direct backend reuse its cached symbolic factorization
/// across probes (`set_tau` only moves a bound, never the sparsity
/// pattern) and lets both solvers warm-start each probe from the previous
/// probe's optimum.
struct SolverDriver {
    kind: DriverKind,
    warm_start: bool,
    /// Whether warm-start vectors from a previous solve are loaded.
    primed: bool,
    /// Solves that began from a previous probe's solution.
    warm_hits: u64,
}

enum DriverKind {
    Ipm(IpmSolver),
    Admm(AdmmSolver),
}

impl SolverDriver {
    fn new(kind: &SolverKind, warm_start: bool) -> Self {
        let kind = match kind {
            SolverKind::Ipm(st) => {
                let mut st = st.clone();
                if let Some(b) = std::env::var("DME_QP_BACKEND")
                    .ok()
                    .and_then(|v| parse_backend(&v))
                {
                    st.backend = b;
                }
                DriverKind::Ipm(IpmSolver::new(st))
            }
            SolverKind::Admm(st) => DriverKind::Admm(AdmmSolver::new(st.clone())),
        };
        Self {
            kind,
            warm_start,
            primed: false,
            warm_hits: 0,
        }
    }

    fn solve(&mut self, qp: &QuadProgram) -> Result<Solution, dme_qp::SolveError> {
        let _span = dme_obs::span("solve");
        dme_obs::counter_add("qp/solves", 1);
        let warm = self.warm_start && self.primed;
        if warm {
            self.warm_hits += 1;
        }
        let sol = match &mut self.kind {
            DriverKind::Ipm(solver) => {
                if dme_obs::enabled() {
                    solver.solve_observed(qp, &mut ObsSolverObserver)
                } else {
                    solver.solve(qp)
                }
            }
            DriverKind::Admm(solver) => {
                dme_obs::counter_add("qp/backend_admm", 1);
                solver.solve(qp)
            }
        }?;
        if self.warm_start {
            // Seed the next probe from this optimum. Bisection only moves
            // the τ bound, so the previous central path is a good start.
            match &mut self.kind {
                DriverKind::Ipm(s) => {
                    s.warm_start(sol.x.clone(), sol.y.clone());
                }
                DriverKind::Admm(s) => {
                    s.warm_start(sol.x.clone(), sol.y.clone());
                }
            }
            self.primed = true;
        }
        Ok(sol)
    }
}

/// Optimization objective, matching the paper's two problem statements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize total leakage subject to `T ≤ τ` (the QP of Sections
    /// III-A.1 / III-B.1). `tau_ns = None` uses the nominal MCT shrunk by
    /// the configured timing margin (so that snapping cannot push the
    /// golden MCT past nominal).
    MinLeakage {
        /// Explicit clock-period bound, ns.
        tau_ns: Option<f64>,
    },
    /// Minimize the clock period subject to `ΔLeakage ≤ ξ` (the QCP of
    /// Sections III-A.2 / III-B.2), solved by bisection over the QP.
    MinTiming {
        /// Leakage-increase budget ξ, µW (0 = "no leakage increase").
        xi_uw: f64,
    },
}

/// DMopt configuration. Defaults follow the paper's experimental setup:
/// 5×5 µm² grids, ±5% correction range, smoothness δ = 2, dose
/// sensitivity −2 nm/%, 0.5% characterization steps.
#[derive(Debug, Clone)]
pub struct DmoptConfig {
    /// Layer selection (poly only, or poly + active).
    pub layers: Layers,
    /// Objective (leakage under timing, or timing under leakage).
    pub objective: Objective,
    /// Grid granularity `G`, µm.
    pub grid_g_um: f64,
    /// Dose correction lower bound, %.
    pub dose_lo_pct: f64,
    /// Dose correction upper bound, %.
    pub dose_hi_pct: f64,
    /// Smoothness bound δ, %.
    pub smoothness_pct: f64,
    /// Dose sensitivity.
    pub sensitivity: DoseSensitivity,
    /// Characterized-library dose step for snapping, %.
    pub snap_step_pct: f64,
    /// Fraction of the nominal MCT reserved as timing margin when
    /// `MinLeakage` runs with the default τ. The margin guard-bands the
    /// surrogate-to-golden miscorrelation (slew propagation and snapping,
    /// both outside the paper's linear delay model). `0.0` (the default)
    /// enables the *adaptive* guard band: solve at τ = nominal, measure
    /// the golden gap, and re-solve once with exactly that margin if
    /// signoff regressed — so coarse grids (whose optimum is ≈ zero dose)
    /// are not forced into a leakage-costing uniform speedup.
    pub timing_margin_frac: f64,
    /// Enable the timing-constraint pruning extension.
    pub prune: bool,
    /// Enforce hold timing with this extra margin (ns): every flip-flop
    /// data pin's earliest arrival must clear its hold requirement plus
    /// the margin under the optimized dose map. `None` disables the
    /// constraint (the paper's setting). Incompatible with `prune`.
    pub hold_margin_ns: Option<f64>,
    /// Solver backend and settings.
    pub solver: SolverKind,
    /// Bisection convergence tolerance as a fraction of the nominal MCT.
    pub bisect_tol_frac: f64,
    /// Warm-start each QP solve (bisection probes, guard-band retry) from
    /// the previous solve's primal/dual optimum. On by default; disable to
    /// reproduce fully independent cold solves.
    pub warm_start: bool,
}

impl Default for DmoptConfig {
    fn default() -> Self {
        Self {
            layers: Layers::PolyOnly,
            objective: Objective::MinLeakage { tau_ns: None },
            grid_g_um: 5.0,
            dose_lo_pct: -5.0,
            dose_hi_pct: 5.0,
            smoothness_pct: 2.0,
            sensitivity: DoseSensitivity::default(),
            snap_step_pct: 0.5,
            timing_margin_frac: 0.0,
            prune: false,
            hold_margin_ns: None,
            solver: SolverKind::default(),
            bisect_tol_frac: 0.002,
            warm_start: true,
        }
    }
}

/// Result of a DMopt run.
#[derive(Debug, Clone)]
pub struct DmoptResult {
    /// Optimized poly-layer dose map (snapped to library steps).
    pub poly_map: DoseMap,
    /// Optimized active-layer dose map when both layers are modulated.
    pub active_map: Option<DoseMap>,
    /// The per-instance geometry deltas the maps induce.
    pub assignment: GeometryAssignment,
    /// Golden summary before optimization.
    pub golden_before: GoldenSummary,
    /// Golden summary after optimization (post-snap signoff).
    pub golden_after: GoldenSummary,
    /// Surrogate ΔLeakage at the solver optimum, µW.
    pub surrogate_delta_leakage_uw: f64,
    /// For `MinTiming`: the bisected optimal τ, ns.
    pub solved_t_ns: Option<f64>,
    /// Total ADMM iterations across all probes.
    pub iterations: usize,
    /// Number of QP solves (1 for `MinLeakage`).
    pub probes: usize,
    /// Instances that kept arrival variables.
    pub num_kept: usize,
    /// QP variable count.
    pub num_vars: usize,
    /// QP constraint count.
    pub num_constraints: usize,
    /// Wall-clock optimization time (formulation + solves + signoff).
    pub runtime: Duration,
}

/// Surrogate (linearized) MCT under uniform dose deltas — used to bound
/// the QCP bisection bracket from below (`d = U` minimizes every gate
/// delay, hence the achievable clock period).
pub fn surrogate_mct(ctx: &OptContext<'_>, dp_pct: f64, da_pct: f64, ds: f64) -> f64 {
    let nl = &ctx.design.netlist;
    let n = nl.num_instances();
    let order = nl.topo_order().expect("acyclic netlist");
    let mut arrival = vec![0.0f64; n];
    let gate = |i: usize| {
        (ctx.nominal.gate_delay_ns[i] + ctx.ap[i] * ds * dp_pct + ctx.bp[i] * ds * da_pct).max(0.0)
    };
    for &id in &order {
        let i = id.0 as usize;
        let inst = nl.instance(id);
        if inst.is_sequential {
            arrival[i] = gate(i);
            continue;
        }
        let mut arr = 0.0f64;
        for &net in &inst.inputs {
            let wire = ctx.nominal.wire_delay_ns[net.0 as usize];
            match nl.net(net).driver {
                Some(drv) => arr = arr.max(arrival[drv.0 as usize] + wire),
                None => arr = arr.max(wire),
            }
        }
        arrival[i] = arr + gate(i);
    }
    let mut mct = 0.0f64;
    for id in nl.inst_ids() {
        let inst = nl.instance(id);
        if inst.is_sequential {
            let data = inst.inputs[0];
            if let Some(drv) = nl.net(data).driver {
                mct = mct.max(
                    arrival[drv.0 as usize]
                        + ctx.nominal.wire_delay_ns[data.0 as usize]
                        + ctx.setup_ns[id.0 as usize],
                );
            }
        }
    }
    for &po in &nl.primary_outputs {
        if let Some(drv) = nl.net(po).driver {
            mct = mct.max(arrival[drv.0 as usize]);
        }
    }
    mct
}

/// Runs DMopt: build the formulation, solve it (bisecting for the QCP),
/// snap the dose maps to characterized library steps, and sign off with
/// golden analysis.
///
/// # Errors
///
/// Returns [`DmoptError::Config`] for invalid parameters,
/// [`DmoptError::Infeasible`] when no dose map satisfies the constraints,
/// and [`DmoptError::Solver`] on numerical failure.
pub fn optimize(ctx: &OptContext<'_>, cfg: &DmoptConfig) -> Result<DmoptResult, DmoptError> {
    let _span = dme_obs::span("dmopt");
    let t0 = Instant::now();
    if cfg.dose_lo_pct > cfg.dose_hi_pct {
        return Err(DmoptError::Config("dose_lo_pct > dose_hi_pct".into()));
    }
    if cfg.grid_g_um <= 0.0 || cfg.smoothness_pct < 0.0 || cfg.snap_step_pct <= 0.0 {
        return Err(DmoptError::Config(
            "non-positive grid/smoothness/step".into(),
        ));
    }
    if cfg.hold_margin_ns.is_some() && cfg.prune {
        return Err(DmoptError::Config(
            "hold constraints are incompatible with pruning".into(),
        ));
    }
    let ds = cfg.sensitivity.0;
    let placement = ctx.placement;
    let grid = DoseGrid::with_granularity(placement.die_w_um, placement.die_h_um, cfg.grid_g_um);
    let nominal_mct = ctx.nominal.mct_ns;

    // τ settings per objective.
    let active = cfg.layers == Layers::PolyAndActive;
    let adaptive_margin = matches!(cfg.objective, Objective::MinLeakage { tau_ns: None })
        && cfg.timing_margin_frac == 0.0;
    let (tau_init, tau_ref) = match cfg.objective {
        Objective::MinLeakage { tau_ns } => {
            let tau = tau_ns.unwrap_or(nominal_mct * (1.0 - cfg.timing_margin_frac));
            (tau, tau)
        }
        Objective::MinTiming { .. } => {
            let lo = surrogate_mct(
                ctx,
                cfg.dose_hi_pct,
                if active { cfg.dose_hi_pct } else { 0.0 },
                ds,
            );
            (nominal_mct, lo)
        }
    };

    // Elastic penalty for QCP probes: violating τ by 0.1% of the nominal
    // MCT must cost more than the whole achievable leakage swing.
    let leak_swing_nw: f64 = (0..ctx.num_instances())
        .map(|i| (ctx.beta[i] * ds).abs() * (cfg.dose_hi_pct - cfg.dose_lo_pct))
        .sum();
    let elastic_weight = match cfg.objective {
        Objective::MinTiming { .. } => Some(1e3 * leak_swing_nw.max(1.0) / nominal_mct),
        Objective::MinLeakage { .. } => None,
    };
    let params = FormulationParams {
        layers: cfg.layers,
        lo_pct: cfg.dose_lo_pct,
        hi_pct: cfg.dose_hi_pct,
        delta_pct: cfg.smoothness_pct,
        sensitivity: cfg.sensitivity,
        tau_ns: tau_init,
        prune: cfg.prune,
        tau_ref_ns: tau_ref,
        elastic_weight,
        hold_margin_ns: cfg.hold_margin_ns,
    };
    let mut form = {
        let _s = dme_obs::span("formulate");
        Formulation::build(ctx, &grid, &params)
    };
    let num_vars = form.qp.num_vars();
    let num_constraints = form.qp.num_constraints();
    let num_kept = form.num_kept;

    let mut iterations = 0usize;
    let mut probes = 0usize;
    let mut driver = SolverDriver::new(&cfg.solver, cfg.warm_start);
    fn solve_min_leakage(
        driver: &mut SolverDriver,
        form: &mut Formulation,
        tau: f64,
        nominal_mct: f64,
        iterations: &mut usize,
        probes: &mut usize,
    ) -> Result<Solution, DmoptError> {
        form.set_tau(tau);
        let sol = driver.solve(&form.qp)?;
        *iterations += sol.iterations;
        *probes += 1;
        match sol.status {
            SolveStatus::PrimalInfeasible => Err(DmoptError::Infeasible(format!(
                "no dose map meets T ≤ {tau:.4} ns"
            ))),
            SolveStatus::MaxIterations if form.qp.max_violation(&sol.x) > 1e-3 * nominal_mct => {
                Err(DmoptError::Solver(dme_qp::SolveError::Numerical(format!(
                    "QP did not converge: violation {:.3e}",
                    form.qp.max_violation(&sol.x)
                ))))
            }
            _ => Ok(sol),
        }
    }
    let (solution, solved_t): (Solution, Option<f64>) = match cfg.objective {
        Objective::MinLeakage { .. } => (
            solve_min_leakage(
                &mut driver,
                &mut form,
                tau_init,
                nominal_mct,
                &mut iterations,
                &mut probes,
            )?,
            None,
        ),
        Objective::MinTiming { xi_uw } => {
            let xi_nw = xi_uw * 1000.0;
            let leak_scale_nw = (ctx.nominal.total_leakage_uw * 1000.0).abs().max(1.0);
            let tol_nw = 1e-3 * leak_scale_nw;
            let tol_t = cfg.bisect_tol_frac * nominal_mct;
            let driver = &mut driver;
            let result = bisect_min(tau_ref, nominal_mct, tol_t, |tau| {
                form.set_tau(tau);
                let warm = driver.warm_start && driver.primed;
                let sol = driver.solve(&form.qp)?;
                iterations += sol.iterations;
                probes += 1;
                // Elastic probe: τ is achievable iff the elastic violation
                // collapses and the leakage part of the objective meets ξ.
                let feasible = form.elastic_violation(&sol.x) <= 1e-4 * nominal_mct
                    && form.leakage_objective(&sol.x) <= xi_nw + tol_nw
                    && form.qp.max_violation(&sol.x) <= 1e-3 * nominal_mct;
                if dme_obs::enabled() {
                    dme_obs::record(
                        "qcp_probe",
                        &[
                            ("probe", probes as f64),
                            ("tau_ns", tau),
                            ("feasible", if feasible { 1.0 } else { 0.0 }),
                            ("iterations", sol.iterations as f64),
                            ("warm", if warm { 1.0 } else { 0.0 }),
                        ],
                    );
                }
                if feasible {
                    Ok(Probe::Feasible(sol))
                } else {
                    Ok(Probe::Infeasible)
                }
            })
            .map_err(|e| match e {
                dme_qp::SolveError::Numerical(msg) if msg.contains("upper bound") => {
                    DmoptError::Infeasible(format!(
                        "leakage budget ξ = {xi_uw} µW is infeasible even at nominal timing"
                    ))
                }
                other => DmoptError::Solver(other),
            })?;
            let t = result.t;
            (result.witness, Some(t))
        }
    };

    // --- extract, snap, apply (golden signoff) ---
    let extract = |form: &Formulation, x: &[f64]| {
        let _s = dme_obs::span("snap_signoff");
        let mut poly_map = DoseMap::from_values(grid, form.poly_doses(x));
        poly_map.snap_to_step(cfg.snap_step_pct);
        let active_map = if active {
            let mut m = DoseMap::from_values(grid, form.active_doses(x));
            m.snap_to_step(cfg.snap_step_pct);
            Some(m)
        } else {
            None
        };
        debug_assert!(poly_map
            .check(
                cfg.dose_lo_pct,
                cfg.dose_hi_pct,
                cfg.smoothness_pct + cfg.snap_step_pct
            )
            .is_ok());
        let n = ctx.num_instances();
        let mut assignment = GeometryAssignment::nominal(n);
        for i in 0..n {
            let g = form.grid_of_inst[i];
            assignment.dl_nm[i] = ds * poly_map.dose_pct[g];
            if let Some(am) = &active_map {
                assignment.dw_nm[i] = ds * am.dose_pct[g];
            }
        }
        let after = analyze(ctx.lib, &ctx.design.netlist, placement, &assignment);
        (poly_map, active_map, assignment, after)
    };
    let (mut poly_map, mut active_map, mut assignment, mut after) = extract(&form, &solution.x);

    // Adaptive guard band: if signoff regressed past nominal (slew
    // propagation and snapping sit outside the linear surrogate), re-solve
    // once with τ tightened by the measured golden gap. Coarse grids whose
    // optimum is near-zero dose show no gap and skip the second pass.
    if adaptive_margin {
        let gap = (after.mct_ns - nominal_mct) / nominal_mct;
        if gap > 1e-3 {
            let tau2 = nominal_mct * (1.0 - gap - 0.002);
            let retry = solve_min_leakage(
                &mut driver,
                &mut form,
                tau2,
                nominal_mct,
                &mut iterations,
                &mut probes,
            )?;
            (poly_map, active_map, assignment, after) = extract(&form, &retry.x);
        }
    }
    let surrogate_delta_leakage_uw = ctx.surrogate_leakage_delta_nw(&assignment) / 1000.0;
    dme_obs::counter_add("dmopt/qp_probes", probes as u64);
    dme_obs::counter_add("dmopt/solver_iterations", iterations as u64);
    dme_obs::counter_add("dmopt/warm_start_hits", driver.warm_hits);
    if dme_obs::enabled() {
        let before = ctx.nominal_summary();
        dme_obs::set_qor("dmopt/mct_ns", after.mct_ns);
        dme_obs::set_qor("dmopt/leakage_uw", after.total_leakage_uw);
        dme_obs::set_qor(
            "dmopt/delta_leakage_uw",
            after.total_leakage_uw - before.leakage_uw,
        );
        dme_obs::set_qor("dmopt/achieved_t_ns", solved_t.unwrap_or(after.mct_ns));
    }

    Ok(DmoptResult {
        poly_map,
        active_map,
        assignment,
        golden_before: ctx.nominal_summary(),
        golden_after: GoldenSummary::from_report(&after),
        surrogate_delta_leakage_uw,
        solved_t_ns: solved_t,
        iterations,
        probes,
        num_kept,
        num_vars,
        num_constraints,
        runtime: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles, Design};
    use dme_placement::Placement;
    use dme_sta::analyze;

    fn setup() -> (Library, Design, Placement) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        (lib, d, p)
    }

    #[test]
    fn qp_reduces_leakage_without_hurting_timing() {
        let (lib, d, p) = setup();
        let ctx = OptContext::new(&lib, &d, &p);
        // Pin τ to the nominal MCT: pure leakage recovery (the default
        // margin would instead demand a speedup, which costs leakage on a
        // design this small where everything is near-critical).
        let cfg = DmoptConfig {
            grid_g_um: 5.0,
            objective: Objective::MinLeakage {
                tau_ns: Some(ctx.nominal.mct_ns),
            },
            ..DmoptConfig::default()
        };
        let r = optimize(&ctx, &cfg).expect("optimize");
        assert!(
            r.golden_after.leakage_uw < r.golden_before.leakage_uw,
            "leakage {} -> {}",
            r.golden_before.leakage_uw,
            r.golden_after.leakage_uw
        );
        assert!(
            r.golden_after.mct_ns <= r.golden_before.mct_ns * 1.01,
            "MCT {} -> {}",
            r.golden_before.mct_ns,
            r.golden_after.mct_ns
        );
        // Constraints hold on the snapped map.
        r.poly_map
            .check(-5.0, 5.0, 2.0 + 0.5)
            .expect("map constraints");
    }

    #[test]
    fn qcp_improves_timing_without_leakage_increase() {
        let (lib, d, p) = setup();
        let ctx = OptContext::new(&lib, &d, &p);
        let cfg = DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 5.0,
            ..DmoptConfig::default()
        };
        let r = optimize(&ctx, &cfg).expect("optimize");
        assert!(r.solved_t_ns.is_some());
        assert!(r.probes > 2, "bisection should probe repeatedly");
        assert!(
            r.golden_after.mct_ns < r.golden_before.mct_ns,
            "MCT {} -> {}",
            r.golden_before.mct_ns,
            r.golden_after.mct_ns
        );
        // Leakage stays near nominal (ξ = 0 plus snap noise).
        assert!(
            r.golden_after.leakage_uw <= r.golden_before.leakage_uw * 1.05,
            "leakage {} -> {}",
            r.golden_before.leakage_uw,
            r.golden_after.leakage_uw
        );
    }

    #[test]
    fn finer_grids_do_no_worse() {
        let (lib, d, p) = setup();
        let ctx = OptContext::new(&lib, &d, &p);
        let coarse = optimize(
            &ctx,
            &DmoptConfig {
                grid_g_um: 12.0,
                ..DmoptConfig::default()
            },
        )
        .unwrap();
        let fine = optimize(
            &ctx,
            &DmoptConfig {
                grid_g_um: 4.0,
                ..DmoptConfig::default()
            },
        )
        .unwrap();
        // The paper's central granularity observation, allowing solver and
        // snapping noise.
        assert!(
            fine.golden_after.leakage_uw <= coarse.golden_after.leakage_uw * 1.02,
            "fine {} vs coarse {}",
            fine.golden_after.leakage_uw,
            coarse.golden_after.leakage_uw
        );
    }

    #[test]
    fn pruned_and_full_formulations_agree() {
        let (lib, d, p) = setup();
        let ctx = OptContext::new(&lib, &d, &p);
        // Pruning needs headroom between τ_ref and the nominal paths: its
        // conservative producer bounds absorb exactly that slack. Give the
        // ablation a 2% relaxed clock so both formulations have room.
        let obj = Objective::MinLeakage {
            tau_ns: Some(ctx.nominal.mct_ns * 1.02),
        };
        let full = optimize(
            &ctx,
            &DmoptConfig {
                grid_g_um: 6.0,
                objective: obj,
                ..DmoptConfig::default()
            },
        )
        .unwrap();
        let pruned = optimize(
            &ctx,
            &DmoptConfig {
                grid_g_um: 6.0,
                objective: obj,
                prune: true,
                ..DmoptConfig::default()
            },
        )
        .unwrap();
        assert!(pruned.num_kept < full.num_kept);
        // Pruning is conservative (edges through pruned producers use a
        // worst-case arrival bound), so it may leave some leakage on the
        // table — but must remain sound and capture most of the benefit.
        assert!(
            pruned.golden_after.leakage_uw >= full.golden_after.leakage_uw - 1e-9,
            "pruned cannot beat the full formulation"
        );
        let full_gain = full.golden_before.leakage_uw - full.golden_after.leakage_uw;
        let pruned_gain = full.golden_before.leakage_uw - pruned.golden_after.leakage_uw;
        assert!(full_gain > 0.0, "full QP must recover some leakage");
        assert!(
            pruned_gain > 0.3 * full_gain,
            "pruned gain {pruned_gain} vs full gain {full_gain}"
        );
        assert!(pruned.golden_after.mct_ns <= full.golden_before.mct_ns * 1.04);
    }

    #[test]
    fn surrogate_mct_matches_golden_at_zero_dose() {
        let (lib, d, p) = setup();
        let ctx = OptContext::new(&lib, &d, &p);
        let m = surrogate_mct(&ctx, 0.0, 0.0, -2.0);
        assert!((m - ctx.nominal.mct_ns).abs() < 1e-9);
        // Max dose strictly reduces the surrogate MCT.
        assert!(surrogate_mct(&ctx, 5.0, 0.0, -2.0) < m);
    }

    #[test]
    fn hold_constraint_limits_speedup() {
        let (lib, d, p) = setup();
        let ctx = OptContext::new(&lib, &d, &p);
        let nominal_hold = ctx.nominal.worst_hold_slack_ns;
        assert!(nominal_hold.is_finite() && nominal_hold > 0.0);
        // Unconstrained QCP is free to tighten the hold corner.
        let free = optimize(
            &ctx,
            &DmoptConfig {
                objective: Objective::MinTiming {
                    xi_uw: f64::INFINITY,
                },
                grid_g_um: 5.0,
                ..DmoptConfig::default()
            },
        )
        .expect("free QCP");
        let free_hold = analyze(&lib, &d.netlist, &p, &free.assignment).worst_hold_slack_ns;
        // Demand the nominal hold headroom be (almost) preserved.
        let margin = nominal_hold * 0.95;
        let held = optimize(
            &ctx,
            &DmoptConfig {
                objective: Objective::MinTiming {
                    xi_uw: f64::INFINITY,
                },
                grid_g_um: 5.0,
                hold_margin_ns: Some(margin),
                ..DmoptConfig::default()
            },
        )
        .expect("held QCP");
        let held_hold = analyze(&lib, &d.netlist, &p, &held.assignment).worst_hold_slack_ns;
        // The constrained run keeps meaningfully more early-path headroom
        // than the free run whenever the free run ate into it (snap noise
        // allowed).
        assert!(
            held_hold >= free_hold - 1e-9,
            "hold-constrained run lost more headroom: {held_hold} vs {free_hold}"
        );
        assert!(
            held_hold >= margin - 0.15 * nominal_hold,
            "hold margin missed: {held_hold} vs requested {margin}"
        );
        // Setup timing must still improve.
        assert!(held.golden_after.mct_ns < held.golden_before.mct_ns);
    }

    #[test]
    fn warm_started_bisection_matches_cold_within_tolerance() {
        let (lib, d, p) = setup();
        let ctx = OptContext::new(&lib, &d, &p);
        let base = DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 5.0,
            ..DmoptConfig::default()
        };
        let cold = optimize(
            &ctx,
            &DmoptConfig {
                warm_start: false,
                ..base.clone()
            },
        )
        .expect("cold");
        let warm = optimize(&ctx, &base).expect("warm");
        // Warm starting changes the solver's path, not the answer. The QP
        // optimum is not unique in dose cells that carry no objective
        // weight, so individual cells may quantize a library step or two
        // away (the basic path-following strategy, forced by the CI
        // DME_QP_IPM=basic leg, wanders further in degenerate cells than
        // Mehrotra does) — the signed-off QoR below is the real gate.
        assert_eq!(cold.poly_map.dose_pct.len(), warm.poly_map.dose_pct.len());
        let step = base.snap_step_pct;
        for (i, (c, w)) in cold
            .poly_map
            .dose_pct
            .iter()
            .zip(&warm.poly_map.dose_pct)
            .enumerate()
        {
            assert!(
                (c - w).abs() <= 2.0 * step + 1e-12,
                "grid cell {i}: cold {c} vs warm {w}"
            );
        }
        assert_eq!(cold.probes, warm.probes, "same bisection trajectory");
        let t_cold = cold.solved_t_ns.expect("cold tau");
        let t_warm = warm.solved_t_ns.expect("warm tau");
        // Probes near the feasibility threshold are marginal — the elastic
        // violation sits at its classification cutoff, so the different
        // interior paths (cold runs the Mehrotra starting-point heuristic
        // every probe, warm seeds from the previous witness) may flip one
        // late probe. Bisection still guarantees each tau within tol_t of
        // the true threshold, so the two agree to two bracket widths.
        let tol_t = base.bisect_tol_frac * cold.golden_before.mct_ns;
        assert!(
            (t_cold - t_warm).abs() <= 2.0 * tol_t + 1e-12,
            "bisected tau: cold {t_cold} vs warm {t_warm} (tol {tol_t})"
        );
        // The signed-off MCT tracks the bisected tau (two bracket widths
        // apart above, ~0.4%) plus up to one snap step's quantization in a
        // critical-path cell, so the QoR tolerance must cover both.
        assert!(
            (cold.golden_after.mct_ns - warm.golden_after.mct_ns).abs()
                <= 5e-3 * cold.golden_after.mct_ns,
            "mct: cold {} vs warm {}",
            cold.golden_after.mct_ns,
            warm.golden_after.mct_ns
        );
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {} total IPM iterations",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn direct_and_cg_backends_agree_on_golden_signoff() {
        let (lib, d, p) = setup();
        let ctx = OptContext::new(&lib, &d, &p);
        let run = |backend| {
            let cfg = DmoptConfig {
                grid_g_um: 5.0,
                objective: Objective::MinLeakage {
                    tau_ns: Some(ctx.nominal.mct_ns),
                },
                solver: SolverKind::Ipm(IpmSettings {
                    backend,
                    ..IpmSettings::default()
                }),
                ..DmoptConfig::default()
            };
            optimize(&ctx, &cfg).expect("optimize")
        };
        let cg = run(NewtonBackend::Cg);
        let direct = run(NewtonBackend::Direct);
        assert!(
            (cg.golden_after.leakage_uw - direct.golden_after.leakage_uw).abs()
                <= 1e-3 * cg.golden_after.leakage_uw.abs().max(1.0),
            "leakage: cg {} vs direct {}",
            cg.golden_after.leakage_uw,
            direct.golden_after.leakage_uw
        );
        assert!(
            (cg.golden_after.mct_ns - direct.golden_after.mct_ns).abs()
                <= 1e-3 * cg.golden_after.mct_ns,
            "mct: cg {} vs direct {}",
            cg.golden_after.mct_ns,
            direct.golden_after.mct_ns
        );
    }

    #[test]
    fn backend_override_parses_known_values_only() {
        assert!(matches!(
            parse_backend("direct"),
            Some(NewtonBackend::Direct)
        ));
        assert!(matches!(parse_backend("CG"), Some(NewtonBackend::Cg)));
        assert!(matches!(parse_backend("Auto"), Some(NewtonBackend::Auto)));
        assert!(parse_backend("fancy").is_none());
        assert!(parse_backend("").is_none());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (lib, d, p) = setup();
        let ctx = OptContext::new(&lib, &d, &p);
        let cfg = DmoptConfig {
            grid_g_um: -1.0,
            ..DmoptConfig::default()
        };
        assert!(matches!(optimize(&ctx, &cfg), Err(DmoptError::Config(_))));
        let cfg = DmoptConfig {
            dose_lo_pct: 5.0,
            dose_hi_pct: -5.0,
            ..DmoptConfig::default()
        };
        assert!(matches!(optimize(&ctx, &cfg), Err(DmoptError::Config(_))));
        let cfg = DmoptConfig {
            prune: true,
            hold_margin_ns: Some(0.01),
            ..DmoptConfig::default()
        };
        assert!(matches!(optimize(&ctx, &cfg), Err(DmoptError::Config(_))));
    }
}
