//! Error types for dose-map optimization.

use std::error::Error;
use std::fmt;

/// Errors returned by [`optimize`](crate::optimize) and the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum DmoptError {
    /// The underlying convex solve failed.
    Solver(dme_qp::SolveError),
    /// The formulation was infeasible (e.g. the leakage bound ξ cannot be
    /// met at any dose).
    Infeasible(String),
    /// A configuration parameter is invalid.
    Config(String),
}

impl fmt::Display for DmoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmoptError::Solver(e) => write!(f, "solver failure: {e}"),
            DmoptError::Infeasible(msg) => write!(f, "infeasible formulation: {msg}"),
            DmoptError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for DmoptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DmoptError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dme_qp::SolveError> for DmoptError {
    fn from(e: dme_qp::SolveError) -> Self {
        DmoptError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DmoptError::from(dme_qp::SolveError::Numerical("x".into()));
        assert!(e.to_string().contains("solver failure"));
        assert!(e.source().is_some());
        assert!(DmoptError::Config("bad".into()).source().is_none());
    }
}
