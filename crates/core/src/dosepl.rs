//! dosePl: dose-map-aware placement by cell swapping (Algorithm 1).
//!
//! Given a timing/leakage-optimized dose map, critical cells are swapped
//! into higher-dose grid regions (where gates print shorter and switch
//! faster) and non-critical cells take their place. Candidate swaps are
//! filtered exactly as in the paper's Appendix: both cells must lie in
//! each other's *neighborhood bounding boxes* (Fig. 9), be within a
//! distance threshold proportional to the average gate pitch, not
//! increase the estimated HPWL of their incident nets beyond a fraction
//! γ₃, and not increase their combined leakage beyond a fraction γ₄.
//! After each round the perturbed rows are re-legalized (the ECO step)
//! and golden timing decides accept-or-rollback; rolled-back cells are
//! frozen for subsequent rounds.
//!
//! # Swap engines
//!
//! Two interchangeable engines ([`SwapEngine`]) drive the candidate
//! loop; they make bitwise-identical decisions and return
//! bitwise-identical results, differing only in per-candidate cost:
//!
//! - [`SwapEngine::Delta`] (the default) is O(Δ) per candidate: a
//!   [`PlacementDelta`] coordinate journal undoes rejected swaps by
//!   replay instead of restoring O(n) vector clones, an
//!   [`AssignmentDelta`] re-derives ΔL/ΔW only for the journal-touched
//!   instances instead of rebuilding the whole [`GeometryAssignment`],
//!   a [`NetBoxCache`] answers the γ₃ HPWL filter from cached per-net
//!   extremes instead of re-walking every incident pin, and candidate
//!   grids come from a banded rectangular range query
//!   (`DoseGrid::cells_in_rect`) instead of a full-grid scan.
//! - [`SwapEngine::Reference`] is the from-scratch baseline kept for
//!   verification and as the proptest oracle.
//!
//! Round startup is O(K), not O(n), under the delta engine: the top-K
//! critical paths come straight from the incremental timer's lazy
//! endpoint heap ([`PathEnum::Incremental`], heap pops + K backtraces —
//! no full-design `analyze`, no full endpoint sort), the criticality
//! scratch is epoch-stamped and CSR-compiled instead of reallocated,
//! and the cell → dose-grid index persists across rounds, synced from
//! the placement journal like `RowIndex`. [`PathEnum::Full`]
//! (`DME_DOSEPL_ENUM=full`) keeps the full walk as the costed oracle;
//! both modes make bitwise-identical decisions.

use crate::context::{GoldenSummary, OptContext};
use crate::gridindex::GridIndex;
use dme_dosemap::DoseMap;
use dme_liberty::Library;
use dme_netlist::{InstId, Netlist};
use dme_placement::{NetBoxCache, NetPins, Placement, PlacementDelta, RowIndex};
use dme_sta::{
    analyze, worst_paths_per_endpoint_k, worst_paths_top_k, AssignmentDelta, GeometryAssignment,
    IncrementalSta, TimingPath,
};

/// Selects the candidate-loop implementation (see module docs). Both
/// engines are bitwise-equivalent; `Reference` exists as the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapEngine {
    /// Resolve from the `DME_DOSEPL_ENGINE` environment variable
    /// (`"reference"` selects [`SwapEngine::Reference`]); otherwise use
    /// [`SwapEngine::Delta`].
    #[default]
    Auto,
    /// The O(Δ)-per-candidate engine (journaled undo, incremental
    /// assignment, cached net boxes, banded grid queries).
    Delta,
    /// The from-scratch engine (full clones, rebuilds and scans).
    Reference,
}

impl SwapEngine {
    /// Whether the O(Δ) engine should run.
    fn use_delta(self) -> bool {
        match self {
            SwapEngine::Delta => true,
            SwapEngine::Reference => false,
            SwapEngine::Auto => {
                std::env::var("DME_DOSEPL_ENGINE").map_or(true, |v| v != "reference")
            }
        }
    }
}

/// Selects how each round's top-K critical paths are enumerated. Both
/// modes produce bitwise-identical path sets, order, and therefore
/// identical swap decisions; they differ only in round-startup cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathEnum {
    /// Resolve from the `DME_DOSEPL_ENUM` environment variable
    /// (`"full"` selects [`PathEnum::Full`]); otherwise use
    /// [`PathEnum::Incremental`].
    #[default]
    Auto,
    /// O(K·depth + pops) enumeration straight from the incremental
    /// timer's per-endpoint contribution heap — no full-design
    /// `analyze`, no full endpoint sort. Requires the
    /// [`SwapEngine::Delta`] engine; under [`SwapEngine::Reference`]
    /// the full walk runs regardless.
    Incremental,
    /// Full `analyze` plus the endpoint walk at every round start —
    /// the costed oracle the incremental mode is checked against (a CI
    /// leg forces this through the dosepl tests).
    Full,
}

impl PathEnum {
    /// Whether the incremental enumerator should run.
    fn use_incremental(self) -> bool {
        match self {
            PathEnum::Incremental => true,
            PathEnum::Full => false,
            PathEnum::Auto => std::env::var("DME_DOSEPL_ENUM").map_or(true, |v| v != "full"),
        }
    }
}

/// Tuning knobs of the swapping heuristic (γ-parameters of the paper).
#[derive(Debug, Clone)]
pub struct DoseplConfig {
    /// Number of critical paths examined per round (the paper uses
    /// K = 10 000).
    pub top_k: usize,
    /// Number of swap rounds (the paper uses 10).
    pub rounds: usize,
    /// γ₁: maximum cells swapped per critical path.
    pub max_swapped_per_path: usize,
    /// γ₂: maximum swap distance, in multiples of the average gate pitch.
    pub max_distance_pitches: f64,
    /// γ₃: maximum allowed fractional HPWL increase of the incident nets
    /// of a swapped cell.
    pub hpwl_increase_frac: f64,
    /// γ₄: maximum allowed fractional increase of the combined leakage of
    /// a swapped pair.
    pub leak_increase_frac: f64,
    /// γ₅: maximum swaps per round.
    pub swaps_per_round: usize,
    /// Candidate-loop engine (bitwise-equivalent implementations).
    pub engine: SwapEngine,
    /// Round-start path enumeration (bitwise-equivalent modes).
    pub path_enum: PathEnum,
}

impl Default for DoseplConfig {
    fn default() -> Self {
        Self {
            top_k: 10_000,
            rounds: 10,
            max_swapped_per_path: 1,
            max_distance_pitches: 10.0,
            hpwl_increase_frac: 0.2,
            leak_increase_frac: 0.1,
            swaps_per_round: 1,
            engine: SwapEngine::Auto,
            path_enum: PathEnum::Auto,
        }
    }
}

/// Candidate-swap disposition tallies, by the filter that decided them,
/// accumulated across all rounds. The filters run in the order the
/// fields are listed; a candidate is charged to the first filter that
/// rejects it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapFilterTallies {
    /// Candidate lists cut short by the γ₂ distance threshold (one per
    /// cut; the remaining, farther candidates are never examined).
    pub distance_cutoffs: usize,
    /// Rejected because the cells are not in each other's neighborhood
    /// bounding boxes (Fig. 9).
    pub rejected_bbox: usize,
    /// Rejected by the γ₃ HPWL-increase filter.
    pub rejected_hpwl: usize,
    /// Rejected by the γ₄ leakage-increase filter.
    pub rejected_leakage: usize,
    /// Applied but reverted because incremental timing showed no MCT
    /// gain.
    pub rejected_timing: usize,
    /// Passed every filter and improved MCT (provisionally kept; round
    /// signoff may still roll them back).
    pub accepted_provisional: usize,
    /// Provisionally accepted swaps undone by a round-level rollback.
    pub rolled_back: usize,
}

/// Work-avoided telemetry of the O(Δ) engine. All counters are zero
/// when [`SwapEngine::Reference`] ran — the reference engine pays the
/// full from-scratch cost these counters measure the avoidance of.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaEngineStats {
    /// Whether the O(Δ) engine produced this result.
    pub delta_engine: bool,
    /// Per-instance ΔL/ΔW derivations skipped by incremental assignment
    /// maintenance (instances − journal-touched, summed over timed
    /// evaluations; the reference engine rebuilds all of them).
    pub assignment_evals_avoided: u64,
    /// Grid cells never tested against the neighborhood bbox thanks to
    /// the banded range query (grid cells − band, summed over queries).
    pub grid_cell_evals_avoided: u64,
    /// γ₃ net-box queries answered in O(1) from cached extremes.
    pub hpwl_fast_nets: u64,
    /// γ₃ net-box queries that re-walked a net's pins (shrinking-pin
    /// escapes).
    pub hpwl_rescans: u64,
    /// Coordinate writes recorded in the placement journal across timed
    /// evaluations (the undo cost actually paid).
    pub undo_coord_writes: u64,
    /// Coordinate restorations skipped by journal replay relative to the
    /// reference engine's full-vector snapshots (instances − journal
    /// writes, summed over timed evaluations).
    pub undo_evals_avoided: u64,
}

/// Round-start enumeration telemetry, accumulated across all rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumTallies {
    /// MCT-heap entries popped by the lazy top-K selection.
    pub endpoints_popped: u64,
    /// Endpoints actually selected (≤ K per round). Every pop is either
    /// a selection or a stale discard, so `endpoints_popped ==
    /// endpoints_selected + stale_discards`.
    pub endpoints_selected: u64,
    /// Popped heap entries discarded as stale (superseded contributions
    /// or undo-replay duplicates) — the lazy structure's GC.
    pub stale_discards: u64,
    /// Rounds that enumerated via the incremental heap, each skipping
    /// one full-design `analyze` + full endpoint sort.
    pub full_analyze_skipped: u64,
    /// Rounds that paid the full `analyze` + endpoint walk (the costed
    /// oracle path; zero when the incremental enumerator ran).
    pub full_walks: u64,
    /// Rounds that started on reused (epoch-stamped / journal-synced)
    /// scratch instead of fresh O(n) allocations.
    pub scratch_reuse: u64,
}

/// Run-persistent, epoch-stamped scratch for the per-round criticality
/// state. All O(n) arrays are allocated once per dosePl run; a round
/// opens with `begin_round`, which bumps the epoch (invalidating the
/// stamps in O(1)) and resets only the O(K) per-path buffers — round
/// startup does zero O(n) allocation or clearing.
///
/// `paths_of_cell` is a flat CSR over per-round dense slots: the round's
/// distinct critical cells get consecutive slot ids, and one shared
/// index buffer plus offsets replaces the per-cell `Vec<u32>`s the loop
/// used to rebuild every round.
struct RoundScratch {
    epoch: u64,
    /// Cell is critical this round ⇔ `mark[i] == epoch`.
    mark: Vec<u64>,
    /// Eq. (13) weight; valid iff `mark[i] == epoch`.
    weight: Vec<f64>,
    /// Dense per-round slot of a critical cell; valid iff marked.
    slot_of: Vec<u32>,
    /// Number of slots handed out this round (distinct critical cells).
    num_slots: usize,
    /// (slot, path) membership pairs, CSR-compiled by `seal_paths`.
    pairs: Vec<(u32, u32)>,
    csr_start: Vec<u32>,
    csr_items: Vec<u32>,
    /// Per-path dedup scratch (a path counts once per cell).
    path_cells: Vec<InstId>,
    /// Swap count per path index, γ₁-gated.
    swapped_on_path: Vec<usize>,
}

impl RoundScratch {
    fn new(n: usize) -> Self {
        Self {
            epoch: 0,
            mark: vec![0; n],
            weight: vec![0.0; n],
            slot_of: vec![0; n],
            num_slots: 0,
            pairs: Vec::new(),
            csr_start: Vec::new(),
            csr_items: Vec::new(),
            path_cells: Vec::new(),
            swapped_on_path: Vec::new(),
        }
    }

    /// Opens a round: stamps invalidated in O(1), per-path buffers reset
    /// in O(previous round's path volume).
    fn begin_round(&mut self, paths: &[TimingPath]) {
        self.epoch += 1;
        self.num_slots = 0;
        self.pairs.clear();
        self.swapped_on_path.clear();
        self.swapped_on_path.resize(paths.len(), 0);
        for (pi, p) in paths.iter().enumerate() {
            let w = (-p.slack_ns).exp();
            for &c in &p.instances {
                let ci = c.0 as usize;
                if self.mark[ci] != self.epoch {
                    self.mark[ci] = self.epoch;
                    self.weight[ci] = w;
                    self.slot_of[ci] = self.num_slots as u32;
                    self.num_slots += 1;
                } else {
                    self.weight[ci] += w;
                }
            }
            // Deduped membership: a path counts once per cell no matter
            // how often the cell appears on it.
            self.path_cells.clear();
            self.path_cells.extend_from_slice(&p.instances);
            self.path_cells.sort_unstable();
            self.path_cells.dedup();
            for k in 0..self.path_cells.len() {
                let c = self.path_cells[k];
                self.pairs.push((self.slot_of[c.0 as usize], pi as u32));
            }
        }
        // Compile the pairs into CSR form (counting sort by slot; pair
        // order within a slot is path order, matching the per-cell push
        // order of the old Vec-of-Vecs layout).
        self.csr_start.clear();
        self.csr_start.resize(self.num_slots + 1, 0);
        for &(s, _) in &self.pairs {
            self.csr_start[s as usize + 1] += 1;
        }
        for i in 0..self.num_slots {
            self.csr_start[i + 1] += self.csr_start[i];
        }
        self.csr_items.clear();
        self.csr_items.resize(self.pairs.len(), 0);
        let mut cursor: Vec<u32> = self.csr_start.clone();
        for &(s, pi) in &self.pairs {
            let c = &mut cursor[s as usize];
            self.csr_items[*c as usize] = pi;
            *c += 1;
        }
    }

    /// Whether the cell lies on one of this round's top-K paths.
    #[inline]
    fn is_critical(&self, i: usize) -> bool {
        self.mark[i] == self.epoch
    }

    /// Path indices containing the (critical) cell.
    #[inline]
    fn paths_of(&self, i: usize) -> &[u32] {
        debug_assert!(self.is_critical(i));
        let s = self.slot_of[i] as usize;
        &self.csr_items[self.csr_start[s] as usize..self.csr_start[s + 1] as usize]
    }
}

/// Outcome of the dosePl pass.
#[derive(Debug, Clone)]
pub struct DoseplResult {
    /// The (possibly) improved placement.
    pub placement: Placement,
    /// Geometry assignment re-derived at the final cell positions.
    pub assignment: GeometryAssignment,
    /// Golden summary entering dosePl (post-DMopt).
    pub golden_before: GoldenSummary,
    /// Golden summary after the accepted swaps.
    pub golden_after: GoldenSummary,
    /// Swaps attempted across all rounds.
    pub swaps_attempted: usize,
    /// Swaps surviving golden-timing acceptance.
    pub swaps_accepted: usize,
    /// Rounds executed.
    pub rounds_run: usize,
    /// Candidate swaps that reached the incremental timing gate (passed
    /// every heuristic filter and were actually timed).
    pub swap_evals: usize,
    /// Gate evaluations spent by the incremental timer across all swap
    /// evaluations, including state restoration after rejected swaps.
    /// This is the hardware-independent cost of per-swap timing.
    pub incremental_gate_evals: u64,
    /// Gate evaluations the same per-swap timing decisions would have
    /// cost with full re-analysis (one evaluation per instance per
    /// incremental call — late pass only, so the comparison is
    /// conservative).
    pub full_equivalent_gate_evals: u64,
    /// `full_equivalent_gate_evals / incremental_gate_evals` — the work
    /// advantage of cone re-timing over full re-analysis (∞-safe: 0.0
    /// when nothing was timed). Machine-independent, but dependent on
    /// netlist topology and swap acceptance order, so it is reported as
    /// telemetry rather than asserted against a fixed threshold.
    pub incremental_work_ratio: f64,
    /// Per-filter candidate disposition tallies.
    pub filter_tallies: SwapFilterTallies,
    /// Work-avoided telemetry of the O(Δ) engine (zeros under
    /// [`SwapEngine::Reference`]).
    pub delta_stats: DeltaEngineStats,
    /// Round-start enumeration telemetry (mode-dependent; excluded from
    /// the bitwise equivalence contract, like [`DeltaEngineStats`]).
    pub enum_tallies: EnumTallies,
}

/// Re-derives the per-instance geometry assignment from dose maps for an
/// arbitrary placement (cells change grids when they move).
pub fn assignment_for_placement(
    ctx: &OptContext<'_>,
    placement: &Placement,
    poly: &DoseMap,
    active: Option<&DoseMap>,
    ds: f64,
) -> GeometryAssignment {
    let nl = &ctx.design.netlist;
    let n = nl.num_instances();
    let mut a = GeometryAssignment::nominal(n);
    for i in 0..n {
        let (x, y) = placement.center(ctx.lib, nl, InstId(i as u32));
        a.dl_nm[i] = ds * poly.dose_at_um(x, y);
        if let Some(am) = active {
            a.dw_nm[i] = ds * am.dose_at_um(x, y);
        }
    }
    a
}

/// `(after − before) / before`, 0.0 for a degenerate baseline.
fn hpwl_frac(before: f64, after: f64) -> f64 {
    if before <= 1e-12 {
        return 0.0;
    }
    (after - before) / before
}

/// Estimated fractional HPWL change of a cell's incident nets if its
/// center moved to `new_center`, evaluated from scratch: every incident
/// net's box is re-folded over its pins, with `cell`'s pins (identified
/// by ownership, not coordinate) relocated. The reference-engine γ₃
/// filter and the oracle the cached path must match bitwise.
fn hpwl_delta_frac_scratch(
    lib: &Library,
    nl: &Netlist,
    placement: &Placement,
    pins: &NetPins,
    cell: InstId,
    new_center: (f64, f64),
) -> f64 {
    let mut before = 0.0;
    let mut after = 0.0;
    for &net in pins.nets_of(cell) {
        before += pins
            .scratch_bbox(lib, nl, placement, net, None)
            .map_or(0.0, |b| b.half_perimeter());
        after += pins
            .scratch_bbox(lib, nl, placement, net, Some((cell, new_center)))
            .map_or(0.0, |b| b.half_perimeter());
    }
    hpwl_frac(before, after)
}

/// [`hpwl_delta_frac_scratch`] answered from the net-box cache: cached
/// extremes give the before boxes in O(1), and the what-if boxes in
/// O(1) unless the cell holds an extreme alone (then one pin rescan).
fn hpwl_delta_frac_cached(
    cache: &mut NetBoxCache,
    lib: &Library,
    nl: &Netlist,
    placement: &Placement,
    cell: InstId,
    new_center: (f64, f64),
) -> f64 {
    let mut before = 0.0;
    let mut after = 0.0;
    for k in 0..cache.pins().nets_of(cell).len() {
        let net = cache.pins().nets_of(cell)[k];
        let mult = cache.pins().mult_of(cell)[k];
        before += cache.bbox(net).map_or(0.0, |b| b.half_perimeter());
        after += cache
            .bbox_with_moved(lib, nl, placement, net, cell, mult, new_center)
            .map_or(0.0, |b| b.half_perimeter());
    }
    hpwl_frac(before, after)
}

/// Per-engine mutable scratch state of the candidate loop. The `Delta`
/// variant holds the O(Δ) structures; `Reference` only needs the static
/// pin-identity structure for the γ₃ filter.
// One instance exists per dosePl run and it never moves, so the
// variant size asymmetry costs nothing.
#[allow(clippy::large_enum_variant)]
enum SwapScratch {
    Delta {
        pdelta: PlacementDelta,
        adelta: AssignmentDelta,
        cache: NetBoxCache,
        rowindex: RowIndex,
        stats: DeltaEngineStats,
    },
    Reference {
        pins: NetPins,
    },
}

/// Runs the dosePl cell-swapping optimization on top of a DMopt result.
///
/// # Panics
///
/// Panics if the dose maps' grids do not cover the placement die.
pub fn dosepl(
    ctx: &OptContext<'_>,
    poly: &DoseMap,
    active: Option<&DoseMap>,
    ds: f64,
    cfg: &DoseplConfig,
) -> DoseplResult {
    let _span = dme_obs::span("dosepl");
    let nl = &ctx.design.netlist;
    let lib = ctx.lib;
    let tech = lib.tech();
    let n = nl.num_instances();
    let mut placement = ctx.placement.clone();
    let mut assignment = assignment_for_placement(ctx, &placement, poly, active, ds);
    let entry_report = {
        let _s = dme_obs::span("entry_sta");
        analyze(lib, nl, &placement, &assignment)
    };
    let golden_before = GoldenSummary::from_report(&entry_report);
    let mut best = golden_before;
    let pitch = placement.gate_pitch_um(nl);
    let max_dist = cfg.max_distance_pitches * pitch;

    // Incremental timer for the per-swap gate. Candidate swaps are timed
    // by re-evaluating only the perturbation's fanout cone; full golden
    // `analyze` runs remain at the checkpoints (entry, signoff) and must
    // agree with it bitwise.
    let use_delta = cfg.engine.use_delta();
    // Round-start path enumeration rides on the incremental timer's
    // endpoint heap; the reference engine keeps the full walk as its
    // costed oracle.
    let use_inc_enum = use_delta && cfg.path_enum.use_incremental();
    let mut inc = IncrementalSta::new(lib, nl, &placement, &assignment);
    if use_delta {
        // Trial-and-reject undo journal: the delta engine rolls a
        // rejected candidate's timing state back by replaying old slot
        // values (zero gate evaluations) instead of re-timing the cone.
        inc.set_journal(true);
    }
    let base_stats = inc.stats();
    let mut mct_cur = inc.mct_ns();
    debug_assert_eq!(mct_cur.to_bits(), golden_before.mct_ns.to_bits());

    let mut scratch = if use_delta {
        SwapScratch::Delta {
            pdelta: PlacementDelta::new(),
            adelta: AssignmentDelta::new(),
            cache: NetBoxCache::build(lib, nl, &placement),
            rowindex: RowIndex::build(&placement, nl),
            stats: DeltaEngineStats {
                delta_engine: true,
                ..DeltaEngineStats::default()
            },
        }
    } else {
        SwapScratch::Reference {
            pins: NetPins::build(nl, &placement),
        }
    };

    let mut fixed = vec![false; n];
    let mut swaps_attempted = 0usize;
    let mut swaps_accepted = 0usize;
    let mut rounds_run = 0usize;
    let mut swap_evals = 0usize;
    let mut tallies = SwapFilterTallies::default();
    let mut enum_tallies = EnumTallies::default();

    // Run-persistent round state: the cell → dose-grid index (synced
    // from the placement journal at round boundaries under the delta
    // engine, rebuilt from scratch per round under the reference
    // engine) and the epoch-stamped criticality scratch. Both are
    // allocated once here; round startup reuses them.
    let grid = &poly.grid;
    let mut gridx = GridIndex::build(lib, nl, &placement, grid);
    let mut rscratch = RoundScratch::new(n);

    for round in 0..cfg.rounds {
        let _round_span = dme_obs::span("round");
        let round_attempt_base = swaps_attempted;
        rounds_run += 1;
        // Exact-rollback scratch: ECO repacking can evict third-party
        // cells to neighboring rows, so undoing only the swapped pair
        // would leave residue. The reference engine snapshots the full
        // coordinate vectors; the delta engine starts a fresh journal
        // scope instead.
        let snapshot = match &mut scratch {
            SwapScratch::Delta { pdelta, adelta, .. } => {
                // Re-file only the cells the previous round's journal
                // moved (an accepted round leaves its writes in the
                // journal until here; a rolled-back round synced at
                // rollback and left it empty).
                let moved = pdelta.touched_since(0);
                gridx.sync(lib, nl, &placement, grid, &moved);
                pdelta.clear();
                adelta.clear();
                if round > 0 {
                    enum_tallies.scratch_reuse += 1;
                }
                None
            }
            SwapScratch::Reference { .. } => {
                // Costed oracle: the reference engine re-files every
                // cell from scratch each round.
                gridx.rebuild(lib, nl, &placement, grid);
                Some((placement.x_um.clone(), placement.y_um.clone()))
            }
        };
        #[cfg(debug_assertions)]
        debug_assert!(
            gridx.is_consistent(lib, nl, &placement, grid),
            "grid index diverged from a from-scratch rebuild"
        );
        let round_start_mct = mct_cur;
        let sta_round = inc.mark();
        // One worst path per endpoint (the signoff timer's view), most
        // critical first, capped at the configured K.
        let paths: Vec<TimingPath> = if use_inc_enum {
            let _s = dme_obs::span("enumerate_paths");
            let (paths, tk) = worst_paths_top_k(&mut inc, cfg.top_k);
            enum_tallies.endpoints_popped += tk.endpoints_popped;
            enum_tallies.stale_discards += tk.stale_discards;
            enum_tallies.endpoints_selected += paths.len() as u64;
            enum_tallies.full_analyze_skipped += 1;
            // Golden cross-check (debug builds only): the heap-driven
            // enumeration must equal the full analyze + full walk
            // bitwise — paths, order, and delay/slack bits.
            #[cfg(debug_assertions)]
            {
                let report = analyze(lib, nl, &placement, &assignment);
                debug_assert_eq!(
                    report.mct_ns.to_bits(),
                    mct_cur.to_bits(),
                    "incremental and golden round-start MCT diverged"
                );
                let oracle = worst_paths_per_endpoint_k(nl, &report, &ctx.setup_ns, cfg.top_k);
                debug_assert_eq!(paths.len(), oracle.len(), "path count diverged");
                for (p, o) in paths.iter().zip(&oracle) {
                    debug_assert_eq!(p.instances, o.instances, "path instances diverged");
                    debug_assert_eq!(p.delay_ns.to_bits(), o.delay_ns.to_bits());
                    debug_assert_eq!(p.slack_ns.to_bits(), o.slack_ns.to_bits());
                }
            }
            paths
        } else {
            let _s = dme_obs::span("enumerate_paths");
            enum_tallies.full_walks += 1;
            let report = analyze(lib, nl, &placement, &assignment);
            debug_assert_eq!(
                report.mct_ns.to_bits(),
                mct_cur.to_bits(),
                "incremental and golden round-start MCT diverged"
            );
            worst_paths_per_endpoint_k(nl, &report, &ctx.setup_ns, cfg.top_k)
        };

        // Criticality flags and Eq. (13) weights, plus the cell → path
        // inverted index: accepted swaps bump the swap count of every
        // path containing the swapped critical cell without re-scanning
        // the whole path list. Epoch-stamped and CSR-compiled — no O(n)
        // clearing.
        rscratch.begin_round(&paths);

        let mut round_swaps: Vec<(InstId, InstId)> = Vec::new();
        let mut num_swaps = 0usize;

        'paths: for (pi, path) in paths.iter().enumerate() {
            if rscratch.swapped_on_path[pi] >= cfg.max_swapped_per_path {
                continue;
            }
            // Cells ordered by non-increasing weight.
            let mut cells = path.instances.clone();
            cells.sort_by(|a, b| {
                rscratch.weight[b.0 as usize].total_cmp(&rscratch.weight[a.0 as usize])
            });
            'cells: for &cell_l in &cells {
                let li = cell_l.0 as usize;
                if fixed[li] {
                    continue;
                }
                let enum_span = dme_obs::span("enumerate");
                let bl = placement.neighborhood_bbox(lib, nl, cell_l);
                let my_dose = poly.dose_pct[gridx.grid_of(li)];
                // Grids intersecting bl, sorted by dose descending. The
                // delta engine enumerates only the banded rectangle of
                // candidate cells; the reference engine scans the grid.
                let half_x = 0.5 * grid.pitch_x_um();
                let half_y = 0.5 * grid.pitch_y_um();
                let eb = bl.expanded(half_x.max(half_y));
                let mut cand_grids: Vec<usize> = match &mut scratch {
                    SwapScratch::Delta { stats, .. } => {
                        let band = grid.rect_band_cells(eb.x_min, eb.x_max, eb.y_min, eb.y_max);
                        stats.grid_cell_evals_avoided +=
                            (grid.num_cells() - band.min(grid.num_cells())) as u64;
                        grid.cells_in_rect(eb.x_min, eb.x_max, eb.y_min, eb.y_max)
                    }
                    SwapScratch::Reference { .. } => (0..grid.num_cells())
                        .filter(|&g| {
                            let (cx, cy) = grid.cell_center_um(g);
                            eb.contains(cx, cy)
                        })
                        .collect(),
                };
                cand_grids.sort_by(|&a, &b| poly.dose_pct[b].total_cmp(&poly.dose_pct[a]));
                drop(enum_span);
                let _filter_span = dme_obs::span("filter");
                for g in cand_grids {
                    if poly.dose_pct[g] <= my_dose {
                        break;
                    }
                    // Non-critical candidates by distance, each distance
                    // computed once and carried as the sort key. The
                    // index files every cell; criticality is filtered
                    // here at query time (members are ascending by id,
                    // so the candidate sequence matches the old
                    // non-critical-only rebuild exactly).
                    let mut nc: Vec<(InstId, f64)> = gridx
                        .members(g)
                        .iter()
                        .copied()
                        .filter(|&m| {
                            !rscratch.is_critical(m.0 as usize)
                                && !fixed[m.0 as usize]
                                && m != cell_l
                        })
                        .map(|m| (m, placement.distance(lib, nl, cell_l, m)))
                        .collect();
                    nc.sort_by(|a, b| a.1.total_cmp(&b.1));
                    for (cell_m, dist) in nc {
                        let mi = cell_m.0 as usize;
                        if dist > max_dist {
                            tallies.distance_cutoffs += 1;
                            break;
                        }
                        swaps_attempted += 1;
                        let bm = placement.neighborhood_bbox(lib, nl, cell_m);
                        let cl = placement.center(lib, nl, cell_l);
                        let cm = placement.center(lib, nl, cell_m);
                        if !bm.contains(cl.0, cl.1) || !bl.contains(cm.0, cm.1) {
                            tallies.rejected_bbox += 1;
                            continue;
                        }
                        let hpwl_reject = match &mut scratch {
                            SwapScratch::Delta { cache, .. } => {
                                hpwl_delta_frac_cached(cache, lib, nl, &placement, cell_l, cm)
                                    > cfg.hpwl_increase_frac
                                    || hpwl_delta_frac_cached(
                                        cache, lib, nl, &placement, cell_m, cl,
                                    ) > cfg.hpwl_increase_frac
                            }
                            SwapScratch::Reference { pins } => {
                                hpwl_delta_frac_scratch(lib, nl, &placement, pins, cell_l, cm)
                                    > cfg.hpwl_increase_frac
                                    || hpwl_delta_frac_scratch(
                                        lib, nl, &placement, pins, cell_m, cl,
                                    ) > cfg.hpwl_increase_frac
                            }
                        };
                        if hpwl_reject {
                            tallies.rejected_hpwl += 1;
                            continue;
                        }
                        // Leakage filter: combined leakage at swapped doses.
                        let dose_l = poly.dose_pct[gridx.grid_of(li)];
                        let dose_m = poly.dose_pct[g];
                        let dl_l = ds * dose_l;
                        let dl_m = ds * dose_m;
                        let master_l = lib.cell(nl.instance(cell_l).cell_idx);
                        let master_m = lib.cell(nl.instance(cell_m).cell_idx);
                        let before = master_l.leakage_nw(tech, dl_l, 0.0)
                            + master_m.leakage_nw(tech, dl_m, 0.0);
                        let after = master_l.leakage_nw(tech, dl_m, 0.0)
                            + master_m.leakage_nw(tech, dl_l, 0.0);
                        if after - before > cfg.leak_increase_frac * before {
                            tallies.rejected_leakage += 1;
                            continue;
                        }
                        // All heuristic filters pass: apply the swap and
                        // let the incremental timer arbitrate. ECO
                        // repacking can evict third-party cells; the
                        // delta engine journals every overwritten
                        // coordinate for exact O(Δ) rejection, the
                        // reference engine snapshots the full vectors.
                        swap_evals += 1;
                        let accepted_mct = match &mut scratch {
                            SwapScratch::Delta {
                                pdelta,
                                adelta,
                                cache,
                                rowindex,
                                stats,
                            } => {
                                let pmark = pdelta.mark();
                                let amark = adelta.mark();
                                placement.swap_cells_tracked(cell_l, cell_m, pdelta);
                                rowindex.sync(&placement, &[cell_l, cell_m]);
                                let rows = [
                                    (placement.y_um[li] / placement.row_h_um).round() as usize,
                                    (placement.y_um[mi] / placement.row_h_um).round() as usize,
                                ];
                                {
                                    let _s = dme_obs::span("repack");
                                    placement.repack_rows_indexed(lib, nl, &rows, pdelta, rowindex);
                                }
                                // Only journal-touched instances can have
                                // changed dose; everyone else's ΔL/ΔW is
                                // already correct.
                                let touched = pdelta.touched_since(pmark);
                                {
                                    let _s = dme_obs::span("dose_update");
                                    for &t in &touched {
                                        let ti = t.0 as usize;
                                        let (x, y) = placement.center(lib, nl, t);
                                        let dl = ds * poly.dose_at_um(x, y);
                                        let dw = match active {
                                            Some(am) => ds * am.dose_at_um(x, y),
                                            None => assignment.dw_nm[ti],
                                        };
                                        adelta.set(&mut assignment, ti, dl, dw);
                                    }
                                }
                                stats.assignment_evals_avoided += (n - touched.len().min(n)) as u64;
                                let writes = pdelta.writes_since(pmark) as u64;
                                stats.undo_coord_writes += writes;
                                stats.undo_evals_avoided += (n as u64).saturating_sub(writes);
                                let smark = inc.mark();
                                let cand_mct = {
                                    let _s = dme_obs::span("retime_eval");
                                    inc.retime_touched(&placement, &assignment, &touched)
                                };
                                if cand_mct >= mct_cur - 1e-12 {
                                    // No MCT gain: replay the journals to
                                    // restore the exact prior bits — the
                                    // timing state by old-value replay,
                                    // with zero gate evaluations.
                                    pdelta.undo_to(&mut placement, pmark);
                                    rowindex.sync(&placement, &touched);
                                    adelta.undo_to(&mut assignment, amark);
                                    let _s = dme_obs::span("retime_undo");
                                    inc.undo_to(smark);
                                    None
                                } else {
                                    cache.refresh_for_moved(lib, nl, &placement, &touched);
                                    Some(cand_mct)
                                }
                            }
                            SwapScratch::Reference { .. } => {
                                let pre_swap = (placement.x_um.clone(), placement.y_um.clone());
                                placement.swap_cells(cell_l, cell_m);
                                let rows = [
                                    (placement.y_um[li] / placement.row_h_um).round() as usize,
                                    (placement.y_um[mi] / placement.row_h_um).round() as usize,
                                ];
                                {
                                    let _s = dme_obs::span("repack");
                                    placement.repack_rows(lib, nl, &rows);
                                }
                                let cand_assignment = {
                                    let _s = dme_obs::span("dose_update");
                                    assignment_for_placement(ctx, &placement, poly, active, ds)
                                };
                                let cand_mct = {
                                    let _s = dme_obs::span("retime_eval");
                                    inc.retime(&placement, &cand_assignment)
                                };
                                if cand_mct >= mct_cur - 1e-12 {
                                    // No MCT gain: revert the move and
                                    // re-time back (bitwise-exact state
                                    // restoration).
                                    placement.x_um = pre_swap.0;
                                    placement.y_um = pre_swap.1;
                                    let _s = dme_obs::span("retime_undo");
                                    inc.retime(&placement, &assignment);
                                    None
                                } else {
                                    assignment = cand_assignment;
                                    Some(cand_mct)
                                }
                            }
                        };
                        let Some(cand_mct) = accepted_mct else {
                            tallies.rejected_timing += 1;
                            continue;
                        };
                        let _commit_span = dme_obs::span("commit");
                        tallies.accepted_provisional += 1;
                        mct_cur = cand_mct;
                        round_swaps.push((cell_l, cell_m));
                        num_swaps += 1;
                        // Update swap counts on every path containing
                        // cell_l via the inverted index.
                        for k in 0..rscratch.paths_of(li).len() {
                            let qi = rscratch.paths_of(li)[k] as usize;
                            rscratch.swapped_on_path[qi] += 1;
                        }
                        if num_swaps >= cfg.swaps_per_round {
                            break 'paths;
                        }
                        continue 'cells;
                    }
                }
            }
        }

        if round_swaps.is_empty() {
            dme_obs::record(
                "dosepl_round",
                &[
                    ("round", round as f64),
                    ("candidates", (swaps_attempted - round_attempt_base) as f64),
                    ("swaps", 0.0),
                    ("accepted", 0.0),
                    ("mct_ns", best.mct_ns),
                ],
            );
            break; // nothing left to try
        }

        // ECO signoff: golden full re-analysis still decides accept or
        // rollback. Per-swap gating already updated `assignment` to the
        // current placement, and the golden MCT must agree bitwise with
        // the incrementally maintained one.
        let signoff = {
            let _s = dme_obs::span("round_signoff");
            analyze(lib, nl, &placement, &assignment)
        };
        debug_assert_eq!(
            signoff.mct_ns.to_bits(),
            mct_cur.to_bits(),
            "incremental and golden signoff MCT diverged"
        );
        let round_accepted = signoff.mct_ns < best.mct_ns - 1e-12;
        if round_accepted {
            best = GoldenSummary::from_report(&signoff);
            swaps_accepted += round_swaps.len();
            inc.commit(sta_round);
        } else {
            tallies.rolled_back += round_swaps.len();
            match &mut scratch {
                SwapScratch::Delta {
                    pdelta,
                    adelta,
                    cache,
                    rowindex,
                    ..
                } => {
                    // Replay the whole round's journals; only the nets of
                    // the cells that actually moved need re-caching. The
                    // timing state rolls back the same way — old-value
                    // replay to the round-start mark. The grid index is
                    // re-filed here too (the journal is empty after the
                    // replay, so the round-start sync sees nothing).
                    let touched = pdelta.touched_since(0);
                    pdelta.undo_all(&mut placement);
                    rowindex.sync(&placement, &touched);
                    gridx.sync(lib, nl, &placement, grid, &touched);
                    adelta.undo_all(&mut assignment);
                    cache.refresh_for_moved(lib, nl, &placement, &touched);
                    inc.undo_to(sta_round);
                    mct_cur = round_start_mct;
                }
                SwapScratch::Reference { .. } => {
                    let (sx, sy) = snapshot.expect("reference engine snapshots every round");
                    placement.x_um = sx;
                    placement.y_um = sy;
                    assignment = assignment_for_placement(ctx, &placement, poly, active, ds);
                    mct_cur = inc.retime(&placement, &assignment);
                }
            }
            for &(a, b) in &round_swaps {
                fixed[a.0 as usize] = true;
                fixed[b.0 as usize] = true;
            }
        }
        dme_obs::record(
            "dosepl_round",
            &[
                ("round", round as f64),
                ("candidates", (swaps_attempted - round_attempt_base) as f64),
                ("swaps", round_swaps.len() as f64),
                ("accepted", f64::from(u8::from(round_accepted))),
                ("mct_ns", signoff.mct_ns),
            ],
        );
    }

    // The incremental assignment must agree bitwise with a from-scratch
    // rebuild at the final placement — the invariant the O(Δ) engine
    // rests on.
    #[cfg(debug_assertions)]
    {
        let rebuilt = assignment_for_placement(ctx, &placement, poly, active, ds);
        let same = rebuilt
            .dl_nm
            .iter()
            .zip(&assignment.dl_nm)
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && rebuilt
                .dw_nm
                .iter()
                .zip(&assignment.dw_nm)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        debug_assert!(
            same,
            "incrementally maintained assignment diverged from rebuild"
        );
    }

    // Report a fresh signoff of the placement actually returned (and
    // check it against the bookkeeping — rollback restores coordinates
    // exactly, so the two must agree).
    let final_report = {
        let _s = dme_obs::span("signoff");
        analyze(lib, nl, &placement, &assignment)
    };
    let golden_after = GoldenSummary::from_report(&final_report);
    debug_assert!(
        (golden_after.mct_ns - best.mct_ns).abs() <= 1e-9 * best.mct_ns.max(1.0),
        "rollback is exact, so the final signoff must match the bookkeeping: {} vs {}",
        golden_after.mct_ns,
        best.mct_ns
    );
    let stats = inc.stats();
    let eval_calls = stats.retime_calls - base_stats.retime_calls;
    let incremental_gate_evals = stats.gates_retimed - base_stats.gates_retimed;
    let full_equivalent_gate_evals = eval_calls * n as u64;
    let incremental_work_ratio = if incremental_gate_evals > 0 {
        full_equivalent_gate_evals as f64 / incremental_gate_evals as f64
    } else {
        0.0
    };
    // The ratio depends on netlist topology and which swaps the run
    // accepted, so it is telemetry, not an invariant: surface a shallow
    // advantage as a warning instead of failing.
    if swap_evals > 0 && incremental_work_ratio < 3.0 {
        dme_obs::warn!(
            "dosepl incremental re-timing advantage is shallow: \
             {incremental_gate_evals} cone gate evals vs {full_equivalent_gate_evals} \
             full-equivalent (ratio {incremental_work_ratio:.2}, expected ≥ 3)"
        );
    }
    let delta_stats = match scratch {
        SwapScratch::Delta {
            cache, mut stats, ..
        } => {
            let s = cache.stats();
            stats.hpwl_fast_nets = s.fast_nets;
            stats.hpwl_rescans = s.rescans;
            stats
        }
        SwapScratch::Reference { .. } => DeltaEngineStats::default(),
    };
    dme_obs::counter_add("dosepl/swaps_attempted", swaps_attempted as u64);
    dme_obs::counter_add("dosepl/swaps_accepted", swaps_accepted as u64);
    dme_obs::counter_add("dosepl/swap_evals", swap_evals as u64);
    dme_obs::counter_add("dosepl/rounds", rounds_run as u64);
    dme_obs::counter_add("dosepl/distance_cutoffs", tallies.distance_cutoffs as u64);
    dme_obs::counter_add("dosepl/rejected_bbox", tallies.rejected_bbox as u64);
    dme_obs::counter_add("dosepl/rejected_hpwl", tallies.rejected_hpwl as u64);
    dme_obs::counter_add("dosepl/rejected_leakage", tallies.rejected_leakage as u64);
    dme_obs::counter_add("dosepl/rejected_timing", tallies.rejected_timing as u64);
    dme_obs::counter_add(
        "dosepl/accepted_provisional",
        tallies.accepted_provisional as u64,
    );
    dme_obs::counter_add("dosepl/rolled_back", tallies.rolled_back as u64);
    dme_obs::counter_add(
        "dosepl/enumerate_endpoints_popped",
        enum_tallies.endpoints_popped,
    );
    dme_obs::counter_add(
        "dosepl/enumerate_endpoints_selected",
        enum_tallies.endpoints_selected,
    );
    dme_obs::counter_add(
        "dosepl/enumerate_stale_discards",
        enum_tallies.stale_discards,
    );
    dme_obs::counter_add(
        "dosepl/enumerate_full_analyze_skipped",
        enum_tallies.full_analyze_skipped,
    );
    dme_obs::counter_add("dosepl/enumerate_full_walks", enum_tallies.full_walks);
    dme_obs::counter_add("dosepl/enumerate_scratch_reuse", enum_tallies.scratch_reuse);
    if delta_stats.delta_engine {
        dme_obs::counter_add(
            "dosepl/assignment_evals_avoided",
            delta_stats.assignment_evals_avoided,
        );
        dme_obs::counter_add(
            "dosepl/grid_cell_evals_avoided",
            delta_stats.grid_cell_evals_avoided,
        );
        dme_obs::counter_add("dosepl/hpwl_fast_nets", delta_stats.hpwl_fast_nets);
        dme_obs::counter_add("dosepl/hpwl_rescans", delta_stats.hpwl_rescans);
        dme_obs::counter_add("dosepl/undo_coord_writes", delta_stats.undo_coord_writes);
        dme_obs::counter_add("dosepl/undo_evals_avoided", delta_stats.undo_evals_avoided);
    }
    if dme_obs::enabled() {
        dme_obs::set_qor("dosepl/mct_ns", golden_after.mct_ns);
        dme_obs::set_qor("dosepl/leakage_uw", golden_after.leakage_uw);
        dme_obs::set_qor("dosepl/swaps_accepted", swaps_accepted as f64);
        dme_obs::set_qor("dosepl/swaps_attempted", swaps_attempted as f64);
        dme_obs::set_qor("dosepl/incremental_work_ratio", incremental_work_ratio);
    }
    DoseplResult {
        placement,
        assignment,
        golden_before,
        golden_after,
        swaps_attempted,
        swaps_accepted,
        rounds_run,
        swap_evals,
        incremental_gate_evals,
        full_equivalent_gate_evals,
        incremental_work_ratio,
        filter_tallies: tallies,
        delta_stats,
        enum_tallies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{optimize, DmoptConfig, Objective};
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles};

    #[test]
    fn dosepl_never_degrades_golden_timing() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let dm = optimize(
            &ctx,
            &DmoptConfig {
                objective: Objective::MinTiming { xi_uw: 0.0 },
                grid_g_um: 5.0,
                ..DmoptConfig::default()
            },
        )
        .expect("dmopt");
        let cfg = DoseplConfig {
            top_k: 100,
            rounds: 4,
            swaps_per_round: 2,
            ..DoseplConfig::default()
        };
        let r = dosepl(&ctx, &dm.poly_map, None, -2.0, &cfg);
        assert!(r.golden_after.mct_ns <= r.golden_before.mct_ns + 1e-12);
        assert!(r.rounds_run >= 1);
        // Placement stays legal throughout.
        r.placement.check_legal(&d.netlist, &lib).expect("legal");
        // Per-swap timing never exceeds full re-analysis (the
        // incremental timer walks at most the whole netlist per call),
        // and the work advantage is reported as telemetry. The exact
        // ratio depends on topology and accepted-swap order, so it is
        // not asserted against a fixed threshold here (a shallow ratio
        // surfaces as a warn-level event instead).
        if r.swap_evals > 0 {
            assert!(
                r.incremental_gate_evals <= r.full_equivalent_gate_evals,
                "incremental {} vs full-equivalent {} gate evals",
                r.incremental_gate_evals,
                r.full_equivalent_gate_evals
            );
            assert!(r.incremental_work_ratio >= 1.0);
            let expect = r.full_equivalent_gate_evals as f64 / r.incremental_gate_evals as f64;
            assert!((r.incremental_work_ratio - expect).abs() < 1e-12);
            let t = r.filter_tallies;
            assert_eq!(
                t.rejected_bbox
                    + t.rejected_hpwl
                    + t.rejected_leakage
                    + t.rejected_timing
                    + t.accepted_provisional,
                r.swaps_attempted,
                "every attempted candidate is dispositioned by exactly one filter"
            );
            assert_eq!(t.rejected_timing + t.accepted_provisional, r.swap_evals);
        }
    }

    /// Field-by-field bitwise comparison of two dosePl results; the
    /// [`DeltaEngineStats`] telemetry is the only allowed difference.
    fn assert_results_bitwise_equal(a: &DoseplResult, b: &DoseplResult) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.placement.x_um), bits(&b.placement.x_um), "x_um");
        assert_eq!(bits(&a.placement.y_um), bits(&b.placement.y_um), "y_um");
        assert_eq!(
            bits(&a.assignment.dl_nm),
            bits(&b.assignment.dl_nm),
            "dl_nm"
        );
        assert_eq!(
            bits(&a.assignment.dw_nm),
            bits(&b.assignment.dw_nm),
            "dw_nm"
        );
        assert_eq!(
            a.golden_before.mct_ns.to_bits(),
            b.golden_before.mct_ns.to_bits()
        );
        assert_eq!(
            a.golden_after.mct_ns.to_bits(),
            b.golden_after.mct_ns.to_bits()
        );
        assert_eq!(
            a.golden_after.leakage_uw.to_bits(),
            b.golden_after.leakage_uw.to_bits()
        );
        assert_eq!(a.swaps_attempted, b.swaps_attempted);
        assert_eq!(a.swaps_accepted, b.swaps_accepted);
        assert_eq!(a.rounds_run, b.rounds_run);
        assert_eq!(a.swap_evals, b.swap_evals);
        // `a` is the delta engine: replay-undo means rejected candidates
        // cost it zero gate evaluations, so it must not out-work the
        // reference while matching its result bitwise.
        assert!(
            a.incremental_gate_evals <= b.incremental_gate_evals,
            "delta {} vs reference {}",
            a.incremental_gate_evals,
            b.incremental_gate_evals
        );
        assert_eq!(a.filter_tallies, b.filter_tallies);
    }

    #[test]
    fn delta_engine_matches_reference_bitwise() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let dm = optimize(
            &ctx,
            &DmoptConfig {
                objective: Objective::MinTiming { xi_uw: 0.0 },
                grid_g_um: 5.0,
                ..DmoptConfig::default()
            },
        )
        .expect("dmopt");
        let base = DoseplConfig {
            top_k: 100,
            rounds: 4,
            swaps_per_round: 2,
            ..DoseplConfig::default()
        };
        let fast = dosepl(
            &ctx,
            &dm.poly_map,
            None,
            -2.0,
            &DoseplConfig {
                engine: SwapEngine::Delta,
                ..base.clone()
            },
        );
        let refr = dosepl(
            &ctx,
            &dm.poly_map,
            None,
            -2.0,
            &DoseplConfig {
                engine: SwapEngine::Reference,
                ..base
            },
        );
        assert_results_bitwise_equal(&fast, &refr);
        assert!(fast.delta_stats.delta_engine);
        assert!(!refr.delta_stats.delta_engine);
        if fast.swap_evals > 0 {
            // The O(Δ) engine must actually avoid work, not just match.
            assert!(fast.delta_stats.assignment_evals_avoided > 0);
            assert!(fast.delta_stats.undo_evals_avoided > 0);
        }
    }

    #[test]
    fn enum_modes_match_bitwise() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let dm = optimize(
            &ctx,
            &DmoptConfig {
                objective: Objective::MinTiming { xi_uw: 0.0 },
                grid_g_um: 5.0,
                ..DmoptConfig::default()
            },
        )
        .expect("dmopt");
        let base = DoseplConfig {
            top_k: 100,
            rounds: 4,
            swaps_per_round: 2,
            engine: SwapEngine::Delta,
            ..DoseplConfig::default()
        };
        let inc = dosepl(
            &ctx,
            &dm.poly_map,
            None,
            -2.0,
            &DoseplConfig {
                path_enum: PathEnum::Incremental,
                ..base.clone()
            },
        );
        let full = dosepl(
            &ctx,
            &dm.poly_map,
            None,
            -2.0,
            &DoseplConfig {
                path_enum: PathEnum::Full,
                ..base
            },
        );
        assert_results_bitwise_equal(&inc, &full);
        // The incremental run skipped every round-start full analyze and
        // dispositioned each heap pop exactly once; the full-walk run
        // never touched the heap.
        assert_eq!(inc.enum_tallies.full_walks, 0);
        assert_eq!(inc.enum_tallies.full_analyze_skipped as usize, inc.rounds_run);
        assert_eq!(
            inc.enum_tallies.endpoints_popped,
            inc.enum_tallies.endpoints_selected + inc.enum_tallies.stale_discards
        );
        assert_eq!(full.enum_tallies.full_analyze_skipped, 0);
        assert_eq!(full.enum_tallies.full_walks as usize, full.rounds_run);
        assert_eq!(full.enum_tallies.endpoints_popped, 0);
    }

    #[test]
    fn assignment_tracks_cell_positions() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let grid = dme_dosemap::DoseGrid::with_granularity(p.die_w_um, p.die_h_um, 5.0);
        // Left half gets +4%, right half −4%.
        let vals: Vec<f64> = (0..grid.num_cells())
            .map(|g| {
                if grid.cell_center_um(g).0 < p.die_w_um / 2.0 {
                    4.0
                } else {
                    -4.0
                }
            })
            .collect();
        let map = DoseMap::from_values(grid, vals);
        let a = assignment_for_placement(&ctx, &p, &map, None, -2.0);
        for i in 0..ctx.num_instances() {
            let (x, y) = p.center(&lib, &d.netlist, dme_netlist::InstId(i as u32));
            let expect = -2.0 * map.dose_pct[map.grid.cell_of(x, y)];
            assert_eq!(a.dl_nm[i], expect, "instance {i} at ({x}, {y})");
            assert!(a.dl_nm[i].abs() == 8.0);
            assert_eq!(a.dw_nm[i], 0.0);
        }
    }

    #[test]
    fn hpwl_filter_blocks_distant_moves() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let pins = NetPins::build(&d.netlist, &p);
        let cell = dme_netlist::InstId(5);
        let near = p.center(&lib, &d.netlist, cell);
        let delta_stay = hpwl_delta_frac_scratch(&lib, &d.netlist, &p, &pins, cell, near);
        assert!(delta_stay.abs() < 1e-12);
        let far = (p.die_w_um, p.die_h_um);
        let delta_far = hpwl_delta_frac_scratch(&lib, &d.netlist, &p, &pins, cell, far);
        assert!(
            delta_far > 0.1,
            "moving across the die must blow up HPWL: {delta_far}"
        );
        // The cached evaluation answers the same queries bitwise.
        let mut cache = NetBoxCache::build(&lib, &d.netlist, &p);
        for &target in &[near, far, (0.0, 0.0)] {
            let scratch = hpwl_delta_frac_scratch(&lib, &d.netlist, &p, &pins, cell, target);
            let cached = hpwl_delta_frac_cached(&mut cache, &lib, &d.netlist, &p, cell, target);
            assert_eq!(scratch.to_bits(), cached.to_bits(), "target {target:?}");
        }
    }
}
