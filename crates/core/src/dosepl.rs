//! dosePl: dose-map-aware placement by cell swapping (Algorithm 1).
//!
//! Given a timing/leakage-optimized dose map, critical cells are swapped
//! into higher-dose grid regions (where gates print shorter and switch
//! faster) and non-critical cells take their place. Candidate swaps are
//! filtered exactly as in the paper's Appendix: both cells must lie in
//! each other's *neighborhood bounding boxes* (Fig. 9), be within a
//! distance threshold proportional to the average gate pitch, not
//! increase the estimated HPWL of their incident nets beyond a fraction
//! γ₃, and not increase their combined leakage beyond a fraction γ₄.
//! After each round the perturbed rows are re-legalized (the ECO step)
//! and golden timing decides accept-or-rollback; rolled-back cells are
//! frozen for subsequent rounds.

use crate::context::{GoldenSummary, OptContext};
use dme_dosemap::DoseMap;
use dme_netlist::InstId;
use dme_placement::Placement;
use dme_sta::{analyze, worst_path_per_endpoint, GeometryAssignment, IncrementalSta};

/// Tuning knobs of the swapping heuristic (γ-parameters of the paper).
#[derive(Debug, Clone)]
pub struct DoseplConfig {
    /// Number of critical paths examined per round (the paper uses
    /// K = 10 000).
    pub top_k: usize,
    /// Number of swap rounds (the paper uses 10).
    pub rounds: usize,
    /// γ₁: maximum cells swapped per critical path.
    pub max_swapped_per_path: usize,
    /// γ₂: maximum swap distance, in multiples of the average gate pitch.
    pub max_distance_pitches: f64,
    /// γ₃: maximum allowed fractional HPWL increase of the incident nets
    /// of a swapped cell.
    pub hpwl_increase_frac: f64,
    /// γ₄: maximum allowed fractional increase of the combined leakage of
    /// a swapped pair.
    pub leak_increase_frac: f64,
    /// γ₅: maximum swaps per round.
    pub swaps_per_round: usize,
}

impl Default for DoseplConfig {
    fn default() -> Self {
        Self {
            top_k: 10_000,
            rounds: 10,
            max_swapped_per_path: 1,
            max_distance_pitches: 10.0,
            hpwl_increase_frac: 0.2,
            leak_increase_frac: 0.1,
            swaps_per_round: 1,
        }
    }
}

/// Candidate-swap disposition tallies, by the filter that decided them,
/// accumulated across all rounds. The filters run in the order the
/// fields are listed; a candidate is charged to the first filter that
/// rejects it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapFilterTallies {
    /// Candidate lists cut short by the γ₂ distance threshold (one per
    /// cut; the remaining, farther candidates are never examined).
    pub distance_cutoffs: usize,
    /// Rejected because the cells are not in each other's neighborhood
    /// bounding boxes (Fig. 9).
    pub rejected_bbox: usize,
    /// Rejected by the γ₃ HPWL-increase filter.
    pub rejected_hpwl: usize,
    /// Rejected by the γ₄ leakage-increase filter.
    pub rejected_leakage: usize,
    /// Applied but reverted because incremental timing showed no MCT
    /// gain.
    pub rejected_timing: usize,
    /// Passed every filter and improved MCT (provisionally kept; round
    /// signoff may still roll them back).
    pub accepted_provisional: usize,
    /// Provisionally accepted swaps undone by a round-level rollback.
    pub rolled_back: usize,
}

/// Outcome of the dosePl pass.
#[derive(Debug, Clone)]
pub struct DoseplResult {
    /// The (possibly) improved placement.
    pub placement: Placement,
    /// Geometry assignment re-derived at the final cell positions.
    pub assignment: GeometryAssignment,
    /// Golden summary entering dosePl (post-DMopt).
    pub golden_before: GoldenSummary,
    /// Golden summary after the accepted swaps.
    pub golden_after: GoldenSummary,
    /// Swaps attempted across all rounds.
    pub swaps_attempted: usize,
    /// Swaps surviving golden-timing acceptance.
    pub swaps_accepted: usize,
    /// Rounds executed.
    pub rounds_run: usize,
    /// Candidate swaps that reached the incremental timing gate (passed
    /// every heuristic filter and were actually timed).
    pub swap_evals: usize,
    /// Gate evaluations spent by the incremental timer across all swap
    /// evaluations, including state restoration after rejected swaps.
    /// This is the hardware-independent cost of per-swap timing.
    pub incremental_gate_evals: u64,
    /// Gate evaluations the same per-swap timing decisions would have
    /// cost with full re-analysis (one evaluation per instance per
    /// incremental call — late pass only, so the comparison is
    /// conservative).
    pub full_equivalent_gate_evals: u64,
    /// `full_equivalent_gate_evals / incremental_gate_evals` — the work
    /// advantage of cone re-timing over full re-analysis (∞-safe: 0.0
    /// when nothing was timed). Machine-independent, but dependent on
    /// netlist topology and swap acceptance order, so it is reported as
    /// telemetry rather than asserted against a fixed threshold.
    pub incremental_work_ratio: f64,
    /// Per-filter candidate disposition tallies.
    pub filter_tallies: SwapFilterTallies,
}

/// Re-derives the per-instance geometry assignment from dose maps for an
/// arbitrary placement (cells change grids when they move).
pub fn assignment_for_placement(
    ctx: &OptContext<'_>,
    placement: &Placement,
    poly: &DoseMap,
    active: Option<&DoseMap>,
    ds: f64,
) -> GeometryAssignment {
    let nl = &ctx.design.netlist;
    let n = nl.num_instances();
    let mut a = GeometryAssignment::nominal(n);
    for i in 0..n {
        let (x, y) = placement.center(ctx.lib, nl, InstId(i as u32));
        a.dl_nm[i] = ds * poly.dose_at_um(x, y);
        if let Some(am) = active {
            a.dw_nm[i] = ds * am.dose_at_um(x, y);
        }
    }
    a
}

/// Estimated fractional HPWL change of a cell's incident nets if its
/// center moved to `new_center`.
fn hpwl_delta_frac(
    ctx: &OptContext<'_>,
    placement: &Placement,
    cell: InstId,
    new_center: (f64, f64),
) -> f64 {
    let nl = &ctx.design.netlist;
    let inst = nl.instance(cell);
    let mut nets: Vec<dme_netlist::NetId> = inst.inputs.clone();
    nets.push(inst.output);
    nets.sort_unstable();
    nets.dedup();
    let old_center = placement.center(ctx.lib, nl, cell);
    let mut before = 0.0;
    let mut after = 0.0;
    for &net in &nets {
        let pins = placement.net_pins(ctx.lib, nl, net);
        before += dme_placement::BoundingBox::of_points(&pins).map_or(0.0, |b| b.half_perimeter());
        let moved: Vec<(f64, f64)> = pins
            .iter()
            .map(|&p| if p == old_center { new_center } else { p })
            .collect();
        after += dme_placement::BoundingBox::of_points(&moved).map_or(0.0, |b| b.half_perimeter());
    }
    if before <= 1e-12 {
        return 0.0;
    }
    (after - before) / before
}

/// Runs the dosePl cell-swapping optimization on top of a DMopt result.
///
/// # Panics
///
/// Panics if the dose maps' grids do not cover the placement die.
pub fn dosepl(
    ctx: &OptContext<'_>,
    poly: &DoseMap,
    active: Option<&DoseMap>,
    ds: f64,
    cfg: &DoseplConfig,
) -> DoseplResult {
    let _span = dme_obs::span("dosepl");
    let nl = &ctx.design.netlist;
    let lib = ctx.lib;
    let tech = lib.tech();
    let n = nl.num_instances();
    let mut placement = ctx.placement.clone();
    let mut assignment = assignment_for_placement(ctx, &placement, poly, active, ds);
    let entry_report = {
        let _s = dme_obs::span("entry_sta");
        analyze(lib, nl, &placement, &assignment)
    };
    let golden_before = GoldenSummary::from_report(&entry_report);
    let mut best = golden_before;
    let pitch = placement.gate_pitch_um(nl);
    let max_dist = cfg.max_distance_pitches * pitch;

    // Incremental timer for the per-swap gate. Candidate swaps are timed
    // by re-evaluating only the perturbation's fanout cone; full golden
    // `analyze` runs remain at the checkpoints (entry, round start,
    // signoff) and must agree with it bitwise.
    let mut inc = IncrementalSta::new(lib, nl, &placement, &assignment);
    let base_stats = inc.stats();
    let mut mct_cur = inc.mct_ns();
    debug_assert_eq!(mct_cur.to_bits(), golden_before.mct_ns.to_bits());

    let mut fixed = vec![false; n];
    let mut swaps_attempted = 0usize;
    let mut swaps_accepted = 0usize;
    let mut rounds_run = 0usize;
    let mut swap_evals = 0usize;
    let mut tallies = SwapFilterTallies::default();

    for round in 0..cfg.rounds {
        let _round_span = dme_obs::span("round");
        let round_attempt_base = swaps_attempted;
        rounds_run += 1;
        // Snapshot for exact rollback: ECO repacking can evict third-party
        // cells to neighboring rows, so undoing only the swapped pair
        // would leave residue.
        let snapshot = (placement.x_um.clone(), placement.y_um.clone());
        let report = analyze(lib, nl, &placement, &assignment);
        debug_assert_eq!(
            report.mct_ns.to_bits(),
            mct_cur.to_bits(),
            "incremental and golden round-start MCT diverged"
        );
        // One worst path per endpoint (the signoff timer's view), most
        // critical first, capped at the configured K.
        let mut paths = worst_path_per_endpoint(nl, &report, &ctx.setup_ns);
        paths.truncate(cfg.top_k);

        // Criticality flags and Eq. (13) weights.
        let mut critical = vec![false; n];
        let mut weight = vec![0.0f64; n];
        for p in &paths {
            let w = (-p.slack_ns).exp();
            for &c in &p.instances {
                critical[c.0 as usize] = true;
                weight[c.0 as usize] += w;
            }
        }

        // Per-grid non-critical cell lists at current positions.
        let grid = &poly.grid;
        let mut grid_members: Vec<Vec<InstId>> = vec![Vec::new(); grid.num_cells()];
        let mut grid_of = vec![0usize; n];
        for i in 0..n {
            let (x, y) = placement.center(lib, nl, InstId(i as u32));
            let g = grid.cell_of(x, y);
            grid_of[i] = g;
            if !critical[i] {
                grid_members[g].push(InstId(i as u32));
            }
        }

        let mut swapped_on_path: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut round_swaps: Vec<(InstId, InstId)> = Vec::new();
        let mut num_swaps = 0usize;

        'paths: for (pi, path) in paths.iter().enumerate() {
            if *swapped_on_path.get(&pi).unwrap_or(&0) >= cfg.max_swapped_per_path {
                continue;
            }
            // Cells ordered by non-increasing weight.
            let mut cells = path.instances.clone();
            cells.sort_by(|a, b| weight[b.0 as usize].total_cmp(&weight[a.0 as usize]));
            'cells: for &cell_l in &cells {
                let li = cell_l.0 as usize;
                if fixed[li] {
                    continue;
                }
                let bl = placement.neighborhood_bbox(lib, nl, cell_l);
                let my_dose = poly.dose_pct[grid_of[li]];
                // Grids intersecting bl, sorted by dose descending.
                let mut cand_grids: Vec<usize> = (0..grid.num_cells())
                    .filter(|&g| {
                        let (cx, cy) = grid.cell_center_um(g);
                        let half_x = 0.5 * grid.pitch_x_um();
                        let half_y = 0.5 * grid.pitch_y_um();
                        bl.expanded(half_x.max(half_y)).contains(cx, cy)
                    })
                    .collect();
                cand_grids.sort_by(|&a, &b| poly.dose_pct[b].total_cmp(&poly.dose_pct[a]));
                for g in cand_grids {
                    if poly.dose_pct[g] <= my_dose {
                        break;
                    }
                    // Non-critical candidates by distance.
                    let mut nc: Vec<InstId> = grid_members[g]
                        .iter()
                        .copied()
                        .filter(|&m| !fixed[m.0 as usize] && m != cell_l)
                        .collect();
                    nc.sort_by(|&a, &b| {
                        placement
                            .distance(lib, nl, cell_l, a)
                            .total_cmp(&placement.distance(lib, nl, cell_l, b))
                    });
                    for cell_m in nc {
                        let mi = cell_m.0 as usize;
                        if placement.distance(lib, nl, cell_l, cell_m) > max_dist {
                            tallies.distance_cutoffs += 1;
                            break;
                        }
                        swaps_attempted += 1;
                        let bm = placement.neighborhood_bbox(lib, nl, cell_m);
                        let cl = placement.center(lib, nl, cell_l);
                        let cm = placement.center(lib, nl, cell_m);
                        if !bm.contains(cl.0, cl.1) || !bl.contains(cm.0, cm.1) {
                            tallies.rejected_bbox += 1;
                            continue;
                        }
                        if hpwl_delta_frac(ctx, &placement, cell_l, cm) > cfg.hpwl_increase_frac
                            || hpwl_delta_frac(ctx, &placement, cell_m, cl) > cfg.hpwl_increase_frac
                        {
                            tallies.rejected_hpwl += 1;
                            continue;
                        }
                        // Leakage filter: combined leakage at swapped doses.
                        let dose_l = poly.dose_pct[grid_of[li]];
                        let dose_m = poly.dose_pct[g];
                        let dl_l = ds * dose_l;
                        let dl_m = ds * dose_m;
                        let master_l = lib.cell(nl.instance(cell_l).cell_idx);
                        let master_m = lib.cell(nl.instance(cell_m).cell_idx);
                        let before = master_l.leakage_nw(tech, dl_l, 0.0)
                            + master_m.leakage_nw(tech, dl_m, 0.0);
                        let after = master_l.leakage_nw(tech, dl_m, 0.0)
                            + master_m.leakage_nw(tech, dl_l, 0.0);
                        if after - before > cfg.leak_increase_frac * before {
                            tallies.rejected_leakage += 1;
                            continue;
                        }
                        // All heuristic filters pass: apply the swap and
                        // let the incremental timer arbitrate. ECO
                        // repacking can evict third-party cells, so keep
                        // a coordinate snapshot for exact rejection.
                        let pre_swap = (placement.x_um.clone(), placement.y_um.clone());
                        placement.swap_cells(cell_l, cell_m);
                        let rows = [
                            (placement.y_um[li] / placement.row_h_um).round() as usize,
                            (placement.y_um[mi] / placement.row_h_um).round() as usize,
                        ];
                        placement.repack_rows(lib, nl, &rows);
                        let cand_assignment =
                            assignment_for_placement(ctx, &placement, poly, active, ds);
                        let cand_mct = inc.retime(&placement, &cand_assignment);
                        swap_evals += 1;
                        if cand_mct >= mct_cur - 1e-12 {
                            // No MCT gain: revert the move and re-time
                            // back (bitwise-exact state restoration).
                            tallies.rejected_timing += 1;
                            placement.x_um = pre_swap.0;
                            placement.y_um = pre_swap.1;
                            inc.retime(&placement, &assignment);
                            continue;
                        }
                        tallies.accepted_provisional += 1;
                        mct_cur = cand_mct;
                        assignment = cand_assignment;
                        round_swaps.push((cell_l, cell_m));
                        num_swaps += 1;
                        // Update swap counts on every path containing cell_l.
                        for (qi, q) in paths.iter().enumerate() {
                            if q.instances.contains(&cell_l) {
                                *swapped_on_path.entry(qi).or_insert(0) += 1;
                            }
                        }
                        if num_swaps >= cfg.swaps_per_round {
                            break 'paths;
                        }
                        continue 'cells;
                    }
                }
            }
        }

        if round_swaps.is_empty() {
            dme_obs::record(
                "dosepl_round",
                &[
                    ("round", round as f64),
                    ("candidates", (swaps_attempted - round_attempt_base) as f64),
                    ("swaps", 0.0),
                    ("accepted", 0.0),
                    ("mct_ns", best.mct_ns),
                ],
            );
            break; // nothing left to try
        }

        // ECO signoff: golden full re-analysis still decides accept or
        // rollback. Per-swap gating already updated `assignment` to the
        // current placement, and the golden MCT must agree bitwise with
        // the incrementally maintained one.
        let signoff = {
            let _s = dme_obs::span("round_signoff");
            analyze(lib, nl, &placement, &assignment)
        };
        debug_assert_eq!(
            signoff.mct_ns.to_bits(),
            mct_cur.to_bits(),
            "incremental and golden signoff MCT diverged"
        );
        let round_accepted = signoff.mct_ns < best.mct_ns - 1e-12;
        if round_accepted {
            best = GoldenSummary::from_report(&signoff);
            swaps_accepted += round_swaps.len();
        } else {
            tallies.rolled_back += round_swaps.len();
            placement.x_um = snapshot.0;
            placement.y_um = snapshot.1;
            for &(a, b) in &round_swaps {
                fixed[a.0 as usize] = true;
                fixed[b.0 as usize] = true;
            }
            assignment = assignment_for_placement(ctx, &placement, poly, active, ds);
            mct_cur = inc.retime(&placement, &assignment);
        }
        dme_obs::record(
            "dosepl_round",
            &[
                ("round", round as f64),
                ("candidates", (swaps_attempted - round_attempt_base) as f64),
                ("swaps", round_swaps.len() as f64),
                ("accepted", f64::from(u8::from(round_accepted))),
                ("mct_ns", signoff.mct_ns),
            ],
        );
    }

    // Report a fresh signoff of the placement actually returned (and
    // check it against the bookkeeping — rollback restores coordinates
    // exactly, so the two must agree).
    let final_report = {
        let _s = dme_obs::span("signoff");
        analyze(lib, nl, &placement, &assignment)
    };
    let golden_after = GoldenSummary::from_report(&final_report);
    debug_assert!(
        (golden_after.mct_ns - best.mct_ns).abs() <= 1e-9 * best.mct_ns.max(1.0),
        "rollback is exact, so the final signoff must match the bookkeeping: {} vs {}",
        golden_after.mct_ns,
        best.mct_ns
    );
    let stats = inc.stats();
    let eval_calls = stats.retime_calls - base_stats.retime_calls;
    let incremental_gate_evals = stats.gates_retimed - base_stats.gates_retimed;
    let full_equivalent_gate_evals = eval_calls * n as u64;
    let incremental_work_ratio = if incremental_gate_evals > 0 {
        full_equivalent_gate_evals as f64 / incremental_gate_evals as f64
    } else {
        0.0
    };
    // The ratio depends on netlist topology and which swaps the run
    // accepted, so it is telemetry, not an invariant: surface a shallow
    // advantage as a warning instead of failing.
    if swap_evals > 0 && incremental_work_ratio < 3.0 {
        dme_obs::warn!(
            "dosepl incremental re-timing advantage is shallow: \
             {incremental_gate_evals} cone gate evals vs {full_equivalent_gate_evals} \
             full-equivalent (ratio {incremental_work_ratio:.2}, expected ≥ 3)"
        );
    }
    dme_obs::counter_add("dosepl/swaps_attempted", swaps_attempted as u64);
    dme_obs::counter_add("dosepl/swaps_accepted", swaps_accepted as u64);
    dme_obs::counter_add("dosepl/swap_evals", swap_evals as u64);
    dme_obs::counter_add("dosepl/rounds", rounds_run as u64);
    dme_obs::counter_add("dosepl/distance_cutoffs", tallies.distance_cutoffs as u64);
    dme_obs::counter_add("dosepl/rejected_bbox", tallies.rejected_bbox as u64);
    dme_obs::counter_add("dosepl/rejected_hpwl", tallies.rejected_hpwl as u64);
    dme_obs::counter_add("dosepl/rejected_leakage", tallies.rejected_leakage as u64);
    dme_obs::counter_add("dosepl/rejected_timing", tallies.rejected_timing as u64);
    dme_obs::counter_add(
        "dosepl/accepted_provisional",
        tallies.accepted_provisional as u64,
    );
    dme_obs::counter_add("dosepl/rolled_back", tallies.rolled_back as u64);
    if dme_obs::enabled() {
        dme_obs::set_qor("dosepl/mct_ns", golden_after.mct_ns);
        dme_obs::set_qor("dosepl/leakage_uw", golden_after.leakage_uw);
        dme_obs::set_qor("dosepl/swaps_accepted", swaps_accepted as f64);
        dme_obs::set_qor("dosepl/swaps_attempted", swaps_attempted as f64);
        dme_obs::set_qor("dosepl/incremental_work_ratio", incremental_work_ratio);
    }
    DoseplResult {
        placement,
        assignment,
        golden_before,
        golden_after,
        swaps_attempted,
        swaps_accepted,
        rounds_run,
        swap_evals,
        incremental_gate_evals,
        full_equivalent_gate_evals,
        incremental_work_ratio,
        filter_tallies: tallies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{optimize, DmoptConfig, Objective};
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles};

    #[test]
    fn dosepl_never_degrades_golden_timing() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let dm = optimize(
            &ctx,
            &DmoptConfig {
                objective: Objective::MinTiming { xi_uw: 0.0 },
                grid_g_um: 5.0,
                ..DmoptConfig::default()
            },
        )
        .expect("dmopt");
        let cfg = DoseplConfig {
            top_k: 100,
            rounds: 4,
            swaps_per_round: 2,
            ..DoseplConfig::default()
        };
        let r = dosepl(&ctx, &dm.poly_map, None, -2.0, &cfg);
        assert!(r.golden_after.mct_ns <= r.golden_before.mct_ns + 1e-12);
        assert!(r.rounds_run >= 1);
        // Placement stays legal throughout.
        r.placement.check_legal(&d.netlist, &lib).expect("legal");
        // Per-swap timing never exceeds full re-analysis (the
        // incremental timer walks at most the whole netlist per call),
        // and the work advantage is reported as telemetry. The exact
        // ratio depends on topology and accepted-swap order, so it is
        // not asserted against a fixed threshold here (a shallow ratio
        // surfaces as a warn-level event instead).
        if r.swap_evals > 0 {
            assert!(
                r.incremental_gate_evals <= r.full_equivalent_gate_evals,
                "incremental {} vs full-equivalent {} gate evals",
                r.incremental_gate_evals,
                r.full_equivalent_gate_evals
            );
            assert!(r.incremental_work_ratio >= 1.0);
            let expect = r.full_equivalent_gate_evals as f64 / r.incremental_gate_evals as f64;
            assert!((r.incremental_work_ratio - expect).abs() < 1e-12);
            let t = r.filter_tallies;
            assert_eq!(
                t.rejected_bbox
                    + t.rejected_hpwl
                    + t.rejected_leakage
                    + t.rejected_timing
                    + t.accepted_provisional,
                r.swaps_attempted,
                "every attempted candidate is dispositioned by exactly one filter"
            );
            assert_eq!(t.rejected_timing + t.accepted_provisional, r.swap_evals);
        }
    }

    #[test]
    fn assignment_tracks_cell_positions() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let grid = dme_dosemap::DoseGrid::with_granularity(p.die_w_um, p.die_h_um, 5.0);
        // Left half gets +4%, right half −4%.
        let vals: Vec<f64> = (0..grid.num_cells())
            .map(|g| {
                if grid.cell_center_um(g).0 < p.die_w_um / 2.0 {
                    4.0
                } else {
                    -4.0
                }
            })
            .collect();
        let map = DoseMap::from_values(grid, vals);
        let a = assignment_for_placement(&ctx, &p, &map, None, -2.0);
        for i in 0..ctx.num_instances() {
            let (x, y) = p.center(&lib, &d.netlist, dme_netlist::InstId(i as u32));
            let expect = -2.0 * map.dose_pct[map.grid.cell_of(x, y)];
            assert_eq!(a.dl_nm[i], expect, "instance {i} at ({x}, {y})");
            assert!(a.dl_nm[i].abs() == 8.0);
            assert_eq!(a.dw_nm[i], 0.0);
        }
    }

    #[test]
    fn hpwl_filter_blocks_distant_moves() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let cell = dme_netlist::InstId(5);
        let near = p.center(&lib, &d.netlist, cell);
        let delta_stay = hpwl_delta_frac(&ctx, &p, cell, near);
        assert!(delta_stay.abs() < 1e-12);
        let far = (p.die_w_um, p.die_h_um);
        let delta_far = hpwl_delta_frac(&ctx, &p, cell, far);
        assert!(
            delta_far > 0.1,
            "moving across the die must blow up HPWL: {delta_far}"
        );
    }
}
