//! Optimization context: everything DMopt needs, computed once.

use dme_liberty::{fit, Library};
use dme_netlist::Design;
use dme_placement::Placement;
use dme_sta::{analyze, GeometryAssignment, TimingReport};

/// A compact golden-analysis summary (the numbers the paper's tables
/// report).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenSummary {
    /// Minimum cycle time, ns.
    pub mct_ns: f64,
    /// Total leakage power, µW.
    pub leakage_uw: f64,
}

impl GoldenSummary {
    /// Extracts the summary from a timing report.
    pub fn from_report(r: &TimingReport) -> Self {
        Self {
            mct_ns: r.mct_ns,
            leakage_uw: r.total_leakage_uw,
        }
    }

    /// Percentage improvement of `self` over a baseline (positive =
    /// better), as `(mct_imp_pct, leakage_imp_pct)` — the "imp. (%)"
    /// columns of the paper's tables.
    pub fn improvement_over(&self, base: &GoldenSummary) -> (f64, f64) {
        (
            100.0 * (base.mct_ns - self.mct_ns) / base.mct_ns,
            100.0 * (base.leakage_uw - self.leakage_uw) / base.leakage_uw,
        )
    }
}

/// Shared optimization context: library fits, the nominal golden
/// analysis, and per-instance surrogate coefficients selected at each
/// instance's operating point (input slew × output load), exactly as the
/// paper's flow prescribes (Fig. 8).
#[derive(Debug)]
pub struct OptContext<'a> {
    /// The standard-cell library.
    pub lib: &'a Library,
    /// The design under optimization.
    pub design: &'a Design,
    /// Its placement.
    pub placement: &'a Placement,
    /// Fitted surrogate coefficients for every library master.
    pub fit: fit::LibraryFit,
    /// Golden analysis at nominal geometry.
    pub nominal: TimingReport,
    /// Setup time per instance (zero for combinational cells), ns.
    pub setup_ns: Vec<f64>,
    /// `Ap` per instance: ∂delay/∂L at its operating point, ns/nm.
    pub ap: Vec<f64>,
    /// `Bp` per instance: ∂delay/∂W, ns/nm.
    pub bp: Vec<f64>,
    /// `αp` per instance: quadratic leakage coefficient, nW/nm².
    pub alpha: Vec<f64>,
    /// `βp` per instance: linear leakage coefficient (vs ΔL), nW/nm.
    pub beta: Vec<f64>,
    /// `γp` per instance: linear leakage coefficient (vs ΔW), nW/nm.
    pub gamma: Vec<f64>,
}

impl<'a> OptContext<'a> {
    /// Builds the context: fits the library, runs the nominal golden
    /// analysis, and selects per-instance coefficients by interpolating
    /// the fitted grids at each instance's (slew, load).
    pub fn new(lib: &'a Library, design: &'a Design, placement: &'a Placement) -> Self {
        let nl = &design.netlist;
        let n = nl.num_instances();
        let libfit = fit::fit_library(lib);
        let nominal = analyze(lib, nl, placement, &GeometryAssignment::nominal(n));
        let tech = lib.tech();
        let mut ap = vec![0.0; n];
        let mut bp = vec![0.0; n];
        let mut alpha = vec![0.0; n];
        let mut beta = vec![0.0; n];
        let mut gamma = vec![0.0; n];
        let mut setup = vec![0.0; n];
        for (i, inst) in nl.instances.iter().enumerate() {
            let f = &libfit.cells[inst.cell_idx];
            let slew = nominal.input_slew_ns[i];
            let load = nominal.load_ff[i];
            ap[i] = f.ap_at(slew, load);
            bp[i] = f.bp_at(slew, load);
            alpha[i] = f.alpha;
            beta[i] = f.beta;
            gamma[i] = f.gamma;
            setup[i] = lib.cell(inst.cell_idx).setup_ns(tech);
        }
        Self {
            lib,
            design,
            placement,
            fit: libfit,
            nominal,
            setup_ns: setup,
            ap,
            bp,
            alpha,
            beta,
            gamma,
        }
    }

    /// Number of instances in the design.
    pub fn num_instances(&self) -> usize {
        self.design.netlist.num_instances()
    }

    /// Golden summary of the nominal design.
    pub fn nominal_summary(&self) -> GoldenSummary {
        GoldenSummary::from_report(&self.nominal)
    }

    /// Surrogate leakage delta (nW) for a geometry assignment — the
    /// optimizer-side estimate (Eq. 2 of the paper in nm units).
    pub fn surrogate_leakage_delta_nw(&self, doses: &GeometryAssignment) -> f64 {
        (0..self.num_instances())
            .map(|i| {
                let dl = doses.dl_nm[i];
                let dw = doses.dw_nm[i];
                self.alpha[i] * dl * dl + self.beta[i] * dl + self.gamma[i] * dw
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_netlist::{gen, profiles};

    #[test]
    fn context_has_sane_coefficients() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        for i in 0..ctx.num_instances() {
            assert!(ctx.ap[i] > 0.0, "Ap[{i}]");
            assert!(ctx.bp[i] < 0.0, "Bp[{i}]");
            assert!(ctx.alpha[i] > 0.0 && ctx.beta[i] < 0.0 && ctx.gamma[i] > 0.0);
            if d.netlist.instances[i].is_sequential {
                assert!(ctx.setup_ns[i] > 0.0);
            }
        }
    }

    #[test]
    fn surrogate_tracks_golden_leakage_direction() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let n = ctx.num_instances();
        // +5% dose everywhere (ΔL = −10 nm): surrogate must predict a
        // large leakage increase, like the golden model.
        let fast = GeometryAssignment::uniform(n, -10.0, 0.0);
        let surr = ctx.surrogate_leakage_delta_nw(&fast) / 1000.0;
        let golden =
            analyze(&lib, &d.netlist, &p, &fast).total_leakage_uw - ctx.nominal.total_leakage_uw;
        assert!(surr > 0.0 && golden > 0.0);
        assert!(
            (surr - golden).abs() < 0.35 * golden,
            "surr {surr} vs golden {golden}"
        );
    }

    #[test]
    fn improvement_math_matches_paper_convention() {
        let base = GoldenSummary {
            mct_ns: 2.0,
            leakage_uw: 100.0,
        };
        let better = GoldenSummary {
            mct_ns: 1.8,
            leakage_uw: 90.0,
        };
        let (mct_imp, leak_imp) = better.improvement_over(&base);
        assert!((mct_imp - 10.0).abs() < 1e-12);
        assert!((leak_imp - 10.0).abs() < 1e-12);
    }
}
