//! Dose map and placement co-optimization for timing yield enhancement
//! and leakage power reduction.
//!
//! This crate implements the primary contribution of Jeong, Kahng, Park
//! and Yao's DAC 2008 / TCAD 2010 paper on design-aware exposure-dose
//! maps:
//!
//! - **DMopt** ([`optimize`]): placement-aware dose-map optimization.
//!   The exposure field is partitioned into a dose grid; gate delay is
//!   linear and gate leakage quadratic in the per-grid dose deltas. Two
//!   convex formulations are supported — minimize leakage under a timing
//!   constraint (a QP, Section III-A/B.1 of the paper) and minimize the
//!   clock period under a leakage constraint (a QCP, Section III-A/B.2,
//!   solved here by exact bisection over the QP feasibility oracle) —
//!   on the poly layer alone (gate length) or poly + active layers
//!   (length + width).
//! - **dosePl** ([`dosepl()`]): the dose-map-aware placement heuristic of
//!   the paper's Appendix — cell swapping toward higher-dose regions with
//!   bounding-box / distance / HPWL / leakage filters, ECO legalization
//!   and golden-timing rollback (Algorithm 1).
//! - The full **flow** ([`flow`]): nominal analysis → DMopt → golden
//!   signoff → dosePl (Figs. 7–8).
//!
//! Everything is driven by golden analyses from the substrate crates:
//! synthetic libraries (`dme-liberty`), generated designs
//! (`dme-netlist`), placement (`dme-placement`), STA (`dme-sta`), the
//! dose-map model (`dme-dosemap`) and the convex solver (`dme-qp`).
//!
//! # Example
//!
//! ```
//! use dmeopt::{OptContext, DmoptConfig, optimize};
//! use dme_netlist::{gen, profiles};
//! use dme_liberty::Library;
//! use dme_device::Technology;
//!
//! # fn main() -> Result<(), dmeopt::DmoptError> {
//! let lib = Library::standard(Technology::n65());
//! let design = gen::generate(&profiles::tiny(), &lib);
//! let placement = dme_placement::place(&design, &lib);
//! let ctx = OptContext::new(&lib, &design, &placement);
//! let cfg = DmoptConfig { grid_g_um: 10.0, ..DmoptConfig::default() };
//! let result = optimize(&ctx, &cfg)?;
//! // Leakage goes down, timing does not degrade (beyond tolerance).
//! assert!(result.golden_after.leakage_uw <= result.golden_before.leakage_uw + 1e-9);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod context;
pub mod dosepl;
mod error;
pub mod flow;
mod formulate;
mod gridindex;
mod optimize;

pub use context::{GoldenSummary, OptContext};
pub use dosepl::{
    dosepl, DeltaEngineStats, DoseplConfig, DoseplResult, EnumTallies, PathEnum, SwapEngine,
};
pub use error::DmoptError;
pub use formulate::{Formulation, FormulationParams, VarLayout};
pub use optimize::{
    optimize, DmoptConfig, DmoptResult, Layers, Objective, ObsSolverObserver, SolverKind,
};
