//! Property-based tests for DMopt end to end on small random designs.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles::TechNode, DesignProfile};
use dmeopt::{optimize, DmoptConfig, Objective, OptContext};
use proptest::prelude::*;

fn random_profile() -> impl Strategy<Value = DesignProfile> {
    (100usize..250, any::<u64>(), 5usize..10).prop_map(|(cells, seed, levels)| DesignProfile {
        name: "PROP".into(),
        node: TechNode::N65,
        target_cells: cells,
        num_primary_inputs: 8,
        seq_fraction: 0.12,
        levels,
        chain_bias: 0.85,
        level_taper: 0.0,
        slices: 1,
        ff_tap_deep_frac: 0.8,
        die_area_mm2: cells as f64 * 5.0e-6,
        utilization: 0.7,
        seed,
    })
}

proptest! {
    // End-to-end optimizations are expensive; a handful of random designs
    // per run is enough to catch structural regressions.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The QP never degrades golden timing beyond the guard band and the
    /// produced map always satisfies the equipment constraints.
    #[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
    fn qp_is_sound_on_random_designs(profile in random_profile(), g in 4.0f64..12.0) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let cfg = DmoptConfig { grid_g_um: g, ..DmoptConfig::default() };
        let r = optimize(&ctx, &cfg).expect("optimize");
        prop_assert!(r.golden_after.mct_ns <= r.golden_before.mct_ns * 1.005,
            "timing regressed: {} -> {}", r.golden_before.mct_ns, r.golden_after.mct_ns);
        // The paper's headline property: the design-aware map is no
        // leakier than the best *uniform* dose map achieving the same (or
        // better) golden timing. (With the default 2% timing margin the
        // QP is asked to speed the design up slightly, so comparing to
        // the nominal leakage alone is not an invariant.)
        let n = ctx.num_instances();
        let mut best_uniform: Option<f64> = None;
        for step in 0..=10 {
            let dose = 0.5 * step as f64;
            let u = dme_sta::analyze(
                &lib,
                &d.netlist,
                &p,
                &dme_sta::GeometryAssignment::uniform(n, -2.0 * dose, 0.0),
            );
            if u.mct_ns <= r.golden_after.mct_ns + 1e-12 {
                best_uniform = Some(u.total_leakage_uw);
                break; // doses are monotone: the first feasible is the leanest
            }
        }
        if let Some(uniform_leak) = best_uniform {
            prop_assert!(
                r.golden_after.leakage_uw <= uniform_leak * 1.02,
                "design-aware map ({} µW) lost to uniform dose ({} µW)",
                r.golden_after.leakage_uw,
                uniform_leak
            );
        }
        r.poly_map.check(-5.0, 5.0, 2.0 + 0.5).expect("map constraints");
        // The assignment is consistent with the map.
        for i in 0..ctx.num_instances() {
            let g = r.poly_map.grid.cell_of(
                p.center(&lib, &d.netlist, dme_netlist::InstId(i as u32)).0,
                p.center(&lib, &d.netlist, dme_netlist::InstId(i as u32)).1,
            );
            prop_assert!((r.assignment.dl_nm[i] - (-2.0) * r.poly_map.dose_pct[g]).abs() < 1e-9);
        }
    }

    /// The QCP with ξ = 0 never increases surrogate leakage and never
    /// worsens golden timing.
    #[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
    fn qcp_is_sound_on_random_designs(profile in random_profile()) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let cfg = DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 6.0,
            ..DmoptConfig::default()
        };
        let r = optimize(&ctx, &cfg).expect("optimize");
        prop_assert!(r.golden_after.mct_ns <= r.golden_before.mct_ns + 1e-9);
        prop_assert!(r.surrogate_delta_leakage_uw <= 0.05 * r.golden_before.leakage_uw,
            "surrogate leakage exceeded budget: {}", r.surrogate_delta_leakage_uw);
        prop_assert!(r.solved_t_ns.is_some());
    }
}
