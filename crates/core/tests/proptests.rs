//! Property-based tests for DMopt end to end on small random designs.

use dme_device::Technology;
use dme_dosemap::{DoseGrid, DoseMap};
use dme_liberty::Library;
use dme_netlist::{gen, profiles::TechNode, DesignProfile};
use dmeopt::{
    dosepl, optimize, DmoptConfig, DoseplConfig, Objective, OptContext, PathEnum, SwapEngine,
};
use proptest::prelude::*;

fn random_profile() -> impl Strategy<Value = DesignProfile> {
    (100usize..250, any::<u64>(), 5usize..10).prop_map(|(cells, seed, levels)| DesignProfile {
        name: "PROP".into(),
        node: TechNode::N65,
        target_cells: cells,
        num_primary_inputs: 8,
        seq_fraction: 0.12,
        levels,
        chain_bias: 0.85,
        level_taper: 0.0,
        slices: 1,
        ff_tap_deep_frac: 0.8,
        die_area_mm2: cells as f64 * 5.0e-6,
        utilization: 0.7,
        seed,
    })
}

proptest! {
    // End-to-end optimizations are expensive; a handful of random designs
    // per run is enough to catch structural regressions.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The QP never degrades golden timing beyond the guard band and the
    /// produced map always satisfies the equipment constraints.
    #[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
    fn qp_is_sound_on_random_designs(profile in random_profile(), g in 4.0f64..12.0) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let cfg = DmoptConfig { grid_g_um: g, ..DmoptConfig::default() };
        let r = optimize(&ctx, &cfg).expect("optimize");
        prop_assert!(r.golden_after.mct_ns <= r.golden_before.mct_ns * 1.005,
            "timing regressed: {} -> {}", r.golden_before.mct_ns, r.golden_after.mct_ns);
        // The paper's headline property: the design-aware map is no
        // leakier than the best *uniform* dose map achieving the same (or
        // better) golden timing. (With the default 2% timing margin the
        // QP is asked to speed the design up slightly, so comparing to
        // the nominal leakage alone is not an invariant.)
        let n = ctx.num_instances();
        let mut best_uniform: Option<f64> = None;
        for step in 0..=10 {
            let dose = 0.5 * step as f64;
            let u = dme_sta::analyze(
                &lib,
                &d.netlist,
                &p,
                &dme_sta::GeometryAssignment::uniform(n, -2.0 * dose, 0.0),
            );
            if u.mct_ns <= r.golden_after.mct_ns + 1e-12 {
                best_uniform = Some(u.total_leakage_uw);
                break; // doses are monotone: the first feasible is the leanest
            }
        }
        if let Some(uniform_leak) = best_uniform {
            prop_assert!(
                r.golden_after.leakage_uw <= uniform_leak * 1.02,
                "design-aware map ({} µW) lost to uniform dose ({} µW)",
                r.golden_after.leakage_uw,
                uniform_leak
            );
        }
        r.poly_map.check(-5.0, 5.0, 2.0 + 0.5).expect("map constraints");
        // The assignment is consistent with the map.
        for i in 0..ctx.num_instances() {
            let g = r.poly_map.grid.cell_of(
                p.center(&lib, &d.netlist, dme_netlist::InstId(i as u32)).0,
                p.center(&lib, &d.netlist, dme_netlist::InstId(i as u32)).1,
            );
            prop_assert!((r.assignment.dl_nm[i] - (-2.0) * r.poly_map.dose_pct[g]).abs() < 1e-9);
        }
    }

    /// The O(Δ) dosePl engine is bitwise-identical to the from-scratch
    /// reference on random designs and synthetic dose maps: the same
    /// candidates are filtered the same way, the same swaps are
    /// accepted, and the final placement/assignment/MCT bits agree.
    #[test]
    fn dosepl_delta_engine_matches_reference(
        profile in random_profile(),
        g in 4.0f64..12.0,
        map_seed in any::<u64>(),
        rounds in 1usize..4,
        swaps_per_round in 1usize..4,
    ) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        // Synthetic dose map: deterministic pseudorandom per-cell doses in
        // [−4%, +4%] — dosePl only reads the map, so equipment smoothness
        // is irrelevant here and no QP solve is needed.
        let grid = DoseGrid::with_granularity(p.die_w_um, p.die_h_um, g);
        let vals: Vec<f64> = (0..grid.num_cells())
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(map_seed)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((h >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
            })
            .collect();
        let map = DoseMap::from_values(grid, vals);
        let base = DoseplConfig {
            top_k: 50,
            rounds,
            swaps_per_round,
            ..DoseplConfig::default()
        };
        let fast = dosepl(&ctx, &map, None, -2.0, &DoseplConfig {
            engine: SwapEngine::Delta,
            ..base.clone()
        });
        let refr = dosepl(&ctx, &map, None, -2.0, &DoseplConfig {
            engine: SwapEngine::Reference,
            ..base
        });
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&fast.placement.x_um), bits(&refr.placement.x_um));
        prop_assert_eq!(bits(&fast.placement.y_um), bits(&refr.placement.y_um));
        prop_assert_eq!(bits(&fast.assignment.dl_nm), bits(&refr.assignment.dl_nm));
        prop_assert_eq!(bits(&fast.assignment.dw_nm), bits(&refr.assignment.dw_nm));
        prop_assert_eq!(fast.golden_after.mct_ns.to_bits(), refr.golden_after.mct_ns.to_bits());
        prop_assert_eq!(fast.golden_after.leakage_uw.to_bits(), refr.golden_after.leakage_uw.to_bits());
        prop_assert_eq!(fast.swaps_attempted, refr.swaps_attempted);
        prop_assert_eq!(fast.swaps_accepted, refr.swaps_accepted);
        prop_assert_eq!(fast.rounds_run, refr.rounds_run);
        prop_assert_eq!(fast.swap_evals, refr.swap_evals);
        // The delta engine replays rejected candidates from its undo
        // journal (zero gate evaluations) where the reference engine
        // re-times the cone back, so it must do no more work — while
        // reaching the bitwise-identical result checked above.
        prop_assert!(
            fast.incremental_gate_evals <= refr.incremental_gate_evals,
            "delta engine did more gate evals ({}) than reference ({})",
            fast.incremental_gate_evals,
            refr.incremental_gate_evals
        );
        prop_assert_eq!(fast.filter_tallies, refr.filter_tallies);
    }

    /// The O(K) incremental path enumerator (heap-driven top-K selection,
    /// no round-start full analyze) drives the engine to bitwise-identical
    /// decisions as the full analyze + full-sort walk on random designs.
    #[test]
    fn dosepl_enum_modes_agree_bitwise(
        profile in random_profile(),
        g in 4.0f64..12.0,
        map_seed in any::<u64>(),
        rounds in 1usize..4,
        swaps_per_round in 1usize..4,
    ) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let grid = DoseGrid::with_granularity(p.die_w_um, p.die_h_um, g);
        let vals: Vec<f64> = (0..grid.num_cells())
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(map_seed)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((h >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
            })
            .collect();
        let map = DoseMap::from_values(grid, vals);
        let base = DoseplConfig {
            top_k: 50,
            rounds,
            swaps_per_round,
            engine: SwapEngine::Delta,
            ..DoseplConfig::default()
        };
        let inc = dosepl(&ctx, &map, None, -2.0, &DoseplConfig {
            path_enum: PathEnum::Incremental,
            ..base.clone()
        });
        let full = dosepl(&ctx, &map, None, -2.0, &DoseplConfig {
            path_enum: PathEnum::Full,
            ..base
        });
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&inc.placement.x_um), bits(&full.placement.x_um));
        prop_assert_eq!(bits(&inc.placement.y_um), bits(&full.placement.y_um));
        prop_assert_eq!(bits(&inc.assignment.dl_nm), bits(&full.assignment.dl_nm));
        prop_assert_eq!(bits(&inc.assignment.dw_nm), bits(&full.assignment.dw_nm));
        prop_assert_eq!(inc.golden_after.mct_ns.to_bits(), full.golden_after.mct_ns.to_bits());
        prop_assert_eq!(
            inc.golden_after.leakage_uw.to_bits(),
            full.golden_after.leakage_uw.to_bits()
        );
        prop_assert_eq!(inc.swaps_attempted, full.swaps_attempted);
        prop_assert_eq!(inc.swaps_accepted, full.swaps_accepted);
        prop_assert_eq!(inc.rounds_run, full.rounds_run);
        prop_assert_eq!(inc.swap_evals, full.swap_evals);
        prop_assert_eq!(inc.filter_tallies, full.filter_tallies);
        // Mode accounting: incremental rounds never pay the round-start
        // full analyze; full-walk rounds never touch the heap, and every
        // heap pop is either selected or discarded as stale.
        prop_assert_eq!(inc.enum_tallies.full_walks, 0);
        prop_assert_eq!(inc.enum_tallies.full_analyze_skipped as usize, inc.rounds_run);
        prop_assert_eq!(
            inc.enum_tallies.endpoints_popped,
            inc.enum_tallies.endpoints_selected + inc.enum_tallies.stale_discards
        );
        prop_assert_eq!(full.enum_tallies.full_walks as usize, full.rounds_run);
        prop_assert_eq!(full.enum_tallies.full_analyze_skipped, 0);
        prop_assert_eq!(full.enum_tallies.endpoints_popped, 0);
    }

    /// The QCP with ξ = 0 never increases surrogate leakage and never
    /// worsens golden timing.
    #[test]
#[cfg_attr(debug_assertions, ignore = "expensive optimizer run: use --release")]
    fn qcp_is_sound_on_random_designs(profile in random_profile()) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let ctx = OptContext::new(&lib, &d, &p);
        let cfg = DmoptConfig {
            objective: Objective::MinTiming { xi_uw: 0.0 },
            grid_g_um: 6.0,
            ..DmoptConfig::default()
        };
        let r = optimize(&ctx, &cfg).expect("optimize");
        prop_assert!(r.golden_after.mct_ns <= r.golden_before.mct_ns + 1e-9);
        prop_assert!(r.surrogate_delta_leakage_uw <= 0.05 * r.golden_before.leakage_uw,
            "surrogate leakage exceeded budget: {}", r.surrogate_delta_leakage_uw);
        prop_assert!(r.solved_t_ns.is_some());
    }
}
