//! NLDM-style 2-D lookup tables with bilinear interpolation.

use std::fmt;

/// A lookup table indexed by input slew (rows) and output load (columns),
/// the shape Liberty NLDM `cell_rise`/`cell_fall` groups use.
///
/// Lookups bilinearly interpolate between the four surrounding corners;
/// queries outside the axis range extrapolate linearly from the outermost
/// segment, matching common STA-tool behavior.
#[derive(Clone, PartialEq)]
pub struct Table2d {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    /// Row-major: `values[slew_index * load_axis.len() + load_index]`.
    values: Vec<f64>,
}

impl fmt::Debug for Table2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Table2d({}x{})",
            self.slew_axis.len(),
            self.load_axis.len()
        )
    }
}

impl Table2d {
    /// Builds a table by evaluating `f(slew, load)` at every grid point.
    ///
    /// # Panics
    ///
    /// Panics if either axis has fewer than two points or is not strictly
    /// increasing.
    pub fn tabulate<F: FnMut(f64, f64) -> f64>(
        slew_axis: &[f64],
        load_axis: &[f64],
        mut f: F,
    ) -> Self {
        assert!(
            slew_axis.len() >= 2 && load_axis.len() >= 2,
            "axes need ≥ 2 points"
        );
        for axis in [slew_axis, load_axis] {
            for w in axis.windows(2) {
                assert!(w[1] > w[0], "table axis must be strictly increasing");
            }
        }
        let mut values = Vec::with_capacity(slew_axis.len() * load_axis.len());
        for &s in slew_axis {
            for &c in load_axis {
                values.push(f(s, c));
            }
        }
        Self {
            slew_axis: slew_axis.to_vec(),
            load_axis: load_axis.to_vec(),
            values,
        }
    }

    /// The slew (row) axis.
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// The load (column) axis.
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }

    /// Raw value at grid indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn at(&self, slew_idx: usize, load_idx: usize) -> f64 {
        assert!(slew_idx < self.slew_axis.len() && load_idx < self.load_axis.len());
        self.values[slew_idx * self.load_axis.len() + load_idx]
    }

    /// Bilinear interpolation (linear extrapolation outside the grid).
    pub fn lookup(&self, slew: f64, load: f64) -> f64 {
        let (i0, i1, ts) = segment(&self.slew_axis, slew);
        let (j0, j1, tl) = segment(&self.load_axis, load);
        let v00 = self.at(i0, j0);
        let v01 = self.at(i0, j1);
        let v10 = self.at(i1, j0);
        let v11 = self.at(i1, j1);
        let a = v00 + (v01 - v00) * tl;
        let b = v10 + (v11 - v10) * tl;
        a + (b - a) * ts
    }

    /// Index of the grid point whose (slew, load) coordinates are nearest
    /// to the query, as `(slew_idx, load_idx)`. Used when applying the
    /// "nearest entry" coefficient-selection rule from the paper.
    pub fn nearest_indices(&self, slew: f64, load: f64) -> (usize, usize) {
        (
            nearest(&self.slew_axis, slew),
            nearest(&self.load_axis, load),
        )
    }
}

/// Finds the interpolation segment for `x` in a sorted axis: returns the
/// two bracketing indices and the interpolation parameter `t` (which may
/// fall outside `[0, 1]` for extrapolation).
fn segment(axis: &[f64], x: f64) -> (usize, usize, f64) {
    let n = axis.len();
    let hi = match axis.iter().position(|&a| a >= x) {
        Some(0) => 1,
        Some(i) => i,
        None => n - 1,
    };
    let lo = hi - 1;
    let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
    (lo, hi, t)
}

fn nearest(axis: &[f64], x: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &a) in axis.iter().enumerate() {
        let d = (a - x).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane() -> Table2d {
        // f(s, c) = 2 s + 3 c + 1 (bilinear interpolation is exact on planes)
        Table2d::tabulate(&[0.0, 1.0, 2.0], &[0.0, 10.0, 20.0], |s, c| {
            2.0 * s + 3.0 * c + 1.0
        })
    }

    #[test]
    fn exact_at_corners() {
        let t = plane();
        assert_eq!(t.lookup(0.0, 0.0), 1.0);
        assert_eq!(t.lookup(2.0, 20.0), 2.0 * 2.0 + 3.0 * 20.0 + 1.0);
    }

    #[test]
    fn exact_on_planes_between_corners() {
        let t = plane();
        for &(s, c) in &[(0.5, 5.0), (1.7, 12.3), (0.25, 19.0)] {
            let expect = 2.0 * s + 3.0 * c + 1.0;
            assert!((t.lookup(s, c) - expect).abs() < 1e-12, "at ({s},{c})");
        }
    }

    #[test]
    #[allow(clippy::neg_multiply)]
    fn linear_extrapolation_outside_grid() {
        let t = plane();
        let expect = 2.0 * 3.0 + 3.0 * 25.0 + 1.0;
        assert!((t.lookup(3.0, 25.0) - expect).abs() < 1e-12);
        let expect_low = 2.0 * -1.0 + 3.0 * -5.0 + 1.0;
        assert!((t.lookup(-1.0, -5.0) - expect_low).abs() < 1e-12);
    }

    #[test]
    fn monotone_table_interpolates_monotonically() {
        let t = Table2d::tabulate(&[0.0, 1.0], &[1.0, 2.0, 4.0], |s, c| s + c * c);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let c = 1.0 + 3.0 * i as f64 / 20.0;
            let v = t.lookup(0.5, c);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn nearest_indices_pick_closest_entry() {
        let t = plane();
        assert_eq!(t.nearest_indices(0.4, 16.0), (0, 2));
        assert_eq!(t.nearest_indices(1.6, 4.0), (2, 0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_axis_panics() {
        Table2d::tabulate(&[0.0, 0.0], &[0.0, 1.0], |_, _| 0.0);
    }
}
