//! Least-squares calibration of the paper's surrogate coefficients.
//!
//! For every cell master and every (input slew × output load) table entry,
//! the gate delay is fitted *linearly* against the gate-length delta
//! (coefficient `Ap`, ns/nm) and the gate-width delta (`Bp`, ns/nm):
//!
//! ```text
//! t_p' = t_p + Ap·ΔL + Bp·ΔW = t_p + Ap·Ds·d^P + Bp·Ds·d^A
//! ```
//!
//! and the cell leakage is fitted *quadratically* against `ΔL` and
//! *linearly* against `ΔW` (`αp`, `βp`, `γp`, nW per nm or nm²):
//!
//! ```text
//! ΔLeakage_p = αp·ΔL² + βp·ΔL + γp·ΔW
//! ```
//!
//! The sum-of-squared-residual bookkeeping mirrors the numbers the paper
//! quotes (max SSR 0.0005 for L-only fits, 0.0101 when W joins).

use crate::{Library, Table2d, TableAxes};
use dme_qp::lsq;

/// Gate-length sample offsets used for fitting, nm (±5% dose at
/// −2 nm/% sensitivity, 1 nm steps — the paper's 21 variants).
pub const LENGTH_SAMPLES_NM: [f64; 21] = [
    -10.0, -9.0, -8.0, -7.0, -6.0, -5.0, -4.0, -3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0,
    7.0, 8.0, 9.0, 10.0,
];

/// Fitted surrogate coefficients for one cell master.
#[derive(Debug, Clone)]
pub struct CellFit {
    /// Index of the cell in its [`Library`].
    pub cell_idx: usize,
    /// `Ap` (∂delay/∂L, ns/nm) per slew/load entry, interpolable.
    pub ap: Table2d,
    /// `Bp` (∂delay/∂W, ns/nm) per slew/load entry, interpolable.
    pub bp: Table2d,
    /// `αp`: quadratic leakage coefficient, nW/nm².
    pub alpha: f64,
    /// `βp`: linear leakage coefficient vs `ΔL`, nW/nm.
    pub beta: f64,
    /// `γp`: linear leakage coefficient vs `ΔW`, nW/nm.
    pub gamma: f64,
    /// Worst SSR of the delay-vs-L fits across table entries, normalized
    /// by the squared nominal delay of the entry.
    pub max_ssr_delay_l: f64,
    /// Worst normalized SSR of the delay-vs-W fits.
    pub max_ssr_delay_w: f64,
    /// SSR of the leakage quadratic fit, normalized by squared nominal
    /// leakage.
    pub ssr_leakage: f64,
}

impl CellFit {
    /// Clamps an operating point into the fitted grid's span (coefficient
    /// grids must not be extrapolated: outside the characterized region
    /// the linearized sensitivities are not validated).
    fn clamp_op(&self, slew_ns: f64, load_ff: f64) -> (f64, f64) {
        let s_axis = self.ap.slew_axis();
        let l_axis = self.ap.load_axis();
        (
            slew_ns.clamp(s_axis[0], *s_axis.last().expect("nonempty axis")),
            load_ff.clamp(l_axis[0], *l_axis.last().expect("nonempty axis")),
        )
    }

    /// `Ap` at an operating point (bilinear over the fitted grid — the
    /// paper's "entries with interpolation" option; queries outside the
    /// grid clamp to its edge).
    pub fn ap_at(&self, slew_ns: f64, load_ff: f64) -> f64 {
        let (s, l) = self.clamp_op(slew_ns, load_ff);
        self.ap.lookup(s, l)
    }

    /// `Bp` at an operating point.
    pub fn bp_at(&self, slew_ns: f64, load_ff: f64) -> f64 {
        let (s, l) = self.clamp_op(slew_ns, load_ff);
        self.bp.lookup(s, l)
    }

    /// `Ap` at the *nearest* table entry (the paper's other option).
    pub fn ap_nearest(&self, slew_ns: f64, load_ff: f64) -> f64 {
        let (i, j) = self.ap.nearest_indices(slew_ns, load_ff);
        self.ap.at(i, j)
    }

    /// Surrogate leakage delta in nW for geometry deltas.
    pub fn leakage_delta_nw(&self, dl_nm: f64, dw_nm: f64) -> f64 {
        self.alpha * dl_nm * dl_nm + self.beta * dl_nm + self.gamma * dw_nm
    }
}

/// Fit results for a whole library.
#[derive(Debug, Clone)]
pub struct LibraryFit {
    /// One fit per cell master, indexed like the library's cells.
    pub cells: Vec<CellFit>,
    /// Worst normalized delay-vs-L SSR across all cells and entries.
    pub max_ssr_delay_l: f64,
    /// Worst normalized delay-vs-W SSR across all cells and entries.
    pub max_ssr_delay_w: f64,
}

/// Fits one cell master of a library.
///
/// # Panics
///
/// Panics if `idx` is out of range for the library.
pub fn fit_cell(lib: &Library, idx: usize) -> CellFit {
    let tech = lib.tech();
    let cell = lib.cell(idx);
    let axes: &TableAxes = lib.axes();
    let dl: Vec<f64> = LENGTH_SAMPLES_NM.to_vec();
    let dw: Vec<f64> = LENGTH_SAMPLES_NM.to_vec();

    let mut max_ssr_l: f64 = 0.0;
    let mut max_ssr_w: f64 = 0.0;

    let ap = Table2d::tabulate(&axes.slew_ns, &axes.load_ff, |s, c| {
        let d0 = worst(cell.evaluate(tech, 0.0, 0.0, c, s));
        let ys: Vec<f64> = dl
            .iter()
            .map(|&x| worst(cell.evaluate(tech, x, 0.0, c, s)))
            .collect();
        let (_, slope, ssr) = lsq::fit_linear(&dl, &ys).expect("delay-vs-L fit");
        max_ssr_l = max_ssr_l.max(ssr / (d0 * d0));
        slope
    });
    let bp = Table2d::tabulate(&axes.slew_ns, &axes.load_ff, |s, c| {
        let d0 = worst(cell.evaluate(tech, 0.0, 0.0, c, s));
        let ys: Vec<f64> = dw
            .iter()
            .map(|&x| worst(cell.evaluate(tech, 0.0, x, c, s)))
            .collect();
        let (_, slope, ssr) = lsq::fit_linear(&dw, &ys).expect("delay-vs-W fit");
        max_ssr_w = max_ssr_w.max(ssr / (d0 * d0));
        slope
    });

    // Leakage: ΔLeak vs ΔL quadratic (through the origin is not enforced;
    // the constant term is discarded because ΔLeak(0) = 0 by construction).
    let leak0 = cell.leakage_nw(tech, 0.0, 0.0);
    let leak_l: Vec<f64> = dl
        .iter()
        .map(|&x| cell.leakage_nw(tech, x, 0.0) - leak0)
        .collect();
    let (_, beta, alpha, ssr_leak) = lsq::fit_quadratic(&dl, &leak_l).expect("leakage fit");
    let leak_w: Vec<f64> = dw
        .iter()
        .map(|&x| cell.leakage_nw(tech, 0.0, x) - leak0)
        .collect();
    let (_, gamma, _) = lsq::fit_linear(&dw, &leak_w).expect("leakage-vs-W fit");

    CellFit {
        cell_idx: idx,
        ap,
        bp,
        alpha,
        beta,
        gamma,
        max_ssr_delay_l: max_ssr_l,
        max_ssr_delay_w: max_ssr_w,
        ssr_leakage: ssr_leak / (leak0 * leak0),
    }
}

fn worst(d: (f64, f64, f64, f64)) -> f64 {
    d.0.max(d.1)
}

/// Fits every cell of a library. This is the "less than 1 min on a single
/// processor" characterization step of the paper; here it takes
/// milliseconds because the underlying models are analytic.
pub fn fit_library(lib: &Library) -> LibraryFit {
    let cells: Vec<CellFit> = (0..lib.cells().len()).map(|i| fit_cell(lib, i)).collect();
    let max_l = cells
        .iter()
        .map(|c| c.max_ssr_delay_l)
        .fold(0.0f64, f64::max);
    let max_w = cells
        .iter()
        .map(|c| c.max_ssr_delay_w)
        .fold(0.0f64, f64::max);
    LibraryFit {
        cells,
        max_ssr_delay_l: max_l,
        max_ssr_delay_w: max_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;

    #[test]
    fn ap_is_positive_delay_grows_with_length() {
        let lib = Library::standard(Technology::n65());
        let fit = fit_cell(&lib, lib.index_of("INVX1").unwrap());
        for &s in &lib.axes().slew_ns {
            for &c in &lib.axes().load_ff {
                assert!(fit.ap_at(s, c) > 0.0, "Ap at ({s},{c})");
            }
        }
    }

    #[test]
    fn bp_is_negative_delay_shrinks_with_width() {
        let lib = Library::standard(Technology::n65());
        let fit = fit_cell(&lib, lib.index_of("NAND2X1").unwrap());
        for &s in &lib.axes().slew_ns {
            for &c in &lib.axes().load_ff {
                assert!(fit.bp_at(s, c) < 0.0, "Bp at ({s},{c})");
            }
        }
    }

    #[test]
    fn leakage_coefficients_have_paper_signs() {
        // alpha > 0 (convex), beta < 0 (leakage falls as L grows),
        // gamma > 0 (leakage grows with W).
        let lib = Library::standard(Technology::n65());
        for idx in 0..lib.cells().len() {
            let fit = fit_cell(&lib, idx);
            let name = lib.cell(idx).name();
            assert!(fit.alpha > 0.0, "{name}: alpha = {}", fit.alpha);
            assert!(fit.beta < 0.0, "{name}: beta = {}", fit.beta);
            assert!(fit.gamma > 0.0, "{name}: gamma = {}", fit.gamma);
        }
    }

    #[test]
    fn delay_fit_residuals_are_tiny() {
        // The paper quotes max SSR 0.0005 for the L-only fits; our delay
        // model is piecewise-smooth in L, so normalized residuals must be
        // at least that small.
        let lib = Library::standard(Technology::n65());
        let fit = fit_library(&lib);
        assert!(
            fit.max_ssr_delay_l < 5e-4,
            "max L SSR = {}",
            fit.max_ssr_delay_l
        );
        assert!(
            fit.max_ssr_delay_w < 5e-4,
            "max W SSR = {}",
            fit.max_ssr_delay_w
        );
    }

    #[test]
    fn surrogate_tracks_golden_leakage_within_the_dose_range() {
        let lib = Library::standard(Technology::n65());
        let idx = lib.index_of("INVX2").unwrap();
        let fit = fit_cell(&lib, idx);
        let cell = lib.cell(idx);
        let leak0 = cell.leakage_nw(lib.tech(), 0.0, 0.0);
        for dl in [-10.0, -5.0, 0.0, 5.0, 10.0] {
            let golden = cell.leakage_nw(lib.tech(), dl, 0.0) - leak0;
            let surrogate = fit.leakage_delta_nw(dl, 0.0);
            // The quadratic surrogate of an exponential carries ~20%
            // error at mid-range points — the paper accepts the same
            // surrogate (its footnote 4) and validates with golden signoff.
            let tol = 0.25 * golden.abs() + 0.05 * leak0;
            assert!(
                (golden - surrogate).abs() <= tol,
                "dl = {dl}: {golden} vs {surrogate}"
            );
        }
    }

    #[test]
    fn nearest_and_interpolated_coefficients_agree_on_grid() {
        let lib = Library::standard(Technology::n65());
        let fit = fit_cell(&lib, 0);
        let s = lib.axes().slew_ns[3];
        let c = lib.axes().load_ff[2];
        assert!((fit.ap_at(s, c) - fit.ap_nearest(s, c)).abs() < 1e-15);
    }
}
