//! Library assembly and characterized-variant caching.

use crate::cell::{CellFunction, CellMaster, CellTables};
use dme_device::Technology;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// The slew/load grid shared by all NLDM tables in a library.
#[derive(Debug, Clone, PartialEq)]
pub struct TableAxes {
    /// Input transition times in ns (strictly increasing).
    pub slew_ns: Vec<f64>,
    /// Output loads in fF (strictly increasing).
    pub load_ff: Vec<f64>,
}

impl Default for TableAxes {
    fn default() -> Self {
        Self {
            slew_ns: vec![0.002, 0.008, 0.02, 0.05, 0.1, 0.2, 0.4],
            load_ff: vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
        }
    }
}

/// A complete standard-cell library for one technology node.
///
/// [`Library::standard`] creates the cell set the paper reports: 36
/// combinational masters and 9 sequential masters.
#[derive(Debug)]
pub struct Library {
    tech: Technology,
    cells: Vec<CellMaster>,
    axes: TableAxes,
    by_name: HashMap<String, usize>,
}

impl Library {
    /// Builds the standard 36 + 9 master library for a technology.
    pub fn standard(tech: Technology) -> Self {
        use CellFunction::*;
        let mut specs: Vec<(CellFunction, u32)> = Vec::new();
        for x in [1u32, 2, 4, 8] {
            specs.push((Inv, x));
            specs.push((Buf, x));
        }
        for k in [2u8, 3, 4] {
            for x in [1u32, 2] {
                specs.push((Nand(k), x));
                specs.push((Nor(k), x));
            }
        }
        for x in [1u32, 2] {
            specs.push((And(2), x));
            specs.push((Or(2), x));
            specs.push((Aoi21, x));
            specs.push((Oai21, x));
            specs.push((Xor2, x));
            specs.push((Xnor2, x));
            specs.push((Mux2, x));
        }
        specs.push((Aoi22, 1));
        specs.push((Oai22, 1));
        // 9 sequential masters.
        for x in [1u32, 2] {
            specs.push((Dff, x));
            specs.push((Dffr, x));
            specs.push((Dffs, x));
        }
        specs.push((Dffrs, 1));
        specs.push((Latch, 1));
        specs.push((Sdff, 1));

        let cells: Vec<CellMaster> = specs
            .into_iter()
            .map(|(f, x)| CellMaster::new(&tech, f, x))
            .collect();
        let by_name = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name().to_string(), i))
            .collect();
        Self {
            tech,
            cells,
            axes: TableAxes::default(),
            by_name,
        }
    }

    /// The library's technology node.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The table axes shared by every cell.
    pub fn axes(&self) -> &TableAxes {
        &self.axes
    }

    /// All cell masters.
    pub fn cells(&self) -> &[CellMaster] {
        &self.cells
    }

    /// Cell master by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn cell(&self, idx: usize) -> &CellMaster {
        &self.cells[idx]
    }

    /// Cell master by name, e.g. `"NAND2X1"`.
    pub fn cell_by_name(&self, name: &str) -> Option<&CellMaster> {
        self.by_name.get(name).map(|&i| &self.cells[i])
    }

    /// Index of a cell master by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Number of combinational masters (the paper uses 36).
    pub fn combinational_count(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_sequential()).count()
    }

    /// Number of sequential masters (the paper uses 9).
    pub fn sequential_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_sequential()).count()
    }

    /// Indices of all combinational masters.
    pub fn combinational_indices(&self) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|&i| !self.cells[i].is_sequential())
            .collect()
    }

    /// Indices of all sequential masters.
    pub fn sequential_indices(&self) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|&i| self.cells[i].is_sequential())
            .collect()
    }
}

/// Cache of characterized cell variants keyed by quantized geometry
/// deltas — the in-memory equivalent of the paper's "21 different
/// characterized libraries" (441 when both layers are modulated).
///
/// Deltas are quantized to 0.1 nm before keying, comfortably finer than
/// the 1 nm (0.5% dose) characterization step.
#[derive(Debug)]
pub struct VariantCache<'a> {
    library: &'a Library,
    /// Read-mostly: after warm-up every STA pass is pure lookups, so a
    /// `RwLock` lets the level-parallel timing workers share the cache
    /// without serializing on a mutex. Values are `Arc`s so a hit hands
    /// out a pointer instead of cloning the tables.
    cache: RwLock<HashMap<(usize, i64, i64), Arc<CellTables>>>,
}

impl<'a> VariantCache<'a> {
    /// Creates an empty cache over a library.
    pub fn new(library: &'a Library) -> Self {
        Self {
            library,
            cache: RwLock::new(HashMap::new()),
        }
    }

    fn key(dl_nm: f64, dw_nm: f64) -> (i64, i64) {
        ((dl_nm * 10.0).round() as i64, (dw_nm * 10.0).round() as i64)
    }

    /// Tables for cell `idx` at geometry deltas, characterizing on first
    /// use. Deltas are quantized to 0.1 nm.
    pub fn tables(&self, idx: usize, dl_nm: f64, dw_nm: f64) -> Arc<CellTables> {
        let (kl, kw) = Self::key(dl_nm, dw_nm);
        let key = (idx, kl, kw);
        if let Some(hit) = self.cache.read().expect("variant cache poisoned").get(&key) {
            return Arc::clone(hit);
        }
        // Characterize outside any lock: concurrent misses may duplicate
        // the work, but the first writer wins and the result is identical
        // (characterization is deterministic in the quantized key).
        let tables = Arc::new(self.library.cell(idx).characterize(
            self.library.tech(),
            kl as f64 / 10.0,
            kw as f64 / 10.0,
            self.library.axes(),
        ));
        let mut cache = self.cache.write().expect("variant cache poisoned");
        Arc::clone(cache.entry(key).or_insert(tables))
    }

    /// Number of distinct characterized variants held.
    pub fn len(&self) -> usize {
        self.cache.read().expect("variant cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_paper_cell_counts() {
        for tech in [Technology::n65(), Technology::n90()] {
            let lib = Library::standard(tech);
            assert_eq!(lib.combinational_count(), 36, "combinational masters");
            assert_eq!(lib.sequential_count(), 9, "sequential masters");
            assert_eq!(lib.cells().len(), 45);
        }
    }

    #[test]
    fn cell_names_are_unique_and_resolvable() {
        let lib = Library::standard(Technology::n65());
        for (i, c) in lib.cells().iter().enumerate() {
            assert_eq!(lib.index_of(c.name()), Some(i), "{}", c.name());
        }
        assert!(lib.cell_by_name("NO_SUCH_CELL").is_none());
    }

    #[test]
    fn variant_cache_hits_after_first_characterization() {
        let lib = Library::standard(Technology::n65());
        let cache = VariantCache::new(&lib);
        assert!(cache.is_empty());
        let a = cache.tables(0, -2.0, 0.0);
        assert_eq!(cache.len(), 1);
        let b = cache.tables(0, -2.04, 0.0); // quantizes to the same key
        assert_eq!(cache.len(), 1);
        assert_eq!(a, b);
        let _ = cache.tables(0, -3.0, 0.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn variants_differ_by_geometry() {
        let lib = Library::standard(Technology::n65());
        let cache = VariantCache::new(&lib);
        let nominal = cache.tables(0, 0.0, 0.0);
        let short = cache.tables(0, -10.0, 0.0);
        assert!(short.delay_worst(0.02, 2.0) < nominal.delay_worst(0.02, 2.0));
    }
}
