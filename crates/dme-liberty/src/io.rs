//! Liberty (`.lib`) text emission and parsing.
//!
//! The synthetic libraries can be dumped in a Liberty-compatible subset —
//! `library`/`cell`/`pin`/`timing` groups with `lu_table_template`-style
//! NLDM tables and per-cell leakage — and read back. The writer/parser
//! pair covers the subset this workspace produces (it is not a general
//! Liberty front end), which is enough to exchange characterized dose
//! variants with external tools and to round-trip-test the
//! characterization flow.

use crate::cell::CellTables;
use crate::{Library, Table2d, TableAxes};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from [`parse_library`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseLibError {
    /// The text ended inside a group.
    UnexpectedEof,
    /// A structural token was malformed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A numeric field failed to parse.
    Number {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for ParseLibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLibError::UnexpectedEof => write!(f, "unexpected end of liberty text"),
            ParseLibError::Syntax { line, message } => {
                write!(f, "liberty syntax error at line {line}: {message}")
            }
            ParseLibError::Number { line, token } => {
                write!(f, "invalid number {token:?} at line {line}")
            }
        }
    }
}

impl Error for ParseLibError {}

/// A cell read back from Liberty text: its tables plus scalar attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCell {
    /// Cell (master) name.
    pub name: String,
    /// Footprint area, µm².
    pub area_um2: f64,
    /// Leakage power, nW.
    pub leakage_nw: f64,
    /// Input pin capacitance, fF.
    pub input_cap_ff: f64,
    /// The four NLDM tables.
    pub tables: CellTables,
}

/// A library read back from Liberty text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLibrary {
    /// Library name attribute.
    pub name: String,
    /// Shared table axes.
    pub axes: TableAxes,
    /// Cells by name (sorted).
    pub cells: BTreeMap<String, ParsedCell>,
}

fn write_floats(out: &mut String, vals: &[f64]) {
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v:.6}");
    }
}

fn write_table(out: &mut String, keyword: &str, t: &Table2d, indent: &str) {
    let _ = writeln!(out, "{indent}{keyword} (nldm_7x7) {{");
    for r in 0..t.slew_axis().len() {
        let row: Vec<f64> = (0..t.load_axis().len()).map(|c| t.at(r, c)).collect();
        let mut s = String::new();
        write_floats(&mut s, &row);
        let sep = if r + 1 == t.slew_axis().len() {
            ""
        } else {
            ", \\"
        };
        let _ = writeln!(out, "{indent}  values (\"{s}\"){sep}");
    }
    let _ = writeln!(out, "{indent}}}");
}

/// Emits a library (at given geometry deltas) as Liberty text.
///
/// Every cell is written with one output pin carrying the four NLDM
/// tables (`cell_rise`, `cell_fall`, `rise_transition`,
/// `fall_transition`), its leakage power and its input pin capacitance.
pub fn write_library(lib: &Library, dl_nm: f64, dw_nm: f64) -> String {
    let tech = lib.tech();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "library (dme_{}_dl{}_dw{}) {{",
        tech.name, dl_nm, dw_nm
    );
    let _ = writeln!(out, "  delay_model : table_lookup;");
    let _ = writeln!(out, "  time_unit : \"1ns\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  leakage_power_unit : \"1nW\";");
    let axes = lib.axes();
    let _ = writeln!(out, "  lu_table_template (nldm_7x7) {{");
    let _ = writeln!(out, "    variable_1 : input_net_transition;");
    let _ = writeln!(out, "    variable_2 : total_output_net_capacitance;");
    let mut s = String::new();
    write_floats(&mut s, &axes.slew_ns);
    let _ = writeln!(out, "    index_1 (\"{s}\");");
    let mut s = String::new();
    write_floats(&mut s, &axes.load_ff);
    let _ = writeln!(out, "    index_2 (\"{s}\");");
    let _ = writeln!(out, "  }}");

    for cell in lib.cells() {
        let tables = cell.characterize(tech, dl_nm, dw_nm, axes);
        let _ = writeln!(out, "  cell ({}) {{", cell.name());
        let _ = writeln!(out, "    area : {:.4};", cell.area_um2());
        let _ = writeln!(
            out,
            "    cell_leakage_power : {:.6};",
            cell.leakage_nw(tech, dl_nm, dw_nm)
        );
        let _ = writeln!(out, "    pin (A) {{");
        let _ = writeln!(out, "      direction : input;");
        let _ = writeln!(
            out,
            "      capacitance : {:.6};",
            cell.input_cap_ff(tech, dl_nm, dw_nm)
        );
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    pin (Y) {{");
        let _ = writeln!(out, "      direction : output;");
        let _ = writeln!(out, "      timing () {{");
        write_table(&mut out, "cell_rise", &tables.delay_rise, "        ");
        write_table(&mut out, "cell_fall", &tables.delay_fall, "        ");
        write_table(&mut out, "rise_transition", &tables.slew_rise, "        ");
        write_table(&mut out, "fall_transition", &tables.slew_fall, "        ");
        let _ = writeln!(out, "      }}");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Tokenized line cursor for the parser.
struct Cursor<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Self { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Result<(usize, &'a str), ParseLibError> {
        let r = self.peek().ok_or(ParseLibError::UnexpectedEof)?;
        self.pos += 1;
        Ok(r)
    }
}

fn parse_floats(line: usize, s: &str) -> Result<Vec<f64>, ParseLibError> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<f64>().map_err(|_| ParseLibError::Number {
                line,
                token: t.to_string(),
            })
        })
        .collect()
}

/// Extracts the quoted payload of a `name ("...")`-style line.
fn quoted(line: usize, s: &str) -> Result<&str, ParseLibError> {
    let a = s.find('"').ok_or_else(|| ParseLibError::Syntax {
        line,
        message: format!("expected quoted payload in {s:?}"),
    })?;
    let b = s
        .rfind('"')
        .filter(|&b| b > a)
        .ok_or_else(|| ParseLibError::Syntax {
            line,
            message: "unterminated quote".into(),
        })?;
    Ok(&s[a + 1..b])
}

fn scalar_after_colon(line: usize, s: &str) -> Result<f64, ParseLibError> {
    let v = s
        .split(':')
        .nth(1)
        .ok_or_else(|| ParseLibError::Syntax {
            line,
            message: format!("expected ':' in {s:?}"),
        })?
        .trim()
        .trim_end_matches(';')
        .trim();
    v.parse::<f64>().map_err(|_| ParseLibError::Number {
        line,
        token: v.to_string(),
    })
}

fn parse_table(cur: &mut Cursor<'_>, axes: &TableAxes) -> Result<Table2d, ParseLibError> {
    // Header line already consumed by the caller; read `values` rows until
    // the closing brace.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    loop {
        let (line, l) = cur.next()?;
        if l.starts_with('}') {
            break;
        }
        if let Some(start) = l.find('"') {
            let end = l.rfind('"').unwrap_or(start);
            rows.push(parse_floats(line, &l[start + 1..end])?);
        }
    }
    if rows.len() != axes.slew_ns.len() || rows.iter().any(|r| r.len() != axes.load_ff.len()) {
        return Err(ParseLibError::Syntax {
            line: 0,
            message: format!(
                "table shape {}x{:?} does not match the template",
                rows.len(),
                rows.first().map(|r| r.len())
            ),
        });
    }
    let mut it = rows.into_iter().flatten();
    Ok(Table2d::tabulate(&axes.slew_ns, &axes.load_ff, |_, _| {
        it.next().expect("shape checked")
    }))
}

/// Parses Liberty text produced by [`write_library`] (or an equivalent
/// subset).
///
/// # Errors
///
/// Returns a [`ParseLibError`] describing the first structural or numeric
/// problem encountered.
pub fn parse_library(text: &str) -> Result<ParsedLibrary, ParseLibError> {
    let mut cur = Cursor::new(text);
    let (line, header) = cur.next()?;
    if !header.starts_with("library") {
        return Err(ParseLibError::Syntax {
            line,
            message: "expected `library (...) {`".into(),
        });
    }
    let name = header
        .split(['(', ')'])
        .nth(1)
        .unwrap_or("unnamed")
        .trim()
        .to_string();

    let mut axes: Option<TableAxes> = None;
    let mut cells = BTreeMap::new();

    while let Some((line, l)) = cur.peek() {
        if l.starts_with("lu_table_template") {
            cur.next()?;
            let mut slew = Vec::new();
            let mut load = Vec::new();
            loop {
                let (line, l) = cur.next()?;
                if l.starts_with('}') {
                    break;
                }
                if l.starts_with("index_1") {
                    slew = parse_floats(line, quoted(line, l)?)?;
                } else if l.starts_with("index_2") {
                    load = parse_floats(line, quoted(line, l)?)?;
                }
            }
            if slew.len() < 2 || load.len() < 2 {
                return Err(ParseLibError::Syntax {
                    line,
                    message: "template must define index_1 and index_2".into(),
                });
            }
            axes = Some(TableAxes {
                slew_ns: slew,
                load_ff: load,
            });
        } else if l.starts_with("cell ") || l.starts_with("cell(") {
            let axes = axes.clone().ok_or_else(|| ParseLibError::Syntax {
                line,
                message: "cell before lu_table_template".into(),
            })?;
            cur.next()?;
            let cell_name = l
                .split(['(', ')'])
                .nth(1)
                .ok_or_else(|| ParseLibError::Syntax {
                    line,
                    message: "cell without a name".into(),
                })?
                .trim()
                .to_string();
            let mut area = 0.0;
            let mut leak = 0.0;
            let mut cap = 0.0;
            let mut tables: [Option<Table2d>; 4] = [None, None, None, None];
            let mut depth = 1usize;
            while depth > 0 {
                let (line, l) = cur.next()?;
                if l.starts_with("area") {
                    area = scalar_after_colon(line, l)?;
                } else if l.starts_with("cell_leakage_power") {
                    leak = scalar_after_colon(line, l)?;
                } else if l.starts_with("capacitance") {
                    cap = scalar_after_colon(line, l)?;
                } else if l.starts_with("cell_rise") {
                    tables[0] = Some(parse_table(&mut cur, &axes)?);
                } else if l.starts_with("cell_fall") {
                    tables[1] = Some(parse_table(&mut cur, &axes)?);
                } else if l.starts_with("rise_transition") {
                    tables[2] = Some(parse_table(&mut cur, &axes)?);
                } else if l.starts_with("fall_transition") {
                    tables[3] = Some(parse_table(&mut cur, &axes)?);
                } else if l.ends_with('{') {
                    depth += 1;
                } else if l.starts_with('}') {
                    depth -= 1;
                }
            }
            let [Some(dr), Some(df), Some(sr), Some(sf)] = tables else {
                return Err(ParseLibError::Syntax {
                    line,
                    message: format!("cell {cell_name} is missing NLDM tables"),
                });
            };
            cells.insert(
                cell_name.clone(),
                ParsedCell {
                    name: cell_name,
                    area_um2: area,
                    leakage_nw: leak,
                    input_cap_ff: cap,
                    tables: CellTables {
                        delay_rise: dr,
                        delay_fall: df,
                        slew_rise: sr,
                        slew_fall: sf,
                    },
                },
            );
        } else {
            cur.next()?;
        }
    }
    let axes = axes.ok_or(ParseLibError::UnexpectedEof)?;
    Ok(ParsedLibrary { name, axes, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;

    #[test]
    fn roundtrip_preserves_tables_and_scalars() {
        let lib = Library::standard(Technology::n65());
        let text = write_library(&lib, -4.0, 2.0);
        let parsed = parse_library(&text).expect("parse");
        assert_eq!(parsed.cells.len(), lib.cells().len());
        assert_eq!(parsed.axes.slew_ns, lib.axes().slew_ns);
        for cell in lib.cells() {
            let p = &parsed.cells[cell.name()];
            let tables = cell.characterize(lib.tech(), -4.0, 2.0, lib.axes());
            for (si, &s) in lib.axes().slew_ns.iter().enumerate() {
                for (li, &c) in lib.axes().load_ff.iter().enumerate() {
                    assert!(
                        (p.tables.delay_rise.at(si, li) - tables.delay_rise.at(si, li)).abs()
                            < 1e-5,
                        "{} rise at ({s},{c})",
                        cell.name()
                    );
                }
            }
            assert!((p.leakage_nw - cell.leakage_nw(lib.tech(), -4.0, 2.0)).abs() < 1e-4);
            assert!((p.area_um2 - cell.area_um2()).abs() < 1e-3);
        }
    }

    #[test]
    fn written_text_looks_like_liberty() {
        let lib = Library::standard(Technology::n65());
        let text = write_library(&lib, 0.0, 0.0);
        assert!(text.contains("library (dme_65nm_dl0_dw0) {"));
        assert!(text.contains("lu_table_template (nldm_7x7)"));
        assert!(text.contains("cell (INVX1) {"));
        assert!(text.contains("cell_rise (nldm_7x7)"));
        // 45 cells, one timing group each.
        assert_eq!(text.matches("cell_leakage_power").count(), 45);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            parse_library(""),
            Err(ParseLibError::UnexpectedEof)
        ));
        assert!(matches!(
            parse_library("hello world"),
            Err(ParseLibError::Syntax { .. })
        ));
        // A cell before the template is structural nonsense.
        let bad = "library (x) {\n cell (A) {\n }\n}\n";
        assert!(matches!(
            parse_library(bad),
            Err(ParseLibError::Syntax { .. })
        ));
    }

    #[test]
    fn parse_reports_bad_numbers() {
        let lib = Library::standard(Technology::n65());
        let text = write_library(&lib, 0.0, 0.0).replace("0.002000", "zero.oops");
        assert!(matches!(
            parse_library(&text),
            Err(ParseLibError::Number { .. })
        ));
    }
}
