//! Standard-cell masters built from equivalent-inverter stages.

use crate::library::TableAxes;
use crate::table::Table2d;
use dme_device::{StageParams, Technology};

/// Logic function of a cell master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellFunction {
    /// Inverter.
    Inv,
    /// Non-inverting buffer (two internal stages).
    Buf,
    /// k-input NAND.
    Nand(u8),
    /// k-input NOR.
    Nor(u8),
    /// k-input AND (NAND + inverter).
    And(u8),
    /// k-input OR (NOR + inverter).
    Or(u8),
    /// AND-OR-invert 2-1.
    Aoi21,
    /// OR-AND-invert 2-1.
    Oai21,
    /// AND-OR-invert 2-2.
    Aoi22,
    /// OR-AND-invert 2-2.
    Oai22,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 multiplexer.
    Mux2,
    /// D flip-flop.
    Dff,
    /// D flip-flop with asynchronous reset.
    Dffr,
    /// D flip-flop with asynchronous set.
    Dffs,
    /// D flip-flop with both set and reset.
    Dffrs,
    /// Transparent latch.
    Latch,
    /// Scan D flip-flop.
    Sdff,
}

impl CellFunction {
    /// Number of logic (data) inputs.
    pub fn num_inputs(self) -> usize {
        match self {
            CellFunction::Inv | CellFunction::Buf => 1,
            CellFunction::Nand(k)
            | CellFunction::Nor(k)
            | CellFunction::And(k)
            | CellFunction::Or(k) => k as usize,
            CellFunction::Aoi21 | CellFunction::Oai21 | CellFunction::Mux2 => 3,
            CellFunction::Aoi22 | CellFunction::Oai22 => 4,
            CellFunction::Xor2 | CellFunction::Xnor2 => 2,
            CellFunction::Dff
            | CellFunction::Dffr
            | CellFunction::Dffs
            | CellFunction::Dffrs
            | CellFunction::Latch => 1,
            CellFunction::Sdff => 2,
        }
    }

    /// Whether the function is inverting (affects nothing electrically in
    /// this model but is part of the logical description).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            CellFunction::Inv
                | CellFunction::Nand(_)
                | CellFunction::Nor(_)
                | CellFunction::Aoi21
                | CellFunction::Oai21
                | CellFunction::Aoi22
                | CellFunction::Oai22
                | CellFunction::Xnor2
        )
    }

    /// Whether this is a sequential (state-holding) function.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CellFunction::Dff
                | CellFunction::Dffr
                | CellFunction::Dffs
                | CellFunction::Dffrs
                | CellFunction::Latch
                | CellFunction::Sdff
        )
    }

    /// Transistor topology: `(n_stack, p_stack, n_legs, p_legs, stages)`.
    /// Stacks are series depths (divide drive), legs are parallel device
    /// groups (add leakage and diffusion cap), stages is the number of
    /// internal inverting stages in the equivalent chain.
    fn topology(self) -> (u8, u8, u8, u8, u8) {
        match self {
            CellFunction::Inv => (1, 1, 1, 1, 1),
            CellFunction::Buf => (1, 1, 1, 1, 2),
            CellFunction::Nand(k) => (k, 1, 1, k, 1),
            CellFunction::Nor(k) => (1, k, k, 1, 1),
            CellFunction::And(k) => (k, 1, 1, k, 2),
            CellFunction::Or(k) => (1, k, k, 1, 2),
            CellFunction::Aoi21 => (2, 2, 2, 2, 1),
            CellFunction::Oai21 => (2, 2, 2, 2, 1),
            CellFunction::Aoi22 => (2, 2, 2, 2, 1),
            CellFunction::Oai22 => (2, 2, 2, 2, 1),
            CellFunction::Xor2 => (2, 2, 2, 2, 2),
            CellFunction::Xnor2 => (2, 2, 2, 2, 2),
            CellFunction::Mux2 => (2, 2, 2, 2, 2),
            // Sequential cells: master-slave chains; the clk→Q path is the
            // slave plus the output driver.
            CellFunction::Dff | CellFunction::Latch => (2, 2, 2, 2, 2),
            CellFunction::Dffr | CellFunction::Dffs | CellFunction::Sdff => (2, 2, 2, 2, 2),
            CellFunction::Dffrs => (3, 3, 2, 2, 2),
        }
    }

    /// Canonical master name prefix, e.g. `NAND3`.
    fn name_prefix(self) -> String {
        match self {
            CellFunction::Inv => "INV".into(),
            CellFunction::Buf => "BUF".into(),
            CellFunction::Nand(k) => format!("NAND{k}"),
            CellFunction::Nor(k) => format!("NOR{k}"),
            CellFunction::And(k) => format!("AND{k}"),
            CellFunction::Or(k) => format!("OR{k}"),
            CellFunction::Aoi21 => "AOI21".into(),
            CellFunction::Oai21 => "OAI21".into(),
            CellFunction::Aoi22 => "AOI22".into(),
            CellFunction::Oai22 => "OAI22".into(),
            CellFunction::Xor2 => "XOR2".into(),
            CellFunction::Xnor2 => "XNOR2".into(),
            CellFunction::Mux2 => "MUX2".into(),
            CellFunction::Dff => "DFF".into(),
            CellFunction::Dffr => "DFFR".into(),
            CellFunction::Dffs => "DFFS".into(),
            CellFunction::Dffrs => "DFFRS".into(),
            CellFunction::Latch => "LATCH".into(),
            CellFunction::Sdff => "SDFF".into(),
        }
    }
}

/// Series-stack leakage suppression: each extra series device cuts the
/// off-current by roughly 3× (the classic stack effect).
fn stack_suppression(stack: u8) -> f64 {
    0.35f64.powi(stack as i32 - 1)
}

/// One standard-cell master: a logic function at a drive strength, with
/// its equivalent-inverter stage chain and physical footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMaster {
    name: String,
    function: CellFunction,
    drive: f64,
    /// Per-leg input device widths at drive strength (nm), nominal `L`.
    wn_in_nm: f64,
    wp_in_nm: f64,
    /// Equivalent stage chain at nominal geometry (first stage receives
    /// the input, last stage drives the output).
    stages: Vec<StageParams>,
    n_stack: u8,
    p_stack: u8,
    n_legs: u8,
    p_legs: u8,
    area_um2: f64,
    width_um: f64,
}

impl CellMaster {
    /// Builds a master for `function` at integer drive strength `x`
    /// (X1, X2, …) in the given technology.
    pub fn new(tech: &Technology, function: CellFunction, x: u32) -> Self {
        let (n_stack, p_stack, n_legs, p_legs, n_stages) = function.topology();
        let drive = x as f64;
        // Stacked pull networks are upsized by stack^0.7: partial drive
        // compensation, so stacked gates are a little slower per unit load
        // (as real libraries are).
        let wn_in = tech.wmin_nm * drive * (n_stack as f64).powf(0.7);
        let wp_in = 1.3 * tech.wmin_nm * drive * (p_stack as f64).powf(0.7);
        let wn_eff = wn_in / n_stack as f64;
        let wp_eff = wp_in / p_stack as f64;
        let mut stages = Vec::with_capacity(n_stages as usize);
        for s in 0..n_stages {
            // Multi-stage cells: earlier stages at reduced drive.
            let scale = if s + 1 == n_stages {
                1.0
            } else {
                (1.0f64).max(drive / 2.0) / drive
            };
            stages.push(
                StageParams::new(wn_eff * scale, wp_eff * scale, tech.lnom_nm)
                    .with_calibrated_intrinsic(tech),
            );
        }
        let inputs = function.num_inputs();
        // Footprint: sites scale with inputs and drive; row height and site
        // width scale with the node.
        let site_um = 3.08 * tech.lnom_nm / 1000.0;
        let row_um = 28.0 * tech.lnom_nm / 1000.0;
        let seq_extra = if function.is_sequential() { 6.0 } else { 0.0 };
        let sites = ((1.5 + 0.9 * inputs as f64) * (0.8 + 0.45 * drive) + seq_extra).ceil();
        let width_um = sites * site_um;
        Self {
            name: format!("{}X{x}", function.name_prefix()),
            function,
            drive,
            wn_in_nm: wn_in,
            wp_in_nm: wp_in,
            stages,
            n_stack,
            p_stack,
            n_legs,
            p_legs,
            area_um2: width_um * row_um,
            width_um,
        }
    }

    /// Master name, e.g. `"NAND2X1"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logic function.
    pub fn function(&self) -> CellFunction {
        self.function
    }

    /// Drive strength (1.0 for X1, 2.0 for X2, …).
    pub fn drive(&self) -> f64 {
        self.drive
    }

    /// Whether the master is sequential.
    pub fn is_sequential(&self) -> bool {
        self.function.is_sequential()
    }

    /// Number of data inputs.
    pub fn num_inputs(&self) -> usize {
        self.function.num_inputs()
    }

    /// Placement footprint area in µm².
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }

    /// Placement width in µm (row height is a library constant).
    pub fn width_um(&self) -> f64 {
        self.width_um
    }

    /// Input pin capacitance in fF (per input pin).
    ///
    /// Pin capacitance is modeled at the *drawn* gate length: a poly-dose
    /// CD shift of ±10 nm changes mainly the channel underneath the
    /// contacted gate stack, while the pin load seen by the driving net is
    /// dominated by drawn-geometry gate/overlap capacitance. This matches
    /// the paper's formulation, in which net loads are extracted once and
    /// held fixed through dose optimization. Width modulation (`dw_nm`)
    /// does change the pin cap — it physically widens the device.
    pub fn input_cap_ff(&self, tech: &Technology, _dl_nm: f64, dw_nm: f64) -> f64 {
        let l = tech.lnom_nm;
        tech.gate_cap_ff(self.wn_in_nm + dw_nm, l) + tech.gate_cap_ff(self.wp_in_nm + dw_nm, l)
    }

    /// Average leakage power in nW at geometry deltas `(dl_nm, dw_nm)`,
    /// including parallel legs and series-stack suppression — the "golden"
    /// (exponential-in-L) model used for signoff.
    pub fn leakage_nw(&self, tech: &Technology, dl_nm: f64, dw_nm: f64) -> f64 {
        let l = tech.lnom_nm + dl_nm;
        let n_leak = self.n_legs as f64
            * stack_suppression(self.n_stack)
            * tech.leakage_nw(l, self.wn_in_nm + dw_nm);
        let p_leak = self.p_legs as f64
            * stack_suppression(self.p_stack)
            * tech.pmos_mobility_ratio
            * tech.leakage_nw(l, self.wp_in_nm + dw_nm);
        let per_stage = 0.5 * (n_leak + p_leak);
        // Internal stages of multi-stage cells leak too, at their drive.
        let stage_scale: f64 = self
            .stages
            .iter()
            .map(|s| s.wn_nm / self.stages.last().expect("cells have ≥ 1 stage").wn_nm)
            .sum();
        per_stage * stage_scale
    }

    /// Evaluates the full stage chain: returns `(delay_rise, delay_fall,
    /// slew_rise, slew_fall)` in ns at geometry deltas and a given output
    /// load / input slew.
    pub fn evaluate(
        &self,
        tech: &Technology,
        dl_nm: f64,
        dw_nm: f64,
        load_ff: f64,
        input_slew_ns: f64,
    ) -> (f64, f64, f64, f64) {
        let mut rise = 0.0;
        let mut fall = 0.0;
        let mut slew = input_slew_ns;
        let mut out = (0.0, 0.0);
        for (i, st) in self.stages.iter().enumerate() {
            let mut s = st.clone();
            s.l_nm = tech.lnom_nm + dl_nm;
            s.wn_nm += dw_nm;
            s.wp_nm += dw_nm;
            let load = if i + 1 == self.stages.len() {
                load_ff
            } else {
                // Internal node: next stage's gate cap.
                let nx = &self.stages[i + 1];
                tech.gate_cap_ff(nx.wn_nm + dw_nm, s.l_nm)
                    + tech.gate_cap_ff(nx.wp_nm + dw_nm, s.l_nm)
            };
            let d = s.evaluate(tech, load, slew);
            rise += d.tplh_ns;
            fall += d.tphl_ns;
            slew = 0.5 * (d.slew_rise_ns + d.slew_fall_ns);
            out = (d.slew_rise_ns, d.slew_fall_ns);
        }
        (rise, fall, out.0, out.1)
    }

    /// Flip-flop setup time in ns (sequential cells only; zero otherwise).
    pub fn setup_ns(&self, tech: &Technology) -> f64 {
        if !self.is_sequential() {
            return 0.0;
        }
        // Roughly two FO1 stage delays of the node.
        let probe = StageParams::new(tech.wmin_nm, 1.3 * tech.wmin_nm, tech.lnom_nm);
        let cin = probe.input_cap_ff(tech);
        2.0 * probe.evaluate(tech, cin, 0.01).average_ns()
    }

    /// Flip-flop hold requirement in ns (sequential cells only; zero
    /// otherwise). Short relative to setup, as in typical libraries.
    pub fn hold_ns(&self, tech: &Technology) -> f64 {
        if !self.is_sequential() {
            return 0.0;
        }
        0.4 * self.setup_ns(tech)
    }

    /// Characterizes the master at geometry deltas `(dl_nm, dw_nm)`,
    /// producing the four NLDM tables.
    pub fn characterize(
        &self,
        tech: &Technology,
        dl_nm: f64,
        dw_nm: f64,
        axes: &TableAxes,
    ) -> CellTables {
        let delay_rise = Table2d::tabulate(&axes.slew_ns, &axes.load_ff, |s, c| {
            self.evaluate(tech, dl_nm, dw_nm, c, s).0
        });
        let delay_fall = Table2d::tabulate(&axes.slew_ns, &axes.load_ff, |s, c| {
            self.evaluate(tech, dl_nm, dw_nm, c, s).1
        });
        let slew_rise = Table2d::tabulate(&axes.slew_ns, &axes.load_ff, |s, c| {
            self.evaluate(tech, dl_nm, dw_nm, c, s).2
        });
        let slew_fall = Table2d::tabulate(&axes.slew_ns, &axes.load_ff, |s, c| {
            self.evaluate(tech, dl_nm, dw_nm, c, s).3
        });
        CellTables {
            delay_rise,
            delay_fall,
            slew_rise,
            slew_fall,
        }
    }
}

/// The characterized NLDM tables of one cell variant.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTables {
    /// Low-to-high propagation delay table (ns).
    pub delay_rise: Table2d,
    /// High-to-low propagation delay table (ns).
    pub delay_fall: Table2d,
    /// Rising output transition table (ns).
    pub slew_rise: Table2d,
    /// Falling output transition table (ns).
    pub slew_fall: Table2d,
}

impl CellTables {
    /// Worst-case (max of rise/fall) propagation delay at an operating
    /// point, ns.
    pub fn delay_worst(&self, slew_ns: f64, load_ff: f64) -> f64 {
        self.delay_rise
            .lookup(slew_ns, load_ff)
            .max(self.delay_fall.lookup(slew_ns, load_ff))
    }

    /// Worst-case (max of rise/fall) output transition at an operating
    /// point, ns.
    pub fn out_slew_worst(&self, slew_ns: f64, load_ff: f64) -> f64 {
        self.slew_rise
            .lookup(slew_ns, load_ff)
            .max(self.slew_fall.lookup(slew_ns, load_ff))
    }

    /// Best-case (min of rise/fall) propagation delay at an operating
    /// point, ns — the early/hold analysis corner.
    pub fn delay_best(&self, slew_ns: f64, load_ff: f64) -> f64 {
        self.delay_rise
            .lookup(slew_ns, load_ff)
            .min(self.delay_fall.lookup(slew_ns, load_ff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::TableAxes;

    fn axes() -> TableAxes {
        TableAxes::default()
    }

    #[test]
    fn names_encode_function_and_drive() {
        let t = Technology::n65();
        assert_eq!(
            CellMaster::new(&t, CellFunction::Nand(3), 2).name(),
            "NAND3X2"
        );
        assert_eq!(CellMaster::new(&t, CellFunction::Inv, 8).name(), "INVX8");
    }

    #[test]
    fn higher_drive_is_faster_at_fixed_load() {
        let t = Technology::n65();
        let x1 = CellMaster::new(&t, CellFunction::Inv, 1);
        let x4 = CellMaster::new(&t, CellFunction::Inv, 4);
        let d1 = x1.evaluate(&t, 0.0, 0.0, 8.0, 0.03);
        let d4 = x4.evaluate(&t, 0.0, 0.0, 8.0, 0.03);
        assert!(d4.0 < d1.0 && d4.1 < d1.1);
        // ...but has larger input cap and leakage.
        assert!(x4.input_cap_ff(&t, 0.0, 0.0) > x1.input_cap_ff(&t, 0.0, 0.0));
        assert!(x4.leakage_nw(&t, 0.0, 0.0) > x1.leakage_nw(&t, 0.0, 0.0));
    }

    #[test]
    fn stacked_gates_are_slower_than_inverter() {
        let t = Technology::n65();
        let inv = CellMaster::new(&t, CellFunction::Inv, 1);
        let nand4 = CellMaster::new(&t, CellFunction::Nand(4), 1);
        assert!(
            nand4.evaluate(&t, 0.0, 0.0, 4.0, 0.03).1 > inv.evaluate(&t, 0.0, 0.0, 4.0, 0.03).1
        );
    }

    #[test]
    fn stack_effect_suppresses_leakage() {
        // NAND2's series pull-down leaks less than two parallel inverters
        // of equal device width would.
        assert!(stack_suppression(2) < 0.5);
        assert!(stack_suppression(1) == 1.0);
    }

    #[test]
    fn shorter_gate_length_is_faster_and_leakier() {
        let t = Technology::n65();
        let c = CellMaster::new(&t, CellFunction::Nand(2), 1);
        let nom = c.evaluate(&t, 0.0, 0.0, 4.0, 0.03);
        let short = c.evaluate(&t, -10.0, 0.0, 4.0, 0.03);
        assert!(short.0 < nom.0 && short.1 < nom.1);
        assert!(c.leakage_nw(&t, -10.0, 0.0) > 2.0 * c.leakage_nw(&t, 0.0, 0.0));
    }

    #[test]
    fn wider_devices_are_faster_and_leakier() {
        let t = Technology::n65();
        let c = CellMaster::new(&t, CellFunction::Inv, 1);
        let nom = c.evaluate(&t, 0.0, 0.0, 4.0, 0.03);
        let wide = c.evaluate(&t, 0.0, 10.0, 4.0, 0.03);
        assert!(wide.0 < nom.0);
        assert!(c.leakage_nw(&t, 0.0, 10.0) > c.leakage_nw(&t, 0.0, 0.0));
    }

    #[test]
    fn characterized_tables_match_direct_evaluation() {
        let t = Technology::n65();
        let c = CellMaster::new(&t, CellFunction::Aoi21, 2);
        let tables = c.characterize(&t, -4.0, 2.0, &axes());
        // At grid points the table must be exact.
        let s = axes().slew_ns[2];
        let l = axes().load_ff[3];
        let direct = c.evaluate(&t, -4.0, 2.0, l, s);
        assert!((tables.delay_rise.lookup(s, l) - direct.0).abs() < 1e-12);
        assert!((tables.delay_fall.lookup(s, l) - direct.1).abs() < 1e-12);
        assert!((tables.slew_fall.lookup(s, l) - direct.3).abs() < 1e-12);
    }

    #[test]
    fn sequential_cells_have_setup_time() {
        let t = Technology::n65();
        let dff = CellMaster::new(&t, CellFunction::Dff, 1);
        let inv = CellMaster::new(&t, CellFunction::Inv, 1);
        assert!(dff.setup_ns(&t) > 0.0);
        assert_eq!(inv.setup_ns(&t), 0.0);
        assert!(dff.is_sequential() && !inv.is_sequential());
    }

    #[test]
    fn multi_stage_cells_are_slower_than_single_stage() {
        let t = Technology::n65();
        let inv = CellMaster::new(&t, CellFunction::Inv, 2);
        let buf = CellMaster::new(&t, CellFunction::Buf, 2);
        assert!(buf.evaluate(&t, 0.0, 0.0, 4.0, 0.03).0 > inv.evaluate(&t, 0.0, 0.0, 4.0, 0.03).0);
    }

    #[test]
    fn area_scales_with_inputs_and_drive() {
        let t = Technology::n65();
        let inv1 = CellMaster::new(&t, CellFunction::Inv, 1);
        let inv4 = CellMaster::new(&t, CellFunction::Inv, 4);
        let nand4 = CellMaster::new(&t, CellFunction::Nand(4), 1);
        assert!(inv4.area_um2() > inv1.area_um2());
        assert!(nand4.area_um2() > inv1.area_um2());
        // Plausible magnitudes for a 65 nm library.
        assert!(
            inv1.area_um2() > 0.5 && inv1.area_um2() < 5.0,
            "area = {}",
            inv1.area_um2()
        );
    }
}
