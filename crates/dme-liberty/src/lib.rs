//! Liberty-style standard-cell library modeling and characterization.
//!
//! This crate replaces the foundry (Artisan TSMC 65 nm / 90 nm) timing and
//! power libraries used by the paper. It provides:
//!
//! - [`Table2d`]: nonlinear-delay-model (NLDM) lookup tables indexed by
//!   input slew × output load, with bilinear interpolation;
//! - [`CellMaster`] / [`Library`]: 36 combinational and 9 sequential cell
//!   masters per technology (the counts the paper reports), each modeled
//!   as an equivalent inverter stage with series-stack and leg factors;
//! - characterized *variants*: every cell's tables can be produced at any
//!   gate-length delta `ΔL` (poly-layer dose) and gate-width delta `ΔW`
//!   (active-layer dose), mirroring the paper's 21- and 441-variant
//!   characterized library sets ([`VariantCache`]);
//! - [`fit`]: least-squares calibration of the paper's surrogate
//!   coefficients — `Ap`, `Bp` for delay (per slew/load table entry) and
//!   `αp`, `βp`, `γp` for leakage — with the residual bookkeeping the
//!   paper quotes (max SSR).
//!
//! # Example
//!
//! ```
//! use dme_liberty::Library;
//! use dme_device::Technology;
//!
//! let lib = Library::standard(Technology::n65());
//! assert_eq!(lib.combinational_count(), 36);
//! assert_eq!(lib.sequential_count(), 9);
//! let inv = lib.cell_by_name("INVX1").expect("INVX1 exists");
//! let tables = inv.characterize(lib.tech(), 0.0, 0.0, lib.axes());
//! let d = tables.delay_worst(0.02, 2.0);
//! assert!(d > 0.0);
//! ```

#![deny(missing_docs)]

mod cell;
pub mod fit;
pub mod io;
mod library;
mod table;

pub use cell::{CellFunction, CellMaster, CellTables};
pub use library::{Library, TableAxes, VariantCache};
pub use table::Table2d;

/// Gate-length quantization step in nm used when snapping optimized doses
/// to characterized library variants (0.5% dose × |−2 nm/%| sensitivity).
pub const LENGTH_STEP_NM: f64 = 1.0;
