//! Property-based tests for NLDM tables and cell characterization.

use dme_device::Technology;
use dme_liberty::{Library, Table2d};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bilinear interpolation inside the grid stays within the min/max of
    /// the four surrounding corners.
    #[test]
    fn interpolation_within_corner_hull(
        values in proptest::collection::vec(0.0f64..10.0, 9),
        fs in 0.0f64..1.0,
        fl in 0.0f64..1.0,
    ) {
        let slews = [0.01, 0.05, 0.2];
        let loads = [1.0, 4.0, 16.0];
        let mut it = values.iter();
        let t = Table2d::tabulate(&slews, &loads, |_, _| *it.next().expect("9 values"));
        // Query inside a random cell of the grid.
        let (i, j) = ((fs * 1.999) as usize, (fl * 1.999) as usize);
        let s = slews[i] + (slews[i + 1] - slews[i]) * (fs * 2.0 - i as f64).clamp(0.0, 1.0);
        let c = loads[j] + (loads[j + 1] - loads[j]) * (fl * 2.0 - j as f64).clamp(0.0, 1.0);
        let v = t.lookup(s, c);
        let corners = [t.at(i, j), t.at(i, j + 1), t.at(i + 1, j), t.at(i + 1, j + 1)];
        let lo = corners.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = corners.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
    }

    /// Every cell master's delay is monotone in load and its leakage is
    /// monotone decreasing in gate length, across the dose range.
    #[test]
    fn masters_are_electrically_sane(
        cell_pick in 0usize..45,
        dl in -10.0f64..10.0,
        dw in -10.0f64..10.0,
        slew in 0.005f64..0.3,
    ) {
        let lib = Library::standard(Technology::n65());
        let cell = lib.cell(cell_pick % lib.cells().len());
        let tech = lib.tech();
        let d_small = cell.evaluate(tech, dl, dw, 2.0, slew);
        let d_big = cell.evaluate(tech, dl, dw, 8.0, slew);
        prop_assert!(d_big.0 > d_small.0 && d_big.1 > d_small.1, "load monotonicity");
        // Leakage decreasing in L, increasing in W.
        let leak = cell.leakage_nw(tech, dl, dw);
        prop_assert!(cell.leakage_nw(tech, dl + 1.0, dw) < leak);
        prop_assert!(cell.leakage_nw(tech, dl, dw + 5.0) > leak);
        prop_assert!(leak > 0.0 && leak.is_finite());
    }

    /// Characterized tables reproduce direct evaluation at grid points
    /// for arbitrary geometry deltas.
    #[test]
    fn characterization_matches_model(
        cell_pick in 0usize..45,
        dl in -10.0f64..10.0,
        si in 0usize..7,
        li in 0usize..7,
    ) {
        let lib = Library::standard(Technology::n65());
        let idx = cell_pick % lib.cells().len();
        let cell = lib.cell(idx);
        let tables = cell.characterize(lib.tech(), dl, 0.0, lib.axes());
        let s = lib.axes().slew_ns[si];
        let c = lib.axes().load_ff[li];
        let direct = cell.evaluate(lib.tech(), dl, 0.0, c, s);
        prop_assert!((tables.delay_rise.lookup(s, c) - direct.0).abs() < 1e-12);
        prop_assert!((tables.delay_fall.lookup(s, c) - direct.1).abs() < 1e-12);
    }
}
