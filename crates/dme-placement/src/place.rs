//! Global placement: force-directed averaging with sort-based spreading.

use crate::db::Placement;
use crate::legalize::legalize;
use dme_liberty::Library;
use dme_netlist::{Design, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Places a design with the default iteration count.
///
/// The flow is: seeded random start → `iters` rounds of (net-centroid
/// averaging, sort-based spreading) → Tetris legalization. Deterministic
/// for a given design.
pub fn place(design: &Design, lib: &Library) -> Placement {
    place_with_iterations(design, lib, 40)
}

/// Places a design with an explicit number of global iterations.
///
/// # Panics
///
/// Panics if the total cell area exceeds the die area (the profile's die
/// is too small for its cell count).
pub fn place_with_iterations(design: &Design, lib: &Library, iters: usize) -> Placement {
    let nl = &design.netlist;
    let n = nl.num_instances();
    let tech = lib.tech();
    let die_um = (design.profile.die_area_mm2 * 1e6).sqrt();
    let row_h = 28.0 * tech.lnom_nm / 1000.0;
    let site = 3.08 * tech.lnom_nm / 1000.0;
    let die_h = (die_um / row_h).floor() * row_h;
    let die_w = die_um;

    let cell_area: f64 = nl
        .instances
        .iter()
        .map(|i| lib.cell(i.cell_idx).area_um2())
        .sum();
    assert!(
        cell_area <= die_w * die_h,
        "cell area {cell_area:.0} µm² exceeds die {:.0} µm²",
        die_w * die_h
    );

    let mut rng = StdRng::seed_from_u64(design.profile.seed ^ 0x9E37_79B9_7F4A_7C15);
    // Seed x with the combinational level (signal flow left→right, a
    // standard datapath-placement prior) and y randomly; the averaging
    // iterations then only need to discover the within-level structure.
    let level = comb_levels(nl);
    let max_level = level.iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let base = level[i] as f64 / max_level;
            (0.02 + 0.96 * base) * die_w + (rng.gen::<f64>() - 0.5) * die_w / max_level
        })
        .collect();
    let mut y: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * die_h).collect();

    // PI pads evenly spaced on the left edge.
    let n_pi = nl.primary_inputs.len().max(1);
    let pi_pos: Vec<(f64, f64)> = (0..nl.primary_inputs.len())
        .map(|i| (0.0, die_h * (i as f64 + 0.5) / n_pi as f64))
        .collect();

    // Hierarchical spreading: the bin grid refines geometrically, so early
    // iterations settle the global (coarse) structure and later ones only
    // reshuffle locally — the classic grid-warping recipe. The final pass
    // uses the finest grid, which makes legalization displacement small.
    let max_bins = (n as f64).sqrt().ceil() as usize;
    for it in 0..iters {
        average_toward_nets(nl, &pi_pos, &mut x, &mut y);
        let bins = ((2.0 * 1.3f64.powi(it as i32)).ceil() as usize)
            .min(max_bins)
            .max(2);
        spread(&mut x, &mut y, die_w, die_h, bins);
    }

    let mut placement = Placement {
        die_w_um: die_w,
        die_h_um: die_h,
        row_h_um: row_h,
        site_um: site,
        x_um: x,
        y_um: y,
        pi_pos,
    };
    legalize(&mut placement, nl, lib);
    placement
}

/// One force-directed step: every movable cell moves toward the centroid
/// of the centroids of its incident nets (with a damping factor).
fn average_toward_nets(nl: &Netlist, pi_pos: &[(f64, f64)], x: &mut [f64], y: &mut [f64]) {
    // Net centroids from current positions (pads included).
    let mut cx = vec![0.0f64; nl.num_nets()];
    let mut cy = vec![0.0f64; nl.num_nets()];
    let mut cnt = vec![0u32; nl.num_nets()];
    for id in nl.inst_ids() {
        let inst = nl.instance(id);
        let i = id.0 as usize;
        for &net in inst.inputs.iter().chain(std::iter::once(&inst.output)) {
            cx[net.0 as usize] += x[i];
            cy[net.0 as usize] += y[i];
            cnt[net.0 as usize] += 1;
        }
    }
    for (k, &pi) in nl.primary_inputs.iter().enumerate() {
        cx[pi.0 as usize] += pi_pos[k].0;
        cy[pi.0 as usize] += pi_pos[k].1;
        cnt[pi.0 as usize] += 1;
    }
    for i in 0..nl.num_nets() {
        if cnt[i] > 0 {
            cx[i] /= cnt[i] as f64;
            cy[i] /= cnt[i] as f64;
        }
    }
    const DAMP: f64 = 0.85;
    for id in nl.inst_ids() {
        let inst = nl.instance(id);
        let i = id.0 as usize;
        let mut tx = 0.0;
        let mut ty = 0.0;
        let mut m = 0.0f64;
        for &net in inst.inputs.iter().chain(std::iter::once(&inst.output)) {
            let k = net.0 as usize;
            let pins = cnt[k];
            // Skip huge nets (clock-like) — they pull everything together.
            if nl.net(net).sinks.len() > 64 || pins < 2 {
                continue;
            }
            // Centroid of the *other* pins on the net (self-excluded).
            let ox = (cx[k] * pins as f64 - x[i]) / (pins - 1) as f64;
            let oy = (cy[k] * pins as f64 - y[i]) / (pins - 1) as f64;
            tx += ox;
            ty += oy;
            m += 1.0;
        }
        if m > 0.0 {
            x[i] = (1.0 - DAMP) * x[i] + DAMP * tx / m;
            y[i] = (1.0 - DAMP) * y[i] + DAMP * ty / m;
        }
    }
}

/// Combinational depth of every instance (sequential cells sit at their
/// average fanout level so register banks interleave with their logic).
fn comb_levels(nl: &Netlist) -> Vec<usize> {
    let order = nl.topo_order().expect("acyclic netlist");
    let mut level = vec![0usize; nl.num_instances()];
    for &id in &order {
        let i = id.0 as usize;
        if nl.instance(id).is_sequential {
            continue;
        }
        level[i] = nl
            .comb_fanin(id)
            .iter()
            .map(|f| level[f.0 as usize] + 1)
            .max()
            .unwrap_or(1);
    }
    // Sequential cells: place at the mean level of their consumers.
    for id in nl.inst_ids() {
        let i = id.0 as usize;
        if !nl.instance(id).is_sequential {
            continue;
        }
        let sinks = &nl.net(nl.instance(id).output).sinks;
        if sinks.is_empty() {
            continue;
        }
        let sum: usize = sinks.iter().map(|&(s, _)| level[s.0 as usize]).sum();
        level[i] = sum / sinks.len();
    }
    level
}

/// Hierarchical sort-based spreading into a `bins × bins` grid: cells are
/// split into equal-count columns by x order, each column into equal-count
/// cells by y order, and every bin's members are rescaled into the bin
/// rectangle *preserving their relative positions*. Coarse grids enforce
/// global density without disturbing local structure; the finest grid
/// (bins ≈ √n) produces a near-uniform layout ready for legalization.
fn spread(x: &mut [f64], y: &mut [f64], die_w: f64, die_h: f64, bins: usize) {
    let n = x.len();
    if n == 0 {
        return;
    }
    let bins = bins.clamp(1, n);
    let per_col = n.div_ceil(bins);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("finite x").then(a.cmp(&b)));
    let bin_w = die_w / bins as f64;
    let bin_h = die_h / bins as f64;
    for (ci, chunk) in order.chunks(per_col).enumerate() {
        let x0 = ci as f64 * bin_w;
        let mut col: Vec<usize> = chunk.to_vec();
        col.sort_by(|&a, &b| y[a].partial_cmp(&y[b]).expect("finite y").then(a.cmp(&b)));
        let per_bin = col.len().div_ceil(bins);
        for (ri, bin) in col.chunks(per_bin).enumerate() {
            let y0 = ri as f64 * bin_h;
            // Rescale members into the bin, preserving relative layout;
            // rank order is the fallback for degenerate extents.
            let minx = bin.iter().map(|&i| x[i]).fold(f64::INFINITY, f64::min);
            let maxx = bin.iter().map(|&i| x[i]).fold(f64::NEG_INFINITY, f64::max);
            let miny = bin.iter().map(|&i| y[i]).fold(f64::INFINITY, f64::min);
            let maxy = bin.iter().map(|&i| y[i]).fold(f64::NEG_INFINITY, f64::max);
            let m = bin.len() as f64;
            for (k, &i) in bin.iter().enumerate() {
                let rx = if maxx - minx > 1e-9 {
                    (x[i] - minx) / (maxx - minx)
                } else {
                    (k as f64 + 0.5) / m
                };
                let ry = if maxy - miny > 1e-9 {
                    (y[i] - miny) / (maxy - miny)
                } else {
                    (k as f64 + 0.5) / m
                };
                x[i] = x0 + (0.05 + 0.9 * rx) * bin_w;
                y[i] = y0 + (0.05 + 0.9 * ry) * bin_h;
            }
        }
    }
}

/// Convenience: total HPWL of a freshly random placement of the same
/// design, for measuring how much the placer helps (used in tests).
#[cfg(test)]
fn random_hpwl(design: &Design, lib: &Library, seed: u64) -> f64 {
    let nl = &design.netlist;
    let die_um = (design.profile.die_area_mm2 * 1e6).sqrt();
    let tech = lib.tech();
    let row_h = 28.0 * tech.lnom_nm / 1000.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let n = nl.num_instances();
    let n_pi = nl.primary_inputs.len().max(1);
    let p = Placement {
        die_w_um: die_um,
        die_h_um: die_um,
        row_h_um: row_h,
        site_um: 3.08 * tech.lnom_nm / 1000.0,
        x_um: (0..n).map(|_| rng.gen::<f64>() * die_um).collect(),
        y_um: (0..n).map(|_| rng.gen::<f64>() * die_um).collect(),
        pi_pos: (0..nl.primary_inputs.len())
            .map(|i| (0.0, die_um * (i as f64 + 0.5) / n_pi as f64))
            .collect(),
    };
    p.total_hpwl(lib, nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_netlist::{gen, profiles};

    #[test]
    fn placement_is_legal() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = place(&d, &lib);
        p.check_legal(&d.netlist, &lib).expect("legal");
    }

    #[test]
    fn placement_beats_random_on_hpwl() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::small(), &lib);
        let p = place(&d, &lib);
        let placed = p.total_hpwl(&lib, &d.netlist);
        let random = random_hpwl(&d, &lib, 1);
        assert!(
            placed < 0.5 * random,
            "placer should at least halve random HPWL: {placed:.0} vs {random:.0}"
        );
    }

    #[test]
    fn placement_is_deterministic() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let a = place(&d, &lib);
        let b = place(&d, &lib);
        assert_eq!(a, b);
    }

    #[test]
    fn swap_and_repack_stay_legal() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let mut p = place(&d, &lib);
        let a = dme_netlist::InstId(3);
        let b = dme_netlist::InstId(40);
        let row_a = (p.y_um[a.0 as usize] / p.row_h_um).round() as usize;
        let row_b = (p.y_um[b.0 as usize] / p.row_h_um).round() as usize;
        p.swap_cells(a, b);
        p.repack_rows(&lib, &d.netlist, &[row_a, row_b]);
        p.check_legal(&d.netlist, &lib)
            .expect("legal after swap + repack");
    }

    #[test]
    fn neighborhood_bbox_contains_cell() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = place(&d, &lib);
        for id in d.netlist.inst_ids() {
            let bb = p.neighborhood_bbox(&lib, &d.netlist, id);
            let (cx, cy) = p.center(&lib, &d.netlist, id);
            assert!(bb.contains(cx, cy));
        }
    }

    #[test]
    fn gate_pitch_is_sane() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = place(&d, &lib);
        let pitch = p.gate_pitch_um(&d.netlist);
        assert!(pitch > 0.5 && pitch < 50.0, "pitch = {pitch}");
    }
}
