//! Tetris-style legalization.

use crate::db::{snap, Placement};
use dme_liberty::Library;
use dme_netlist::Netlist;

/// Legalizes a global placement in place: cells are processed in x order
/// and packed into the row closest to their global position that still
/// has room, left to right ("Tetris"). Guarantees row alignment, die
/// containment and zero overlap provided total cell area fits the die.
pub fn legalize(p: &mut Placement, nl: &Netlist, lib: &Library) {
    let rows = p.num_rows().max(1);
    let mut cursor = vec![0.0f64; rows]; // next free x per row (pure packing)

    let mut order: Vec<usize> = (0..nl.num_instances()).collect();
    order.sort_by(|&a, &b| {
        p.x_um[a]
            .partial_cmp(&p.x_um[b])
            .expect("finite coordinates")
            .then(a.cmp(&b))
    });

    for &i in &order {
        let w = lib.cell(nl.instances[i].cell_idx).width_um();
        let want_row = ((p.y_um[i] / p.row_h_um).round() as i64).clamp(0, rows as i64 - 1) as usize;
        // Pure packing: the cell lands at the row cursor (no gaps are ever
        // created, so the pass cannot fragment capacity); the row is
        // chosen to minimize total displacement, probing outward in y.
        let mut best: Option<(f64, usize)> = None; // (cost, row)
        for dr in 0..rows {
            let mut candidates_left = false;
            for row in [want_row as i64 - dr as i64, want_row as i64 + dr as i64] {
                if row < 0 || row >= rows as i64 || (dr == 0 && row != want_row as i64) {
                    continue;
                }
                candidates_left = true;
                let row = row as usize;
                if cursor[row] + w > p.die_w_um + 1e-9 {
                    continue;
                }
                let dy = (row as f64 * p.row_h_um - p.y_um[i]).abs();
                let dx = (cursor[row] - p.x_um[i]).abs();
                let cost = dx + 2.0 * dy;
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, row));
                }
            }
            // Stop once rows can only be farther in y than the best cost.
            if let Some((c, _)) = best {
                if (dr as f64) * p.row_h_um * 2.0 > c {
                    break;
                }
            }
            if !candidates_left && dr > 0 {
                break;
            }
        }
        let (_, row) = best.expect("legalization failed: total cell width exceeds row capacity");
        let x = snap(cursor[row], p.site_um).max(cursor[row]);
        p.x_um[i] = x;
        p.y_um[i] = row as f64 * p.row_h_um;
        cursor[row] = x + w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_netlist::{gen, profiles};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn legalize_fixes_random_positions() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let die = (profiles::tiny().die_area_mm2 * 1e6).sqrt();
        let row_h = 28.0 * 65.0 / 1000.0;
        let mut rng = StdRng::seed_from_u64(3);
        let n = d.netlist.num_instances();
        let mut p = Placement {
            die_w_um: die,
            die_h_um: (die / row_h).floor() * row_h,
            row_h_um: row_h,
            site_um: 3.08 * 65.0 / 1000.0,
            x_um: (0..n).map(|_| rng.gen::<f64>() * die).collect(),
            y_um: (0..n).map(|_| rng.gen::<f64>() * die).collect(),
            pi_pos: d
                .netlist
                .primary_inputs
                .iter()
                .map(|_| (0.0, 0.0))
                .collect(),
        };
        legalize(&mut p, &d.netlist, &lib);
        p.check_legal(&d.netlist, &lib)
            .expect("legal after legalization");
    }

    #[test]
    fn legalization_preserves_rough_location() {
        // A cell in the middle of an empty die should stay close to where
        // global placement put it.
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p0 = crate::place::place_with_iterations(&d, &lib, 12);
        // Average displacement between pre-snap grid position and final
        // position should be far below the die dimension.
        let die = p0.die_w_um;
        let mut total = 0.0;
        for i in 0..d.netlist.num_instances() {
            // Rows are dense; just sanity-check everything is in-die.
            assert!(p0.x_um[i] >= 0.0 && p0.x_um[i] <= die);
            total += p0.y_um[i];
        }
        assert!(total > 0.0, "cells collapsed to the bottom row");
    }
}
