//! Displacement-preserving Tetris legalization.

use crate::db::Placement;
use dme_liberty::Library;
use dme_netlist::{InstId, Netlist};

/// Legalizes a global placement in place. Cells are processed in x order
/// and assigned to the row closest to their global position that still
/// has capacity ("Tetris" row choice), but within a row each cell keeps
/// its global x where possible: rows are packed with the same
/// forward-resolve / right-edge-clamp pass the incremental repack uses,
/// so gaps between cells survive legalization instead of being
/// compacted away. The distributed slack matters downstream — a
/// width-mismatched swap is absorbed by the few cells next to the gap
/// rather than rippling the whole row tail, which keeps the re-timing
/// cone of an ECO small. Guarantees row alignment, die containment and
/// zero overlap provided total cell width fits the rows.
pub fn legalize(p: &mut Placement, nl: &Netlist, lib: &Library) {
    let _span = dme_obs::span("legalize");
    let rows = p.num_rows().max(1);
    let mut used = vec![0.0f64; rows]; // total cell width assigned per row
    let mut members: Vec<Vec<InstId>> = vec![Vec::new(); rows];

    let mut order: Vec<usize> = (0..nl.num_instances()).collect();
    order.sort_by(|&a, &b| {
        p.x_um[a]
            .partial_cmp(&p.x_um[b])
            .expect("finite coordinates")
            .then(a.cmp(&b))
    });

    for &i in &order {
        let w = lib.cell(nl.instances[i].cell_idx).width_um();
        let want_row = ((p.y_um[i] / p.row_h_um).round() as i64).clamp(0, rows as i64 - 1) as usize;
        // Probe outward in y from the wanted row; take the nearest row
        // with remaining capacity (below-row wins ties for determinism).
        let mut chosen: Option<usize> = None;
        'probe: for dr in 0..rows {
            for row in [want_row as i64 - dr as i64, want_row as i64 + dr as i64] {
                if row < 0 || row >= rows as i64 || (dr == 0 && row != want_row as i64) {
                    continue;
                }
                let row = row as usize;
                if used[row] + w > p.die_w_um + 1e-9 {
                    continue;
                }
                chosen = Some(row);
                break 'probe;
            }
        }
        let row = chosen.expect("legalization failed: total cell width exceeds row capacity");
        used[row] += w;
        members[row].push(InstId(i as u32));
        p.y_um[i] = row as f64 * p.row_h_um;
    }

    // Members were pushed in ascending global-x order (ties by id), which
    // is exactly the order pack_row expects.
    for (r, row_cells) in members.iter().enumerate() {
        p.pack_row(lib, nl, row_cells, r, &mut None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_netlist::{gen, profiles};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn legalize_fixes_random_positions() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let die = (profiles::tiny().die_area_mm2 * 1e6).sqrt();
        let row_h = 28.0 * 65.0 / 1000.0;
        let mut rng = StdRng::seed_from_u64(3);
        let n = d.netlist.num_instances();
        let mut p = Placement {
            die_w_um: die,
            die_h_um: (die / row_h).floor() * row_h,
            row_h_um: row_h,
            site_um: 3.08 * 65.0 / 1000.0,
            x_um: (0..n).map(|_| rng.gen::<f64>() * die).collect(),
            y_um: (0..n).map(|_| rng.gen::<f64>() * die).collect(),
            pi_pos: d
                .netlist
                .primary_inputs
                .iter()
                .map(|_| (0.0, 0.0))
                .collect(),
        };
        legalize(&mut p, &d.netlist, &lib);
        p.check_legal(&d.netlist, &lib)
            .expect("legal after legalization");
    }

    #[test]
    fn legalization_preserves_rough_location() {
        // A cell in the middle of an empty die should stay close to where
        // global placement put it.
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p0 = crate::place::place_with_iterations(&d, &lib, 12);
        // Average displacement between pre-snap grid position and final
        // position should be far below the die dimension.
        let die = p0.die_w_um;
        let mut total = 0.0;
        for i in 0..d.netlist.num_instances() {
            // Rows are dense; just sanity-check everything is in-die.
            assert!(p0.x_um[i] >= 0.0 && p0.x_um[i] <= die);
            total += p0.y_um[i];
        }
        assert!(total > 0.0, "cells collapsed to the bottom row");
    }
}
