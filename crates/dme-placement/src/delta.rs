//! Coordinate-delta journal for O(Δ) undo of placement perturbations.
//!
//! The dosePl swap loop perturbs a [`Placement`](crate::Placement) with a
//! cell swap plus row repacking, times the result, and usually rejects
//! it. Snapshotting the full coordinate vectors per candidate costs O(n);
//! a [`PlacementDelta`] instead records the *previous* coordinates of
//! only the cells a tracked operation actually moved (bitwise change
//! detection, so a repack that rewrites a coordinate with the same value
//! records nothing). Undo replays the journal in reverse, restoring the
//! exact prior bits — so a reject is O(moved cells), not O(design).
//!
//! Marks ([`PlacementDelta::mark`]) delimit nested scopes: a candidate
//! undoes back to its own mark, while a round-level rollback undoes the
//! whole journal, replacing the per-round full-vector snapshot.

use crate::Placement;
use dme_netlist::InstId;

/// One journal entry: an instance's coordinates before a tracked write.
#[derive(Debug, Clone, Copy)]
struct DeltaEntry {
    inst: u32,
    old_x: f64,
    old_y: f64,
}

/// An append-only journal of coordinate overwrites (see module docs).
#[derive(Debug, Clone, Default)]
pub struct PlacementDelta {
    entries: Vec<DeltaEntry>,
    // Scratch reused by `touched_since` to deduplicate without
    // reallocating per call.
    scratch: Vec<u32>,
}

impl PlacementDelta {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current journal position; pass to [`PlacementDelta::undo_to`] or
    /// [`PlacementDelta::touched_since`] to scope a perturbation.
    pub fn mark(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records that `inst` is about to move away from `(old_x, old_y)`.
    pub(crate) fn record(&mut self, inst: InstId, old_x: f64, old_y: f64) {
        self.entries.push(DeltaEntry {
            inst: inst.0,
            old_x,
            old_y,
        });
    }

    /// Undoes every write recorded after `mark`, restoring the exact
    /// prior coordinate bits, and truncates the journal back to `mark`.
    ///
    /// # Panics
    ///
    /// Panics if `mark` is beyond the current journal length.
    pub fn undo_to(&mut self, placement: &mut Placement, mark: usize) {
        assert!(mark <= self.entries.len(), "mark beyond journal length");
        while self.entries.len() > mark {
            let e = self.entries.pop().expect("len > mark");
            placement.x_um[e.inst as usize] = e.old_x;
            placement.y_um[e.inst as usize] = e.old_y;
        }
    }

    /// Undoes the whole journal (round-level rollback).
    pub fn undo_all(&mut self, placement: &mut Placement) {
        self.undo_to(placement, 0);
    }

    /// Number of recorded coordinate writes since `mark` (not deduped).
    pub fn writes_since(&self, mark: usize) -> usize {
        self.entries.len().saturating_sub(mark)
    }

    /// The distinct instances written after `mark`, ascending by id.
    /// These are the only cells whose derived state (dose assignment,
    /// incident-net boxes) can differ from the pre-perturbation state.
    pub fn touched_since(&mut self, mark: usize) -> Vec<InstId> {
        self.scratch.clear();
        self.scratch
            .extend(self.entries[mark..].iter().map(|e| e.inst));
        self.scratch.sort_unstable();
        self.scratch.dedup();
        self.scratch.iter().map(|&i| InstId(i)).collect()
    }

    /// Forgets all entries without undoing them (accept the moves and
    /// start a new scope).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles};

    #[test]
    fn undo_restores_bitwise_and_marks_nest() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let mut p = crate::place(&d, &lib);
        let (x0, y0) = (p.x_um.clone(), p.y_um.clone());
        let mut j = PlacementDelta::new();

        p.swap_cells_tracked(InstId(1), InstId(7), &mut j);
        let outer = j.mark();
        p.swap_cells_tracked(InstId(2), InstId(9), &mut j);
        assert_eq!(j.touched_since(outer), vec![InstId(2), InstId(9)]);
        j.undo_to(&mut p, outer);
        assert_eq!(p.x_um[2].to_bits(), x0[2].to_bits());
        assert_eq!(p.y_um[9].to_bits(), y0[9].to_bits());

        j.undo_all(&mut p);
        for i in 0..p.x_um.len() {
            assert_eq!(p.x_um[i].to_bits(), x0[i].to_bits(), "x[{i}]");
            assert_eq!(p.y_um[i].to_bits(), y0[i].to_bits(), "y[{i}]");
        }
        assert!(j.is_empty());
    }
}
