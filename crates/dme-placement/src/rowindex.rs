//! Persistent row-membership index for O(Δ) ECO repacking.
//!
//! [`Placement::repack_rows_tracked`](crate::Placement::repack_rows_tracked)
//! rediscovers row membership with one pass over *every* instance per
//! call — the dominant cost of a repack once designs reach 100k+ cells,
//! since a dosePl candidate only ever perturbs two rows. A [`RowIndex`]
//! keeps the membership persistent across calls: per-row instance lists
//! (ascending by id, the same order the full scan produces, so the
//! per-row occupied-width sums accumulate in the identical order and
//! stay bitwise-stable) plus each instance's current row. After any
//! tracked perturbation the caller re-syncs just the journal-touched
//! instances, making the whole repack O(Δ) instead of O(n).

use crate::Placement;
use dme_netlist::{InstId, Netlist};

/// Persistent per-row membership (see module docs). The index is only
/// valid for the placement it was built against and must be re-synced
/// ([`RowIndex::sync`]) after every coordinate mutation — including
/// undo replays, which move cells back.
#[derive(Debug, Clone)]
pub struct RowIndex {
    /// Row members, ascending by instance id.
    members: Vec<Vec<InstId>>,
    /// Current row of each instance.
    row_of: Vec<u32>,
}

/// The row an instance currently occupies — the same rounding/clamp the
/// repack gather uses, so index and scan can never disagree.
fn row_for(p: &Placement, i: usize) -> usize {
    let nrows = p.num_rows().max(1);
    ((p.y_um[i] / p.row_h_um).round() as i64).clamp(0, nrows as i64 - 1) as usize
}

impl RowIndex {
    /// Builds the index with one full scan (the only O(n) pass; every
    /// later update is O(touched)).
    pub fn build(p: &Placement, nl: &Netlist) -> Self {
        let nrows = p.num_rows().max(1);
        let mut members: Vec<Vec<InstId>> = vec![Vec::new(); nrows];
        let mut row_of = vec![0u32; nl.num_instances()];
        for id in nl.inst_ids() {
            let r = row_for(p, id.0 as usize);
            members[r].push(id); // inst_ids is ascending, lists stay sorted
            row_of[id.0 as usize] = r as u32;
        }
        Self { members, row_of }
    }

    /// Instances currently in row `r`, ascending by id.
    pub fn members(&self, r: usize) -> &[InstId] {
        &self.members[r]
    }

    /// Re-homes the given instances after their coordinates changed.
    /// Instances whose row is unchanged (x-only moves, the common case)
    /// cost one comparison; a row change is two binary searches.
    pub fn sync(&mut self, p: &Placement, touched: &[InstId]) {
        for &id in touched {
            let i = id.0 as usize;
            let r_new = row_for(p, i);
            let r_old = self.row_of[i] as usize;
            if r_new == r_old {
                continue;
            }
            let old = &mut self.members[r_old];
            let pos = old.binary_search(&id).expect("instance indexed in its row");
            old.remove(pos);
            let new = &mut self.members[r_new];
            let pos = new
                .binary_search(&id)
                .expect_err("instance in one row only");
            new.insert(pos, id);
            self.row_of[i] = r_new as u32;
        }
    }

    /// Full cross-check against a fresh scan (debug assertions only —
    /// this is exactly the O(n) pass the index exists to avoid).
    pub fn is_consistent(&self, p: &Placement, nl: &Netlist) -> bool {
        if self.row_of.len() != nl.num_instances() {
            return false;
        }
        let mut counted = 0usize;
        for (r, row) in self.members.iter().enumerate() {
            counted += row.len();
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return false;
            }
            if !row
                .iter()
                .all(|&id| self.row_of[id.0 as usize] as usize == r)
            {
                return false;
            }
        }
        counted == nl.num_instances()
            && nl
                .inst_ids()
                .all(|id| self.row_of[id.0 as usize] as usize == row_for(p, id.0 as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacementDelta;
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn index_tracks_swaps_repacks_and_undo() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::small(), &lib);
        let mut p = crate::place(&d, &lib);
        let n = d.netlist.num_instances();
        let mut ix = RowIndex::build(&p, &d.netlist);
        assert!(ix.is_consistent(&p, &d.netlist));

        let mut rng = StdRng::seed_from_u64(42);
        let mut delta = PlacementDelta::new();
        for step in 0..40 {
            let a = InstId(rng.gen::<u32>() % n as u32);
            let b = InstId(rng.gen::<u32>() % n as u32);
            let mark = delta.mark();
            p.swap_cells_tracked(a, b, &mut delta);
            ix.sync(&p, &[a, b]);
            let rows = [
                (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
                (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
            ];
            p.repack_rows_indexed(&lib, &d.netlist, &rows, &mut delta, &mut ix);
            assert!(ix.is_consistent(&p, &d.netlist), "after repack {step}");
            if step % 3 == 0 {
                // Reject path: journal replay moves cells back; the
                // index must follow.
                let touched = delta.touched_since(mark);
                delta.undo_to(&mut p, mark);
                ix.sync(&p, &touched);
                assert!(ix.is_consistent(&p, &d.netlist), "after undo {step}");
            }
        }
        // Round-level rollback restores the initial placement exactly.
        let touched = delta.touched_since(0);
        delta.undo_all(&mut p);
        ix.sync(&p, &touched);
        assert!(ix.is_consistent(&p, &d.netlist));
    }

    #[test]
    fn indexed_repack_is_bitwise_identical_to_tracked() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::small(), &lib);
        let base = crate::place(&d, &lib);
        let n = d.netlist.num_instances();

        let mut rng = StdRng::seed_from_u64(7);
        let mut p_ix = base.clone();
        let mut p_scan = base.clone();
        let mut ix = RowIndex::build(&p_ix, &d.netlist);
        let mut d_ix = PlacementDelta::new();
        let mut d_scan = PlacementDelta::new();
        for _ in 0..25 {
            let a = InstId(rng.gen::<u32>() % n as u32);
            let b = InstId(rng.gen::<u32>() % n as u32);
            let rows = [
                (p_ix.y_um[b.0 as usize] / p_ix.row_h_um).round() as usize,
                (p_ix.y_um[a.0 as usize] / p_ix.row_h_um).round() as usize,
            ];
            p_ix.swap_cells_tracked(a, b, &mut d_ix);
            ix.sync(&p_ix, &[a, b]);
            p_ix.repack_rows_indexed(&lib, &d.netlist, &rows, &mut d_ix, &mut ix);
            p_scan.swap_cells_tracked(a, b, &mut d_scan);
            p_scan.repack_rows_tracked(&lib, &d.netlist, &rows, &mut d_scan);
            for i in 0..n {
                assert_eq!(p_ix.x_um[i].to_bits(), p_scan.x_um[i].to_bits(), "x[{i}]");
                assert_eq!(p_ix.y_um[i].to_bits(), p_scan.y_um[i].to_bits(), "y[{i}]");
            }
        }
    }
}
