//! Placement database: die geometry and per-instance coordinates.

use crate::delta::PlacementDelta;
use crate::hpwl::BoundingBox;
use crate::rowindex::RowIndex;
use dme_liberty::Library;
use dme_netlist::{InstId, NetId, Netlist};
use std::error::Error;
use std::fmt;

/// A legalization / legality-check failure.
#[derive(Debug, Clone, PartialEq)]
pub enum LegalityError {
    /// Two cells overlap in the same row.
    Overlap {
        /// First instance.
        a: InstId,
        /// Second instance.
        b: InstId,
    },
    /// A cell lies outside the die.
    OutOfDie(InstId),
    /// A cell's y coordinate is not on a row boundary.
    OffRow(InstId),
    /// The die cannot hold the total cell area.
    Overfull {
        /// Total cell area, µm².
        cell_area_um2: f64,
        /// Die area, µm².
        die_area_um2: f64,
    },
}

impl fmt::Display for LegalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityError::Overlap { a, b } => write!(f, "cells {a} and {b} overlap"),
            LegalityError::OutOfDie(i) => write!(f, "cell {i} is outside the die"),
            LegalityError::OffRow(i) => write!(f, "cell {i} is not row-aligned"),
            LegalityError::Overfull {
                cell_area_um2,
                die_area_um2,
            } => {
                write!(
                    f,
                    "cell area {cell_area_um2} µm² exceeds die area {die_area_um2} µm²"
                )
            }
        }
    }
}

impl Error for LegalityError {}

/// Die geometry plus per-instance lower-left coordinates (µm).
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Die width in µm.
    pub die_w_um: f64,
    /// Die height in µm.
    pub die_h_um: f64,
    /// Row height in µm.
    pub row_h_um: f64,
    /// Site (placement grid) width in µm.
    pub site_um: f64,
    /// Per-instance x coordinate (lower-left), µm.
    pub x_um: Vec<f64>,
    /// Per-instance y coordinate (lower-left, row-aligned), µm.
    pub y_um: Vec<f64>,
    /// Pad position per primary-input net (left edge), µm.
    pub pi_pos: Vec<(f64, f64)>,
}

impl Placement {
    /// Center coordinates of an instance, µm.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn center(&self, lib: &Library, nl: &Netlist, id: InstId) -> (f64, f64) {
        let w = lib.cell(nl.instance(id).cell_idx).width_um();
        (
            self.x_um[id.0 as usize] + 0.5 * w,
            self.y_um[id.0 as usize] + 0.5 * self.row_h_um,
        )
    }

    /// Number of rows on the die.
    pub fn num_rows(&self) -> usize {
        (self.die_h_um / self.row_h_um).floor() as usize
    }

    /// Position of the pad of a primary-input net, if it is one.
    pub fn pi_pad(&self, nl: &Netlist, net: NetId) -> Option<(f64, f64)> {
        nl.primary_inputs
            .iter()
            .position(|&n| n == net)
            .map(|i| self.pi_pos[i])
    }

    /// All pin positions of a net: the driver output pin, every sink
    /// input pin, and the PI pad when applicable (pins are cell centers).
    pub fn net_pins(&self, lib: &Library, nl: &Netlist, net: NetId) -> Vec<(f64, f64)> {
        let mut pins = Vec::new();
        let n = nl.net(net);
        if let Some(drv) = n.driver {
            pins.push(self.center(lib, nl, drv));
        }
        if let Some(pad) = self.pi_pad(nl, net) {
            pins.push(pad);
        }
        for &(sink, _) in &n.sinks {
            pins.push(self.center(lib, nl, sink));
        }
        pins
    }

    /// Half-perimeter wirelength of one net, µm.
    pub fn net_hpwl(&self, lib: &Library, nl: &Netlist, net: NetId) -> f64 {
        BoundingBox::of_points(&self.net_pins(lib, nl, net)).map_or(0.0, |b| b.half_perimeter())
    }

    /// Total HPWL over all nets, µm.
    pub fn total_hpwl(&self, lib: &Library, nl: &Netlist) -> f64 {
        (0..nl.num_nets() as u32)
            .map(|i| self.net_hpwl(lib, nl, NetId(i)))
            .sum()
    }

    /// The dosePl *neighborhood bounding box* of a cell: the bounding box
    /// of the cell itself, all its fanin cells and all its fanout cells
    /// (Fig. 9 of the paper).
    pub fn neighborhood_bbox(&self, lib: &Library, nl: &Netlist, id: InstId) -> BoundingBox {
        let mut pts = vec![self.center(lib, nl, id)];
        let inst = nl.instance(id);
        for &net in &inst.inputs {
            if let Some(drv) = nl.net(net).driver {
                pts.push(self.center(lib, nl, drv));
            }
        }
        for &(sink, _) in &nl.net(inst.output).sinks {
            pts.push(self.center(lib, nl, sink));
        }
        BoundingBox::of_points(&pts).expect("nonempty point set")
    }

    /// Manhattan distance between two cell centers, µm.
    pub fn distance(&self, lib: &Library, nl: &Netlist, a: InstId, b: InstId) -> f64 {
        let (ax, ay) = self.center(lib, nl, a);
        let (bx, by) = self.center(lib, nl, b);
        (ax - bx).abs() + (ay - by).abs()
    }

    /// Average gate pitch: chip dimension divided by sqrt(gate count) —
    /// the distance unit the paper's dosePl swap-distance threshold uses.
    pub fn gate_pitch_um(&self, nl: &Netlist) -> f64 {
        self.die_w_um.max(self.die_h_um) / (nl.num_instances() as f64).sqrt().max(1.0)
    }

    /// Swaps the positions of two cells (the dosePl move). The swap keeps
    /// row alignment automatically; lateral overlaps introduced by a
    /// width mismatch are resolved by [`Placement::check_legal`]'s caller
    /// re-packing the two rows via [`Placement::repack_rows`].
    pub fn swap_cells(&mut self, a: InstId, b: InstId) {
        self.x_um.swap(a.0 as usize, b.0 as usize);
        self.y_um.swap(a.0 as usize, b.0 as usize);
    }

    /// [`Placement::swap_cells`] with the overwritten coordinates
    /// journaled into `delta` for O(Δ) undo.
    pub fn swap_cells_tracked(&mut self, a: InstId, b: InstId, delta: &mut PlacementDelta) {
        let (ai, bi) = (a.0 as usize, b.0 as usize);
        if self.x_um[ai].to_bits() != self.x_um[bi].to_bits()
            || self.y_um[ai].to_bits() != self.y_um[bi].to_bits()
        {
            delta.record(a, self.x_um[ai], self.y_um[ai]);
            delta.record(b, self.x_um[bi], self.y_um[bi]);
        }
        self.swap_cells(a, b);
    }

    /// Re-packs every cell in the given rows left-to-right, eliminating
    /// overlaps while preserving order — the ECO legalization used after
    /// dosePl swaps. `rows` are row indices (y / row height). If a swap
    /// made a row overfull (a wider cell arrived), its rightmost cells are
    /// evicted to the nearest row with room before packing.
    ///
    /// # Panics
    ///
    /// Panics if the whole die cannot hold the cells (cannot happen for
    /// placements produced by [`crate::place`]).
    pub fn repack_rows(&mut self, lib: &Library, nl: &Netlist, rows: &[usize]) {
        self.repack_rows_inner(lib, nl, rows, None, None);
    }

    /// [`Placement::repack_rows`] with every coordinate overwrite (swap
    /// evictions included) journaled into `delta` for O(Δ) undo. The
    /// packing itself is identical to the untracked variant.
    ///
    /// # Panics
    ///
    /// Panics if the whole die cannot hold the cells.
    pub fn repack_rows_tracked(
        &mut self,
        lib: &Library,
        nl: &Netlist,
        rows: &[usize],
        delta: &mut PlacementDelta,
    ) {
        self.repack_rows_inner(lib, nl, rows, Some(delta), None);
    }

    /// [`Placement::repack_rows_tracked`] driven by a persistent
    /// [`RowIndex`]: row membership comes from the index instead of the
    /// per-call scan over every instance, making the repack O(Δ). The
    /// index must be in sync with the placement on entry (including the
    /// swap that dirtied `rows` — sync it with the swapped pair first);
    /// on return it is re-synced from the coordinates this call wrote.
    /// The packing is bitwise identical to the scan-based variants.
    ///
    /// # Panics
    ///
    /// Panics if the whole die cannot hold the cells.
    pub fn repack_rows_indexed(
        &mut self,
        lib: &Library,
        nl: &Netlist,
        rows: &[usize],
        delta: &mut PlacementDelta,
        index: &mut RowIndex,
    ) {
        debug_assert!(index.is_consistent(self, nl), "stale row index on entry");
        let mark = delta.mark();
        self.repack_rows_inner(lib, nl, rows, Some(delta), Some(index));
        let touched = delta.touched_since(mark);
        index.sync(self, &touched);
    }

    fn repack_rows_inner(
        &mut self,
        lib: &Library,
        nl: &Netlist,
        rows: &[usize],
        mut delta: Option<&mut PlacementDelta>,
        index: Option<&RowIndex>,
    ) {
        let width = |m: InstId| lib.cell(nl.instance(m).cell_idx).width_um();
        // Row membership and occupied width, gathered only for the rows
        // being repacked (per-row `used` sums accumulate in ascending
        // instance order so the overfull test sees bitwise-stable
        // totals). The full-die picture is completed lazily iff an
        // eviction needs occupancy of other rows — rare, since rows keep
        // distributed slack.
        let nrows = self.num_rows();
        let mut members: Vec<Vec<InstId>> = vec![Vec::new(); nrows];
        let mut used = vec![0.0f64; nrows];
        let mut collected = vec![false; nrows];
        let mut all_collected = false;
        for &r in rows {
            if r < nrows {
                collected[r] = true;
            }
        }
        match index {
            // Index path: membership of just the dirty rows, in the same
            // ascending-id order the scan produces (identical `used`
            // accumulation order, bitwise-stable totals).
            Some(ix) => {
                for &r in rows {
                    if r < nrows && members[r].is_empty() && used[r] == 0.0 {
                        for &i in ix.members(r) {
                            members[r].push(i);
                            used[r] += width(i);
                        }
                    }
                }
            }
            None => {
                for i in nl.inst_ids() {
                    let r = ((self.y_um[i.0 as usize] / self.row_h_um).round() as i64)
                        .clamp(0, nrows as i64 - 1) as usize;
                    if collected[r] {
                        members[r].push(i);
                        used[r] += width(i);
                    }
                }
            }
        }
        let mut dirty: Vec<usize> = rows.to_vec();
        let mut done: Vec<bool> = vec![false; nrows];
        while let Some(r) = dirty.pop() {
            if r >= nrows || done[r] {
                continue;
            }
            done[r] = true;
            if used[r] > self.die_w_um + 1e-9 && !all_collected {
                // Eviction target selection needs every row's occupancy.
                // No cell has changed row yet at this point (prior rows
                // only saw x-only packing), so the entry-time index is
                // still an exact picture of the uncollected rows.
                match index {
                    Some(ix) => {
                        for (rr, row_members) in members.iter_mut().enumerate() {
                            if !collected[rr] {
                                for &i in ix.members(rr) {
                                    row_members.push(i);
                                    used[rr] += width(i);
                                }
                            }
                        }
                    }
                    None => {
                        for i in nl.inst_ids() {
                            let rr = ((self.y_um[i.0 as usize] / self.row_h_um).round() as i64)
                                .clamp(0, nrows as i64 - 1)
                                as usize;
                            if !collected[rr] {
                                members[rr].push(i);
                                used[rr] += width(i);
                            }
                        }
                    }
                }
                collected.iter_mut().for_each(|c| *c = true);
                all_collected = true;
            }
            // Evict rightmost cells while the row is overfull.
            while used[r] > self.die_w_um + 1e-9 {
                let (pos, _) = members[r]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        self.x_um[a.1 .0 as usize].total_cmp(&self.x_um[b.1 .0 as usize])
                    })
                    .expect("overfull row has members");
                let evict = members[r].remove(pos);
                let w = width(evict);
                used[r] -= w;
                let target = (0..nrows)
                    .filter(|&r2| r2 != r && used[r2] + w <= self.die_w_um + 1e-9)
                    .min_by_key(|&r2| r2.abs_diff(r))
                    .expect("die cannot hold the cells");
                let ex = self.x_um[evict.0 as usize];
                self.write_coords(evict, ex, target as f64 * self.row_h_um, &mut delta);
                members[target].push(evict);
                used[target] += w;
                done[target] = false;
                dirty.push(target);
            }
            // Pack the row preserving x order and (where possible) the
            // cells' current positions.
            let mut row_cells = members[r].clone();
            row_cells.sort_by(|&a, &b| {
                self.x_um[a.0 as usize]
                    .total_cmp(&self.x_um[b.0 as usize])
                    .then(a.cmp(&b))
            });
            self.pack_row(lib, nl, &row_cells, r, &mut delta);
        }
    }

    /// Packs one row's cells (already sorted by ascending x, ties by id):
    /// a forward pass resolves overlaps left-to-right while keeping every
    /// non-overlapping cell at its current position (gaps are preserved,
    /// not compacted), then a backward pass clamps overhang at the right
    /// die edge. Final coordinates are computed in scratch and written
    /// once per cell, so cells whose position is unchanged never touch
    /// the journal — the undo cost and the downstream re-timing cone are
    /// proportional to the cells that genuinely moved.
    pub(crate) fn pack_row(
        &mut self,
        lib: &Library,
        nl: &Netlist,
        row_cells: &[InstId],
        r: usize,
        delta: &mut Option<&mut PlacementDelta>,
    ) {
        let width = |m: InstId| lib.cell(nl.instance(m).cell_idx).width_um();
        let y = r as f64 * self.row_h_um;
        // Forward pack preserving x order, then clamp back from the
        // right edge (the row fits, so this cannot underflow 0).
        let mut xs: Vec<f64> = Vec::with_capacity(row_cells.len());
        let mut cursor = 0.0f64;
        for &m in row_cells {
            let w = width(m);
            let desired = self.x_um[m.0 as usize].max(cursor);
            let x = snap(desired, self.site_um)
                .min(self.die_w_um - w)
                .max(cursor);
            xs.push(x);
            cursor = x + w;
        }
        let mut limit = self.die_w_um;
        for (k, &m) in row_cells.iter().enumerate().rev() {
            let w = width(m);
            let x = xs[k].min(snap(limit - w, self.site_um)).max(0.0);
            xs[k] = x;
            limit = x;
        }
        for (k, &m) in row_cells.iter().enumerate() {
            self.write_coords(m, xs[k], y, delta);
        }
    }

    /// Writes an instance's coordinates, journaling the prior values when
    /// they actually change (bitwise). Writing identical bits is skipped,
    /// so tracked and untracked packing leave identical state.
    fn write_coords(
        &mut self,
        id: InstId,
        x: f64,
        y: f64,
        delta: &mut Option<&mut PlacementDelta>,
    ) {
        let i = id.0 as usize;
        if self.x_um[i].to_bits() == x.to_bits() && self.y_um[i].to_bits() == y.to_bits() {
            return;
        }
        if let Some(d) = delta.as_deref_mut() {
            d.record(id, self.x_um[i], self.y_um[i]);
        }
        self.x_um[i] = x;
        self.y_um[i] = y;
    }

    /// Checks legality: row alignment, die bounds, no overlaps.
    ///
    /// # Errors
    ///
    /// Returns the first [`LegalityError`] found.
    pub fn check_legal(&self, nl: &Netlist, lib: &Library) -> Result<(), LegalityError> {
        let rows = self.num_rows();
        let mut per_row: Vec<Vec<(f64, f64, InstId)>> = vec![Vec::new(); rows];
        for id in nl.inst_ids() {
            let i = id.0 as usize;
            let w = lib.cell(nl.instance(id).cell_idx).width_um();
            let (x, y) = (self.x_um[i], self.y_um[i]);
            let r = y / self.row_h_um;
            if (r - r.round()).abs() > 1e-6 {
                return Err(LegalityError::OffRow(id));
            }
            let r = r.round() as i64;
            if r < 0 || r as usize >= rows || x < -1e-6 || x + w > self.die_w_um + 1e-6 {
                return Err(LegalityError::OutOfDie(id));
            }
            per_row[r as usize].push((x, x + w, id));
        }
        for row in &mut per_row {
            row.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite coordinates"));
            for pair in row.windows(2) {
                if pair[0].1 > pair[1].0 + 1e-6 {
                    return Err(LegalityError::Overlap {
                        a: pair[0].2,
                        b: pair[1].2,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Snaps a coordinate down to the site grid. A small epsilon keeps
/// values that are already on the grid (up to floating-point noise) from
/// flooring down a whole site.
pub(crate) fn snap(x: f64, site: f64) -> f64 {
    (x / site + 1e-6).floor() * site
}
