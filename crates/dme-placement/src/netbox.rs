//! Cached per-net bounding boxes with O(Δ) what-if queries.
//!
//! The dosePl HPWL filter asks, thousands of times per round, "how would
//! the bounding boxes of this cell's incident nets change if the cell
//! moved here?". Answering from scratch re-walks every pin of every
//! incident net per query. This module keeps the answer incremental:
//!
//! - [`NetPins`] is the static pin structure — per-net pin *owners*
//!   (instances, plus the fixed PI pad when present) and per-instance
//!   deduped incident-net lists with pin multiplicities. Pins are
//!   identified by the instance that owns them, never by coordinate
//!   equality, so a pin that merely coincides with a moved cell's center
//!   is not dragged along (the identity rule).
//! - [`NetBoxCache`] caches each net's bounding box together with the
//!   *multiplicity of pins on each extreme*. Removing a cell's pins only
//!   requires a rescan when the cell held an extreme alone (a
//!   "shrinking-pin escape"); every other query is O(1) per net.
//!
//! All cached values are bitwise identical to
//! [`BoundingBox::of_points`] over the net's current pins: rescans use
//! the same fold, and `f64::min`/`f64::max` folds over finite,
//! non-negative-zero coordinates are order-independent.

use crate::hpwl::BoundingBox;
use crate::Placement;
use dme_liberty::Library;
use dme_netlist::{InstId, NetId, Netlist};

/// Static pin-ownership structure of a netlist (see module docs).
#[derive(Debug, Clone)]
pub struct NetPins {
    /// Per net: PI pad position, when the net is a primary input.
    pad: Vec<Option<(f64, f64)>>,
    /// Per net: owning instance of every cell pin (driver, then sinks).
    owners: Vec<Vec<InstId>>,
    /// Per instance: incident nets, sorted and deduped.
    inst_nets: Vec<Vec<NetId>>,
    /// Per instance: pin multiplicity on the matching `inst_nets` entry.
    inst_mult: Vec<Vec<u32>>,
}

impl NetPins {
    /// Builds the structure. Pad positions are read from `placement` but
    /// never move, so the result stays valid across cell moves.
    pub fn build(nl: &Netlist, placement: &Placement) -> Self {
        let num_nets = nl.num_nets();
        let n = nl.num_instances();
        let mut pad = vec![None; num_nets];
        let mut owners: Vec<Vec<InstId>> = vec![Vec::new(); num_nets];
        for net_idx in 0..num_nets {
            let id = NetId(net_idx as u32);
            let net = nl.net(id);
            if let Some(drv) = net.driver {
                owners[net_idx].push(drv);
            }
            pad[net_idx] = placement.pi_pad(nl, id);
            for &(sink, _) in &net.sinks {
                owners[net_idx].push(sink);
            }
        }
        let mut inst_nets: Vec<Vec<NetId>> = vec![Vec::new(); n];
        let mut inst_mult: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            let id = InstId(i as u32);
            let inst = nl.instance(id);
            let mut nets: Vec<NetId> = inst.inputs.clone();
            nets.push(inst.output);
            nets.sort_unstable();
            nets.dedup();
            let mult = nets
                .iter()
                .map(|&net| owners[net.0 as usize].iter().filter(|&&o| o == id).count() as u32)
                .collect();
            inst_nets[i] = nets;
            inst_mult[i] = mult;
        }
        Self {
            pad,
            owners,
            inst_nets,
            inst_mult,
        }
    }

    /// The deduped incident nets of an instance (inputs + output).
    pub fn nets_of(&self, inst: InstId) -> &[NetId] {
        &self.inst_nets[inst.0 as usize]
    }

    /// Pin multiplicities parallel to [`NetPins::nets_of`].
    pub fn mult_of(&self, inst: InstId) -> &[u32] {
        &self.inst_mult[inst.0 as usize]
    }

    /// Number of pins on a net (cell pins + PI pad).
    pub fn pin_count(&self, net: NetId) -> usize {
        self.owners[net.0 as usize].len() + usize::from(self.pad[net.0 as usize].is_some())
    }

    /// The net's bounding box recomputed from scratch at the current
    /// placement, with `moved`'s pins (if any) relocated to `new_center`.
    /// Pass `moved = None` for the unperturbed box.
    pub fn scratch_bbox(
        &self,
        lib: &Library,
        nl: &Netlist,
        placement: &Placement,
        net: NetId,
        moved: Option<(InstId, (f64, f64))>,
    ) -> Option<BoundingBox> {
        let ni = net.0 as usize;
        let mut bb: Option<BoundingBox> = None;
        let mut push = |p: (f64, f64)| match &mut bb {
            None => {
                bb = Some(BoundingBox {
                    x_min: p.0,
                    x_max: p.0,
                    y_min: p.1,
                    y_max: p.1,
                })
            }
            Some(b) => {
                b.x_min = b.x_min.min(p.0);
                b.x_max = b.x_max.max(p.0);
                b.y_min = b.y_min.min(p.1);
                b.y_max = b.y_max.max(p.1);
            }
        };
        if let Some(p) = self.pad[ni] {
            push(p);
        }
        for &o in &self.owners[ni] {
            match moved {
                Some((m, c)) if m == o => push(c),
                _ => push(placement.center(lib, nl, o)),
            }
        }
        bb
    }

    /// Like [`NetPins::scratch_bbox`], but with `excluded`'s pins dropped
    /// entirely (the shrink-escape rescan).
    fn scratch_bbox_excluding(
        &self,
        lib: &Library,
        nl: &Netlist,
        placement: &Placement,
        net: NetId,
        excluded: InstId,
    ) -> Option<BoundingBox> {
        let ni = net.0 as usize;
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(self.owners[ni].len() + 1);
        if let Some(p) = self.pad[ni] {
            pts.push(p);
        }
        for &o in &self.owners[ni] {
            if o != excluded {
                pts.push(placement.center(lib, nl, o));
            }
        }
        BoundingBox::of_points(&pts)
    }
}

/// One cached net box: the extremes plus how many pins sit on each.
#[derive(Debug, Clone, Copy)]
struct CachedBox {
    bb: BoundingBox,
    n_xmin: u32,
    n_xmax: u32,
    n_ymin: u32,
    n_ymax: u32,
}

/// Work counters of a [`NetBoxCache`], for the `dosepl/*_evals_avoided`
/// telemetry: `fast_nets` queries were answered from cached extremes,
/// `rescans` needed a pin walk (shrinking-pin escapes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetBoxStats {
    /// What-if queries answered in O(1) from the cached extremes.
    pub fast_nets: u64,
    /// What-if queries that re-walked the net's pins.
    pub rescans: u64,
}

/// Cached per-net bounding boxes over a live placement (see module docs).
#[derive(Debug, Clone)]
pub struct NetBoxCache {
    pins: NetPins,
    boxes: Vec<Option<CachedBox>>,
    stats: NetBoxStats,
    // Scratch net list reused by `refresh_for_moved`.
    scratch_nets: Vec<NetId>,
}

impl NetBoxCache {
    /// Builds the cache consistent with `placement`.
    pub fn build(lib: &Library, nl: &Netlist, placement: &Placement) -> Self {
        let pins = NetPins::build(nl, placement);
        let boxes = (0..nl.num_nets())
            .map(|ni| Self::compute(&pins, lib, nl, placement, NetId(ni as u32)))
            .collect();
        Self {
            pins,
            boxes,
            stats: NetBoxStats::default(),
            scratch_nets: Vec::new(),
        }
    }

    fn compute(
        pins: &NetPins,
        lib: &Library,
        nl: &Netlist,
        placement: &Placement,
        net: NetId,
    ) -> Option<CachedBox> {
        let bb = pins.scratch_bbox(lib, nl, placement, net, None)?;
        let ni = net.0 as usize;
        let mut c = CachedBox {
            bb,
            n_xmin: 0,
            n_xmax: 0,
            n_ymin: 0,
            n_ymax: 0,
        };
        let mut count = |p: (f64, f64)| {
            c.n_xmin += u32::from(p.0 == bb.x_min);
            c.n_xmax += u32::from(p.0 == bb.x_max);
            c.n_ymin += u32::from(p.1 == bb.y_min);
            c.n_ymax += u32::from(p.1 == bb.y_max);
        };
        if let Some(p) = pins.pad[ni] {
            count(p);
        }
        for &o in &pins.owners[ni] {
            count(placement.center(lib, nl, o));
        }
        Some(c)
    }

    /// The static pin structure (shared with from-scratch evaluation).
    pub fn pins(&self) -> &NetPins {
        &self.pins
    }

    /// The cached bounding box of a net (`None` for a pinless net).
    pub fn bbox(&self, net: NetId) -> Option<BoundingBox> {
        self.boxes[net.0 as usize].map(|c| c.bb)
    }

    /// Accumulated query counters.
    pub fn stats(&self) -> NetBoxStats {
        self.stats
    }

    /// The net's bounding box if `inst`'s `mult` pins moved from their
    /// current position to `new_center` — answered from cached extremes,
    /// with a pin rescan only when the cell holds an extreme alone.
    ///
    /// `placement` must be the placement the cache is in sync with.
    #[allow(clippy::too_many_arguments)]
    pub fn bbox_with_moved(
        &mut self,
        lib: &Library,
        nl: &Netlist,
        placement: &Placement,
        net: NetId,
        inst: InstId,
        mult: u32,
        new_center: (f64, f64),
    ) -> Option<BoundingBox> {
        let cached = self.boxes[net.0 as usize]?;
        if mult == 0 {
            return Some(cached.bb);
        }
        let old = placement.center(lib, nl, inst);
        let bb = cached.bb;
        let escapes = (old.0 == bb.x_min && cached.n_xmin <= mult)
            || (old.0 == bb.x_max && cached.n_xmax <= mult)
            || (old.1 == bb.y_min && cached.n_ymin <= mult)
            || (old.1 == bb.y_max && cached.n_ymax <= mult);
        let base = if escapes {
            self.stats.rescans += 1;
            self.pins
                .scratch_bbox_excluding(lib, nl, placement, net, inst)
        } else {
            self.stats.fast_nets += 1;
            Some(bb)
        };
        Some(match base {
            None => BoundingBox {
                x_min: new_center.0,
                x_max: new_center.0,
                y_min: new_center.1,
                y_max: new_center.1,
            },
            Some(b) => BoundingBox {
                x_min: b.x_min.min(new_center.0),
                x_max: b.x_max.max(new_center.0),
                y_min: b.y_min.min(new_center.1),
                y_max: b.y_max.max(new_center.1),
            },
        })
    }

    /// Re-derives the cached boxes of every net incident to the given
    /// instances from the (already updated) placement — the commit step
    /// after accepted moves or a rollback. O(Σ pins of touched nets).
    pub fn refresh_for_moved(
        &mut self,
        lib: &Library,
        nl: &Netlist,
        placement: &Placement,
        moved: &[InstId],
    ) {
        let mut nets = std::mem::take(&mut self.scratch_nets);
        nets.clear();
        for &m in moved {
            nets.extend_from_slice(self.pins.nets_of(m));
        }
        nets.sort_unstable();
        nets.dedup();
        for &net in &nets {
            self.boxes[net.0 as usize] = Self::compute(&self.pins, lib, nl, placement, net);
        }
        self.scratch_nets = nets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_netlist::{gen, profiles};

    #[test]
    fn cache_matches_scratch_and_tracks_moves() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let nl = &d.netlist;
        let mut p = crate::place(&d, &lib);
        let mut cache = NetBoxCache::build(&lib, nl, &p);
        for ni in 0..nl.num_nets() {
            let net = NetId(ni as u32);
            let scratch = cache.pins().scratch_bbox(&lib, nl, &p, net, None);
            match (cache.bbox(net), scratch) {
                (Some(c), Some(s)) => assert_eq!(c, s, "net {ni}"),
                (None, None) => {}
                (c, s) => panic!("net {ni}: cached {c:?} vs scratch {s:?}"),
            }
        }
        // Move a pair, refresh, and re-verify the touched nets.
        let (a, b) = (InstId(2), InstId(11));
        p.swap_cells(a, b);
        cache.refresh_for_moved(&lib, nl, &p, &[a, b]);
        for &m in &[a, b] {
            for &net in cache.pins().nets_of(m).to_vec().iter() {
                let scratch = cache.pins().scratch_bbox(&lib, nl, &p, net, None);
                assert_eq!(cache.bbox(net), scratch);
            }
        }
    }

    #[test]
    fn what_if_query_matches_scratch() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let nl = &d.netlist;
        let p = crate::place(&d, &lib);
        let mut cache = NetBoxCache::build(&lib, nl, &p);
        let inst = InstId(5);
        let targets = [(0.0, 0.0), (p.die_w_um, p.die_h_um), (3.7, 1.4)];
        for &t in &targets {
            let nets: Vec<NetId> = cache.pins().nets_of(inst).to_vec();
            let mults: Vec<u32> = cache.pins().mult_of(inst).to_vec();
            for (&net, &mult) in nets.iter().zip(&mults) {
                let fast = cache.bbox_with_moved(&lib, nl, &p, net, inst, mult, t);
                let scratch = cache
                    .pins()
                    .scratch_bbox(&lib, nl, &p, net, Some((inst, t)));
                assert_eq!(fast, scratch, "net {net} target {t:?}");
            }
        }
        let s = cache.stats();
        assert!(s.fast_nets + s.rescans > 0);
    }
}
