//! Bounding boxes and half-perimeter wirelength primitives.

/// An axis-aligned bounding box in µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Left edge.
    pub x_min: f64,
    /// Right edge.
    pub x_max: f64,
    /// Bottom edge.
    pub y_min: f64,
    /// Top edge.
    pub y_max: f64,
}

impl BoundingBox {
    /// Bounding box of a point set; `None` when empty.
    pub fn of_points(points: &[(f64, f64)]) -> Option<Self> {
        let mut it = points.iter();
        let &(x, y) = it.next()?;
        let mut b = BoundingBox {
            x_min: x,
            x_max: x,
            y_min: y,
            y_max: y,
        };
        for &(x, y) in it {
            b.x_min = b.x_min.min(x);
            b.x_max = b.x_max.max(x);
            b.y_min = b.y_min.min(y);
            b.y_max = b.y_max.max(y);
        }
        Some(b)
    }

    /// Half-perimeter (width + height).
    pub fn half_perimeter(&self) -> f64 {
        (self.x_max - self.x_min) + (self.y_max - self.y_min)
    }

    /// Whether a point lies inside (inclusive).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x_min && x <= self.x_max && y >= self.y_min && y <= self.y_max
    }

    /// Whether this box intersects another (inclusive).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.x_min <= other.x_max
            && other.x_min <= self.x_max
            && self.y_min <= other.y_max
            && other.y_min <= self.y_max
    }

    /// Grows the box by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            x_min: self.x_min - margin,
            x_max: self.x_max + margin,
            y_min: self.y_min - margin,
            y_max: self.y_max + margin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_points_handles_empty_and_single() {
        assert!(BoundingBox::of_points(&[]).is_none());
        let b = BoundingBox::of_points(&[(1.0, 2.0)]).unwrap();
        assert_eq!(b.half_perimeter(), 0.0);
        assert!(b.contains(1.0, 2.0));
    }

    #[test]
    fn half_perimeter_is_width_plus_height() {
        let b = BoundingBox::of_points(&[(0.0, 0.0), (3.0, 4.0), (1.0, 1.0)]).unwrap();
        assert_eq!(b.half_perimeter(), 7.0);
    }

    #[test]
    fn containment_and_intersection() {
        let a = BoundingBox::of_points(&[(0.0, 0.0), (2.0, 2.0)]).unwrap();
        let b = BoundingBox::of_points(&[(1.0, 1.0), (3.0, 3.0)]).unwrap();
        let c = BoundingBox::of_points(&[(5.0, 5.0), (6.0, 6.0)]).unwrap();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains(2.0, 2.0));
        assert!(!a.contains(2.1, 2.0));
    }

    #[test]
    fn expansion_grows_every_side() {
        let b = BoundingBox::of_points(&[(1.0, 1.0), (2.0, 2.0)])
            .unwrap()
            .expanded(0.5);
        assert!(b.contains(0.6, 0.6));
        assert!(b.contains(2.4, 2.4));
        assert!(!b.contains(0.4, 1.0));
    }
}
