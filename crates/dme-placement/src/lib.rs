//! Standard-cell placement: global placement, legalization, HPWL.
//!
//! This crate replaces the placement/ECO portion of the commercial
//! physical-design tool (Cadence SoC Encounter) used by the paper. It
//! provides:
//!
//! - [`place`]: a deterministic force-directed global placer (neighbor
//!   averaging interleaved with sort-based spreading) followed by Tetris
//!   legalization onto rows and sites — enough to give generated netlists
//!   the *spatial locality* that dose-map optimization exploits (critical
//!   paths occupy compact regions, so a grid dose can speed them up);
//! - [`Placement`]: per-instance coordinates plus die/row geometry,
//!   net HPWL, neighborhood bounding boxes (the dosePl swap filter), and
//!   cell swapping with incremental re-legalization (the paper's ECO
//!   step);
//! - [`PlacementDelta`]: a coordinate journal for O(Δ) undo of tracked
//!   swap/repack perturbations, [`RowIndex`]: persistent row membership
//!   so an ECO repack gathers only the dirty rows instead of scanning
//!   every instance, and [`NetBoxCache`]: cached per-net bounding boxes
//!   with O(1) what-if HPWL queries — the swap-scratch layer behind the
//!   dosePl candidate loop;
//! - density statistics used to sanity-check utilization against Table I.
//!
//! # Example
//!
//! ```
//! use dme_netlist::{gen, profiles};
//! use dme_liberty::Library;
//! use dme_device::Technology;
//!
//! let lib = Library::standard(Technology::n65());
//! let design = gen::generate(&profiles::tiny(), &lib);
//! let placement = dme_placement::place(&design, &lib);
//! placement.check_legal(&design.netlist, &lib).expect("legal placement");
//! ```

#![deny(missing_docs)]

mod db;
mod delta;
mod hpwl;
pub mod io;
mod legalize;
mod netbox;
mod place;
mod rowindex;

pub use db::{LegalityError, Placement};
pub use delta::PlacementDelta;
pub use hpwl::BoundingBox;
pub use netbox::{NetBoxCache, NetBoxStats, NetPins};
pub use place::{place, place_with_iterations};
pub use rowindex::RowIndex;
