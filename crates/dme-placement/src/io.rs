//! DEF-style placement emission and parsing.
//!
//! Placements can be exchanged as a minimal DEF-like text: a `DIEAREA`
//! record plus one `COMPONENT` line per instance with its lower-left
//! coordinates (in µm, not DBU — the subset the rest of this workspace
//! consumes). The pair round-trips every placement this crate produces.

use crate::db::Placement;
use dme_netlist::Netlist;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from [`parse_placement`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseDefError {
    /// The `DIEAREA` record is missing or malformed.
    MissingDieArea,
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// A component references an instance not in the netlist.
    UnknownInstance {
        /// The instance name.
        name: String,
    },
    /// The file does not place every instance of the netlist.
    MissingInstances {
        /// How many instances were not placed.
        count: usize,
    },
}

impl fmt::Display for ParseDefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDefError::MissingDieArea => write!(f, "missing or malformed DIEAREA record"),
            ParseDefError::Syntax { line, message } => {
                write!(f, "def syntax error at line {line}: {message}")
            }
            ParseDefError::UnknownInstance { name } => {
                write!(f, "component {name:?} is not in the netlist")
            }
            ParseDefError::MissingInstances { count } => {
                write!(f, "{count} netlist instances have no placement")
            }
        }
    }
}

impl Error for ParseDefError {}

/// Emits a placement as DEF-like text.
pub fn write_placement(p: &Placement, nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "DESIGN dme ;");
    let _ = writeln!(out, "UNITS DISTANCE MICRONS 1 ;");
    let _ = writeln!(
        out,
        "DIEAREA ( 0 0 ) ( {:.4} {:.4} ) ;",
        p.die_w_um, p.die_h_um
    );
    let _ = writeln!(out, "ROWHEIGHT {:.4} ;", p.row_h_um);
    let _ = writeln!(out, "SITEWIDTH {:.4} ;", p.site_um);
    let _ = writeln!(out, "COMPONENTS {} ;", nl.num_instances());
    for id in nl.inst_ids() {
        let i = id.0 as usize;
        let _ = writeln!(
            out,
            "- {} PLACED ( {:.7} {:.7} ) N ;",
            nl.instance(id).name,
            p.x_um[i],
            p.y_um[i]
        );
    }
    let _ = writeln!(out, "END COMPONENTS");
    out
}

fn parse_f64(line: usize, tok: &str) -> Result<f64, ParseDefError> {
    tok.parse::<f64>().map_err(|_| ParseDefError::Syntax {
        line,
        message: format!("expected a number, found {tok:?}"),
    })
}

/// Parses DEF-like text back into a [`Placement`] against a netlist
/// (instance names must match).
///
/// # Errors
///
/// Returns a [`ParseDefError`] for malformed records, unknown instances
/// or incomplete placements.
pub fn parse_placement(text: &str, nl: &Netlist) -> Result<Placement, ParseDefError> {
    let name_to_id: HashMap<&str, usize> = nl
        .instances
        .iter()
        .enumerate()
        .map(|(i, inst)| (inst.name.as_str(), i))
        .collect();
    let n = nl.num_instances();
    let mut x = vec![f64::NAN; n];
    let mut y = vec![f64::NAN; n];
    let mut die: Option<(f64, f64)> = None;
    let mut row_h = 1.0;
    let mut site = 0.2;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let l = raw.trim();
        let toks: Vec<&str> = l.split_whitespace().collect();
        if l.starts_with("DIEAREA") {
            // DIEAREA ( 0 0 ) ( w h ) ;
            if toks.len() < 9 {
                return Err(ParseDefError::MissingDieArea);
            }
            die = Some((parse_f64(line, toks[6])?, parse_f64(line, toks[7])?));
        } else if l.starts_with("ROWHEIGHT") {
            row_h = parse_f64(line, toks.get(1).copied().unwrap_or(""))?;
        } else if l.starts_with("SITEWIDTH") {
            site = parse_f64(line, toks.get(1).copied().unwrap_or(""))?;
        } else if l.starts_with("- ") {
            // - name PLACED ( x y ) N ;
            if toks.len() < 7 || toks[2] != "PLACED" {
                return Err(ParseDefError::Syntax {
                    line,
                    message: format!("malformed component record {l:?}"),
                });
            }
            let name = toks[1];
            let &idx = name_to_id
                .get(name)
                .ok_or_else(|| ParseDefError::UnknownInstance {
                    name: name.to_string(),
                })?;
            x[idx] = parse_f64(line, toks[4])?;
            y[idx] = parse_f64(line, toks[5])?;
        }
    }
    let (die_w, die_h) = die.ok_or(ParseDefError::MissingDieArea)?;
    let missing = x.iter().filter(|v| v.is_nan()).count();
    if missing > 0 {
        return Err(ParseDefError::MissingInstances { count: missing });
    }
    Ok(Placement {
        die_w_um: die_w,
        die_h_um: die_h,
        row_h_um: row_h,
        site_um: site,
        x_um: x,
        y_um: y,
        pi_pos: nl
            .primary_inputs
            .iter()
            .enumerate()
            .map(|(i, _)| {
                (
                    0.0,
                    die_h * (i as f64 + 0.5) / nl.primary_inputs.len().max(1) as f64,
                )
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles};

    #[test]
    fn roundtrip_is_exact_modulo_formatting() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = crate::place(&d, &lib);
        let text = write_placement(&p, &d.netlist);
        let back = parse_placement(&text, &d.netlist).expect("parse");
        for i in 0..d.netlist.num_instances() {
            assert!((back.x_um[i] - p.x_um[i]).abs() < 1e-3);
            assert!((back.y_um[i] - p.y_um[i]).abs() < 1e-3);
        }
        assert!((back.die_w_um - p.die_w_um).abs() < 1e-3);
        // The parsed placement is still legal (coordinates are written
        // with sub-nanometer precision, well below legality tolerances).
        back.check_legal(&d.netlist, &lib).expect("legal");
    }

    #[test]
    fn missing_instances_are_detected() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = crate::place(&d, &lib);
        let text = write_placement(&p, &d.netlist);
        // Drop one component line (ff0 always exists).
        let truncated: Vec<&str> = text.lines().filter(|l| !l.starts_with("- ff0 ")).collect();
        let err = parse_placement(&truncated.join("\n"), &d.netlist);
        assert!(matches!(
            err,
            Err(ParseDefError::MissingInstances { count: 1 })
        ));
    }

    #[test]
    fn unknown_instance_is_detected() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let text = "DIEAREA ( 0 0 ) ( 10 10 ) ;\n- ghost PLACED ( 1 1 ) N ;\n";
        assert!(matches!(
            parse_placement(text, &d.netlist),
            Err(ParseDefError::UnknownInstance { .. })
        ));
    }

    #[test]
    fn missing_diearea_is_detected() {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        assert!(matches!(
            parse_placement("COMPONENTS 0 ;\n", &d.netlist),
            Err(ParseDefError::MissingDieArea)
        ));
        let _ = lib;
    }
}
