//! Property-based tests for placement and legalization.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles, profiles::TechNode, DesignProfile, InstId};
use proptest::prelude::*;

fn random_profile() -> impl Strategy<Value = DesignProfile> {
    (80usize..300, any::<u64>(), 4usize..12).prop_map(|(cells, seed, levels)| DesignProfile {
        name: "PROP".into(),
        node: TechNode::N65,
        target_cells: cells,
        num_primary_inputs: 8,
        seq_fraction: 0.12,
        levels,
        chain_bias: 0.8,
        level_taper: 0.0,
        slices: 1,
        ff_tap_deep_frac: 0.75,
        die_area_mm2: cells as f64 * 5.0e-6,
        utilization: 0.7,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Placement of any supported design is legal: on rows, in the die,
    /// no overlaps.
    #[test]
    fn placements_are_legal(profile in random_profile()) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        p.check_legal(&d.netlist, &lib).expect("legal placement");
    }

    /// Any sequence of random swaps followed by row repacking preserves
    /// legality (the dosePl ECO invariant).
    #[test]
    fn random_swaps_stay_legal(
        seed in any::<u64>(),
        swaps in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..12),
    ) {
        let lib = Library::standard(Technology::n65());
        let mut profile = profiles::tiny();
        profile.seed = seed;
        let d = gen::generate(&profile, &lib);
        let mut p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances() as u32;
        for (a, b) in swaps {
            let (a, b) = (InstId(a % n), InstId(b % n));
            if a == b {
                continue;
            }
            let rows = [
                (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
                (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
            ];
            p.swap_cells(a, b);
            p.repack_rows(&lib, &d.netlist, &rows);
        }
        p.check_legal(&d.netlist, &lib).expect("legal after swaps");
    }

    /// HPWL is invariant under swapping two instances of the same master
    /// and translation-monotone basics hold.
    #[test]
    fn hpwl_sanity(seed in any::<u64>()) {
        let lib = Library::standard(Technology::n65());
        let mut profile = profiles::tiny();
        profile.seed = seed;
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let total = p.total_hpwl(&lib, &d.netlist);
        prop_assert!(total.is_finite() && total > 0.0);
        // Per-net HPWL is nonnegative and bounded by the die perimeter.
        for i in 0..d.netlist.num_nets() as u32 {
            let h = p.net_hpwl(&lib, &d.netlist, dme_netlist::NetId(i));
            prop_assert!(h >= 0.0);
            prop_assert!(h <= p.die_w_um + p.die_h_um + 1e-9);
        }
    }
}
