//! Property-based tests for placement and legalization.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles, profiles::TechNode, DesignProfile, InstId};
use proptest::prelude::*;

fn random_profile() -> impl Strategy<Value = DesignProfile> {
    (80usize..300, any::<u64>(), 4usize..12).prop_map(|(cells, seed, levels)| DesignProfile {
        name: "PROP".into(),
        node: TechNode::N65,
        target_cells: cells,
        num_primary_inputs: 8,
        seq_fraction: 0.12,
        levels,
        chain_bias: 0.8,
        level_taper: 0.0,
        slices: 1,
        ff_tap_deep_frac: 0.75,
        die_area_mm2: cells as f64 * 5.0e-6,
        utilization: 0.7,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Placement of any supported design is legal: on rows, in the die,
    /// no overlaps.
    #[test]
    fn placements_are_legal(profile in random_profile()) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        p.check_legal(&d.netlist, &lib).expect("legal placement");
    }

    /// Any sequence of random swaps followed by row repacking preserves
    /// legality (the dosePl ECO invariant).
    #[test]
    fn random_swaps_stay_legal(
        seed in any::<u64>(),
        swaps in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..12),
    ) {
        let lib = Library::standard(Technology::n65());
        let mut profile = profiles::tiny();
        profile.seed = seed;
        let d = gen::generate(&profile, &lib);
        let mut p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances() as u32;
        for (a, b) in swaps {
            let (a, b) = (InstId(a % n), InstId(b % n));
            if a == b {
                continue;
            }
            let rows = [
                (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
                (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
            ];
            p.swap_cells(a, b);
            p.repack_rows(&lib, &d.netlist, &rows);
        }
        p.check_legal(&d.netlist, &lib).expect("legal after swaps");
    }

    /// Tracked swap/repack perturbations are bitwise-identical to the
    /// untracked ones, and the journal undoes any suffix of them back to
    /// the exact prior coordinate bits.
    #[test]
    fn tracked_perturbations_match_and_undo_bitwise(
        seed in any::<u64>(),
        swaps in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..12),
        undo_point in any::<usize>(),
    ) {
        let lib = Library::standard(Technology::n65());
        let mut profile = profiles::tiny();
        profile.seed = seed;
        let d = gen::generate(&profile, &lib);
        let p0 = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances() as u32;

        let mut plain = p0.clone();
        let mut tracked = p0.clone();
        let mut journal = dme_placement::PlacementDelta::new();
        let mut marks = Vec::new();
        for &(a, b) in &swaps {
            let (a, b) = (InstId(a % n), InstId(b % n));
            if a == b {
                continue;
            }
            marks.push(journal.mark());
            let rows = [
                (plain.y_um[a.0 as usize] / plain.row_h_um).round() as usize,
                (plain.y_um[b.0 as usize] / plain.row_h_um).round() as usize,
            ];
            plain.swap_cells(a, b);
            plain.repack_rows(&lib, &d.netlist, &rows);
            tracked.swap_cells_tracked(a, b, &mut journal);
            tracked.repack_rows_tracked(&lib, &d.netlist, &rows, &mut journal);
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&plain.x_um), bits(&tracked.x_um));
        prop_assert_eq!(bits(&plain.y_um), bits(&tracked.y_um));

        // Undoing to an intermediate mark restores only its suffix...
        if !marks.is_empty() {
            let mark = marks[undo_point % marks.len()];
            let writes = journal.writes_since(mark);
            journal.undo_to(&mut tracked, mark);
            prop_assert_eq!(journal.writes_since(mark), 0);
            prop_assert!(writes == 0 || bits(&tracked.x_um) != bits(&plain.x_um)
                || bits(&tracked.y_um) != bits(&plain.y_um)
                || marks.iter().all(|&m| m == mark));
        }
        // ...and undoing everything restores the starting placement.
        journal.undo_all(&mut tracked);
        prop_assert_eq!(bits(&tracked.x_um), bits(&p0.x_um));
        prop_assert_eq!(bits(&tracked.y_um), bits(&p0.y_um));
    }

    /// After any tracked perturbation sequence, refreshing the net-box
    /// cache for the journal-touched instances makes every cached box
    /// bitwise-equal to a from-scratch fold, and what-if queries agree
    /// with scratch evaluation.
    #[test]
    fn netbox_cache_matches_scratch_after_random_moves(
        seed in any::<u64>(),
        swaps in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..10),
        probe in any::<u32>(),
        target in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let lib = Library::standard(Technology::n65());
        let mut profile = profiles::tiny();
        profile.seed = seed;
        let d = gen::generate(&profile, &lib);
        let nl = &d.netlist;
        let mut p = dme_placement::place(&d, &lib);
        let n = nl.num_instances() as u32;
        let mut cache = dme_placement::NetBoxCache::build(&lib, nl, &p);
        let mut journal = dme_placement::PlacementDelta::new();
        for (a, b) in swaps {
            let (a, b) = (InstId(a % n), InstId(b % n));
            if a == b {
                continue;
            }
            let mark = journal.mark();
            let rows = [
                (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
                (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
            ];
            p.swap_cells_tracked(a, b, &mut journal);
            p.repack_rows_tracked(&lib, nl, &rows, &mut journal);
            let touched = journal.touched_since(mark);
            cache.refresh_for_moved(&lib, nl, &p, &touched);
        }
        for ni in 0..nl.num_nets() {
            let net = dme_netlist::NetId(ni as u32);
            let scratch = cache.pins().scratch_bbox(&lib, nl, &p, net, None);
            prop_assert_eq!(cache.bbox(net), scratch, "net {}", ni);
        }
        // What-if queries answered from the cache equal scratch folds.
        let inst = InstId(probe % n);
        let new_center = (target.0 * p.die_w_um, target.1 * p.die_h_um);
        let nets = cache.pins().nets_of(inst).to_vec();
        let mults = cache.pins().mult_of(inst).to_vec();
        for (&net, &mult) in nets.iter().zip(&mults) {
            let fast = cache.bbox_with_moved(&lib, nl, &p, net, inst, mult, new_center);
            let scratch = cache.pins().scratch_bbox(&lib, nl, &p, net, Some((inst, new_center)));
            prop_assert_eq!(fast, scratch, "net {} of inst {}", net.0, inst.0);
        }
    }

    /// HPWL is invariant under swapping two instances of the same master
    /// and translation-monotone basics hold.
    #[test]
    fn hpwl_sanity(seed in any::<u64>()) {
        let lib = Library::standard(Technology::n65());
        let mut profile = profiles::tiny();
        profile.seed = seed;
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let total = p.total_hpwl(&lib, &d.netlist);
        prop_assert!(total.is_finite() && total > 0.0);
        // Per-net HPWL is nonnegative and bounded by the die perimeter.
        for i in 0..d.netlist.num_nets() as u32 {
            let h = p.net_hpwl(&lib, &d.netlist, dme_netlist::NetId(i));
            prop_assert!(h >= 0.0);
            prop_assert!(h <= p.die_w_um + p.die_h_um + 1e-9);
        }
    }
}
