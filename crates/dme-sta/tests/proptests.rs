//! Property-based tests for the STA engine.

use dme_device::Technology;
use dme_liberty::Library;
use dme_netlist::{gen, profiles, profiles::TechNode, DesignProfile};
use dme_sta::{
    analyze, analyze_with_mode, worst_path_per_endpoint, worst_paths_per_endpoint_k,
    worst_paths_top_k, GeometryAssignment, IncrementalSta, StaMode,
};
use proptest::prelude::*;

fn random_profile() -> impl Strategy<Value = DesignProfile> {
    (80usize..250, any::<u64>(), 4usize..12, 0.4f64..0.95).prop_map(
        |(cells, seed, levels, bias)| DesignProfile {
            name: "PROP".into(),
            node: TechNode::N65,
            target_cells: cells,
            num_primary_inputs: 8,
            seq_fraction: 0.12,
            levels,
            chain_bias: bias,
            level_taper: 0.0,
            slices: 1,
            ff_tap_deep_frac: 0.75,
            die_area_mm2: cells as f64 * 5.0e-6,
            utilization: 0.7,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core STA invariants on arbitrary designs and doses: arrival
    /// propagation holds on every edge, worst slack is zero at clock =
    /// MCT, the worst endpoint path reproduces the MCT, and totals are
    /// finite and positive.
    #[test]
    fn sta_invariants(profile in random_profile(), dose_step in -10i32..=10) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances();
        let dl = dose_step as f64; // ±10 nm range
        let doses = GeometryAssignment::uniform(n, dl, 0.0);
        let r = analyze(&lib, &d.netlist, &p, &doses);
        prop_assert!(r.mct_ns > 0.0 && r.mct_ns.is_finite());
        prop_assert!(r.total_leakage_uw > 0.0 && r.total_leakage_uw.is_finite());
        let worst = r.slack_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(worst.abs() < 1e-9, "worst slack = {worst}");
        for id in d.netlist.inst_ids() {
            let inst = d.netlist.instance(id);
            if inst.is_sequential {
                continue;
            }
            for &net in &inst.inputs {
                if let Some(drv) = d.netlist.net(net).driver {
                    let lhs = r.arrival_ns[drv.0 as usize]
                        + r.wire_delay_ns[net.0 as usize]
                        + r.gate_delay_ns[id.0 as usize];
                    prop_assert!(lhs <= r.arrival_ns[id.0 as usize] + 1e-9);
                }
            }
        }
        let setup: Vec<f64> = d
            .netlist
            .instances
            .iter()
            .map(|i| lib.cell(i.cell_idx).setup_ns(lib.tech()))
            .collect();
        let paths = worst_path_per_endpoint(&d.netlist, &r, &setup);
        prop_assert!(!paths.is_empty());
        prop_assert!((paths[0].delay_ns - r.mct_ns).abs() < 1e-9);
    }

    /// Level-parallel forward propagation is bitwise identical to the
    /// serial level-order pass, for every report field that feeds
    /// downstream optimization. Wide profiles make individual levels
    /// cross the parallel cutoff.
    #[test]
    fn levelized_parallel_matches_serial(
        cells in 400usize..800,
        seed in any::<u64>(),
        dose_step in -8i32..=8,
    ) {
        // Ask for a multi-thread pool even on single-core CI machines so
        // the parallel code path genuinely executes (see dme-par docs).
        std::env::set_var("DME_NUM_THREADS", "4");
        let lib = Library::standard(Technology::n65());
        let profile = DesignProfile {
            name: "PROP-WIDE".into(),
            node: TechNode::N65,
            target_cells: cells,
            num_primary_inputs: 16,
            seq_fraction: 0.12,
            levels: 5,
            chain_bias: 0.5,
            level_taper: 0.0,
            slices: 1,
            ff_tap_deep_frac: 0.75,
            die_area_mm2: cells as f64 * 5.0e-6,
            utilization: 0.7,
            seed,
        };
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances();
        let doses = GeometryAssignment::uniform(n, dose_step as f64, 0.0);
        let rs = analyze_with_mode(&lib, &d.netlist, &p, &doses, StaMode::Serial);
        let rp = analyze_with_mode(&lib, &d.netlist, &p, &doses, StaMode::Parallel);
        for i in 0..n {
            prop_assert_eq!(rs.arrival_ns[i].to_bits(), rp.arrival_ns[i].to_bits(), "arrival {}", i);
            prop_assert_eq!(rs.output_slew_ns[i].to_bits(), rp.output_slew_ns[i].to_bits(), "slew {}", i);
            prop_assert_eq!(rs.arrival_min_ns[i].to_bits(), rp.arrival_min_ns[i].to_bits(), "early {}", i);
            prop_assert_eq!(rs.slack_ns[i].to_bits(), rp.slack_ns[i].to_bits(), "slack {}", i);
        }
        prop_assert_eq!(rs.mct_ns.to_bits(), rp.mct_ns.to_bits());
        prop_assert_eq!(rs.worst_hold_slack_ns.to_bits(), rp.worst_hold_slack_ns.to_bits());
    }

    /// Incremental re-timing after arbitrary dose perturbations lands on
    /// the same late-corner state as a from-scratch analysis.
    #[test]
    fn incremental_retime_matches_full(
        profile in random_profile(),
        touched in proptest::collection::vec((0usize..usize::MAX, -8i32..=8), 1..12),
    ) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        for &(raw, step) in &touched {
            doses.dl_nm[raw % n] = step as f64;
        }
        let mct = inc.retime(&p, &doses);
        let full = analyze(&lib, &d.netlist, &p, &doses);
        for i in 0..n {
            prop_assert_eq!(inc.arrival_ns()[i].to_bits(), full.arrival_ns[i].to_bits(), "arrival {}", i);
            prop_assert_eq!(inc.output_slew_ns()[i].to_bits(), full.output_slew_ns[i].to_bits(), "slew {}", i);
        }
        prop_assert_eq!(mct.to_bits(), full.mct_ns.to_bits());
    }

    /// The push retime API (`retime_touched`, fed the touched set a
    /// caller's journals would supply) lands on the same bits as the
    /// pull mirror-diff `retime` and as a from-scratch analysis, across
    /// random swap/re-dose/repack sequences. The bench-scale (12k)
    /// instance of this contract is `push_matches_pull_and_full_at_
    /// bench_scale` in `incremental.rs`.
    #[test]
    fn push_retime_matches_pull_and_full_on_random_sequences(
        profile in random_profile(),
        steps in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), -8i32..=8, any::<bool>()),
            1..8,
        ),
    ) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let mut p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let mut push = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let mut pull = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        let mut pd = dme_placement::PlacementDelta::default();
        for &(ra, rb, rc, step, do_move) in &steps {
            let mark = pd.mark();
            let mut touched = Vec::new();
            let (a, b) = (ra as usize % n, rb as usize % n);
            if do_move && a != b {
                let (a, b) = (dme_netlist::InstId(a as u32), dme_netlist::InstId(b as u32));
                p.swap_cells_tracked(a, b, &mut pd);
                let rows = [
                    (p.y_um[a.0 as usize] / p.row_h_um).round() as usize,
                    (p.y_um[b.0 as usize] / p.row_h_um).round() as usize,
                ];
                p.repack_rows_tracked(&lib, &d.netlist, &rows, &mut pd);
                touched = pd.touched_since(mark);
            }
            let redosed = rc as usize % n;
            doses.dl_nm[redosed] = step as f64;
            touched.push(dme_netlist::InstId(redosed as u32));
            let m_push = push.retime_touched(&p, &doses, &touched);
            let m_pull = pull.retime(&p, &doses);
            prop_assert_eq!(m_push.to_bits(), m_pull.to_bits(), "push/pull MCT");
        }
        let full = analyze(&lib, &d.netlist, &p, &doses);
        for i in 0..n {
            prop_assert_eq!(push.arrival_ns()[i].to_bits(), full.arrival_ns[i].to_bits(), "arrival {}", i);
            prop_assert_eq!(push.output_slew_ns()[i].to_bits(), full.output_slew_ns[i].to_bits(), "slew {}", i);
        }
        prop_assert_eq!(push.mct_ns().to_bits(), full.mct_ns.to_bits());
    }

    /// The lazy top-K enumerator over incremental state is bitwise
    /// identical to the full endpoint walk truncated to K — same path
    /// instance chains, same delay/slack bits, same order — across
    /// random designs, K values, and swap/re-dose/undo sequences. The
    /// partial-selection oracle is held to the same contract against
    /// the stable full sort.
    #[test]
    fn top_k_enumeration_matches_full_walk(
        profile in random_profile(),
        k in 1usize..40,
        steps in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), -8i32..=8, any::<bool>()),
            1..8,
        ),
    ) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let mut p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances();
        let mut doses = GeometryAssignment::nominal(n);
        let setup: Vec<f64> = d
            .netlist
            .instances
            .iter()
            .map(|i| lib.cell(i.cell_idx).setup_ns(lib.tech()))
            .collect();
        let mut inc = IncrementalSta::new(&lib, &d.netlist, &p, &doses);
        inc.set_journal(true);
        let mut pd = dme_placement::PlacementDelta::default();
        for &(ra, rb, rc, step, reject) in &steps {
            let smark = inc.mark();
            let jmark = pd.mark();
            let (a, b) = (ra as usize % n, rb as usize % n);
            let mut touched = Vec::new();
            if a != b {
                let (a, b) = (dme_netlist::InstId(a as u32), dme_netlist::InstId(b as u32));
                p.swap_cells_tracked(a, b, &mut pd);
                touched = pd.touched_since(jmark);
            }
            let redosed = rc as usize % n;
            let old_dose = doses.dl_nm[redosed];
            doses.dl_nm[redosed] = step as f64;
            touched.push(dme_netlist::InstId(redosed as u32));
            inc.retime_touched(&p, &doses, &touched);
            if reject {
                // Trial rejected: journal replay on both sides, leaving
                // duplicate live entries in the MCT heap for the
                // enumerator's dedup to handle.
                pd.undo_to(&mut p, jmark);
                doses.dl_nm[redosed] = old_dose;
                inc.undo_to(smark);
            }
            let full = analyze(&lib, &d.netlist, &p, &doses);
            let mut oracle = worst_path_per_endpoint(&d.netlist, &full, &setup);
            let capped = worst_paths_per_endpoint_k(&d.netlist, &full, &setup, k);
            oracle.truncate(k);
            prop_assert_eq!(capped.len(), oracle.len());
            let (paths, stats) = worst_paths_top_k(&mut inc, k);
            prop_assert_eq!(paths.len(), oracle.len());
            prop_assert_eq!(
                stats.endpoints_popped,
                paths.len() as u64 + stats.stale_discards
            );
            for (i, want) in oracle.iter().enumerate() {
                prop_assert_eq!(&capped[i].instances, &want.instances, "partial path {}", i);
                prop_assert_eq!(capped[i].delay_ns.to_bits(), want.delay_ns.to_bits());
                prop_assert_eq!(capped[i].slack_ns.to_bits(), want.slack_ns.to_bits());
                prop_assert_eq!(&paths[i].instances, &want.instances, "lazy path {}", i);
                prop_assert_eq!(paths[i].delay_ns.to_bits(), want.delay_ns.to_bits());
                prop_assert_eq!(paths[i].slack_ns.to_bits(), want.slack_ns.to_bits());
            }
        }
    }

    /// Dose monotonicity at chip level: more dose (shorter gates) never
    /// slows the design down and never reduces leakage.
    #[test]
    fn dose_monotonicity(profile in random_profile()) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances();
        let mut prev: Option<(f64, f64)> = None;
        for step in [-4.0f64, -2.0, 0.0, 2.0, 4.0] {
            // step is dose %, ΔL = −2·dose.
            let r = analyze(&lib, &d.netlist, &p, &GeometryAssignment::uniform(n, -2.0 * step, 0.0));
            if let Some((mct, leak)) = prev {
                prop_assert!(r.mct_ns <= mct + 1e-12);
                prop_assert!(r.total_leakage_uw >= leak - 1e-12);
            }
            prev = Some((r.mct_ns, r.total_leakage_uw));
        }
    }

    /// Width modulation is second-order relative to length modulation.
    #[test]
    fn width_is_second_order(seed in any::<u64>()) {
        let lib = Library::standard(Technology::n65());
        let mut profile = profiles::tiny();
        profile.seed = seed;
        let d = gen::generate(&profile, &lib);
        let p = dme_placement::place(&d, &lib);
        let n = d.netlist.num_instances();
        let base = analyze(&lib, &d.netlist, &p, &GeometryAssignment::nominal(n));
        let by_l = analyze(&lib, &d.netlist, &p, &GeometryAssignment::uniform(n, -10.0, 0.0));
        let by_w = analyze(&lib, &d.netlist, &p, &GeometryAssignment::uniform(n, 0.0, 10.0));
        let gain_l = base.mct_ns - by_l.mct_ns;
        let gain_w = base.mct_ns - by_w.mct_ns;
        prop_assert!(gain_l > 0.0);
        prop_assert!(gain_w >= -1e-12);
        prop_assert!(gain_w < 0.6 * gain_l, "width gain {gain_w} vs length gain {gain_l}");
    }
}
