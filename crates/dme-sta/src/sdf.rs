//! SDF (Standard Delay Format) emission.
//!
//! A golden timing analysis can be dumped as an SDF 3.0 subset: one
//! `IOPATH` triple per cell instance (min = best-case/hold delay,
//! typ = max = worst-case/setup delay, as this engine models corners)
//! and one `INTERCONNECT` entry per driven net. This is the artifact a
//! signoff timer hands to gate-level simulation and to third-party
//! timing tools, and it lets the dose-modulated delays leave the
//! workspace in a standard form.

use crate::engine::TimingReport;
use dme_netlist::Netlist;
use std::fmt::Write as _;

/// Emits an analysis as SDF text.
///
/// Cell delays carry `(min:typ:max)` triples from the report's best- and
/// worst-case gate delays; interconnect delays use the per-net lumped
/// wire delay on every driver→sink arc. Values are in nanoseconds
/// (declared in the header).
pub fn write_sdf(nl: &Netlist, report: &TimingReport, design: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(DELAYFILE");
    let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
    let _ = writeln!(out, "  (DESIGN \"{design}\")");
    let _ = writeln!(out, "  (TIMESCALE 1ns)");
    for id in nl.inst_ids() {
        let i = id.0 as usize;
        let inst = nl.instance(id);
        let best = report.gate_delay_best_ns[i];
        let worst = report.gate_delay_ns[i];
        let _ = writeln!(out, "  (CELL");
        let _ = writeln!(out, "    (CELLTYPE \"CELL\")");
        let _ = writeln!(out, "    (INSTANCE {})", inst.name);
        let _ = writeln!(out, "    (DELAY (ABSOLUTE");
        if inst.is_sequential {
            let _ = writeln!(
                out,
                "      (IOPATH CLK Q ({best:.6}:{worst:.6}:{worst:.6}) ({best:.6}:{worst:.6}:{worst:.6}))"
            );
        } else {
            for pin in 0..inst.inputs.len() {
                let _ = writeln!(
                    out,
                    "      (IOPATH A{pin} Y ({best:.6}:{worst:.6}:{worst:.6}) ({best:.6}:{worst:.6}:{worst:.6}))"
                );
            }
        }
        let _ = writeln!(out, "    ))");
        let _ = writeln!(out, "  )");
    }
    // Interconnect arcs, grouped under one CELL for the top module.
    let _ = writeln!(out, "  (CELL");
    let _ = writeln!(out, "    (CELLTYPE \"{design}\")");
    let _ = writeln!(out, "    (INSTANCE)");
    let _ = writeln!(out, "    (DELAY (ABSOLUTE");
    for (ni, net) in nl.nets.iter().enumerate() {
        let Some(drv) = net.driver else { continue };
        let w = report.wire_delay_ns[ni];
        for &(sink, pin) in &net.sinks {
            let _ = writeln!(
                out,
                "      (INTERCONNECT {}/Y {}/A{pin} ({w:.6}:{w:.6}:{w:.6}))",
                nl.instance(drv).name,
                nl.instance(sink).name
            );
        }
    }
    let _ = writeln!(out, "    ))");
    let _ = writeln!(out, "  )");
    let _ = writeln!(out, ")");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{analyze, GeometryAssignment};
    use dme_device::Technology;
    use dme_liberty::Library;
    use dme_netlist::{gen, profiles};

    fn sample() -> (Library, dme_netlist::Design, dme_placement::Placement) {
        let lib = Library::standard(Technology::n65());
        let d = gen::generate(&profiles::tiny(), &lib);
        let p = dme_placement::place(&d, &lib);
        (lib, d, p)
    }

    #[test]
    fn sdf_has_one_cell_per_instance_plus_top() {
        let (lib, d, p) = sample();
        let r = analyze(
            &lib,
            &d.netlist,
            &p,
            &GeometryAssignment::nominal(d.netlist.num_instances()),
        );
        let sdf = write_sdf(&d.netlist, &r, "tiny");
        assert_eq!(
            sdf.matches("(CELL\n").count(),
            d.netlist.num_instances() + 1
        );
        assert!(sdf.starts_with("(DELAYFILE"));
        assert!(sdf.trim_end().ends_with(')'));
        assert!(sdf.contains("(TIMESCALE 1ns)"));
        assert!(sdf.contains("(IOPATH CLK Q"));
    }

    #[test]
    fn sdf_min_never_exceeds_max() {
        let (lib, d, p) = sample();
        let r = analyze(
            &lib,
            &d.netlist,
            &p,
            &GeometryAssignment::uniform(d.netlist.num_instances(), -6.0, 0.0),
        );
        let sdf = write_sdf(&d.netlist, &r, "tiny");
        for line in sdf.lines().filter(|l| l.contains("IOPATH")) {
            let nums: Vec<f64> = line
                .split(['(', ')', ':'])
                .filter_map(|t| t.trim().parse::<f64>().ok())
                .collect();
            for triple in nums.chunks(3) {
                if triple.len() == 3 {
                    assert!(triple[0] <= triple[2] + 1e-12, "min > max in {line}");
                }
            }
        }
    }

    #[test]
    fn interconnect_count_matches_sink_pins() {
        let (lib, d, p) = sample();
        let r = analyze(
            &lib,
            &d.netlist,
            &p,
            &GeometryAssignment::nominal(d.netlist.num_instances()),
        );
        let sdf = write_sdf(&d.netlist, &r, "tiny");
        let expected: usize = d
            .netlist
            .nets
            .iter()
            .filter(|n| n.driver.is_some())
            .map(|n| n.sinks.len())
            .sum();
        assert_eq!(sdf.matches("INTERCONNECT").count(), expected);
    }
}
