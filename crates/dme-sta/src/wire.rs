//! Wire parasitics from placement geometry.

use dme_device::Technology;

/// Per-unit wire parasitics and the lumped delay model built on them.
///
/// Wire layout is dose-independent (a poly/active dose map does not move
/// any wires), so these delays are "golden parasitics": computed once per
/// placement and held fixed through dose optimization — exactly the
/// treatment in the paper (its Section III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Wire resistance in Ω/µm.
    pub r_ohm_per_um: f64,
    /// Wire capacitance in fF/µm.
    pub c_ff_per_um: f64,
}

impl WireModel {
    /// Effective signal-net parasitics for a node.
    ///
    /// These are *effective* (post-buffering) values rather than raw metal
    /// parasitics: a physical-synthesis flow keeps the capacitance a gate
    /// actually drives near the buffered-segment value, and our netlists
    /// carry no explicit buffer trees. Using raw 0.2 fF/µm on every full
    /// HPWL would make wire capacitance dominate all gate loads, pushing
    /// the designs far from the paper's gate-dominated timing regime.
    pub fn for_tech(tech: &Technology) -> Self {
        if tech.lnom_nm <= 65.0 {
            Self {
                r_ohm_per_um: 1.5,
                c_ff_per_um: 0.05,
            }
        } else {
            Self {
                r_ohm_per_um: 1.0,
                c_ff_per_um: 0.06,
            }
        }
    }

    /// Total wire capacitance of a net with the given half-perimeter
    /// wirelength, fF.
    pub fn wire_cap_ff(&self, hpwl_um: f64) -> f64 {
        self.c_ff_per_um * hpwl_um
    }

    /// Elmore-style lumped wire delay in ns for a net: the driver sees the
    /// full wire, the far end sees `R·(C_wire/2 + C_sinks)`.
    pub fn wire_delay_ns(&self, hpwl_um: f64, sink_cap_ff: f64) -> f64 {
        let r = self.r_ohm_per_um * hpwl_um; // Ω
        let c = self.c_ff_per_um * hpwl_um; // fF
                                            // Ω·fF = 1e-6 ns.
        r * (0.5 * c + sink_cap_ff) * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_delay_grows_superlinearly_with_length() {
        let w = WireModel::for_tech(&Technology::n65());
        let d10 = w.wire_delay_ns(10.0, 2.0);
        let d100 = w.wire_delay_ns(100.0, 2.0);
        assert!(d100 > 10.0 * d10);
    }

    #[test]
    fn magnitudes_are_reasonable() {
        // A 50 µm net at 65 nm: a fraction of a picosecond of wire delay
        // and a couple of fF of effective load.
        let w = WireModel::for_tech(&Technology::n65());
        let d = w.wire_delay_ns(50.0, 3.0);
        assert!(d > 1e-5 && d < 0.05, "wire delay = {d} ns");
        assert!((w.wire_cap_ff(50.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn nodes_have_different_parasitics() {
        assert_ne!(
            WireModel::for_tech(&Technology::n65()),
            WireModel::for_tech(&Technology::n90())
        );
    }
}
